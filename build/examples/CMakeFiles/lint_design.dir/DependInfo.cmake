
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/lint_design.cpp" "examples/CMakeFiles/lint_design.dir/lint_design.cpp.o" "gcc" "examples/CMakeFiles/lint_design.dir/lint_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cmtl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stdlib/CMakeFiles/cmtl_stdlib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cmtl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/cmtl_tile.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
