file(REMOVE_RECURSE
  "CMakeFiles/cmtl_core.dir/bits.cc.o"
  "CMakeFiles/cmtl_core.dir/bits.cc.o.d"
  "CMakeFiles/cmtl_core.dir/bitstruct.cc.o"
  "CMakeFiles/cmtl_core.dir/bitstruct.cc.o.d"
  "CMakeFiles/cmtl_core.dir/graph.cc.o"
  "CMakeFiles/cmtl_core.dir/graph.cc.o.d"
  "CMakeFiles/cmtl_core.dir/ir.cc.o"
  "CMakeFiles/cmtl_core.dir/ir.cc.o.d"
  "CMakeFiles/cmtl_core.dir/ir_bytecode.cc.o"
  "CMakeFiles/cmtl_core.dir/ir_bytecode.cc.o.d"
  "CMakeFiles/cmtl_core.dir/ir_cpp.cc.o"
  "CMakeFiles/cmtl_core.dir/ir_cpp.cc.o.d"
  "CMakeFiles/cmtl_core.dir/ir_eval.cc.o"
  "CMakeFiles/cmtl_core.dir/ir_eval.cc.o.d"
  "CMakeFiles/cmtl_core.dir/jit_cpp.cc.o"
  "CMakeFiles/cmtl_core.dir/jit_cpp.cc.o.d"
  "CMakeFiles/cmtl_core.dir/lint.cc.o"
  "CMakeFiles/cmtl_core.dir/lint.cc.o.d"
  "CMakeFiles/cmtl_core.dir/model.cc.o"
  "CMakeFiles/cmtl_core.dir/model.cc.o.d"
  "CMakeFiles/cmtl_core.dir/sim.cc.o"
  "CMakeFiles/cmtl_core.dir/sim.cc.o.d"
  "CMakeFiles/cmtl_core.dir/stats.cc.o"
  "CMakeFiles/cmtl_core.dir/stats.cc.o.d"
  "CMakeFiles/cmtl_core.dir/store.cc.o"
  "CMakeFiles/cmtl_core.dir/store.cc.o.d"
  "CMakeFiles/cmtl_core.dir/translate.cc.o"
  "CMakeFiles/cmtl_core.dir/translate.cc.o.d"
  "CMakeFiles/cmtl_core.dir/vcd.cc.o"
  "CMakeFiles/cmtl_core.dir/vcd.cc.o.d"
  "libcmtl_core.a"
  "libcmtl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
