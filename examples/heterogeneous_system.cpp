/**
 * @file
 * The paper's Figure 5a as a runnable program: accelerator-augmented
 * compute tiles interconnected by an on-chip network, each tile at a
 * different mix of abstraction levels, sharing one memory node.
 *
 * Every tile runs the accelerated matrix-vector multiply, discovers
 * its id through the memory node's who-am-I register, and writes its
 * results to a private region. The run demonstrates mixed-level
 * simulation: FL tiles finish in few (but inaccurate) cycles, RTL
 * tiles take realistically many, all in one simulation.
 *
 * Usage: heterogeneous_system [n] [--backend=<b>] [--profile[=json]]
 *
 * --backend selects the execution backend by its canonical name
 * (interp, optinterp, bytecode, cpp-block, cpp-design, ...). With
 * --profile the whole run is SimScope-instrumented and ends with
 * the hot-block ranking and val/rdy channel stats; --profile=json
 * emits the machine-readable snapshot as the last line instead.
 */

#include <cstdio>
#include <memory>

#include "core/scope.h"
#include "core/sim.h"
#include "stdlib/options.h"
#include "tile/multitile.h"

using namespace cmtl;
using namespace cmtl::tile;
using cmtl::stdlib::SimOptions;

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    int n = opts.intArg(8);
    bool profile = opts.profile, profile_json = opts.profile_json;

    std::vector<std::array<Level, 3>> levels = {
        {Level::FL, Level::FL, Level::FL},
        {Level::CL, Level::CL, Level::CL},
        {Level::RTL, Level::RTL, Level::RTL},
    };
    Workload w = makeMvmultMultiTile(n, /*use_accel=*/true);
    MultiTileSystem sys("sys", levels);
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);

    auto elab = sys.elaborate();
    SimulationTool sim(elab, opts.cfg);
    std::unique_ptr<SimScope> scope;
    if (profile) {
        scope = std::make_unique<SimScope>(sim);
        scope->traceAllValRdy();
    }
    sim.reset();

    std::printf("3 heterogeneous tiles, %dx%d mvmult each, shared "
                "memory over the network\n\n",
                n, n);
    std::vector<uint64_t> halted_at(levels.size(), 0);
    uint64_t cycles = 0;
    while (!sys.allHalted() && cycles < 10000000) {
        sim.cycle();
        ++cycles;
        for (int t = 0; t < sys.numTiles(); ++t) {
            if (halted_at[t] == 0 && sys.tile(t).halted())
                halted_at[t] = cycles;
        }
    }
    sim.cycle(500);

    auto expect = expectedMvmult(w);
    for (int t = 0; t < sys.numTiles(); ++t) {
        bool ok = true;
        uint32_t base = w.out_addr + static_cast<uint32_t>(t) * n * 4;
        for (int r = 0; r < n; ++r) {
            ok &= sys.memNode().readWord(
                      base + static_cast<uint32_t>(r) * 4) ==
                  expect[r];
        }
        std::printf("tile %d <%s,%s,%s>: halted at cycle %8llu, "
                    "results %s\n",
                    t, levelName(levels[t][0]), levelName(levels[t][1]),
                    levelName(levels[t][2]),
                    static_cast<unsigned long long>(halted_at[t]),
                    ok ? "OK" : "WRONG");
    }
    std::printf("\nmemory node served %llu requests over the "
                "network\n",
                static_cast<unsigned long long>(
                    sys.memNode().numRequests()));
    if (scope) {
        if (profile_json)
            std::printf("\n%s\n", scope->jsonSnapshot().c_str());
        else
            std::printf("\n%s", scope->report().c_str());
        scope->detach();
    }
    return 0;
}
