/**
 * @file
 * The paper's Figure 5a as a runnable program: accelerator-augmented
 * compute tiles interconnected by an on-chip network, each tile at a
 * different mix of abstraction levels, sharing one memory node.
 *
 * Every tile runs the accelerated matrix-vector multiply, discovers
 * its id through the memory node's who-am-I register, and writes its
 * results to a private region. The run demonstrates mixed-level
 * simulation: FL tiles finish in few (but inaccurate) cycles, RTL
 * tiles take realistically many, all in one simulation.
 *
 * Usage: heterogeneous_system [n] [--backend=<b>] [--profile[=json]]
 *                             [--vcd=path] [--checkpoint=path[:N]]
 *                             [--resume=path]
 *
 * --backend selects the execution backend by its canonical name
 * (interp, optinterp, bytecode, cpp-block, cpp-design, ...). With
 * --profile the whole run is SimScope-instrumented and ends with
 * the hot-block ranking and val/rdy channel stats; --profile=json
 * emits the machine-readable snapshot as the last line instead.
 *
 * --checkpoint / --resume capture and restore the simulation state
 * (core/snap.h). Mixed-level tiles carry FL/CL host state outside the
 * net list; models that do not serialize it are reported at resume
 * time, so a digest mismatch after restoring is attributable.
 */

#include <cstdio>
#include <memory>

#include "core/scope.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/vcd.h"
#include "stdlib/options.h"
#include "tile/multitile.h"

using namespace cmtl;
using namespace cmtl::tile;
using cmtl::stdlib::SimOptions;

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    int n = opts.intArg(8);
    bool profile = opts.profile, profile_json = opts.profile_json;

    std::vector<std::array<Level, 3>> levels = {
        {Level::FL, Level::FL, Level::FL},
        {Level::CL, Level::CL, Level::CL},
        {Level::RTL, Level::RTL, Level::RTL},
    };
    Workload w = makeMvmultMultiTile(n, /*use_accel=*/true);
    MultiTileSystem sys("sys", levels);
    sys.loadProgram(w.image);
    loadMvmultData(sys.memNode(), w);

    auto elab = sys.elaborate();
    SimulationTool sim(elab, opts.cfg);
    std::unique_ptr<SimScope> scope;
    if (profile) {
        scope = std::make_unique<SimScope>(sim);
        scope->traceAllValRdy();
    }

    if (!opts.checkpoint_path.empty() || !opts.resume.empty()) {
        // The processor tiles keep FL/CL host state outside the net
        // list and (unlike the network models) do not serialize it, so
        // say which models a checkpoint cannot carry before relying on
        // one.
        auto opaque = opaqueStateModels(*elab);
        if (!opaque.empty()) {
            std::printf("note: %zu model(s) carry unserialized host "
                        "state (first: %s); checkpoints of this design "
                        "restore nets/arrays only\n",
                        opaque.size(), opaque.front().c_str());
        }
    }
    try {
        if (!opts.resume.empty()) {
            SimSnapshot snap = snapLoadFile(opts.resume);
            snapRestore(sim, snap);
            std::printf("resumed %s at cycle %llu (digest %016llx)\n",
                        opts.resume.c_str(),
                        static_cast<unsigned long long>(snap.cycle),
                        static_cast<unsigned long long>(snap.digest()));
        } else {
            sim.reset();
        }
    } catch (const SnapError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }

    // Waveform and checkpoint writers attach after any restore so the
    // VCD timestamps continue the original waveform exactly.
    std::unique_ptr<VcdWriter> vcd;
    if (!opts.vcd.empty())
        vcd = std::make_unique<VcdWriter>(sim, opts.vcd);
    CheckpointManager ckpt(opts.checkpoint_path, opts.checkpoint_every);
    if (!opts.checkpoint_path.empty()) {
        ckpt.attach(sim);
        std::printf("checkpointing to %s every %llu cycles\n",
                    ckpt.path().c_str(),
                    static_cast<unsigned long long>(ckpt.everyCycles()));
    }

    std::printf("3 heterogeneous tiles, %dx%d mvmult each, shared "
                "memory over the network\n\n",
                n, n);
    uint64_t max_cycles = opts.cycles ? opts.cycles : 10000000;
    std::vector<uint64_t> halted_at(levels.size(), 0);
    while (!sys.allHalted() && sim.numCycles() < max_cycles) {
        sim.cycle();
        for (int t = 0; t < sys.numTiles(); ++t) {
            if (halted_at[t] == 0 && sys.tile(t).halted())
                halted_at[t] = sim.numCycles();
        }
    }
    sim.cycle(500);

    auto expect = expectedMvmult(w);
    for (int t = 0; t < sys.numTiles(); ++t) {
        bool ok = true;
        uint32_t base = w.out_addr + static_cast<uint32_t>(t) * n * 4;
        for (int r = 0; r < n; ++r) {
            ok &= sys.memNode().readWord(
                      base + static_cast<uint32_t>(r) * 4) ==
                  expect[r];
        }
        std::printf("tile %d <%s,%s,%s>: halted at cycle %8llu, "
                    "results %s\n",
                    t, levelName(levels[t][0]), levelName(levels[t][1]),
                    levelName(levels[t][2]),
                    static_cast<unsigned long long>(halted_at[t]),
                    ok ? "OK" : "WRONG");
    }
    std::printf("\nmemory node served %llu requests over the "
                "network\n",
                static_cast<unsigned long long>(
                    sys.memNode().numRequests()));
    if (scope) {
        if (profile_json)
            std::printf("\n%s\n", scope->jsonSnapshot().c_str());
        else
            std::printf("\n%s", scope->report().c_str());
        scope->detach();
    }
    return 0;
}
