/**
 * @file
 * SimServer command-line client.
 *
 * Usage: sim_client [--connect=/tmp/cmtl-sim.sock] <verb> [options]
 *
 * Verbs:
 *   hello                     version handshake only (liveness probe)
 *   submit [spec flags] [--detach] [--wait]
 *                             enqueue one job; --wait blocks for and
 *                             prints the result line
 *   status [--job=N]          one job or the whole table
 *   result --job=N            block until terminal, print result line
 *   cancel --job=N
 *   sweep  [spec flags] --inject=0.1,0.2,0.3 --backends=a,b
 *                             batched grid fan-out; per-point lines
 *                             stream in completion order
 *   shutdown                  stop the daemon
 *   oneshot [spec flags]      run the identical spec locally, no
 *                             daemon (the digest cross-check baseline)
 *
 * Spec flags: --design=mesh --level=fl|cl|clspec|rtl --backend=<b>
 *   --threads=N --cycles=N --inject=R (rate in [0,1]; comma list for
 *   sweep) --seed=N --nrouters=N --profile
 *
 * --json prints raw reply frames instead of formatted lines. Result
 * lines carry `digest=<16 hex digits>` so scripts can compare a
 * server run against a one-shot run byte-for-byte.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/server.h"

using namespace cmtl::server;

namespace {

struct Args
{
    std::string socket = "/tmp/cmtl-sim.sock";
    std::string verb;
    bool json = false;
    bool detach = false;
    bool wait = false;
    std::vector<std::pair<std::string, std::string>> flags;

    const std::string *flag(const std::string &name) const
    {
        for (const auto &kv : flags)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    }
};

int
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--connect=path] "
                 "hello|submit|status|result|cancel|sweep|shutdown|"
                 "oneshot [options]\n",
                 prog);
    return 2;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strncmp(arg, "--", 2)) {
            const char *eq = std::strchr(arg, '=');
            std::string name = eq ? std::string(arg + 2, eq - arg - 2)
                                  : std::string(arg + 2);
            std::string value = eq ? eq + 1 : "";
            if (name == "connect")
                args.socket = value;
            else if (name == "json")
                args.json = true;
            else if (name == "detach")
                args.detach = true;
            else if (name == "wait")
                args.wait = true;
            else
                args.flags.emplace_back(name, value);
        } else if (args.verb.empty()) {
            args.verb = arg;
        } else {
            std::fprintf(stderr, "sim_client: stray argument '%s'\n",
                         arg);
            std::exit(2);
        }
    }
    return args;
}

/** Split "0.1,0.2,0.3" into its comma-separated pieces. */
std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Copy the spec flags a verb shares with the server into @p req. */
void
fillSpec(const Args &args, Json &req)
{
    if (const std::string *v = args.flag("design"))
        req.set("design", Json::string(*v));
    if (const std::string *v = args.flag("level"))
        req.set("level", Json::string(*v));
    if (const std::string *v = args.flag("backend"))
        req.set("backend", Json::string(*v));
    if (const std::string *v = args.flag("threads"))
        req.set("threads", Json::number(std::atoi(v->c_str())));
    if (const std::string *v = args.flag("cycles"))
        req.set("cycles",
                Json::number(static_cast<uint64_t>(
                    std::strtoull(v->c_str(), nullptr, 10))));
    if (const std::string *v = args.flag("seed"))
        req.set("seed",
                Json::number(static_cast<uint64_t>(
                    std::strtoull(v->c_str(), nullptr, 10))));
    if (const std::string *v = args.flag("nrouters"))
        req.set("nrouters", Json::number(std::atoi(v->c_str())));
    if (args.flag("profile"))
        req.set("profile", Json::boolean(true));
    if (const std::string *v = args.flag("inject")) {
        std::vector<std::string> parts = splitList(*v);
        if (parts.size() == 1) {
            req.set("injection",
                    Json::number(std::atof(parts[0].c_str())));
        } else {
            Json arr = Json::array();
            for (const std::string &p : parts)
                arr.push(Json::number(std::atof(p.c_str())));
            req.set("injections", std::move(arr));
        }
    }
}

/** The grep-friendly one-line form of a job/point reply. */
void
printJobLine(const char *prefix, const Json &reply)
{
    std::printf("%s job=%d state=%s design=%s backend=%s threads=%d "
                "injection=%.4f cycle=%llu",
                prefix, reply.find("job") ? reply.find("job")->asInt(-1)
                                          : -1,
                reply.find("state") ? reply.find("state")->asStr().c_str()
                                    : "?",
                reply.find("design")
                    ? reply.find("design")->asStr().c_str()
                    : "?",
                reply.find("backend")
                    ? reply.find("backend")->asStr().c_str()
                    : "?",
                reply.find("threads") ? reply.find("threads")->asInt(1)
                                      : 1,
                reply.find("injection")
                    ? reply.find("injection")->asNum()
                    : 0.0,
                static_cast<unsigned long long>(
                    reply.find("cycle") ? reply.find("cycle")->asU64()
                                        : 0));
    if (const Json *v = reply.find("digest"))
        std::printf(" digest=%s", v->asStr().c_str());
    if (const Json *v = reply.find("wall_ms"))
        std::printf(" wall_ms=%.2f", v->asNum());
    if (const Json *v = reply.find("preemptions"))
        if (v->asInt() > 0)
            std::printf(" preemptions=%d", v->asInt());
    if (const Json *v = reply.find("error"))
        std::printf(" error=\"%s\"", v->asStr().c_str());
    std::printf("\n");
}

/** Print an error reply and return the exit code for it. */
int
failFrom(const Json &reply)
{
    const Json *err = reply.find("error");
    std::fprintf(stderr, "sim_client: %s\n",
                 err ? err->asStr().c_str() : "request failed");
    return 1;
}

int
runOneshot(const Args &args)
{
    // Build the identical spec the server would and run it in-process:
    // the baseline half of the server-vs-oneshot digest cross-check.
    Json req = Json::object();
    fillSpec(args, req);
    JobSpec spec;
    std::string error;
    if (!specFromJson(req, &spec, &error)) {
        std::fprintf(stderr, "sim_client: %s\n", error.c_str());
        return 1;
    }
    try {
        JobResult res = runOneShot(spec, defaultCorpusFactory());
        std::printf("oneshot state=done design=%s backend=%s "
                    "threads=%d injection=%.4f cycle=%llu digest=%s "
                    "wall_ms=%.2f\n",
                    spec.design.c_str(), res.backend.c_str(),
                    spec.cfg.threads, spec.injection,
                    static_cast<unsigned long long>(res.cycles),
                    hexU64(res.digest).c_str(), res.wall_ms);
        if (spec.profile && !res.metrics_json.empty())
            std::printf("%s\n", res.metrics_json.c_str());
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "sim_client: %s\n", e.what());
        return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Args args = parseArgs(argc, argv);
    if (args.verb.empty())
        return usage(argv[0]);

    if (args.verb == "oneshot")
        return runOneshot(args);

    ProtoClient client;
    try {
        client.connect(args.socket);
    } catch (const ProtoError &e) {
        std::fprintf(stderr, "sim_client: %s: %s\n",
                     args.socket.c_str(), e.what());
        return 1;
    }

    try {
        if (args.verb == "hello") {
            Json req = Json::object();
            req.set("verb", Json::string("hello"));
            req.set("version", Json::number(static_cast<uint64_t>(kProtoVersion)));
            Json reply = client.call(req);
            if (args.json)
                std::printf("%s\n", reply.encode().c_str());
            else
                std::printf("server %s protocol %d\n",
                            reply.find("server")
                                ? reply.find("server")->asStr().c_str()
                                : "?",
                            reply.find("version")
                                ? reply.find("version")->asInt()
                                : 0);
            return 0;
        }
        if (args.verb == "submit") {
            Json req = Json::object();
            req.set("verb", Json::string("submit"));
            fillSpec(args, req);
            if (args.detach)
                req.set("detach", Json::boolean(true));
            Json reply = client.call(req);
            if (args.json)
                std::printf("%s\n", reply.encode().c_str());
            if (!reply.find("ok") || !reply.find("ok")->b)
                return failFrom(reply);
            int id = reply.find("job")->asInt(-1);
            if (!args.json)
                std::printf("submitted job=%d\n", id);
            if (!args.wait)
                return 0;
            Json res_req = Json::object();
            res_req.set("verb", Json::string("result"));
            res_req.set("job", Json::number(id));
            Json res = client.call(res_req);
            if (args.json)
                std::printf("%s\n", res.encode().c_str());
            else
                printJobLine("result", res);
            return res.find("ok") && res.find("ok")->b ? 0 : 1;
        }
        if (args.verb == "status") {
            Json req = Json::object();
            req.set("verb", Json::string("status"));
            if (const std::string *v = args.flag("job"))
                req.set("job", Json::number(std::atoi(v->c_str())));
            Json reply = client.call(req);
            if (args.json) {
                std::printf("%s\n", reply.encode().c_str());
                return reply.find("ok") && reply.find("ok")->b ? 0 : 1;
            }
            if (!reply.find("ok") || !reply.find("ok")->b)
                return failFrom(reply);
            const Json *jobs = reply.find("jobs");
            for (const Json &job : jobs->arr)
                printJobLine("status", job);
            return 0;
        }
        if (args.verb == "result" || args.verb == "cancel") {
            const std::string *jv = args.flag("job");
            if (!jv) {
                std::fprintf(stderr, "sim_client: %s wants --job=N\n",
                             args.verb.c_str());
                return 2;
            }
            Json req = Json::object();
            req.set("verb", Json::string(args.verb));
            req.set("job", Json::number(std::atoi(jv->c_str())));
            Json reply = client.call(req);
            if (args.json) {
                std::printf("%s\n", reply.encode().c_str());
                return reply.find("ok") && reply.find("ok")->b ? 0 : 1;
            }
            if (args.verb == "cancel") {
                if (!reply.find("ok") || !reply.find("ok")->b)
                    return failFrom(reply);
                std::printf("cancelled job=%s\n", jv->c_str());
                return 0;
            }
            printJobLine("result", reply);
            return reply.find("ok") && reply.find("ok")->b ? 0 : 1;
        }
        if (args.verb == "sweep") {
            Json req = Json::object();
            req.set("verb", Json::string("sweep"));
            fillSpec(args, req);
            if (const std::string *v = args.flag("backends")) {
                Json arr = Json::array();
                for (const std::string &b : splitList(*v))
                    arr.push(Json::string(b));
                req.set("backends", std::move(arr));
            }
            client.send(req);
            // Header, then one frame per point in completion order,
            // then the sweep_done trailer.
            int failed = 0;
            for (;;) {
                Json frame = client.readReply();
                if (args.json)
                    std::printf("%s\n", frame.encode().c_str());
                if (frame.find("sweep_done")) {
                    if (!args.json)
                        std::printf(
                            "sweep done: %d points, %d preemptions\n",
                            frame.find("points")
                                ? frame.find("points")->asInt()
                                : 0,
                            frame.find("preemptions")
                                ? frame.find("preemptions")->asInt()
                                : 0);
                    break;
                }
                if (frame.find("sweep")) {
                    if (!args.json)
                        std::printf("sweep of %d points started\n",
                                    frame.find("points")
                                        ? frame.find("points")->asInt()
                                        : 0);
                    continue;
                }
                if (!frame.find("ok") || !frame.find("ok")->b) {
                    if (!frame.find("job"))
                        return failFrom(frame);
                    ++failed;
                }
                if (!args.json)
                    printJobLine("point", frame);
            }
            return failed ? 1 : 0;
        }
        if (args.verb == "shutdown") {
            Json req = Json::object();
            req.set("verb", Json::string("shutdown"));
            Json reply = client.call(req);
            if (args.json)
                std::printf("%s\n", reply.encode().c_str());
            else
                std::printf("server stopping\n");
            return 0;
        }
    } catch (const ProtoError &e) {
        std::fprintf(stderr, "sim_client: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
