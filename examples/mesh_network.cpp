/**
 * @file
 * The paper's Section III-D case study as a runnable program.
 *
 * Sweeps offered load on a mesh network at a chosen abstraction level
 * and prints the latency/throughput curve, demonstrating how one
 * test harness drives FL, CL and RTL implementations interchangeably.
 * Also dumps a short VCD waveform of the RTL mesh.
 *
 * Usage: mesh_network [fl|cl|clspec|rtl] [nrouters]
 *                     [--backend=<b>] [--threads N] [--profile[=json]]
 *
 * --backend selects the execution backend by its canonical name
 * (interp, optinterp, bytecode, cpp-block, cpp-design, ...); the
 * default is the plain arena interpreter. With --threads N > 1 the
 * sweep runs on the parallel ParSim kernel (bit-identical to the
 * sequential one) and prints its partition report. With --profile a
 * SimScope-instrumented run follows the sweep and prints the
 * hot-block ranking, phase timing and val/rdy channel stats;
 * --profile=json emits the machine-readable snapshot as the last
 * line of output instead.
 */

#include <cstdio>

#include "core/psim.h"
#include "core/scope.h"
#include "core/sim.h"
#include "core/stats.h"
#include "core/vcd.h"
#include "net/traffic.h"
#include "stdlib/options.h"

using namespace cmtl;
using namespace cmtl::net;
using cmtl::stdlib::SimOptions;

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    NetLevel level = opts.level == "fl"       ? NetLevel::FL
                     : opts.level == "clspec" ? NetLevel::CLSpec
                     : opts.level == "rtl"    ? NetLevel::RTL
                                              : NetLevel::CL;
    int nrouters = opts.intArg(16);
    int threads = opts.threads;
    bool profile = opts.profile, profile_json = opts.profile_json;
    const SimConfig &cfg = opts.cfg;

    std::printf("%s mesh, %d routers, uniform random traffic, %d "
                "thread(s), backend %s\n\n",
                netLevelName(level), nrouters, threads,
                cfg.toString().c_str());
    std::printf("%9s %12s %12s\n", "injection", "avg latency",
                "throughput");
    bool reported = false;
    for (double inj : {0.02, 0.10, 0.20, 0.30, 0.40}) {
        auto top = std::make_unique<MeshTrafficTop>("top", level,
                                                    nrouters, 4, inj, 7);
        auto elab = top->elaborate();
        auto sim = makeSimulator(elab, cfg);
        sim->cycle(500);
        top->resetStats();
        sim->cycle(2000);
        std::printf("%8.0f%% %12.2f %11.1f%%\n", inj * 100,
                    top->stats().avgLatency(),
                    top->stats().throughput(nrouters) * 100);
        if (threads > 1 && !reported) {
            reported = true;
            std::printf("\n%s\n", simulatorReport(*sim).c_str());
        }
    }

    if (profile) {
        // Profiled run near saturation: hot blocks with hierarchical
        // paths, phase timing and every val/rdy channel in the design.
        auto ptop = std::make_unique<MeshTrafficTop>("top", level,
                                                     nrouters, 4, 0.30, 7);
        auto psim = makeSimulator(ptop->elaborate(), cfg);
        SimScope scope(*psim);
        int nchannels = scope.traceAllValRdy();
        psim->cycle(1000);
        if (profile_json) {
            // Machine-readable snapshot as the last line of output.
            std::printf("\n%s\n", scope.jsonSnapshot().c_str());
        } else {
            std::printf("\nprofile (injection 30%%, 1000 cycles, %d "
                        "channels traced):\n%s",
                        nchannels, scope.report().c_str());
        }
        scope.detach();
        return 0;
    }

    // Waveform dump of a short RTL run (viewable with gtkwave).
    std::printf("\ndumping mesh_network.vcd (RTL 2x2 mesh, 50 "
                "cycles)...\n");
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                2, 0.2, 3);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    VcdWriter vcd(sim, "mesh_network.vcd");
    sim.cycle(50);
    std::printf("done.\n");
    return 0;
}
