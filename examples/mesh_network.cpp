/**
 * @file
 * The paper's Section III-D case study as a runnable program.
 *
 * Sweeps offered load on a mesh network at a chosen abstraction level
 * and prints the latency/throughput curve, demonstrating how one
 * test harness drives FL, CL and RTL implementations interchangeably.
 * Also dumps a short VCD waveform of the RTL mesh.
 *
 * Usage: mesh_network [fl|cl|clspec|rtl] [nrouters]
 *                     [--backend=<b>] [--threads N] [--profile[=json]]
 *                     [--traffic=pattern] [--seed=N]
 *                     [--cycles=N] [--vcd=path] [--audit] [--dead-elim]
 *                     [--checkpoint=path[:N]] [--resume=path]
 *
 * --traffic picks the spatial/temporal traffic pattern (uniform,
 * tornado, hotspot, bit-complement, bursty; default uniform) and
 * --seed the RNG seed (default 7), so any curve in the output is
 * reproducible from its command line.
 *
 * --audit is a pure static mode: partition the design at the requested
 * thread count (at least 2) and run the race auditor over it, printing
 * the verdict and exiting nonzero on any violation — no simulation.
 * --dead-elim drops comb blocks that feed no observed sink from the
 * schedule and generated code; simulatorReport shows the elided count.
 *
 * --backend selects the execution backend by its canonical name
 * (interp, optinterp, bytecode, cpp-block, cpp-design, ...); the
 * default is the plain arena interpreter. With --threads N > 1 the
 * sweep runs on the parallel ParSim kernel (bit-identical to the
 * sequential one) and prints its partition report. With --profile a
 * SimScope-instrumented run follows the sweep and prints the
 * hot-block ranking, phase timing and val/rdy channel stats;
 * --profile=json emits the machine-readable snapshot as the last
 * line of output instead.
 *
 * With --checkpoint and/or --resume the program switches to a single
 * long fixed-seed run (30% injection) that periodically snapshots its
 * complete state and/or restores it: kill the run at any point and
 * resume from the latest checkpoint — on any backend or thread count —
 * and the final state digest is identical to the uninterrupted run's.
 */

#include <algorithm>
#include <cstdio>

#include "core/psim.h"
#include "core/race_audit.h"
#include "core/scope.h"
#include "core/sim.h"
#include "core/snap.h"
#include "core/stats.h"
#include "core/vcd.h"
#include "net/traffic.h"
#include "stdlib/options.h"

using namespace cmtl;
using namespace cmtl::net;
using cmtl::stdlib::SimOptions;

namespace {

/**
 * Checkpoint / crash-resume mode. The run is deterministic (fixed
 * seed), so the digest printed at the final cycle must match between
 * an uninterrupted run and any snapshot-resumed continuation.
 */
int
runCheckpointMode(const SimOptions &opts, NetLevel level, int nrouters,
                  uint64_t seed, TrafficPattern pattern)
{
    uint64_t cycles = opts.cycles ? opts.cycles : 8000;
    auto top = std::make_unique<MeshTrafficTop>("top", level, nrouters,
                                                4, 0.30, seed, pattern);
    auto elab = top->elaborate();
    auto sim = makeSimulator(elab, opts.cfg);

    if (!opts.resume.empty()) {
        SimSnapshot snap = snapLoadFile(opts.resume);
        snapRestore(*sim, snap);
        std::printf("resumed %s at cycle %llu (digest %016llx)\n",
                    opts.resume.c_str(),
                    static_cast<unsigned long long>(snap.cycle),
                    static_cast<unsigned long long>(snap.digest()));
    }

    // Attach the waveform writer after any restore so its initial
    // dump (and timestamps) continue the original waveform exactly.
    std::unique_ptr<VcdWriter> vcd;
    if (!opts.vcd.empty())
        vcd = std::make_unique<VcdWriter>(*sim, opts.vcd);

    CheckpointManager ckpt(opts.checkpoint_path, opts.checkpoint_every);
    if (!opts.checkpoint_path.empty()) {
        ckpt.attach(*sim);
        std::printf("checkpointing to %s every %llu cycles\n",
                    ckpt.path().c_str(),
                    static_cast<unsigned long long>(ckpt.everyCycles()));
    }

    while (sim->numCycles() < cycles)
        sim->cycle();

    std::printf("cycle %llu state digest %016llx\n",
                static_cast<unsigned long long>(sim->numCycles()),
                static_cast<unsigned long long>(stateDigest(*sim)));
    std::printf("generated %llu injected %llu received %llu "
                "avg latency %.2f\n",
                static_cast<unsigned long long>(top->stats().generated),
                static_cast<unsigned long long>(top->stats().injected),
                static_cast<unsigned long long>(top->stats().received),
                top->stats().avgLatency());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);
    NetLevel level = opts.level == "fl"       ? NetLevel::FL
                     : opts.level == "clspec" ? NetLevel::CLSpec
                     : opts.level == "rtl"    ? NetLevel::RTL
                                              : NetLevel::CL;
    int nrouters = opts.intArg(16);
    uint64_t seed = opts.seed_set ? opts.seed : 7;
    TrafficPattern pattern = TrafficPattern::Uniform;
    if (!opts.traffic.empty() &&
        !trafficPatternFromName(opts.traffic, &pattern)) {
        std::fprintf(stderr,
                     "%s: unknown traffic pattern '%s' (uniform | "
                     "tornado | hotspot | bit-complement | bursty)\n",
                     argv[0], opts.traffic.c_str());
        return 2;
    }

    if (!opts.checkpoint_path.empty() || !opts.resume.empty()) {
        try {
            return runCheckpointMode(opts, level, nrouters, seed,
                                     pattern);
        } catch (const SnapError &e) {
            std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
            return 1;
        }
    }
    int threads = opts.threads;
    bool profile = opts.profile, profile_json = opts.profile_json;
    const SimConfig &cfg = opts.cfg;

    if (opts.audit) {
        // Static mode: prove the partition invariants that make the
        // BSP schedule race-free, without simulating a cycle.
        auto top = std::make_unique<MeshTrafficTop>("top", level,
                                                    nrouters, 4, 0.30,
                                                    seed, pattern);
        auto elab = top->elaborate();
        int nislands = std::max(threads, 2);
        RaceAuditReport report =
            auditPartition(*elab, partitionDesign(*elab, nislands));
        std::printf("%s mesh, %d routers, %d islands\n%s",
                    netLevelName(level), nrouters, nislands,
                    report.format().c_str());
        return report.ok() ? 0 : 1;
    }

    std::printf("%s mesh, %d routers, %s traffic (seed %llu), %d "
                "thread(s), backend %s\n\n",
                netLevelName(level), nrouters,
                trafficPatternName(pattern),
                static_cast<unsigned long long>(seed), threads,
                cfg.toString().c_str());
    std::printf("%9s %12s %12s\n", "injection", "avg latency",
                "throughput");
    bool reported = false;
    for (double inj : {0.02, 0.10, 0.20, 0.30, 0.40}) {
        auto top = std::make_unique<MeshTrafficTop>(
            "top", level, nrouters, 4, inj, seed, pattern);
        auto elab = top->elaborate();
        auto sim = makeSimulator(elab, cfg);
        sim->cycle(500);
        top->resetStats();
        sim->cycle(2000);
        std::printf("%8.0f%% %12.2f %11.1f%%\n", inj * 100,
                    top->stats().avgLatency(),
                    top->stats().throughput(nrouters) * 100);
        if (threads > 1 && !reported) {
            reported = true;
            std::printf("\n%s\n", simulatorReport(*sim).c_str());
        }
    }

    if (profile) {
        // Profiled run near saturation: hot blocks with hierarchical
        // paths, phase timing and every val/rdy channel in the design.
        auto ptop = std::make_unique<MeshTrafficTop>(
            "top", level, nrouters, 4, 0.30, seed, pattern);
        auto psim = makeSimulator(ptop->elaborate(), cfg);
        SimScope scope(*psim);
        int nchannels = scope.traceAllValRdy();
        psim->cycle(1000);
        if (profile_json) {
            // Machine-readable snapshot as the last line of output.
            std::printf("\n%s\n", scope.jsonSnapshot().c_str());
        } else {
            std::printf("\nprofile (injection 30%%, 1000 cycles, %d "
                        "channels traced):\n%s",
                        nchannels, scope.report().c_str());
        }
        scope.detach();
        return 0;
    }

    // Waveform dump of a short RTL run (viewable with gtkwave).
    // --vcd overrides the artifact path; the default lands in the
    // current directory (the build tree when run from there), and
    // *.vcd is gitignored either way.
    std::string vcd_path =
        opts.vcd.empty() ? "mesh_network.vcd" : opts.vcd;
    std::printf("\ndumping %s (RTL 2x2 mesh, 50 cycles)...\n",
                vcd_path.c_str());
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                2, 0.2, 3);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    VcdWriter vcd(sim, vcd_path);
    sim.cycle(50);
    std::printf("done.\n");
    return 0;
}
