/**
 * @file
 * The paper's Section III-D case study as a runnable program.
 *
 * Sweeps offered load on a mesh network at a chosen abstraction level
 * and prints the latency/throughput curve, demonstrating how one
 * test harness drives FL, CL and RTL implementations interchangeably.
 * Also dumps a short VCD waveform of the RTL mesh.
 *
 * Usage: mesh_network [fl|cl|clspec|rtl] [nrouters]
 */

#include <cstdio>
#include <cstring>

#include "core/sim.h"
#include "core/vcd.h"
#include "net/traffic.h"

using namespace cmtl;
using namespace cmtl::net;

int
main(int argc, char **argv)
{
    NetLevel level = NetLevel::CL;
    if (argc >= 2) {
        if (!std::strcmp(argv[1], "fl"))
            level = NetLevel::FL;
        else if (!std::strcmp(argv[1], "clspec"))
            level = NetLevel::CLSpec;
        else if (!std::strcmp(argv[1], "rtl"))
            level = NetLevel::RTL;
    }
    int nrouters = argc >= 3 ? std::atoi(argv[2]) : 16;

    std::printf("%s mesh, %d routers, uniform random traffic\n\n",
                netLevelName(level), nrouters);
    std::printf("%9s %12s %12s\n", "injection", "avg latency",
                "throughput");
    for (double inj : {0.02, 0.10, 0.20, 0.30, 0.40}) {
        auto top = std::make_unique<MeshTrafficTop>("top", level,
                                                    nrouters, 4, inj, 7);
        auto elab = top->elaborate();
        SimulationTool sim(elab);
        sim.cycle(500);
        top->resetStats();
        sim.cycle(2000);
        std::printf("%8.0f%% %12.2f %11.1f%%\n", inj * 100,
                    top->stats().avgLatency(),
                    top->stats().throughput(nrouters) * 100);
    }

    // Waveform dump of a short RTL run (viewable with gtkwave).
    std::printf("\ndumping mesh_network.vcd (RTL 2x2 mesh, 50 "
                "cycles)...\n");
    auto top = std::make_unique<MeshTrafficTop>("top", NetLevel::RTL, 4,
                                                2, 0.2, 3);
    auto elab = top->elaborate();
    SimulationTool sim(elab);
    VcdWriter vcd(sim, "mesh_network.vcd");
    sim.cycle(50);
    std::printf("done.\n");
    return 0;
}
