/**
 * @file
 * The paper's Section III-C case study as a runnable program.
 *
 * Builds the accelerator-augmented compute tile at a chosen mix of
 * abstraction levels, runs the matrix-vector-multiply workload in
 * scalar and accelerated form, verifies the results against the
 * golden ISS, and reports simulated cycles — demonstrating both
 * multi-level composition and the accelerator's speedup.
 *
 * Usage: dotproduct_accelerator [P C A]  where each of P/C/A is
 *        fl|cl|rtl (default: cl cl cl)
 */

#include <cstdio>
#include <cstring>

#include "core/sim.h"
#include "tile/programs.h"
#include "tile/tile.h"

using namespace cmtl;
using namespace cmtl::tile;

namespace {

Level
parseLevel(const char *text)
{
    if (!std::strcmp(text, "fl"))
        return Level::FL;
    if (!std::strcmp(text, "rtl"))
        return Level::RTL;
    return Level::CL;
}

uint64_t
run(Level p, Level c, Level a, const Workload &w, bool trace)
{
    auto t = std::make_unique<Tile>("tile", p, c, a);
    t->loadProgram(w.image);
    loadMvmultData(t->mem(), w);
    auto elab = t->elaborate();
    SimulationTool sim(elab);
    sim.reset();
    uint64_t cycles = 0;
    while (!t->halted() && cycles < 10000000) {
        sim.cycle();
        ++cycles;
        if (trace && cycles <= 40)
            std::printf("%4llu: %s\n",
                        static_cast<unsigned long long>(cycles),
                        sim.lineTrace().c_str());
    }
    sim.cycle(100); // drain stores

    auto expect = expectedMvmult(w);
    for (int r = 0; r < w.n; ++r) {
        uint32_t got =
            t->mem().readWord(w.out_addr + static_cast<uint32_t>(r) * 4);
        if (got != expect[r]) {
            std::printf("MISMATCH row %d: got %u expected %u\n", r, got,
                        expect[r]);
            return 0;
        }
    }
    return cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    Level p = Level::CL, c = Level::CL, a = Level::CL;
    if (argc >= 4) {
        p = parseLevel(argv[1]);
        c = parseLevel(argv[2]);
        a = parseLevel(argv[3]);
    }
    const int n = 16;

    std::printf("tile <%s,%s,%s>, %dx%d matrix-vector multiply\n\n",
                levelName(p), levelName(c), levelName(a), n, n);

    std::printf("--- first cycles of the accelerated run (line trace) "
                "---\n");
    Workload accel = makeMvmultAccel(n);
    uint64_t accel_cycles = run(p, c, a, accel, /*trace=*/true);

    Workload scalar = makeMvmultScalar(n, 4);
    uint64_t scalar_cycles = run(p, c, a, scalar, /*trace=*/false);

    std::printf("\nresults verified against the golden ISS.\n");
    std::printf("scalar (unrolled x4): %8llu cycles\n",
                static_cast<unsigned long long>(scalar_cycles));
    std::printf("accelerated:          %8llu cycles\n",
                static_cast<unsigned long long>(accel_cycles));
    if (accel_cycles)
        std::printf("accelerator speedup:  %8.2fx\n",
                    static_cast<double>(scalar_cycles) / accel_cycles);
    return 0;
}
