/**
 * @file
 * SimServer daemon: a long-lived simulation service.
 *
 * Binds a Unix-domain socket, elaborates designs from the registered
 * corpus on demand, and schedules client jobs over a bounded thread
 * budget with SimSnap-backed preemption. One resident process keeps
 * the SimJIT cache warm across jobs, so a parameter sweep pays one
 * compile instead of one per point.
 *
 * Usage: sim_server [--listen=/tmp/cmtl-sim.sock] [--jobs=N]
 *                   [--backend=<b>]
 *
 * --listen   socket path to bind (default /tmp/cmtl-sim.sock)
 * --jobs     concurrent-job thread budget (default 2); a job asking
 *            for --threads T draws min(T, jobs) units
 * --backend  prewarm this backend at startup: the daemon runs one
 *            tiny job per design so the first client request never
 *            pays a cold JIT compile
 *
 * Stop with SIGINT/SIGTERM or the client's shutdown verb:
 * `sim_client shutdown`.
 */

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "server/server.h"
#include "stdlib/options.h"

using cmtl::server::ServerConfig;
using cmtl::server::SimServer;
using cmtl::stdlib::SimOptions;

int
main(int argc, char **argv)
{
    SimOptions opts = SimOptions::parse(argc, argv);

    ServerConfig cfg;
    if (!opts.listen.empty())
        cfg.socket_path = opts.listen;
    if (opts.jobs > 0)
        cfg.jobs = opts.jobs;
    if (opts.backend_set)
        cfg.prewarm_backend = opts.cfg.toString();

    SimServer server(cfg);
    server.registerDefaultCorpus();

    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        return 1;
    }
    std::printf("sim_server: listening on %s (jobs=%d, queue=%d%s%s)\n",
                cfg.socket_path.c_str(), cfg.jobs, cfg.queue_cap,
                cfg.prewarm_backend.empty() ? "" : ", prewarm=",
                cfg.prewarm_backend.c_str());
    std::fflush(stdout);

    // Signals are consumed by a dedicated sigwait thread: handlers
    // can't safely take the locks stop() needs.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    std::thread sig_thread([&] {
        int sig = 0;
        sigwait(&set, &sig);
        server.stop();
    });

    server.wait();
    server.stop();
    // A shutdown-verb exit leaves sigwait parked; send it the signal
    // it is waiting for (stop() is idempotent). raise() would target
    // this thread, where SIGTERM stays blocked forever — the signal
    // must be process-directed for sigwait to dequeue it.
    ::kill(::getpid(), SIGTERM);
    sig_thread.join();
    std::printf("sim_server: stopped\n");
    return 0;
}
