/**
 * @file
 * SimFuzz driver: differential fuzzing of the backend matrix from the
 * command line.
 *
 * Usage: fuzz_design [--seed=N] [--count=N] [--cycles=N]
 *                    [--matrix=quick|full] [--minimize]
 *                    [--inject=cycle:net:bit]
 *                    [--out=dir] [--replay=file...]
 *
 * Default mode generates --count designs starting at --seed (seed,
 * seed+1, ...), runs each through lint, the static race auditor and
 * the differential backend matrix against the boxed-interpreter
 * reference, and prints one summary line per case. Exit status is 0
 * when every case is clean, 1 on any divergence, lint error or race-
 * audit error. With --minimize every diverging case is auto-shrunk
 * and the minimal repro written to <out>/repro_seed<N>_<side>.fuzz
 * (out defaults to the current directory).
 *
 * --inject=<cycle>:<net>:<bit> plants a synthetic backend bug: every
 * matrix candidate flips the given bit of the given net (ordinal into
 * the elaborated net list, both taken modulo) at the end of the given
 * cycle. The detector must catch it, and with --minimize the shrinker
 * must reduce it — the end-to-end self-test of the pipeline (expect
 * exit 1).
 *
 * --replay=<file> replays corpus repro files (tests/data/fuzz_corpus/)
 * through the differential pair recorded in the file and checks the
 * recorded expectation; it may be given multiple times. Exit 0 when
 * every expectation holds.
 *
 * All output is a pure function of the flags: same command line, same
 * bytes.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/jit_cpp.h"
#include "fuzz/fuzz.h"
#include "stdlib/options.h"

using namespace cmtl;
using namespace cmtl::fuzz;
using cmtl::stdlib::SimOptions;

namespace {

/** "--name=value" tail, or nullptr when @p arg is a different flag. */
const char *
flagValue(const char *arg, const char *name)
{
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0 || arg[n] != '=')
        return nullptr;
    return arg + n + 1;
}

std::string
sideFileTag(const FuzzSide &side)
{
    std::string tag = side.backend + "_t" + std::to_string(side.threads) +
                      "_" + side.layout;
    if (!side.gating)
        tag += "_ungated";
    for (char &c : tag)
        if (c == '+' || c == '-')
            c = '_';
    return tag;
}

int
replayFiles(const std::vector<std::string> &files)
{
    FuzzRunner runner;
    bool have_compiler = CppJit::compilerAvailable();
    int failures = 0;
    for (const std::string &path : files) {
        FuzzSpec spec;
        try {
            spec = FuzzSpec::loadFile(path);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "fuzz_design: %s\n", e.what());
            return 2;
        }
        if ((spec.side_a.needsCompiler() || spec.side_b.needsCompiler()) &&
            !have_compiler) {
            std::printf("%s: SKIP (no host compiler)\n", path.c_str());
            continue;
        }
        FuzzRunner::PairOutcome outcome;
        bool pass = runner.replay(spec, &outcome);
        std::printf("%s: seed %llu [%s] vs [%s] -> %s",
                    path.c_str(),
                    static_cast<unsigned long long>(spec.seed),
                    spec.side_a.str().c_str(), spec.side_b.str().c_str(),
                    outcome.diverged
                        ? (outcome.vcd_only ? "diverged (vcd)" : "diverged")
                        : "agreed");
        if (outcome.diverged && !outcome.vcd_only)
            std::printf(" at cycle %llu",
                        static_cast<unsigned long long>(
                            outcome.first_cycle));
        std::printf(" -- %s\n", pass ? "expected" : "UNEXPECTED");
        if (!pass)
            ++failures;
    }
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the fuzz-specific flags, hand the rest to SimOptions (which
    // owns --seed/--cycles and rejects typos with exit 2).
    uint64_t count = 1;
    bool full = false;
    bool minimize = false;
    FuzzFault fault;
    std::string out_dir;
    std::vector<std::string> replays;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const char *v;
        if ((v = flagValue(argv[i], "--count"))) {
            char *end = nullptr;
            count = std::strtoull(v, &end, 10);
            if (*v == '\0' || end == nullptr || *end != '\0' ||
                count == 0) {
                std::fprintf(stderr,
                             "%s: --count wants a positive integer, "
                             "got '%s'\n",
                             argv[0], v);
                return 2;
            }
        } else if ((v = flagValue(argv[i], "--matrix"))) {
            if (!std::strcmp(v, "full")) {
                full = true;
            } else if (!std::strcmp(v, "quick")) {
                full = false;
            } else {
                std::fprintf(stderr,
                             "%s: --matrix wants quick or full, got "
                             "'%s'\n",
                             argv[0], v);
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--minimize")) {
            minimize = true;
        } else if ((v = flagValue(argv[i], "--inject"))) {
            unsigned long long fc = 0, fn = 0, fb = 0;
            if (std::sscanf(v, "%llu:%llu:%llu", &fc, &fn, &fb) != 3) {
                std::fprintf(stderr,
                             "%s: --inject wants cycle:net:bit, got "
                             "'%s'\n",
                             argv[0], v);
                return 2;
            }
            fault.active = true;
            fault.cycle = fc;
            fault.net_ordinal = static_cast<int>(fn);
            fault.bit = static_cast<int>(fb);
        } else if ((v = flagValue(argv[i], "--out"))) {
            out_dir = v;
            std::error_code ec;
            std::filesystem::create_directories(out_dir, ec);
        } else if ((v = flagValue(argv[i], "--replay"))) {
            replays.emplace_back(v);
        } else {
            rest.push_back(argv[i]);
        }
    }
    SimOptions opts =
        SimOptions::parse(static_cast<int>(rest.size()), rest.data());

    if (!replays.empty())
        return replayFiles(replays);

    uint64_t seed0 = opts.seed_set ? opts.seed : 1;
    uint64_t cycles = opts.cycles ? opts.cycles : 200;
    std::vector<FuzzSide> matrix = fuzzMatrix(full);

    FuzzRunner runner;
    FuzzShrinker shrinker(runner);
    int bad_cases = 0;
    int minimized = 0;
    for (uint64_t i = 0; i < count; ++i) {
        FuzzSpec spec;
        spec.seed = seed0 + i;
        spec.cycles = cycles;
        spec.fault = fault;
        FuzzCaseResult res = runner.runCase(spec, matrix);
        std::printf("%s\n", res.summary().c_str());
        for (const std::string &e : res.lint_errors)
            std::printf("  lint: %s\n", e.c_str());
        for (const std::string &e : res.audit_errors)
            std::printf("  race-audit: %s\n", e.c_str());
        if (!res.ok())
            ++bad_cases;
        for (const FuzzDivergence &d : res.divergences) {
            std::printf("  [%s] %s\n", d.side.str().c_str(),
                        d.detail.c_str());
            if (!minimize)
                continue;
            FuzzSpec pair = spec;
            pair.side_b = d.side;
            try {
                FuzzShrinkResult sr = shrinker.shrink(pair);
                std::string path =
                    (out_dir.empty() ? std::string()
                                     : out_dir + "/") +
                    "repro_seed" + std::to_string(spec.seed) + "_" +
                    sideFileTag(d.side) + ".fuzz";
                sr.spec.saveFile(path);
                ++minimized;
                std::printf("  minimized to %s (%d/%d removals kept, "
                            "%llu cycles, diverges at %llu)\n",
                            path.c_str(), sr.removed, sr.tried,
                            static_cast<unsigned long long>(
                                sr.spec.cycles),
                            static_cast<unsigned long long>(
                                sr.first_cycle));
            } catch (const std::exception &e) {
                std::printf("  minimize failed: %s\n", e.what());
            }
        }
    }
    std::printf("fuzz: %llu case(s), %d bad",
                static_cast<unsigned long long>(count), bad_cases);
    if (minimize)
        std::printf(", %d repro(s) written", minimized);
    std::printf("\n");
    return bad_cases ? 1 : 0;
}
