/**
 * @file
 * Hardware generation: translate the RTL models to Verilog-2001.
 *
 * Exercises the paper's "path to EDA toolflows": every RTL component
 * of both case studies — the dot-product accelerator, the multicycle
 * processor, the L1 cache and a 2x2 mesh network — is elaborated and
 * translated into synthesizable Verilog source files in the current
 * directory, ready to hand to a synthesis flow.
 *
 * Usage: translate_verilog [output-dir]
 */

#include <cstdio>
#include <string>

#include "core/lint.h"
#include "core/translate.h"
#include "net/mesh.h"
#include "tile/cache.h"
#include "tile/dotprod.h"
#include "tile/proc.h"

using namespace cmtl;

namespace {

void
emit(Model &model, const std::string &path)
{
    auto elab = model.elaborate();

    // Run the linter first, like a real generation flow would.
    auto issues = LintTool().run(*elab);
    int errors = 0;
    for (const auto &issue : issues)
        errors += issue.severity == LintSeverity::Error;

    std::string source = TranslationTool().translateToFile(*elab, path);
    size_t lines = 1;
    for (char ch : source)
        lines += ch == '\n';
    std::printf("%-28s %6zu lines, %2d lint errors, %2zu lint "
                "warnings\n",
                path.c_str(), lines, errors, issues.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = argc >= 2 ? std::string(argv[1]) + "/" : "";

    {
        tile::DotProductRTL accel(nullptr, "accel");
        emit(accel, dir + "dotproduct_rtl.v");
    }
    {
        tile::ProcRTL proc(nullptr, "proc");
        emit(proc, dir + "proc_rtl.v");
    }
    {
        tile::CacheRTL cache(nullptr, "cache", 64);
        emit(cache, dir + "cache_rtl.v");
    }
    {
        net::MeshNetworkRTL mesh(nullptr, "mesh", 4, 16, 16, 2);
        emit(mesh, dir + "mesh2x2_rtl.v");
    }
    std::printf("\nVerilog written; feed these to your EDA flow "
                "(paper Figure 5b).\n");
    return 0;
}
