/**
 * @file
 * Static analysis: lint every case-study design before simulating it.
 *
 * The paper's model/tool split means one elaborated design can feed
 * many tools; this example feeds it to the expanded LintTool, which
 * layers the IR static analyzer (latch inference, read ordering,
 * width/range checks, dead-logic detection, blocking/non-blocking
 * misuse) on top of the structural net checks — bad designs fail at
 * elaboration time, not after a million simulated cycles.
 *
 * Usage: lint_design [--errors-only]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/lint.h"
#include "net/mesh.h"
#include "tile/tile.h"

using namespace cmtl;

namespace {

int total_errors = 0;
int total_warnings = 0;

void
lint(Model &model, const std::string &label, bool errors_only)
{
    auto elab = model.elaborate();

    LintTool linter;
    if (errors_only) {
        // The per-check suppression API: silence the warning-level
        // checks and keep only hard errors.
        for (const AnalyzeCheck &check : analyzeCheckCatalog()) {
            if (check.severity == LintSeverity::Warning)
                linter.suppress(check.id);
        }
        linter.suppress("undriven-net").suppress("unread-net");
    }

    auto issues = linter.run(*elab);
    int errors = 0, warnings = 0;
    for (const auto &issue : issues) {
        if (issue.severity == LintSeverity::Error)
            ++errors;
        else
            ++warnings;
    }
    total_errors += errors;
    total_warnings += warnings;

    std::printf("-- %-34s %3zu models, %4zu nets, %3zu blocks: "
                "%d error(s), %d warning(s)\n",
                label.c_str(), elab->models.size(), elab->nets.size(),
                elab->blocks.size(), errors, warnings);
    if (!issues.empty())
        std::fputs(LintTool::format(issues).c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    bool errors_only =
        argc > 1 && std::strcmp(argv[1], "--errors-only") == 0;

    std::printf("CMTL static analysis — check catalog:\n");
    for (const AnalyzeCheck &check : analyzeCheckCatalog()) {
        std::printf("  %-24s %-7s %s\n", check.id,
                    check.severity == LintSeverity::Error ? "error"
                                                          : "warning",
                    check.summary);
    }
    std::printf("\n");

    {
        tile::Tile t("tile_fl", tile::Level::FL, tile::Level::FL,
                     tile::Level::FL);
        lint(t, "tile FL/FL/FL", errors_only);
    }
    {
        tile::Tile t("tile_cl", tile::Level::CL, tile::Level::CL,
                     tile::Level::CL);
        lint(t, "tile CL/CL/CL", errors_only);
    }
    {
        tile::Tile t("tile_rtl", tile::Level::RTL, tile::Level::RTL,
                     tile::Level::RTL);
        lint(t, "tile RTL/RTL/RTL", errors_only);
    }
    {
        net::MeshNetworkRTL mesh(nullptr, "mesh2x2", 4, 16, 16, 2);
        lint(mesh, "mesh 2x2 RTL", errors_only);
    }
    {
        net::MeshNetworkRTL mesh(nullptr, "mesh8x8", 64, 64, 32, 2);
        lint(mesh, "mesh 8x8 RTL", errors_only);
    }

    std::printf("\ntotal: %d error(s), %d warning(s)\n", total_errors,
                total_warnings);
    return total_errors == 0 ? 0 : 1;
}
