/**
 * @file
 * Static analysis: lint and audit every case-study design before
 * simulating it.
 *
 * The paper's model/tool split means one elaborated design can feed
 * many tools; this example feeds it to the expanded LintTool, which
 * layers the whole-design dataflow clients (dead-logic liveness,
 * X-propagation) and the IR static analyzer (latch inference, read
 * ordering, width/range checks, blocking/non-blocking misuse) on top
 * of the structural net checks — bad designs fail at elaboration time,
 * not after a million simulated cycles.
 *
 * Usage: lint_design [--errors-only] [--lint=json] [--audit]
 *
 *   --errors-only  suppress warning-level checks, keep hard errors
 *   --lint=json    machine-readable output: one JSON object per line
 *                  (check id, severity, hierarchical path, message),
 *                  nothing else on stdout — pipe into jq or diff
 *                  against a checked-in baseline in CI
 *   --audit        additionally run the static ParSim race auditor on
 *                  every design x threads {2,4}; any violation makes
 *                  the exit status nonzero
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/lint.h"
#include "core/partition.h"
#include "core/race_audit.h"
#include "net/mesh.h"
#include "tile/tile.h"

using namespace cmtl;

namespace {

int total_errors = 0;
int total_warnings = 0;
int audit_failures = 0;

struct Mode
{
    bool errors_only = false;
    bool json = false;
    bool audit = false;
};

void
runAudit(const Elaboration &elab, const std::string &label, bool json)
{
    for (int threads : {2, 4}) {
        std::string tag = label + " x" + std::to_string(threads);
        try {
            PartitionPlan plan = partitionDesign(elab, threads);
            RaceAuditReport report = auditPartition(elab, plan);
            if (!report.ok()) {
                audit_failures +=
                    static_cast<int>(report.issues.size());
                if (json) {
                    std::fputs(LintTool::formatJson(
                                   report.toLintIssues())
                                   .c_str(),
                               stdout);
                } else {
                    std::printf("   %-31s %s", tag.c_str(),
                                report.format().c_str());
                }
            } else if (!json) {
                std::printf("   %-31s %s\n", tag.c_str(),
                            report.summary().c_str());
            }
        } catch (const std::exception &e) {
            // Unpartitionable designs (comb cycles) can never run on
            // ParSim, so there is no schedule to audit.
            if (!json)
                std::printf("   %-31s audit skipped: %s\n",
                            tag.c_str(), e.what());
        }
    }
}

void
lint(Model &model, const std::string &label, const Mode &mode)
{
    auto elab = model.elaborate();

    LintTool linter;
    if (mode.errors_only) {
        // The per-check suppression API: silence the warning-level
        // checks and keep only hard errors.
        for (const AnalyzeCheck &check : analyzeCheckCatalog()) {
            if (check.severity == LintSeverity::Warning)
                linter.suppress(check.id);
        }
        linter.suppress("undriven-net").suppress("unread-net");
    }

    auto issues = linter.run(*elab);
    int errors = 0, warnings = 0;
    for (const auto &issue : issues) {
        if (issue.severity == LintSeverity::Error)
            ++errors;
        else
            ++warnings;
    }
    total_errors += errors;
    total_warnings += warnings;

    if (mode.json) {
        std::fputs(LintTool::formatJson(issues).c_str(), stdout);
    } else {
        std::printf("-- %-34s %3zu models, %4zu nets, %3zu blocks: "
                    "%d error(s), %d warning(s)\n",
                    label.c_str(), elab->models.size(),
                    elab->nets.size(), elab->blocks.size(), errors,
                    warnings);
        if (!issues.empty())
            std::fputs(LintTool::format(issues).c_str(), stdout);
    }
    if (mode.audit)
        runAudit(*elab, label, mode.json);
}

} // namespace

int
main(int argc, char **argv)
{
    Mode mode;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--errors-only"))
            mode.errors_only = true;
        else if (!std::strcmp(argv[i], "--lint=json"))
            mode.json = true;
        else if (!std::strcmp(argv[i], "--audit"))
            mode.audit = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--errors-only] [--lint=json] "
                         "[--audit]\n",
                         argv[0]);
            return 2;
        }
    }

    if (!mode.json) {
        std::printf("CMTL static analysis — check catalog:\n");
        for (const AnalyzeCheck &check : analyzeCheckCatalog()) {
            std::printf("  %-24s %-7s %s\n", check.id,
                        check.severity == LintSeverity::Error
                            ? "error"
                            : "warning",
                        check.summary);
        }
        std::printf("\n");
    }

    {
        tile::Tile t("tile_fl", tile::Level::FL, tile::Level::FL,
                     tile::Level::FL);
        lint(t, "tile FL/FL/FL", mode);
    }
    {
        tile::Tile t("tile_cl", tile::Level::CL, tile::Level::CL,
                     tile::Level::CL);
        lint(t, "tile CL/CL/CL", mode);
    }
    {
        tile::Tile t("tile_rtl", tile::Level::RTL, tile::Level::RTL,
                     tile::Level::RTL);
        lint(t, "tile RTL/RTL/RTL", mode);
    }
    {
        net::MeshNetworkRTL mesh(nullptr, "mesh2x2", 4, 16, 16, 2);
        lint(mesh, "mesh 2x2 RTL", mode);
    }
    {
        net::MeshNetworkRTL mesh(nullptr, "mesh8x8", 64, 64, 32, 2);
        lint(mesh, "mesh 8x8 RTL", mode);
    }

    if (!mode.json) {
        std::printf("\ntotal: %d error(s), %d warning(s)\n",
                    total_errors, total_warnings);
        if (mode.audit)
            std::printf("audit: %s\n",
                        audit_failures == 0
                            ? "PASS"
                            : "FAIL — see violations above");
    }
    return (total_errors == 0 && audit_failures == 0) ? 0 : 1;
}
