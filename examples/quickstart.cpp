/**
 * @file
 * Quickstart: model, simulate, test and translate in fifty lines.
 *
 * Recreates the paper's Figure 2/4 flow: a parameterizable mux+register
 * built structurally from library components, simulated with the
 * SimulationTool, then translated to Verilog-2001 — all from one
 * program.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/sim.h"
#include "core/translate.h"
#include "stdlib/basic.h"

using namespace cmtl;

/** Figure 2's MuxReg: an n-way mux feeding a register. */
class MuxReg : public Model
{
  public:
    std::deque<InPort> in_;
    InPort sel;
    OutPort out;
    stdlib::Mux mux_;
    stdlib::Register reg_;

    MuxReg(const std::string &name, int nbits, int nports)
        : Model(nullptr, name), sel(this, "sel", bitsFor(nports)),
          out(this, "out", nbits), mux_(this, "mux", nbits, nports),
          reg_(this, "reg", nbits)
    {
        for (int i = 0; i < nports; ++i)
            in_.emplace_back(this, "in" + std::to_string(i), nbits);
        connect(sel, mux_.sel);
        for (int i = 0; i < nports; ++i)
            connect(in_[i], mux_.in_[i]);
        connect(mux_.out, reg_.in_);
        connect(reg_.out, out);
    }

    std::string typeName() const override { return "MuxReg"; }
};

int
main()
{
    // Elaborate a 8-bit, 4-way instance.
    MuxReg model("top", 8, 4);
    auto elab = model.elaborate();

    // Simulate: drive inputs, clock, check outputs (paper Figure 4).
    SimulationTool sim(elab);
    for (int i = 0; i < 4; ++i)
        model.in_[i].setValue(uint64_t(0xa0 + i));
    std::printf("cycle | sel | out\n");
    for (int i = 0; i < 4; ++i) {
        model.sel.setValue(uint64_t(i));
        sim.cycle();
        std::printf("%5llu | %3d | 0x%02llx\n",
                    static_cast<unsigned long long>(sim.numCycles()), i,
                    static_cast<unsigned long long>(model.out.u64()));
    }

    // Translate the same elaborated instance to Verilog.
    std::printf("\n--- generated Verilog "
                "--------------------------------\n%s",
                TranslationTool().translate(*elab).c_str());
    return 0;
}
