file(REMOVE_RECURSE
  "../bench/bench_sec3_accel"
  "../bench/bench_sec3_accel.pdb"
  "CMakeFiles/bench_sec3_accel.dir/bench_sec3_accel.cc.o"
  "CMakeFiles/bench_sec3_accel.dir/bench_sec3_accel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
