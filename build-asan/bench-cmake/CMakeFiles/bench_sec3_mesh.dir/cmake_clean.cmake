file(REMOVE_RECURSE
  "../bench/bench_sec3_mesh"
  "../bench/bench_sec3_mesh.pdb"
  "CMakeFiles/bench_sec3_mesh.dir/bench_sec3_mesh.cc.o"
  "CMakeFiles/bench_sec3_mesh.dir/bench_sec3_mesh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
