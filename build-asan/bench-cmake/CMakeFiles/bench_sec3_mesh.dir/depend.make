# Empty dependencies file for bench_sec3_mesh.
# This may be replaced when dependencies are built.
