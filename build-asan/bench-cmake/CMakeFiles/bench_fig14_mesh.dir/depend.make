# Empty dependencies file for bench_fig14_mesh.
# This may be replaced when dependencies are built.
