file(REMOVE_RECURSE
  "../bench/bench_fig14_mesh"
  "../bench/bench_fig14_mesh.pdb"
  "CMakeFiles/bench_fig14_mesh.dir/bench_fig14_mesh.cc.o"
  "CMakeFiles/bench_fig14_mesh.dir/bench_fig14_mesh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
