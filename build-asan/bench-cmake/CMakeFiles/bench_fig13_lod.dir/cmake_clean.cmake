file(REMOVE_RECURSE
  "../bench/bench_fig13_lod"
  "../bench/bench_fig13_lod.pdb"
  "CMakeFiles/bench_fig13_lod.dir/bench_fig13_lod.cc.o"
  "CMakeFiles/bench_fig13_lod.dir/bench_fig13_lod.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_lod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
