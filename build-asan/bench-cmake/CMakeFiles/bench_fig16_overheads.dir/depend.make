# Empty dependencies file for bench_fig16_overheads.
# This may be replaced when dependencies are built.
