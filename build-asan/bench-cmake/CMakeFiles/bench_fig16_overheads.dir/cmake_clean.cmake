file(REMOVE_RECURSE
  "../bench/bench_fig16_overheads"
  "../bench/bench_fig16_overheads.pdb"
  "CMakeFiles/bench_fig16_overheads.dir/bench_fig16_overheads.cc.o"
  "CMakeFiles/bench_fig16_overheads.dir/bench_fig16_overheads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
