file(REMOVE_RECURSE
  "../bench/bench_fig15_injection"
  "../bench/bench_fig15_injection.pdb"
  "CMakeFiles/bench_fig15_injection.dir/bench_fig15_injection.cc.o"
  "CMakeFiles/bench_fig15_injection.dir/bench_fig15_injection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
