# Empty dependencies file for bench_fig15_injection.
# This may be replaced when dependencies are built.
