# Empty dependencies file for lint_design.
# This may be replaced when dependencies are built.
