file(REMOVE_RECURSE
  "CMakeFiles/lint_design.dir/lint_design.cpp.o"
  "CMakeFiles/lint_design.dir/lint_design.cpp.o.d"
  "lint_design"
  "lint_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lint_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
