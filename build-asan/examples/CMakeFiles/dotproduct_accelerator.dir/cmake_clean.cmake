file(REMOVE_RECURSE
  "CMakeFiles/dotproduct_accelerator.dir/dotproduct_accelerator.cpp.o"
  "CMakeFiles/dotproduct_accelerator.dir/dotproduct_accelerator.cpp.o.d"
  "dotproduct_accelerator"
  "dotproduct_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dotproduct_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
