# Empty dependencies file for dotproduct_accelerator.
# This may be replaced when dependencies are built.
