file(REMOVE_RECURSE
  "CMakeFiles/translate_verilog.dir/translate_verilog.cpp.o"
  "CMakeFiles/translate_verilog.dir/translate_verilog.cpp.o.d"
  "translate_verilog"
  "translate_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
