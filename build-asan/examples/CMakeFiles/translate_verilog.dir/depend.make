# Empty dependencies file for translate_verilog.
# This may be replaced when dependencies are built.
