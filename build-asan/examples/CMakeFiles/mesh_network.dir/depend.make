# Empty dependencies file for mesh_network.
# This may be replaced when dependencies are built.
