# Empty compiler generated dependencies file for mesh_network.
# This may be replaced when dependencies are built.
