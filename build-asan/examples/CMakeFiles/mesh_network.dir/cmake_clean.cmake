file(REMOVE_RECURSE
  "CMakeFiles/mesh_network.dir/mesh_network.cpp.o"
  "CMakeFiles/mesh_network.dir/mesh_network.cpp.o.d"
  "mesh_network"
  "mesh_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
