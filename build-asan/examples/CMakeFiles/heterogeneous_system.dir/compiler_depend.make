# Empty compiler generated dependencies file for heterogeneous_system.
# This may be replaced when dependencies are built.
