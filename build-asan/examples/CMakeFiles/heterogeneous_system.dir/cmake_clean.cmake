file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_system.dir/heterogeneous_system.cpp.o"
  "CMakeFiles/heterogeneous_system.dir/heterogeneous_system.cpp.o.d"
  "heterogeneous_system"
  "heterogeneous_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
