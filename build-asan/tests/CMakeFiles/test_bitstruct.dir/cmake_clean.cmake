file(REMOVE_RECURSE
  "CMakeFiles/test_bitstruct.dir/core/test_bitstruct.cc.o"
  "CMakeFiles/test_bitstruct.dir/core/test_bitstruct.cc.o.d"
  "test_bitstruct"
  "test_bitstruct.pdb"
  "test_bitstruct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
