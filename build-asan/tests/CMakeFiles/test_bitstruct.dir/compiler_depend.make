# Empty compiler generated dependencies file for test_bitstruct.
# This may be replaced when dependencies are built.
