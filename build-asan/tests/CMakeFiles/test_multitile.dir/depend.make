# Empty dependencies file for test_multitile.
# This may be replaced when dependencies are built.
