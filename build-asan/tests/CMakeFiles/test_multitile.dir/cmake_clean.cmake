file(REMOVE_RECURSE
  "CMakeFiles/test_multitile.dir/tile/test_multitile.cc.o"
  "CMakeFiles/test_multitile.dir/tile/test_multitile.cc.o.d"
  "test_multitile"
  "test_multitile.pdb"
  "test_multitile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multitile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
