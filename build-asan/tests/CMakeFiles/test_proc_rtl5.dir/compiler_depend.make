# Empty compiler generated dependencies file for test_proc_rtl5.
# This may be replaced when dependencies are built.
