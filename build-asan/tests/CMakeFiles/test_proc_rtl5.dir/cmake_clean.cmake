file(REMOVE_RECURSE
  "CMakeFiles/test_proc_rtl5.dir/tile/test_proc_rtl5.cc.o"
  "CMakeFiles/test_proc_rtl5.dir/tile/test_proc_rtl5.cc.o.d"
  "test_proc_rtl5"
  "test_proc_rtl5.pdb"
  "test_proc_rtl5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proc_rtl5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
