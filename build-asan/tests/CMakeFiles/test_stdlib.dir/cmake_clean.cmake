file(REMOVE_RECURSE
  "CMakeFiles/test_stdlib.dir/stdlib/test_stdlib.cc.o"
  "CMakeFiles/test_stdlib.dir/stdlib/test_stdlib.cc.o.d"
  "test_stdlib"
  "test_stdlib.pdb"
  "test_stdlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stdlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
