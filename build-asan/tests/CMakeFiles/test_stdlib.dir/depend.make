# Empty dependencies file for test_stdlib.
# This may be replaced when dependencies are built.
