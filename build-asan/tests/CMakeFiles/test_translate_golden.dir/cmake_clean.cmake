file(REMOVE_RECURSE
  "CMakeFiles/test_translate_golden.dir/core/test_translate_golden.cc.o"
  "CMakeFiles/test_translate_golden.dir/core/test_translate_golden.cc.o.d"
  "test_translate_golden"
  "test_translate_golden.pdb"
  "test_translate_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translate_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
