file(REMOVE_RECURSE
  "CMakeFiles/test_analyze.dir/core/test_analyze.cc.o"
  "CMakeFiles/test_analyze.dir/core/test_analyze.cc.o.d"
  "test_analyze"
  "test_analyze.pdb"
  "test_analyze[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
