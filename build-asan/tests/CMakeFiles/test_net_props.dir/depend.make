# Empty dependencies file for test_net_props.
# This may be replaced when dependencies are built.
