file(REMOVE_RECURSE
  "CMakeFiles/test_net_props.dir/net/test_net_props.cc.o"
  "CMakeFiles/test_net_props.dir/net/test_net_props.cc.o.d"
  "test_net_props"
  "test_net_props.pdb"
  "test_net_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
