# Empty dependencies file for test_dotprod.
# This may be replaced when dependencies are built.
