file(REMOVE_RECURSE
  "CMakeFiles/test_dotprod.dir/tile/test_dotprod.cc.o"
  "CMakeFiles/test_dotprod.dir/tile/test_dotprod.cc.o.d"
  "test_dotprod"
  "test_dotprod.pdb"
  "test_dotprod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dotprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
