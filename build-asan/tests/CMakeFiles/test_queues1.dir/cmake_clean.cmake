file(REMOVE_RECURSE
  "CMakeFiles/test_queues1.dir/stdlib/test_queues1.cc.o"
  "CMakeFiles/test_queues1.dir/stdlib/test_queues1.cc.o.d"
  "test_queues1"
  "test_queues1.pdb"
  "test_queues1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queues1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
