# Empty compiler generated dependencies file for test_queues1.
# This may be replaced when dependencies are built.
