# Empty dependencies file for test_arrays.
# This may be replaced when dependencies are built.
