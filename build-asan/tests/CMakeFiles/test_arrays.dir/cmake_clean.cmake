file(REMOVE_RECURSE
  "CMakeFiles/test_arrays.dir/core/test_arrays.cc.o"
  "CMakeFiles/test_arrays.dir/core/test_arrays.cc.o.d"
  "test_arrays"
  "test_arrays.pdb"
  "test_arrays[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
