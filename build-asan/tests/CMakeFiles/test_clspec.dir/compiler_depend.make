# Empty compiler generated dependencies file for test_clspec.
# This may be replaced when dependencies are built.
