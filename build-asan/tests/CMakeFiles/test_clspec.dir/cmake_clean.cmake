file(REMOVE_RECURSE
  "CMakeFiles/test_clspec.dir/net/test_clspec.cc.o"
  "CMakeFiles/test_clspec.dir/net/test_clspec.cc.o.d"
  "test_clspec"
  "test_clspec.pdb"
  "test_clspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
