# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_bits[1]_include.cmake")
include("/root/repo/build-asan/tests/test_bitstruct[1]_include.cmake")
include("/root/repo/build-asan/tests/test_ir[1]_include.cmake")
include("/root/repo/build-asan/tests/test_arrays[1]_include.cmake")
include("/root/repo/build-asan/tests/test_model[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_tools[1]_include.cmake")
include("/root/repo/build-asan/tests/test_analyze[1]_include.cmake")
include("/root/repo/build-asan/tests/test_translate_golden[1]_include.cmake")
include("/root/repo/build-asan/tests/test_stdlib[1]_include.cmake")
include("/root/repo/build-asan/tests/test_net[1]_include.cmake")
include("/root/repo/build-asan/tests/test_isa[1]_include.cmake")
include("/root/repo/build-asan/tests/test_tile[1]_include.cmake")
include("/root/repo/build-asan/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build-asan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-asan/tests/test_clspec[1]_include.cmake")
include("/root/repo/build-asan/tests/test_proc[1]_include.cmake")
include("/root/repo/build-asan/tests/test_dotprod[1]_include.cmake")
include("/root/repo/build-asan/tests/test_queues1[1]_include.cmake")
include("/root/repo/build-asan/tests/test_net_props[1]_include.cmake")
include("/root/repo/build-asan/tests/test_multitile[1]_include.cmake")
include("/root/repo/build-asan/tests/test_proc_rtl5[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cache[1]_include.cmake")
