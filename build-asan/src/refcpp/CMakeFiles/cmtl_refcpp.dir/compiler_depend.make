# Empty compiler generated dependencies file for cmtl_refcpp.
# This may be replaced when dependencies are built.
