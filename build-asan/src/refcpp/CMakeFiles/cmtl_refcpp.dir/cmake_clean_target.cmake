file(REMOVE_RECURSE
  "libcmtl_refcpp.a"
)
