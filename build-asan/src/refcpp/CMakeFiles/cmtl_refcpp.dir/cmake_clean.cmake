file(REMOVE_RECURSE
  "CMakeFiles/cmtl_refcpp.dir/refnet.cc.o"
  "CMakeFiles/cmtl_refcpp.dir/refnet.cc.o.d"
  "libcmtl_refcpp.a"
  "libcmtl_refcpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtl_refcpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
