
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyze.cc" "src/core/CMakeFiles/cmtl_core.dir/analyze.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/analyze.cc.o.d"
  "/root/repo/src/core/bits.cc" "src/core/CMakeFiles/cmtl_core.dir/bits.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/bits.cc.o.d"
  "/root/repo/src/core/bitstruct.cc" "src/core/CMakeFiles/cmtl_core.dir/bitstruct.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/bitstruct.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/core/CMakeFiles/cmtl_core.dir/graph.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/graph.cc.o.d"
  "/root/repo/src/core/ir.cc" "src/core/CMakeFiles/cmtl_core.dir/ir.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/ir.cc.o.d"
  "/root/repo/src/core/ir_bytecode.cc" "src/core/CMakeFiles/cmtl_core.dir/ir_bytecode.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/ir_bytecode.cc.o.d"
  "/root/repo/src/core/ir_cpp.cc" "src/core/CMakeFiles/cmtl_core.dir/ir_cpp.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/ir_cpp.cc.o.d"
  "/root/repo/src/core/ir_eval.cc" "src/core/CMakeFiles/cmtl_core.dir/ir_eval.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/ir_eval.cc.o.d"
  "/root/repo/src/core/jit_cpp.cc" "src/core/CMakeFiles/cmtl_core.dir/jit_cpp.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/jit_cpp.cc.o.d"
  "/root/repo/src/core/lint.cc" "src/core/CMakeFiles/cmtl_core.dir/lint.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/lint.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/cmtl_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/model.cc.o.d"
  "/root/repo/src/core/sim.cc" "src/core/CMakeFiles/cmtl_core.dir/sim.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/sim.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/cmtl_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/stats.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/cmtl_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/store.cc.o.d"
  "/root/repo/src/core/translate.cc" "src/core/CMakeFiles/cmtl_core.dir/translate.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/translate.cc.o.d"
  "/root/repo/src/core/vcd.cc" "src/core/CMakeFiles/cmtl_core.dir/vcd.cc.o" "gcc" "src/core/CMakeFiles/cmtl_core.dir/vcd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
