file(REMOVE_RECURSE
  "libcmtl_core.a"
)
