# Empty compiler generated dependencies file for cmtl_core.
# This may be replaced when dependencies are built.
