file(REMOVE_RECURSE
  "CMakeFiles/cmtl_stdlib.dir/arbiters.cc.o"
  "CMakeFiles/cmtl_stdlib.dir/arbiters.cc.o.d"
  "CMakeFiles/cmtl_stdlib.dir/queues.cc.o"
  "CMakeFiles/cmtl_stdlib.dir/queues.cc.o.d"
  "CMakeFiles/cmtl_stdlib.dir/test_memory.cc.o"
  "CMakeFiles/cmtl_stdlib.dir/test_memory.cc.o.d"
  "CMakeFiles/cmtl_stdlib.dir/test_source_sink.cc.o"
  "CMakeFiles/cmtl_stdlib.dir/test_source_sink.cc.o.d"
  "libcmtl_stdlib.a"
  "libcmtl_stdlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtl_stdlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
