
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stdlib/arbiters.cc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/arbiters.cc.o" "gcc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/arbiters.cc.o.d"
  "/root/repo/src/stdlib/queues.cc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/queues.cc.o" "gcc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/queues.cc.o.d"
  "/root/repo/src/stdlib/test_memory.cc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/test_memory.cc.o" "gcc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/test_memory.cc.o.d"
  "/root/repo/src/stdlib/test_source_sink.cc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/test_source_sink.cc.o" "gcc" "src/stdlib/CMakeFiles/cmtl_stdlib.dir/test_source_sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/cmtl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
