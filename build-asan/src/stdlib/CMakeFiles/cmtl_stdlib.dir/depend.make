# Empty dependencies file for cmtl_stdlib.
# This may be replaced when dependencies are built.
