file(REMOVE_RECURSE
  "libcmtl_stdlib.a"
)
