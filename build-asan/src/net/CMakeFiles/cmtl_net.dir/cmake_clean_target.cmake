file(REMOVE_RECURSE
  "libcmtl_net.a"
)
