# Empty dependencies file for cmtl_net.
# This may be replaced when dependencies are built.
