
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cl_router.cc" "src/net/CMakeFiles/cmtl_net.dir/cl_router.cc.o" "gcc" "src/net/CMakeFiles/cmtl_net.dir/cl_router.cc.o.d"
  "/root/repo/src/net/cl_router_spec.cc" "src/net/CMakeFiles/cmtl_net.dir/cl_router_spec.cc.o" "gcc" "src/net/CMakeFiles/cmtl_net.dir/cl_router_spec.cc.o.d"
  "/root/repo/src/net/fl_network.cc" "src/net/CMakeFiles/cmtl_net.dir/fl_network.cc.o" "gcc" "src/net/CMakeFiles/cmtl_net.dir/fl_network.cc.o.d"
  "/root/repo/src/net/rtl_router.cc" "src/net/CMakeFiles/cmtl_net.dir/rtl_router.cc.o" "gcc" "src/net/CMakeFiles/cmtl_net.dir/rtl_router.cc.o.d"
  "/root/repo/src/net/traffic.cc" "src/net/CMakeFiles/cmtl_net.dir/traffic.cc.o" "gcc" "src/net/CMakeFiles/cmtl_net.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/cmtl_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stdlib/CMakeFiles/cmtl_stdlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
