file(REMOVE_RECURSE
  "CMakeFiles/cmtl_net.dir/cl_router.cc.o"
  "CMakeFiles/cmtl_net.dir/cl_router.cc.o.d"
  "CMakeFiles/cmtl_net.dir/cl_router_spec.cc.o"
  "CMakeFiles/cmtl_net.dir/cl_router_spec.cc.o.d"
  "CMakeFiles/cmtl_net.dir/fl_network.cc.o"
  "CMakeFiles/cmtl_net.dir/fl_network.cc.o.d"
  "CMakeFiles/cmtl_net.dir/rtl_router.cc.o"
  "CMakeFiles/cmtl_net.dir/rtl_router.cc.o.d"
  "CMakeFiles/cmtl_net.dir/traffic.cc.o"
  "CMakeFiles/cmtl_net.dir/traffic.cc.o.d"
  "libcmtl_net.a"
  "libcmtl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
