file(REMOVE_RECURSE
  "libcmtl_tile.a"
)
