# Empty compiler generated dependencies file for cmtl_tile.
# This may be replaced when dependencies are built.
