file(REMOVE_RECURSE
  "CMakeFiles/cmtl_tile.dir/arbiter.cc.o"
  "CMakeFiles/cmtl_tile.dir/arbiter.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/cache_cl.cc.o"
  "CMakeFiles/cmtl_tile.dir/cache_cl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/cache_fl.cc.o"
  "CMakeFiles/cmtl_tile.dir/cache_fl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/cache_rtl.cc.o"
  "CMakeFiles/cmtl_tile.dir/cache_rtl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/dotprod_cl.cc.o"
  "CMakeFiles/cmtl_tile.dir/dotprod_cl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/dotprod_fl.cc.o"
  "CMakeFiles/cmtl_tile.dir/dotprod_fl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/dotprod_rtl.cc.o"
  "CMakeFiles/cmtl_tile.dir/dotprod_rtl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/isa.cc.o"
  "CMakeFiles/cmtl_tile.dir/isa.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/multitile.cc.o"
  "CMakeFiles/cmtl_tile.dir/multitile.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/proc_cl.cc.o"
  "CMakeFiles/cmtl_tile.dir/proc_cl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/proc_fl.cc.o"
  "CMakeFiles/cmtl_tile.dir/proc_fl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/proc_rtl.cc.o"
  "CMakeFiles/cmtl_tile.dir/proc_rtl.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/proc_rtl5.cc.o"
  "CMakeFiles/cmtl_tile.dir/proc_rtl5.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/programs.cc.o"
  "CMakeFiles/cmtl_tile.dir/programs.cc.o.d"
  "CMakeFiles/cmtl_tile.dir/tile.cc.o"
  "CMakeFiles/cmtl_tile.dir/tile.cc.o.d"
  "libcmtl_tile.a"
  "libcmtl_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmtl_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
