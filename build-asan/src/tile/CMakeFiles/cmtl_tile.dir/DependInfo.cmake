
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tile/arbiter.cc" "src/tile/CMakeFiles/cmtl_tile.dir/arbiter.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/arbiter.cc.o.d"
  "/root/repo/src/tile/cache_cl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_cl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_cl.cc.o.d"
  "/root/repo/src/tile/cache_fl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_fl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_fl.cc.o.d"
  "/root/repo/src/tile/cache_rtl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_rtl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/cache_rtl.cc.o.d"
  "/root/repo/src/tile/dotprod_cl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_cl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_cl.cc.o.d"
  "/root/repo/src/tile/dotprod_fl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_fl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_fl.cc.o.d"
  "/root/repo/src/tile/dotprod_rtl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_rtl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/dotprod_rtl.cc.o.d"
  "/root/repo/src/tile/isa.cc" "src/tile/CMakeFiles/cmtl_tile.dir/isa.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/isa.cc.o.d"
  "/root/repo/src/tile/multitile.cc" "src/tile/CMakeFiles/cmtl_tile.dir/multitile.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/multitile.cc.o.d"
  "/root/repo/src/tile/proc_cl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_cl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_cl.cc.o.d"
  "/root/repo/src/tile/proc_fl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_fl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_fl.cc.o.d"
  "/root/repo/src/tile/proc_rtl.cc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_rtl.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_rtl.cc.o.d"
  "/root/repo/src/tile/proc_rtl5.cc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_rtl5.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/proc_rtl5.cc.o.d"
  "/root/repo/src/tile/programs.cc" "src/tile/CMakeFiles/cmtl_tile.dir/programs.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/programs.cc.o.d"
  "/root/repo/src/tile/tile.cc" "src/tile/CMakeFiles/cmtl_tile.dir/tile.cc.o" "gcc" "src/tile/CMakeFiles/cmtl_tile.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/cmtl_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stdlib/CMakeFiles/cmtl_stdlib.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/net/CMakeFiles/cmtl_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
