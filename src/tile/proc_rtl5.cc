#include "proc.h"

namespace cmtl {
namespace tile {

namespace {
constexpr uint64_t opc(Op op) { return static_cast<uint64_t>(op); }

// M-stage transaction kinds.
constexpr uint64_t kKindAlu = 0;
constexpr uint64_t kKindLoad = 1;
constexpr uint64_t kKindStore = 2;
constexpr uint64_t kKindAccCfg = 3;
constexpr uint64_t kKindAccGo = 4;
} // namespace

ProcRTL5::ProcRTL5(Model *parent, const std::string &name)
    : ProcessorBase(parent, name), regs_(this, "regs", 32, kNumRegs),
      fetch_pc_(this, "fetch_pc", 32), epoch_(this, "epoch", 4),
      fb_pc_(this, "fb_pc", 32, 4), fb_inst_(this, "fb_inst", 32, 4),
      fb_h_(this, "fb_h", 2), fb_c_(this, "fb_c", 3),
      ot_pc_(this, "ot_pc", 32, 4), ot_ep_(this, "ot_ep", 4, 4),
      ot_h_(this, "ot_h", 2), ot_c_(this, "ot_c", 3),
      d_valid_(this, "d_valid", 1), d_inst_(this, "d_inst", 32),
      d_pc_(this, "d_pc", 32), d_op_(this, "d_op", 6),
      d_rd_(this, "d_rd", 4), d_imm_(this, "d_imm", 32),
      d_a_(this, "d_a", 32), d_b_(this, "d_b", 32),
      d_w_(this, "d_w", 32), d_stall_(this, "d_stall", 1),
      x_valid_(this, "x_valid", 1), x_op_(this, "x_op", 6),
      x_rd_(this, "x_rd", 4), x_pc_(this, "x_pc", 32),
      x_imm_(this, "x_imm", 32), x_a_(this, "x_a", 32),
      x_b_(this, "x_b", 32), x_w_(this, "x_w", 32),
      x_alu_(this, "x_alu", 32), x_wen_(this, "x_wen", 1),
      x_redirect_(this, "x_redirect", 1), x_target_(this, "x_target", 32),
      m_valid_(this, "m_valid", 1), m_kind_(this, "m_kind", 3),
      m_rd_(this, "m_rd", 4), m_wen_(this, "m_wen", 1),
      m_addr_(this, "m_addr", 32), m_data_(this, "m_data", 32),
      m_phase_(this, "m_phase", 1), m_done_(this, "m_done", 1),
      w_valid_(this, "w_valid", 1), w_rd_(this, "w_rd", 4),
      w_value_(this, "w_value", 32), w_wen_(this, "w_wen", 1),
      adv_m_(this, "adv_m", 1), adv_x_(this, "adv_x", 1),
      adv_d_(this, "adv_d", 1), halt_r_(this, "halt_r", 1),
      insts_(this, "insts", 32)
{
    const int addr_bits = imem_ifc.types.req.field("addr").nbits;

    // ------------------------------------------------- decode comb
    auto &dc = combinational("decode_comb");
    {
        dc.assign(d_valid_, rd(fb_c_) != 0u);
        IrExpr inst = dc.let("inst", aread(fb_inst_, rd(fb_h_)));
        dc.assign(d_inst_, inst);
        dc.assign(d_pc_, aread(fb_pc_, rd(fb_h_)));
        IrExpr op = inst.slice(26, 6);
        dc.assign(d_op_, op);
        dc.assign(d_rd_, inst.slice(22, 4));
        dc.assign(d_imm_, inst.slice(0, 16).sext(32));

        // Operand read with full X/M/W forwarding; a hazard means the
        // producer's value is not yet available (loads and
        // accelerator results before W).
        auto operand = [&](const IrExpr &idx, const std::string &nm,
                           IrExpr &hazard_out) {
            IrExpr nz = dc.let(nm + "_nz", idx != 0u);
            IrExpr value = aread(regs_, idx);
            // W bypass (oldest).
            value = mux(rd(w_valid_) && rd(w_wen_) &&
                            (rd(w_rd_) == idx) && nz,
                        rd(w_value_), value);
            // M bypass: only ALU-kind values are in m_data.
            IrExpr m_hit = dc.let(nm + "_mh",
                                  rd(m_valid_) && rd(m_wen_) &&
                                      (rd(m_rd_) == idx) && nz);
            IrExpr m_ready = rd(m_kind_) == kKindAlu;
            value = mux(m_hit && m_ready, rd(m_data_), value);
            // X bypass (youngest): loads/acc-go results not ready.
            IrExpr x_hit = dc.let(nm + "_xh",
                                  rd(x_valid_) && rd(x_wen_) &&
                                      (rd(x_rd_) == idx) && nz);
            IrExpr x_ready = !((rd(x_op_) == opc(Op::Lw)) ||
                               (rd(x_op_) == opc(Op::Accx)));
            value = mux(x_hit && x_ready, rd(x_alu_), value);
            hazard_out = dc.let(nm + "_hz", (x_hit && !x_ready) ||
                                                (m_hit && !m_ready));
            return value;
        };

        IrExpr hz_a, hz_b, hz_w;
        IrExpr a = operand(inst.slice(18, 4), "a", hz_a);
        IrExpr b = operand(inst.slice(14, 4), "b", hz_b);
        IrExpr w = operand(inst.slice(22, 4), "w", hz_w);
        dc.assign(d_a_, a);
        dc.assign(d_b_, b);
        dc.assign(d_w_, w);

        // Which operands the instruction actually uses.
        IrExpr need_a = (op != opc(Op::Lui)) && (op != opc(Op::Jal)) &&
                        (op != opc(Op::Halt));
        IrExpr need_b = op < 16u; // R-type only
        IrExpr need_w = (op == opc(Op::Sw)) || (op == opc(Op::Beq)) ||
                        (op == opc(Op::Bne)) || (op == opc(Op::Blt));
        dc.assign(d_stall_, (hz_a && need_a) || (hz_b && need_b) ||
                                (hz_w && need_w));
    }

    // ------------------------------------------------------ X comb
    auto &xc = combinational("x_comb");
    {
        IrExpr op = rd(x_op_);
        IrExpr a = rd(x_a_);
        IrExpr b = rd(x_b_);
        IrExpr imm = rd(x_imm_);
        IrExpr shamt = rd(x_b_)(4, 0);
        IrExpr bias = lit(32, 0x80000000ull);
        IrExpr slt_ab = (a ^ bias) < (b ^ bias);
        IrExpr alu =
            mux(op == opc(Op::Add), a + b,
            mux(op == opc(Op::Sub), a - b,
            mux(op == opc(Op::Mul), a * b,
            mux(op == opc(Op::And), a & b,
            mux(op == opc(Op::Or), a | b,
            mux(op == opc(Op::Xor), a ^ b,
            mux(op == opc(Op::Sll), a << shamt,
            mux(op == opc(Op::Srl), a >> shamt,
            mux(op == opc(Op::Slt),
                mux(slt_ab, lit(32, 1), lit(32, 0)),
            mux(op == opc(Op::Addi), a + imm,
            mux(op == opc(Op::Jal), rd(x_pc_) + 4u,
                imm << lit(6, 16))))))))))));
        xc.assign(x_alu_, alu);

        IrExpr eq = a == rd(x_w_);
        IrExpr sltw = (a ^ bias) < (rd(x_w_) ^ bias);
        IrExpr taken =
            mux(op == opc(Op::Beq), eq,
            mux(op == opc(Op::Bne), !eq,
            mux(op == opc(Op::Blt), sltw, lit(1, 0))));
        xc.assign(x_redirect_,
                  taken || (op == opc(Op::Jal)) || (op == opc(Op::Jr)) ||
                      (op == opc(Op::Halt)));
        IrExpr btarget = rd(x_pc_) + 4u + (imm << lit(3, 2));
        xc.assign(x_target_, mux(op == opc(Op::Jr), a, btarget));

        // Does this instruction write a register?
        xc.assign(x_wen_,
                  ((op < 9u) || (op == opc(Op::Addi)) ||
                   (op == opc(Op::Lui)) || (op == opc(Op::Lw)) ||
                   (op == opc(Op::Jal)) ||
                   ((op == opc(Op::Accx)) && (imm(2, 0) == 0u))) &&
                      (rd(x_rd_) != 0u));
    }

    // ------------------------------------------------ control comb
    auto &cc = combinational("ctrl_comb");
    {
        IrExpr kind = rd(m_kind_);
        IrExpr is_dmem =
            (kind == kKindLoad) || (kind == kKindStore);
        IrExpr done =
            mux(kind == kKindAlu, lit(1, 1),
            mux(is_dmem,
                (rd(m_phase_) == 1u) && rd(dmem_ifc.resp.val),
            mux(kind == kKindAccCfg, rd(acc_ifc.req.rdy),
                /* acc go */
                (rd(m_phase_) == 1u) && rd(acc_ifc.resp.val))));
        cc.assign(m_done_, rd(m_valid_) && done);
        IrExpr m_free = !rd(m_valid_) || rd(m_done_);
        cc.assign(adv_m_, rd(m_done_));
        IrExpr advx = rd(x_valid_) && m_free;
        cc.assign(adv_x_, advx);
        IrExpr x_free = !rd(x_valid_) || advx;
        cc.assign(adv_d_, rd(d_valid_) && !rd(d_stall_) && x_free &&
                              !(advx && rd(x_redirect_)) &&
                              !rd(halt_r_));
    }

    // -------------------------------------------------- ports comb
    auto &pc = combinational("ports_comb");
    {
        // Fetch: stream sequential requests while slots remain.
        IrExpr slots = rd(fb_c_) + rd(ot_c_);
        pc.assign(imem_ifc.req.val,
                  (slots < 4u) && !rd(halt_r_) && !rd(reset));
        pc.assign(imem_ifc.req.msg,
                  cat({lit(1, 0), rd(fetch_pc_)(addr_bits - 1, 0),
                       lit(32, 0)}));
        pc.assign(imem_ifc.resp.rdy, lit(1, 1));

        // Data memory: request in phase 0, response in phase 1.
        IrExpr kind = rd(m_kind_);
        IrExpr is_dmem =
            (kind == kKindLoad) || (kind == kKindStore);
        pc.assign(dmem_ifc.req.val,
                  rd(m_valid_) && is_dmem && (rd(m_phase_) == 0u));
        pc.assign(dmem_ifc.req.msg,
                  cat({mux(kind == kKindStore, lit(1, 1), lit(1, 0)),
                       rd(m_addr_)(addr_bits - 1, 0), rd(m_data_)}));
        pc.assign(dmem_ifc.resp.rdy,
                  rd(m_valid_) && is_dmem && (rd(m_phase_) == 1u));

        // Accelerator port.
        IrExpr is_acc =
            (kind == kKindAccCfg) || (kind == kKindAccGo);
        pc.assign(acc_ifc.req.val,
                  rd(m_valid_) && is_acc && (rd(m_phase_) == 0u));
        pc.assign(acc_ifc.req.msg,
                  cat(rd(m_addr_)(2, 0), rd(m_data_)));
        pc.assign(acc_ifc.resp.rdy, rd(m_valid_) &&
                                        (kind == kKindAccGo) &&
                                        (rd(m_phase_) == 1u));

        pc.assign(halted, rd(halt_r_));
    }

    // -------------------------------------------------- pipe tick
    auto &t = tickRtl("pipe");
    t.if_(rd(reset), [&] {
        t.assign(fetch_pc_, 0);
        t.assign(epoch_, 0);
        t.assign(fb_h_, 0);
        t.assign(fb_c_, 0);
        t.assign(ot_h_, 0);
        t.assign(ot_c_, 0);
        t.assign(x_valid_, 0);
        t.assign(m_valid_, 0);
        t.assign(w_valid_, 0);
        t.assign(halt_r_, 0);
        t.assign(insts_, 0);
    },
    [&] {
        // ---- W: commit.
        t.if_(rd(w_valid_), [&] {
            t.if_(rd(w_wen_), [&] {
                t.writeArray(regs_, rd(w_rd_), rd(w_value_));
            });
            t.assign(insts_, rd(insts_) + 1u);
        });
        t.assign(w_valid_, rd(adv_m_));
        t.if_(rd(adv_m_), [&] {
            t.assign(w_rd_, rd(m_rd_));
            t.assign(w_wen_, rd(m_wen_));
            t.assign(w_value_,
                     mux(rd(m_kind_) == kKindLoad,
                         rd(dmem_ifc.resp.msg)(31, 0),
                         mux(rd(m_kind_) == kKindAccGo,
                             rd(acc_ifc.resp.msg)(31, 0),
                             rd(m_data_))));
        });

        // ---- M: phase transitions on request acceptance.
        t.if_(rd(m_valid_) && !rd(m_done_) && (rd(m_phase_) == 0u), [&] {
            t.if_(rd(dmem_ifc.req.val) && rd(dmem_ifc.req.rdy),
                  [&] { t.assign(m_phase_, 1); });
            t.if_(rd(acc_ifc.req.val) && rd(acc_ifc.req.rdy) &&
                      (rd(m_kind_) == kKindAccGo),
                  [&] { t.assign(m_phase_, 1); });
        });
        // ---- X -> M.
        t.if_(rd(adv_x_), [&] {
            IrExpr op = rd(x_op_);
            t.assign(m_valid_, 1);
            t.assign(m_kind_,
                     mux(op == opc(Op::Lw), lit(3, kKindLoad),
                     mux(op == opc(Op::Sw), lit(3, kKindStore),
                     mux(op == opc(Op::Accx),
                         mux(rd(x_imm_)(2, 0) == 0u,
                             lit(3, kKindAccGo), lit(3, kKindAccCfg)),
                         lit(3, kKindAlu)))));
            t.assign(m_rd_, rd(x_rd_));
            t.assign(m_wen_, rd(x_wen_));
            t.assign(m_addr_,
                     mux(op == opc(Op::Accx), rd(x_imm_),
                         rd(x_a_) + rd(x_imm_)));
            t.assign(m_data_,
                     mux(op == opc(Op::Sw), rd(x_w_),
                         mux(op == opc(Op::Accx), rd(x_a_),
                             rd(x_alu_))));
            t.assign(m_phase_, 0);
        },
        [&] {
            t.if_(rd(adv_m_), [&] { t.assign(m_valid_, 0); });
        });
        // ---- D -> X.
        t.if_(rd(adv_d_), [&] {
            t.assign(x_valid_, 1);
            t.assign(x_op_, rd(d_op_));
            t.assign(x_rd_, rd(d_rd_));
            t.assign(x_pc_, rd(d_pc_));
            t.assign(x_imm_, rd(d_imm_));
            t.assign(x_a_, rd(d_a_));
            t.assign(x_b_, rd(d_b_));
            t.assign(x_w_, rd(d_w_));
        },
        [&] {
            t.if_(rd(adv_x_), [&] { t.assign(x_valid_, 0); });
        });

        // ---- Fetch: issue and receive (before redirect so a
        // same-edge flush overrides these updates).
        IrExpr push_ot = rd(imem_ifc.req.val) && rd(imem_ifc.req.rdy);
        IrExpr pop_ot = rd(imem_ifc.resp.val) && rd(imem_ifc.resp.rdy);
        t.if_(push_ot, [&] {
            IrExpr sum = t.let("otsum",
                               rd(ot_h_).zext(8) + rd(ot_c_).zext(8));
            t.writeArray(ot_pc_, sum.slice(0, 2), rd(fetch_pc_));
            t.writeArray(ot_ep_, sum.slice(0, 2), rd(epoch_));
            t.assign(fetch_pc_, rd(fetch_pc_) + 4u);
        });
        IrExpr accept = t.let("accept",
                              pop_ot && (aread(ot_ep_, rd(ot_h_)) ==
                                         rd(epoch_)));
        t.if_(pop_ot,
              [&] { t.assign(ot_h_, rd(ot_h_) + 1u); });
        t.assign(ot_c_, rd(ot_c_) + push_ot.zext(3) - pop_ot.zext(3));
        t.if_(accept, [&] {
            IrExpr sum = t.let("fbsum",
                               rd(fb_h_).zext(8) + rd(fb_c_).zext(8));
            t.writeArray(fb_pc_, sum.slice(0, 2),
                         aread(ot_pc_, rd(ot_h_)));
            t.writeArray(fb_inst_, sum.slice(0, 2),
                         rd(imem_ifc.resp.msg)(31, 0));
        });
        t.assign(fb_c_,
                 rd(fb_c_) + accept.zext(3) - rd(adv_d_).zext(3));
        t.if_(rd(adv_d_), [&] { t.assign(fb_h_, rd(fb_h_) + 1u); });

        // ---- Redirect (taken branch / jump / halt) flushes the
        // front end; outstanding responses are discarded by epoch.
        t.if_(rd(adv_x_) && rd(x_redirect_), [&] {
            t.assign(epoch_, rd(epoch_) + 1u);
            t.assign(fb_h_, 0);
            t.assign(fb_c_, 0);
            t.assign(fetch_pc_, rd(x_target_));
            t.if_(rd(x_op_) == opc(Op::Halt),
                  [&] { t.assign(halt_r_, 1); });
        });
    });
}

uint64_t
ProcRTL5::numInsts() const
{
    return insts_.value().toUint64();
}

} // namespace tile
} // namespace cmtl
