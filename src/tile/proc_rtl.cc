#include "proc.h"

namespace cmtl {
namespace tile {

namespace {
// FSM states.
constexpr uint64_t kF0 = 0; // issue instruction fetch
constexpr uint64_t kF1 = 1; // wait for fetch response
constexpr uint64_t kEx = 2; // decode/execute, issue dmem/acc requests
constexpr uint64_t kMw = 3; // wait for data memory response
constexpr uint64_t kAw = 4; // wait for accelerator response
constexpr uint64_t kHalted = 5;

constexpr uint64_t opc(Op op) { return static_cast<uint64_t>(op); }
} // namespace

ProcRTL::ProcRTL(Model *parent, const std::string &name)
    : ProcessorBase(parent, name), regs_(this, "regs", 32, kNumRegs),
      pc_(this, "pc", 32), state_(this, "state", 3), ir_(this, "ir", 32),
      insts_(this, "insts", 32), halt_r_(this, "halt_r", 1),
      opcode_(this, "opcode", 6), rd_(this, "rd", 4), rs1_(this, "rs1", 4),
      rs2_(this, "rs2", 4), imm_(this, "imm", 32),
      rs1_val_(this, "rs1_val", 32), rs2_val_(this, "rs2_val", 32),
      rd_val_(this, "rd_val", 32), alu_(this, "alu", 32),
      branch_taken_(this, "branch_taken", 1)
{
    const int addr_bits = imem_ifc.types.req.field("addr").nbits;

    // ----------------------------------------------------- decode comb
    auto &dc = combinational("decode_comb");
    dc.assign(opcode_, rd(ir_)(31, 26));
    dc.assign(rd_, rd(ir_)(25, 22));
    dc.assign(rs1_, rd(ir_)(21, 18));
    dc.assign(rs2_, rd(ir_)(17, 14));
    dc.assign(imm_, rd(ir_)(15, 0).sext(32));
    dc.assign(rs1_val_, aread(regs_, rd(rs1_)));
    dc.assign(rs2_val_, aread(regs_, rd(rs2_)));
    dc.assign(rd_val_, aread(regs_, rd(rd_)));

    // ------------------------------------------------------- ALU comb
    auto &ac = combinational("alu_comb");
    {
        IrExpr a = rd(rs1_val_);
        IrExpr b = rd(rs2_val_);
        IrExpr op = rd(opcode_);
        IrExpr shamt = rd(rs2_val_)(4, 0);
        // Signed compare via the sign-bias trick: flip the sign bits
        // and compare unsigned.
        IrExpr bias = lit(32, 0x80000000ull);
        IrExpr slt_ab = (a ^ bias) < (b ^ bias);
        IrExpr result =
            mux(op == opc(Op::Add), a + b,
            mux(op == opc(Op::Sub), a - b,
            mux(op == opc(Op::Mul), a * b,
            mux(op == opc(Op::And), a & b,
            mux(op == opc(Op::Or), a | b,
            mux(op == opc(Op::Xor), a ^ b,
            mux(op == opc(Op::Sll), a << shamt,
            mux(op == opc(Op::Srl), a >> shamt,
            mux(op == opc(Op::Slt),
                mux(slt_ab, lit(32, 1), lit(32, 0)),
            mux(op == opc(Op::Addi), a + rd(imm_),
                rd(imm_) << lit(6, 16)))))))))));
        ac.assign(alu_, result);

        IrExpr eq = a == rd(rd_val_);
        IrExpr slt = (a ^ bias) < (rd(rd_val_) ^ bias);
        ac.assign(branch_taken_,
                  mux(op == opc(Op::Beq), eq,
                  mux(op == opc(Op::Bne), !eq,
                  mux(op == opc(Op::Blt), slt, lit(1, 0)))));
    }

    // --------------------------------------------------- request comb
    auto &rq = combinational("req_comb");
    {
        IrExpr st = rd(state_);
        IrExpr op = rd(opcode_);
        rq.assign(imem_ifc.req.val, st == kF0);
        rq.assign(imem_ifc.req.msg,
                  cat({lit(1, 0), rd(pc_)(addr_bits - 1, 0),
                       lit(32, 0)}));
        rq.assign(imem_ifc.resp.rdy, st == kF1);

        IrExpr is_lw = op == opc(Op::Lw);
        IrExpr is_sw = op == opc(Op::Sw);
        rq.assign(dmem_ifc.req.val, (st == kEx) && (is_lw || is_sw));
        IrExpr eaddr = rq.let("eaddr", rd(rs1_val_) + rd(imm_));
        rq.assign(dmem_ifc.req.msg,
                  cat({mux(is_sw, lit(1, 1), lit(1, 0)),
                       eaddr(addr_bits - 1, 0), rd(rd_val_)}));
        rq.assign(dmem_ifc.resp.rdy, st == kMw);

        rq.assign(acc_ifc.req.val, (st == kEx) && (op == opc(Op::Accx)));
        rq.assign(acc_ifc.req.msg, cat(rd(imm_)(2, 0), rd(rs1_val_)));
        rq.assign(acc_ifc.resp.rdy, st == kAw);

        rq.assign(halted, rd(halt_r_));
    }

    // ------------------------------------------------------- FSM tick
    auto &t = tickRtl("fsm");
    t.if_(rd(reset), [&] {
        t.assign(pc_, 0);
        t.assign(state_, kF0);
        t.assign(halt_r_, 0);
        t.assign(insts_, 0);
    },
    [&] {
        IrExpr st = rd(state_);
        IrExpr op = rd(opcode_);
        IrExpr next_pc = rd(pc_) + 4u;
        IrExpr btarget =
            rd(pc_) + 4u + (rd(imm_) << lit(3, 2));

        t.if_(st == kF0 && rd(imem_ifc.req.val) &&
                  rd(imem_ifc.req.rdy),
              [&] { t.assign(state_, kF1); });

        t.if_(st == kF1 && rd(imem_ifc.resp.val) &&
                  rd(imem_ifc.resp.rdy),
              [&] {
                  t.assign(ir_, rd(imem_ifc.resp.msg)(31, 0));
                  t.assign(state_, kEx);
              });

        t.if_(st == kEx, [&] {
            // ALU / LUI / ADDI commit.
            t.if_(op < lit(6, opc(Op::Lw)), [&] {
                t.if_(rd(rd_) != 0u, [&] {
                    t.writeArray(regs_, rd(rd_), rd(alu_));
                });
                t.assign(pc_, next_pc);
                t.assign(insts_, rd(insts_) + 1u);
                t.assign(state_, kF0);
            });
            // Memory operations: wait for the request to be accepted.
            t.if_((op == opc(Op::Lw)) || (op == opc(Op::Sw)), [&] {
                t.if_(rd(dmem_ifc.req.rdy), [&] {
                    t.assign(state_, kMw);
                });
            });
            // Branches.
            t.if_((op == opc(Op::Beq)) || (op == opc(Op::Bne)) ||
                      (op == opc(Op::Blt)),
                  [&] {
                      t.assign(pc_, mux(rd(branch_taken_), btarget,
                                        next_pc));
                      t.assign(insts_, rd(insts_) + 1u);
                      t.assign(state_, kF0);
                  });
            // Jumps.
            t.if_(op == opc(Op::Jal), [&] {
                t.if_(rd(rd_) != 0u, [&] {
                    t.writeArray(regs_, rd(rd_), next_pc);
                });
                t.assign(pc_, btarget);
                t.assign(insts_, rd(insts_) + 1u);
                t.assign(state_, kF0);
            });
            t.if_(op == opc(Op::Jr), [&] {
                t.assign(pc_, rd(rs1_val_));
                t.assign(insts_, rd(insts_) + 1u);
                t.assign(state_, kF0);
            });
            // Accelerator transfer.
            t.if_(op == opc(Op::Accx), [&] {
                t.if_(rd(acc_ifc.req.rdy), [&] {
                    t.if_(rd(imm_)(2, 0) == 0u,
                          [&] { t.assign(state_, kAw); },
                          [&] {
                              t.assign(pc_, next_pc);
                              t.assign(insts_, rd(insts_) + 1u);
                              t.assign(state_, kF0);
                          });
                });
            });
            // Halt (committed like any other instruction).
            t.if_(op == opc(Op::Halt), [&] {
                t.assign(halt_r_, 1);
                t.assign(insts_, rd(insts_) + 1u);
                t.assign(state_, kHalted);
            });
        });

        t.if_(st == kMw && rd(dmem_ifc.resp.val), [&] {
            t.if_((op == opc(Op::Lw)) && (rd(rd_) != 0u), [&] {
                t.writeArray(regs_, rd(rd_),
                             rd(dmem_ifc.resp.msg)(31, 0));
            });
            t.assign(pc_, next_pc);
            t.assign(insts_, rd(insts_) + 1u);
            t.assign(state_, kF0);
        });

        t.if_(st == kAw && rd(acc_ifc.resp.val), [&] {
            t.if_(rd(rd_) != 0u, [&] {
                t.writeArray(regs_, rd(rd_),
                             rd(acc_ifc.resp.msg)(31, 0));
            });
            t.assign(pc_, next_pc);
            t.assign(insts_, rd(insts_) + 1u);
            t.assign(state_, kF0);
        });
    });
}

uint64_t
ProcRTL::numInsts() const
{
    return insts_.value().toUint64();
}

} // namespace tile
} // namespace cmtl
