#include "multitile.h"

#include <cmath>

namespace cmtl {
namespace tile {

namespace {

constexpr int kPayloadBits = 61; //!< tag (1) + mem request (60)
constexpr int kNumMsgIds = 16;

/** Network payload format: {port tag, request/response body}. */
BitStructLayout
payloadFmt()
{
    return BitStructLayout("BridgePayload", {{"tag", 1}, {"body", 60}});
}

int
terminalsFor(int ntiles)
{
    int need = ntiles + 1;
    int dim = 1;
    while (dim * dim < need)
        ++dim;
    return dim * dim;
}

} // namespace

// --------------------------------------------------------- TileMemBridge

TileMemBridge::TileMemBridge(Model *parent, const std::string &name,
                             int tile_id, const BitStructLayout &net_msg,
                             int mem_node)
    : Model(parent, name), imem_in(this, "imem_in", memIfcTypes()),
      dmem_in(this, "dmem_in", memIfcTypes()),
      net_out(this, "net_out", net_msg.nbits()),
      net_in(this, "net_in", net_msg.nbits()), msg_(net_msg),
      tile_id_(tile_id), mem_node_(mem_node)
{
    imem_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(imem_in,
                                                               4);
    dmem_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(dmem_in,
                                                               4);
    out_ = std::make_unique<stdlib::OutQueueAdapter>(net_out, 4);
    in_ = std::make_unique<stdlib::InQueueAdapter>(net_in, 4);

    const BitStructLayout payload = payloadFmt();
    tickFl("bridge_logic", [this, payload] {
        imem_->xtick();
        dmem_->xtick();
        out_->xtick();
        in_->xtick();

        // Unwrap responses: the tag routes each to its refill port.
        while (!in_->empty()) {
            Bits m = in_->pop();
            Bits body = payload.get(msg_.get(m, "payload"), "body");
            Bits resp = body.slice(0, 33);
            bool is_dmem =
                payload.get(msg_.get(m, "payload"), "tag").any();
            (is_dmem ? dmem_ : imem_)->pushResp(resp.zext(33));
        }

        // Wrap one request per cycle, round-robin between ports.
        if (!out_->full()) {
            for (int k = 0; k < 2; ++k) {
                int p = (rr_ + k) % 2;
                auto &ad = p == 0 ? imem_ : dmem_;
                if (ad->req_q.empty())
                    continue;
                Bits req = ad->getReq();
                Bits pay(kPayloadBits);
                pay.setSlice(0, req.zext(60));
                pay.setBit(60, p == 1);
                Bits m(msg_.nbits());
                m = msg_.set(m, "dest",
                             Bits(32, static_cast<uint64_t>(mem_node_)));
                m = msg_.set(m, "src",
                             Bits(32, static_cast<uint64_t>(tile_id_)));
                m = msg_.set(m, "payload", pay);
                out_->push(m);
                rr_ = (p + 1) % 2;
                break;
            }
        }
    });
}

// ---------------------------------------------------------------- MemNode

MemNode::MemNode(Model *parent, const std::string &name,
                 const BitStructLayout &net_msg, int latency)
    : Model(parent, name), net_out(this, "net_out", net_msg.nbits()),
      net_in(this, "net_in", net_msg.nbits()), msg_(net_msg),
      mem_types_(memIfcTypes()), latency_(latency)
{
    out_ = std::make_unique<stdlib::OutQueueAdapter>(net_out, 8);
    in_ = std::make_unique<stdlib::InQueueAdapter>(net_in, 8);

    const BitStructLayout payload = payloadFmt();
    tickFl("mem_logic", [this, payload] {
        ++now_;
        in_->xtick();
        out_->xtick();

        // Accept one request per cycle.
        if (!in_->empty()) {
            Bits m = in_->pop();
            uint64_t src = msg_.get(m, "src").toUint64();
            Bits pay = msg_.get(m, "payload");
            Bits body = payload.get(pay, "body");
            uint64_t type = mem_types_.req.get(body, "type").toUint64();
            uint32_t addr = static_cast<uint32_t>(
                mem_types_.req.get(body, "addr").toUint64());
            uint32_t data = static_cast<uint32_t>(
                mem_types_.req.get(body, "data").toUint64());

            Bits resp(33);
            if (type == static_cast<uint64_t>(MemReqType::Read)) {
                uint32_t value = (addr & ~3u) == (kWhoAmIAddr & ~3u)
                                     ? static_cast<uint32_t>(src)
                                     : readWord(addr);
                resp = mem_types_.resp.pack({0, value});
            } else {
                writeWord(addr, data);
                resp = mem_types_.resp.pack({1, 0});
            }
            ++num_requests_;

            Bits rpay(msg_.field("payload").nbits);
            rpay.setSlice(0, resp);
            rpay.setBit(60, pay.bit(60)); // echo the port tag
            Bits rmsg(msg_.nbits());
            rmsg = msg_.set(rmsg, "dest", Bits(32, src));
            rmsg = msg_.set(rmsg, "payload", rpay);
            pending_.push_back(
                Pending{now_ + static_cast<uint64_t>(latency_) - 1,
                        rmsg});
        }
        if (!pending_.empty() && pending_.front().due <= now_ &&
            !out_->full()) {
            out_->push(pending_.front().msg);
            pending_.pop_front();
        }
    });
}

uint32_t
MemNode::readWord(uint32_t addr) const
{
    auto it = words_.find(addr >> 2);
    return it == words_.end() ? 0 : it->second;
}

void
MemNode::writeWord(uint32_t addr, uint32_t value)
{
    words_[addr >> 2] = value;
}

// --------------------------------------------------------- MultiTileSystem

MultiTileSystem::MultiTileSystem(
    const std::string &name,
    std::vector<std::array<Level, 3>> tile_levels, bool cl_network,
    int mem_latency)
    : Model(nullptr, name),
      msg_(net::makeNetMsg(terminalsFor(
                               static_cast<int>(tile_levels.size())),
                           kNumMsgIds, kPayloadBits))
{
    const int ntiles = static_cast<int>(tile_levels.size());
    const int terminals = terminalsFor(ntiles);
    const int mem_terminal = ntiles;

    std::deque<InValRdy> *nin;
    std::deque<OutValRdy> *nout;
    if (cl_network) {
        cl_net_ = std::make_unique<net::MeshNetworkCL>(
            this, "net", terminals, kNumMsgIds, kPayloadBits, 4);
        nin = &cl_net_->in_;
        nout = &cl_net_->out;
    } else {
        fl_net_ = std::make_unique<net::NetworkFL>(
            this, "net", terminals, kNumMsgIds, kPayloadBits, 4);
        nin = &fl_net_->in_;
        nout = &fl_net_->out;
    }

    for (int i = 0; i < ntiles; ++i) {
        tiles_.push_back(std::make_unique<Tile>(
            this, "tile" + std::to_string(i), tile_levels[i][0],
            tile_levels[i][1], tile_levels[i][2],
            Tile::ExternalMemory{}));
        bridges_.push_back(std::make_unique<TileMemBridge>(
            this, "bridge" + std::to_string(i), i, msg_, mem_terminal));
        connectReqResp(*this, tiles_[i]->imemPort(),
                       bridges_[i]->imem_in);
        connectReqResp(*this, tiles_[i]->dmemPort(),
                       bridges_[i]->dmem_in);
        connectValRdy(*this, bridges_[i]->net_out, (*nin)[i]);
        connectValRdy(*this, (*nout)[i], bridges_[i]->net_in);
    }

    mem_node_ = std::make_unique<MemNode>(this, "memnode", msg_,
                                          mem_latency);
    connectValRdy(*this, mem_node_->net_out, (*nin)[mem_terminal]);
    connectValRdy(*this, (*nout)[mem_terminal], mem_node_->net_in);
}

void
MultiTileSystem::loadProgram(const std::vector<uint32_t> &image)
{
    for (size_t i = 0; i < image.size(); ++i)
        mem_node_->writeWord(static_cast<uint32_t>(i) * 4, image[i]);
}

// -------------------------------------------------------------- workload

Workload
makeMvmultMultiTile(int n, bool use_accel)
{
    Workload w;
    w.n = n;
    w.matrix_addr = 0x2000;
    w.vector_addr = w.matrix_addr + static_cast<uint32_t>(n) * n * 4;
    w.out_addr = w.vector_addr + static_cast<uint32_t>(n) * 4;

    // Register conventions follow programs.cc.
    Assembler a;
    // r12 = tile id (from the who-am-I register).
    a.li(12, kWhoAmIAddr);
    a.lw(12, 12, 0);
    // r7 = out_addr + id * n*4.
    a.li(13, static_cast<uint32_t>(n) * 4);
    a.mul(12, 12, 13);
    a.li(7, w.out_addr);
    a.add(7, 7, 12);
    a.li(1, w.matrix_addr);
    a.li(2, w.vector_addr);
    a.li(10, static_cast<uint32_t>(n));
    a.addi(3, 0, 0);
    if (use_accel) {
        a.accx(0, 10, 1);
        a.accx(0, 2, 3);
        a.label("row");
        a.accx(0, 1, 2);
        a.accx(4, 0, 0);
        a.sw(4, 7, 0);
        a.addi(1, 1, n * 4);
    } else {
        a.label("row");
        a.addi(4, 0, 0);
        a.add(9, 2, 0);
        a.addi(8, 10, 0);
        a.label("inner");
        a.lw(5, 1, 0);
        a.lw(6, 9, 0);
        a.mul(5, 5, 6);
        a.add(4, 4, 5);
        a.addi(1, 1, 4);
        a.addi(9, 9, 4);
        a.addi(8, 8, -1);
        a.bne(8, 0, "inner");
        a.sw(4, 7, 0);
    }
    a.addi(7, 7, 4);
    a.addi(3, 3, 1);
    a.bne(3, 10, "row");
    a.halt();
    w.image = a.finish();
    return w;
}

void
loadMvmultData(MemNode &mem, const Workload &workload, uint64_t seed)
{
    const uint32_t n = static_cast<uint32_t>(workload.n);
    for (uint32_t i = 0; i < n * n; ++i)
        mem.writeWord(workload.matrix_addr + i * 4,
                      mvmultElement(seed, i));
    for (uint32_t i = 0; i < n; ++i)
        mem.writeWord(workload.vector_addr + i * 4,
                      mvmultElement(seed + 1, i));
}

} // namespace tile
} // namespace cmtl
