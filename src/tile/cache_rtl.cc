#include "cache.h"

namespace cmtl {
namespace tile {

namespace {
constexpr uint64_t kIdle = 0;
constexpr uint64_t kResp = 1;  //!< hit response ready (can pipeline)
constexpr uint64_t kFill = 2;  //!< pipelined 4-word line refill
constexpr uint64_t kWReq = 3;  //!< issue write-through
constexpr uint64_t kWWait = 4; //!< wait write ack
constexpr uint64_t kMResp = 5; //!< miss/write response ready
} // namespace

CacheRTL::CacheRTL(Model *parent, const std::string &name, int nlines)
    : CacheBase(parent, name), nlines_(nlines),
      tags_(this, "tags", 24 - bitsFor(nlines), nlines),
      data_(this, "data", 32, nlines * 4), state_(this, "state", 3),
      req_r_(this, "req_r", proc_ifc.types.req.nbits()),
      resp_r_(this, "resp_r", proc_ifc.types.resp.nbits()),
      hit_(this, "hit", 1), acc_cnt_(this, "acc_cnt", 32),
      miss_cnt_(this, "miss_cnt", 32),
      fill_issued_(this, "fill_issued", 3),
      fill_got_(this, "fill_got", 3)
{
    const int ib = bitsFor(nlines); // index bits
    const int tag_bits = 23 - ib;   // 27-bit addr, 16-byte lines
    const int addr_lsb = 32;        // addr position in the request
    const int type_bit = 59;

    // Live-request fields: the hit check runs combinationally on the
    // incoming message so hits pipeline (a new request is accepted
    // while the previous response fires).
    auto live_word = [&] {
        return rd(proc_ifc.req.msg).slice(addr_lsb + 2, 2);
    };
    auto live_idx = [&] {
        return rd(proc_ifc.req.msg).slice(addr_lsb + 4, ib);
    };
    auto live_tag = [&] {
        return rd(proc_ifc.req.msg)
            .slice(addr_lsb + 4 + ib, tag_bits);
    };
    auto live_write = [&] { return rd(proc_ifc.req.msg).bit(type_bit); };
    auto live_data = [&] { return rd(proc_ifc.req.msg).slice(0, 32); };

    // Latched-request fields (miss handling).
    auto req_word = [&] { return rd(req_r_).slice(addr_lsb + 2, 2); };
    auto req_idx = [&] { return rd(req_r_).slice(addr_lsb + 4, ib); };
    auto req_tag = [&] {
        return rd(req_r_).slice(addr_lsb + 4 + ib, tag_bits);
    };
    auto req_line_addr = [&] {
        // Byte address of the line base: {tag, idx, 0000}.
        return cat({req_tag(), req_idx(), lit(4, 0)});
    };

    auto &hc = combinational("hit_comb");
    {
        IrExpr entry = hc.let("entry", aread(tags_, live_idx()));
        hc.assign(hit_, entry.bit(tag_bits) &&
                            (entry.slice(0, tag_bits) == live_tag()));
    }

    auto &rq = combinational("req_comb");
    {
        IrExpr st = rd(state_);
        IrExpr resp_firing =
            ((st == kResp) || (st == kMResp)) && rd(proc_ifc.resp.rdy);
        rq.assign(proc_ifc.req.rdy,
                  (st == kIdle) || ((st == kResp) && resp_firing));
        rq.assign(proc_ifc.resp.val, (st == kResp) || (st == kMResp));
        rq.assign(proc_ifc.resp.msg, rd(resp_r_));
        // Refill requests stream one word per cycle; the write-through
        // path forwards the original request.
        IrExpr fill_addr =
            rq.let("fill_addr",
                   req_line_addr() +
                       (rd(fill_issued_).zext(27) << lit(2, 2)));
        rq.assign(mem_ifc.req.val,
                  ((st == kFill) && (rd(fill_issued_) < 4u)) ||
                      (st == kWReq));
        rq.assign(mem_ifc.req.msg,
                  mux(st == kWReq, rd(req_r_),
                      cat({lit(1, 0), fill_addr(26, 0), lit(32, 0)})));
        rq.assign(mem_ifc.resp.rdy, (st == kFill) || (st == kWWait));
    }

    auto &t = tickRtl("fsm");
    t.if_(rd(reset), [&] {
        t.assign(state_, kIdle);
        t.assign(acc_cnt_, 0);
        t.assign(miss_cnt_, 0);
    },
    [&] {
        IrExpr st = rd(state_);
        IrExpr req_fire =
            rd(proc_ifc.req.val) && rd(proc_ifc.req.rdy);
        IrExpr resp_fire =
            rd(proc_ifc.resp.val) && rd(proc_ifc.resp.rdy);

        // Accept path (from IDLE, or pipelined from a draining hit).
        auto accept = [&] {
            t.assign(acc_cnt_, rd(acc_cnt_) + 1u);
            t.if_(live_write(), [&] {
                t.if_(rd(hit_), [&] {
                    t.writeArray(data_, cat(live_idx(), live_word()),
                                 live_data());
                });
                t.assign(req_r_, rd(proc_ifc.req.msg));
                t.assign(state_, kWReq);
            },
            [&] {
                t.if_(rd(hit_), [&] {
                    t.assign(resp_r_,
                             cat(lit(1, 0),
                                 aread(data_, cat(live_idx(),
                                                  live_word()))));
                    t.assign(state_, kResp);
                },
                [&] {
                    t.assign(miss_cnt_, rd(miss_cnt_) + 1u);
                    t.assign(req_r_, rd(proc_ifc.req.msg));
                    t.assign(fill_issued_, 0);
                    t.assign(fill_got_, 0);
                    t.assign(state_, kFill);
                });
            });
        };

        t.if_(st == kIdle, [&] { t.if_(req_fire, accept); });
        t.if_(st == kResp, [&] {
            t.if_(resp_fire, [&] {
                t.assign(state_, kIdle);
                t.if_(req_fire, accept); // pipelined accept
            });
        });

        // Pipelined refill: issue up to one read per cycle while
        // collecting in-order responses into the line.
        t.if_(st == kFill, [&] {
            t.if_(rd(mem_ifc.req.val) && rd(mem_ifc.req.rdy), [&] {
                t.assign(fill_issued_, rd(fill_issued_) + 1u);
            });
            t.if_(rd(mem_ifc.resp.val), [&] {
                IrExpr word = rd(fill_got_).slice(0, 2);
                IrExpr rdata = rd(mem_ifc.resp.msg).slice(0, 32);
                t.writeArray(data_, cat(req_idx(), word), rdata);
                t.assign(fill_got_, rd(fill_got_) + 1u);
                // The requested word forms the response.
                t.if_(word == req_word(), [&] {
                    t.assign(resp_r_, cat(lit(1, 0), rdata));
                });
                t.if_(rd(fill_got_) == 3u, [&] {
                    t.writeArray(tags_, req_idx(),
                                 cat(lit(1, 1), req_tag()));
                    t.assign(state_, kMResp);
                });
            });
        });
        t.if_(st == kWReq && rd(mem_ifc.req.rdy),
              [&] { t.assign(state_, kWWait); });
        t.if_(st == kWWait && rd(mem_ifc.resp.val), [&] {
            t.assign(resp_r_, cat(lit(1, 1), lit(32, 0)));
            t.assign(state_, kMResp);
        });
        t.if_(st == kMResp && resp_fire,
              [&] { t.assign(state_, kIdle); });
    });
}

uint64_t
CacheRTL::numAccesses() const
{
    return acc_cnt_.value().toUint64();
}

uint64_t
CacheRTL::numMisses() const
{
    return miss_cnt_.value().toUint64();
}

} // namespace tile
} // namespace cmtl
