/**
 * @file
 * Workload programs for the tile (paper Section III-C).
 *
 * The headline workload is a matrix-vector multiplication: n dot
 * products of length n. Two versions exercise the tile: a scalar
 * software implementation with a loop-unrolled inner loop (the
 * paper's "traditional scalar implementation with loop-unrolling
 * optimizations"), and an accelerated version that configures the
 * dot-product coprocessor once per row.
 */

#ifndef CMTL_TILE_PROGRAMS_H
#define CMTL_TILE_PROGRAMS_H

#include <cstdint>
#include <vector>

#include "stdlib/test_memory.h"
#include "tile/isa.h"

namespace cmtl {
namespace tile {

/** A program plus its data-section layout. */
struct Workload
{
    std::vector<uint32_t> image;
    uint32_t matrix_addr;
    uint32_t vector_addr;
    uint32_t out_addr;
    int n;
};

/** Scalar mvmult with the inner loop unrolled by @p unroll. */
Workload makeMvmultScalar(int n, int unroll = 4);

/** Accelerated mvmult using the dot-product coprocessor. */
Workload makeMvmultAccel(int n);

/** Deterministic input data for an n x n mvmult. */
void loadMvmultData(stdlib::TestMemory &mem, const Workload &workload,
                    uint64_t seed = 1);

/** Host-computed expected output vector. */
std::vector<uint32_t> expectedMvmult(const Workload &workload,
                                     uint64_t seed = 1);

/** The value stored at matrix/vector position, shared by all paths. */
uint32_t mvmultElement(uint64_t seed, uint32_t index);

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_PROGRAMS_H
