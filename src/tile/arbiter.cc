#include "arbiter.h"

namespace cmtl {
namespace tile {

MemArbiter::MemArbiter(Model *parent, const std::string &name)
    : Model(parent, name)
{
    for (int p = 0; p < 2; ++p) {
        child_.emplace_back(this, "child" + std::to_string(p),
                            memIfcTypes());
        adapters_.emplace_back(child_.back(), 4);
    }
    mem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(
        *(parent_ifc_ = std::make_unique<ParentReqRespBundle>(
              this, "mem_ifc", memIfcTypes())),
        4);

    tickCl("arb_logic", [this] {
        for (auto &ad : adapters_)
            ad.xtick();
        mem_->xtick();
        // Route responses back to the owning requester, in order.
        while (!mem_->resp_q.empty() && !owners_.empty()) {
            int owner = owners_.front();
            if (adapters_[owner].resp_q.full())
                break;
            adapters_[owner].pushResp(mem_->getResp());
            owners_.pop_front();
        }
        // Round-robin request arbitration, one grant per cycle.
        for (int k = 0; k < 2 && !mem_->req_q.full(); ++k) {
            int p = (rr_ + k) % 2;
            if (!adapters_[p].req_q.empty()) {
                mem_->pushReq(adapters_[p].getReq());
                owners_.push_back(p);
                rr_ = (p + 1) % 2;
                break;
            }
        }
    });
}

} // namespace tile
} // namespace cmtl
