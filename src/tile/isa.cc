#include "isa.h"

#include <sstream>
#include <stdexcept>

namespace cmtl {
namespace tile {

DecodedInst
decode(uint32_t inst)
{
    DecodedInst d;
    d.op = static_cast<Op>((inst >> 26) & 0x3f);
    d.rd = (inst >> 22) & 0xf;
    d.rs1 = (inst >> 18) & 0xf;
    d.rs2 = (inst >> 14) & 0xf;
    d.imm = static_cast<int16_t>(inst & 0xffff);
    return d;
}

uint32_t
encodeR(Op op, int rd, int rs1, int rs2)
{
    return (static_cast<uint32_t>(op) << 26) |
           (static_cast<uint32_t>(rd) << 22) |
           (static_cast<uint32_t>(rs1) << 18) |
           (static_cast<uint32_t>(rs2) << 14);
}

uint32_t
encodeI(Op op, int rd, int rs1, int32_t imm)
{
    return (static_cast<uint32_t>(op) << 26) |
           (static_cast<uint32_t>(rd) << 22) |
           (static_cast<uint32_t>(rs1) << 18) |
           (static_cast<uint32_t>(imm) & 0xffff);
}

std::string
disassemble(uint32_t inst)
{
    DecodedInst d = decode(inst);
    std::ostringstream os;
    auto r = [](int i) { return "r" + std::to_string(i); };
    switch (d.op) {
      case Op::Add:
        if (d.rd == 0 && d.rs1 == 0 && d.rs2 == 0)
            return "nop";
        os << "add " << r(d.rd) << ", " << r(d.rs1) << ", " << r(d.rs2);
        break;
      case Op::Sub: os << "sub " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Mul: os << "mul " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::And: os << "and " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Or: os << "or " << r(d.rd) << ", " << r(d.rs1) << ", "
                      << r(d.rs2); break;
      case Op::Xor: os << "xor " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Sll: os << "sll " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Srl: os << "srl " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Slt: os << "slt " << r(d.rd) << ", " << r(d.rs1) << ", "
                       << r(d.rs2); break;
      case Op::Addi: os << "addi " << r(d.rd) << ", " << r(d.rs1) << ", "
                        << d.imm; break;
      case Op::Lui: os << "lui " << r(d.rd) << ", " << d.imm; break;
      case Op::Lw: os << "lw " << r(d.rd) << ", " << d.imm << "("
                      << r(d.rs1) << ")"; break;
      case Op::Sw: os << "sw " << r(d.rd) << ", " << d.imm << "("
                      << r(d.rs1) << ")"; break;
      case Op::Beq: os << "beq " << r(d.rs1) << ", " << r(d.rd) << ", "
                       << d.imm; break;
      case Op::Bne: os << "bne " << r(d.rs1) << ", " << r(d.rd) << ", "
                       << d.imm; break;
      case Op::Blt: os << "blt " << r(d.rs1) << ", " << r(d.rd) << ", "
                       << d.imm; break;
      case Op::Jal: os << "jal " << r(d.rd) << ", " << d.imm; break;
      case Op::Jr: os << "jr " << r(d.rs1); break;
      case Op::Accx: os << "accx " << r(d.rd) << ", " << r(d.rs1) << ", "
                        << d.imm; break;
      case Op::Halt: return "halt";
      default: os << "unknown(" << static_cast<int>(d.op) << ")";
    }
    return os.str();
}

void
Assembler::emitR(Op op, int rd, int rs1, int rs2)
{
    words_.push_back(encodeR(op, rd, rs1, rs2));
}

void
Assembler::emitI(Op op, int rd, int rs1, int32_t imm)
{
    if (imm < -32768 || imm > 65535)
        throw std::out_of_range("immediate out of range");
    words_.push_back(encodeI(op, rd, rs1, imm));
}

void
Assembler::emitBranch(Op op, int ra, int rb, const std::string &target)
{
    fixups_.push_back(Fixup{words_.size(), target});
    // rs1 = first operand, rd = second operand; imm patched later.
    words_.push_back(encodeI(op, rb, ra, 0));
}

void
Assembler::beq(int ra, int rb, const std::string &target)
{
    emitBranch(Op::Beq, ra, rb, target);
}

void
Assembler::bne(int ra, int rb, const std::string &target)
{
    emitBranch(Op::Bne, ra, rb, target);
}

void
Assembler::blt(int ra, int rb, const std::string &target)
{
    emitBranch(Op::Blt, ra, rb, target);
}

void
Assembler::jal(int rd, const std::string &target)
{
    fixups_.push_back(Fixup{words_.size(), target});
    words_.push_back(encodeI(Op::Jal, rd, 0, 0));
}

void
Assembler::li(int rd, uint32_t value)
{
    if (value <= 0x7fff) {
        addi(rd, 0, static_cast<int32_t>(value));
        return;
    }
    // lui writes the upper 16 bits; or-in the lower half via addi on a
    // zero-extended immediate path (addi sign-extends, so keep the low
    // half below 0x8000 by adjusting the upper half).
    uint32_t hi = value >> 16;
    uint32_t lo = value & 0xffff;
    if (lo >= 0x8000) {
        hi += 1;
        lui(rd, static_cast<int32_t>(hi & 0xffff));
        addi(rd, rd, static_cast<int32_t>(lo) - 0x10000);
    } else {
        lui(rd, static_cast<int32_t>(hi));
        addi(rd, rd, static_cast<int32_t>(lo));
    }
}

void
Assembler::label(const std::string &name)
{
    if (labels_.count(name))
        throw std::invalid_argument("duplicate label " + name);
    labels_[name] = pc();
}

std::vector<uint32_t>
Assembler::finish()
{
    for (const Fixup &fixup : fixups_) {
        auto it = labels_.find(fixup.target);
        if (it == labels_.end())
            throw std::invalid_argument("undefined label " + fixup.target);
        int32_t delta =
            (static_cast<int32_t>(it->second) -
             (static_cast<int32_t>(fixup.index) * 4 + 4)) /
            4;
        words_[fixup.index] =
            (words_[fixup.index] & 0xffff0000u) |
            (static_cast<uint32_t>(delta) & 0xffff);
    }
    fixups_.clear();
    return words_;
}

// ------------------------------------------------------------- GoldenIss

GoldenIss::GoldenIss(const std::vector<uint32_t> &program)
{
    for (size_t i = 0; i < program.size(); ++i)
        mem_[static_cast<uint32_t>(i) * 4] = program[i];
}

void
GoldenIss::writeMem(uint32_t addr, uint32_t value)
{
    mem_[addr & ~3u] = value;
}

uint32_t
GoldenIss::readMem(uint32_t addr) const
{
    auto it = mem_.find(addr & ~3u);
    return it == mem_.end() ? 0 : it->second;
}

uint64_t
GoldenIss::run(uint64_t max_insts)
{
    uint64_t executed = 0;
    while (!halted_ && executed < max_insts) {
        DecodedInst d = decode(readMem(pc_));
        uint32_t next_pc = pc_ + 4;
        uint32_t a = regs_[d.rs1];
        uint32_t b = regs_[d.rs2];
        uint32_t result = 0;
        bool write_rd = false;
        switch (d.op) {
          case Op::Add: result = a + b; write_rd = true; break;
          case Op::Sub: result = a - b; write_rd = true; break;
          case Op::Mul: result = a * b; write_rd = true; break;
          case Op::And: result = a & b; write_rd = true; break;
          case Op::Or: result = a | b; write_rd = true; break;
          case Op::Xor: result = a ^ b; write_rd = true; break;
          case Op::Sll: result = a << (b & 31); write_rd = true; break;
          case Op::Srl: result = a >> (b & 31); write_rd = true; break;
          case Op::Slt:
            result = static_cast<int32_t>(a) < static_cast<int32_t>(b);
            write_rd = true;
            break;
          case Op::Addi:
            result = a + static_cast<uint32_t>(d.imm);
            write_rd = true;
            break;
          case Op::Lui:
            result = static_cast<uint32_t>(d.imm) << 16;
            write_rd = true;
            break;
          case Op::Lw:
            result = readMem(a + static_cast<uint32_t>(d.imm));
            write_rd = true;
            break;
          case Op::Sw:
            writeMem(a + static_cast<uint32_t>(d.imm), regs_[d.rd]);
            break;
          case Op::Beq:
            if (a == regs_[d.rd])
                next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
            break;
          case Op::Bne:
            if (a != regs_[d.rd])
                next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
            break;
          case Op::Blt:
            if (static_cast<int32_t>(a) <
                static_cast<int32_t>(regs_[d.rd]))
                next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
            break;
          case Op::Jal:
            result = pc_ + 4;
            write_rd = true;
            next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
            break;
          case Op::Jr:
            next_pc = a;
            break;
          case Op::Accx:
            switch (d.imm) {
              case 1: acc_size_ = a; break;
              case 2: acc_src0_ = a; break;
              case 3: acc_src1_ = a; break;
              case 0: {
                uint32_t sum = 0;
                for (uint32_t i = 0; i < acc_size_; ++i) {
                    sum += readMem(acc_src0_ + i * 4) *
                           readMem(acc_src1_ + i * 4);
                }
                result = sum;
                write_rd = true;
                break;
              }
              default: break;
            }
            break;
          case Op::Halt:
            halted_ = true;
            next_pc = pc_;
            break;
          default:
            throw std::runtime_error("golden ISS: illegal instruction");
        }
        if (write_rd && d.rd != 0)
            regs_[d.rd] = result;
        regs_[0] = 0;
        pc_ = next_pc;
        ++executed;
    }
    return executed;
}

} // namespace tile
} // namespace cmtl
