#include "dotprod.h"

#include <numeric>

namespace cmtl {
namespace tile {

DotProductFL::DotProductFL(Model *parent, const std::string &name)
    : DotProductBase(parent, name)
{
    cpu_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(cpu_ifc);
    mem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(mem_ifc);

    tickFl("logic", [this] {
        cpu_->xtick();
        mem_->xtick();
        const auto &creq = cpu_->types.req;

        if (running_) {
            // One element in flight at a time: the unpipelined FL
            // behaviour the paper contrasts against the CL model.
            if (waiting_resp_) {
                if (!mem_->resp_q.empty()) {
                    Bits resp = mem_->getResp();
                    elems_.push_back(static_cast<uint32_t>(
                        mem_->types.resp.get(resp, "data").toUint64()));
                    waiting_resp_ = false;
                    ++fetch_index_;
                }
            } else if (fetch_index_ < 2 * size_) {
                if (!mem_->req_q.full()) {
                    uint32_t base =
                        fetch_index_ < size_ ? src0_ : src1_;
                    uint32_t i = fetch_index_ < size_
                                     ? fetch_index_
                                     : fetch_index_ - size_;
                    mem_->pushReq(makeMemReq(mem_->types.req,
                                             MemReqType::Read,
                                             base + i * 4));
                    waiting_resp_ = true;
                }
            } else if (!cpu_->resp_q.full()) {
                // All data fetched: one library call computes the dot
                // product (the numpy.dot analog).
                uint32_t result = std::inner_product(
                    elems_.begin(), elems_.begin() + size_,
                    elems_.begin() + size_, uint32_t(0));
                cpu_->pushResp(result);
                running_ = false;
            }
            return;
        }

        if (!cpu_->req_q.empty() && !cpu_->resp_q.full()) {
            Bits req = cpu_->getReq();
            uint64_t ctrl = creq.get(req, "ctrl_msg").toUint64();
            uint32_t data = static_cast<uint32_t>(
                creq.get(req, "data").toUint64());
            switch (ctrl) {
              case 1: size_ = data; break;
              case 2: src0_ = data; break;
              case 3: src1_ = data; break;
              case 0:
                running_ = true;
                waiting_resp_ = false;
                fetch_index_ = 0;
                elems_.clear();
                break;
              default: break;
            }
        }
    });
}

std::string
DotProductFL::lineTrace() const
{
    return running_ ? "A:run " : "A:idle";
}

} // namespace tile
} // namespace cmtl
