#include "tile.h"

#include <stdexcept>

namespace cmtl {
namespace tile {

Tile::Tile(const std::string &name, Level proc_level, Level cache_level,
           Level accel_level, int mem_latency)
    : Model(nullptr, name), proc_level_(proc_level),
      cache_level_(cache_level), accel_level_(accel_level)
{
    build(proc_level, cache_level, accel_level, mem_latency,
          /*external_memory=*/false);
}

Tile::Tile(Model *parent, const std::string &name, Level proc_level,
           Level cache_level, Level accel_level, ExternalMemory)
    : Model(parent, name), proc_level_(proc_level),
      cache_level_(cache_level), accel_level_(accel_level)
{
    build(proc_level, cache_level, accel_level, /*mem_latency=*/0,
          /*external_memory=*/true);
}

void
Tile::build(Level proc_level, Level cache_level, Level accel_level,
            int mem_latency, bool external_memory)
{
    switch (proc_level) {
      case Level::FL:
        proc_ = std::make_unique<ProcFL>(this, "proc");
        break;
      case Level::CL:
        proc_ = std::make_unique<ProcCL>(this, "proc");
        break;
      case Level::RTL:
        // The paper's tile uses a 5-stage pipelined RISC processor.
        proc_ = std::make_unique<ProcRTL5>(this, "proc");
        break;
    }
    auto make_cache = [&](const std::string &cname)
        -> std::unique_ptr<CacheBase> {
        switch (cache_level) {
          case Level::FL:
            return std::make_unique<CacheFL>(this, cname);
          case Level::CL:
            return std::make_unique<CacheCL>(this, cname);
          case Level::RTL:
            return std::make_unique<CacheRTL>(this, cname);
        }
        return nullptr;
    };
    icache_ = make_cache("icache");
    dcache_ = make_cache("dcache");
    switch (accel_level) {
      case Level::FL:
        accel_ = std::make_unique<DotProductFL>(this, "accel");
        break;
      case Level::CL:
        accel_ = std::make_unique<DotProductCL>(this, "accel");
        break;
      case Level::RTL:
        accel_ = std::make_unique<DotProductRTL>(this, "accel");
        break;
    }
    arbiter_ = std::make_unique<MemArbiter>(this, "arbiter");

    // Fetch path: processor -> icache; data path: processor and
    // accelerator share the dcache through the arbiter.
    connectReqResp(*this, proc_->imem_ifc, icache_->proc_ifc);
    connectReqResp(*this, proc_->dmem_ifc, arbiter_->port(0));
    connectReqResp(*this, accel_->mem_ifc, arbiter_->port(1));
    connectReqResp(*this, arbiter_->memPort(), dcache_->proc_ifc);
    connectReqResp(*this, proc_->acc_ifc, accel_->cpu_ifc);

    if (external_memory) {
        // Export the refill ports for an external memory system.
        imem_port_ = std::make_unique<ParentReqRespBundle>(
            this, "imem_port", memIfcTypes());
        dmem_port_ = std::make_unique<ParentReqRespBundle>(
            this, "dmem_port", memIfcTypes());
        connectReqResp(*this, icache_->mem_ifc, *imem_port_);
        connectReqResp(*this, dcache_->mem_ifc, *dmem_port_);
    } else {
        mem_ = std::make_unique<stdlib::TestMemory>(this, "mem", 2,
                                                    mem_latency);
        connectReqResp(*this, icache_->mem_ifc, mem_->ifc[0]);
        connectReqResp(*this, dcache_->mem_ifc, mem_->ifc[1]);
    }
}

void
Tile::loadProgram(const std::vector<uint32_t> &image)
{
    if (!mem_)
        throw std::logic_error(
            "loadProgram: tile has external memory; load the program "
            "into the memory node instead");
    for (size_t i = 0; i < image.size(); ++i)
        mem_->writeWord(static_cast<uint64_t>(i) * 4, image[i]);
}

} // namespace tile
} // namespace cmtl
