#include "programs.h"

namespace cmtl {
namespace tile {

namespace {
constexpr uint32_t kMatrixBase = 0x2000;

// Register conventions for the generated programs.
constexpr int rA = 1;    // current matrix row pointer
constexpr int rX = 2;    // vector base
constexpr int rRow = 3;  // row counter
constexpr int rAcc = 4;  // accumulator
constexpr int rT0 = 5;
constexpr int rT1 = 6;
constexpr int rY = 7;    // output pointer
constexpr int rCnt = 8;  // inner counter
constexpr int rXc = 9;   // current vector pointer
constexpr int rN = 10;   // n
} // namespace

uint32_t
mvmultElement(uint64_t seed, uint32_t index)
{
    uint64_t h = seed * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(index) * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 29;
    return static_cast<uint32_t>(h & 0xff);
}

Workload
makeMvmultScalar(int n, int unroll)
{
    if (n % unroll != 0)
        unroll = 1;
    Workload w;
    w.n = n;
    w.matrix_addr = kMatrixBase;
    w.vector_addr = kMatrixBase + static_cast<uint32_t>(n) * n * 4;
    w.out_addr = w.vector_addr + static_cast<uint32_t>(n) * 4;

    Assembler a;
    a.li(rA, w.matrix_addr);
    a.li(rX, w.vector_addr);
    a.li(rY, w.out_addr);
    a.li(rN, static_cast<uint32_t>(n));
    a.addi(rRow, 0, 0);
    a.label("row");
    a.addi(rAcc, 0, 0);
    a.add(rXc, rX, 0);
    a.addi(rCnt, rN, 0);
    a.label("inner");
    for (int k = 0; k < unroll; ++k) {
        a.lw(rT0, rA, k * 4);
        a.lw(rT1, rXc, k * 4);
        a.mul(rT0, rT0, rT1);
        a.add(rAcc, rAcc, rT0);
    }
    a.addi(rA, rA, unroll * 4);
    a.addi(rXc, rXc, unroll * 4);
    a.addi(rCnt, rCnt, -unroll);
    a.bne(rCnt, 0, "inner");
    a.sw(rAcc, rY, 0);
    a.addi(rY, rY, 4);
    a.addi(rRow, rRow, 1);
    a.bne(rRow, rN, "row");
    a.halt();
    w.image = a.finish();
    return w;
}

Workload
makeMvmultAccel(int n)
{
    Workload w;
    w.n = n;
    w.matrix_addr = kMatrixBase;
    w.vector_addr = kMatrixBase + static_cast<uint32_t>(n) * n * 4;
    w.out_addr = w.vector_addr + static_cast<uint32_t>(n) * 4;

    Assembler a;
    a.li(rA, w.matrix_addr);
    a.li(rX, w.vector_addr);
    a.li(rY, w.out_addr);
    a.li(rN, static_cast<uint32_t>(n));
    a.accx(0, rN, 1); // size
    a.accx(0, rX, 3); // src1 = vector, constant across rows
    a.addi(rRow, 0, 0);
    a.label("row");
    a.accx(0, rA, 2);   // src0 = current row
    a.accx(rAcc, 0, 0); // go; result -> rAcc
    a.sw(rAcc, rY, 0);
    a.addi(rA, rA, n * 4);
    a.addi(rY, rY, 4);
    a.addi(rRow, rRow, 1);
    a.bne(rRow, rN, "row");
    a.halt();
    w.image = a.finish();
    return w;
}

void
loadMvmultData(stdlib::TestMemory &mem, const Workload &workload,
               uint64_t seed)
{
    const uint32_t n = static_cast<uint32_t>(workload.n);
    for (uint32_t i = 0; i < n * n; ++i)
        mem.writeWord(workload.matrix_addr + i * 4,
                      mvmultElement(seed, i));
    for (uint32_t i = 0; i < n; ++i)
        mem.writeWord(workload.vector_addr + i * 4,
                      mvmultElement(seed + 1, i));
}

std::vector<uint32_t>
expectedMvmult(const Workload &workload, uint64_t seed)
{
    const uint32_t n = static_cast<uint32_t>(workload.n);
    std::vector<uint32_t> out(n, 0);
    for (uint32_t r = 0; r < n; ++r) {
        uint32_t acc = 0;
        for (uint32_t i = 0; i < n; ++i) {
            acc += mvmultElement(seed, r * n + i) *
                   mvmultElement(seed + 1, i);
        }
        out[r] = acc;
    }
    return out;
}

} // namespace tile
} // namespace cmtl
