/**
 * @file
 * TinyRISC: the small RISC ISA executed by the tile's processor.
 *
 * 32-bit instructions, 16 general-purpose registers (r0 is hardwired
 * to zero), word-addressed loads/stores, and a coprocessor-transfer
 * instruction (ACCX) implementing the paper's accelerator protocol:
 * writes to accelerator control registers 1..3 configure size and
 * source base addresses; a transfer to control register 0 starts the
 * computation and returns the result.
 *
 * Encoding:
 *   [31:26] opcode
 *   [25:22] rd     (also: store-data register, branch second operand)
 *   [21:18] rs1
 *   [17:14] rs2    (R-type only)
 *   [15:0]  imm16  (I-type only, sign-extended; branch offsets are in
 *                   instruction words, PC-relative to PC+4)
 */

#ifndef CMTL_TILE_ISA_H
#define CMTL_TILE_ISA_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cmtl {
namespace tile {

constexpr int kNumRegs = 16;

/** Instruction opcodes. */
enum class Op : uint8_t
{
    // R-type.
    Add = 0, Sub, Mul, And, Or, Xor, Sll, Srl, Slt,
    // I-type.
    Addi = 16, Lui, Lw, Sw, Beq, Bne, Blt,
    /** Jump-and-link: rd = pc+4, pc += 4 + imm*4. */
    Jal = 23,
    /** Jump register: pc = R[rs1]. */
    Jr = 24,
    // Coprocessor transfer: ACCX rd, rs1, ctrl.
    Accx = 32,
    Halt = 63,
};

/** A decoded instruction. */
struct DecodedInst
{
    Op op;
    int rd;
    int rs1;
    int rs2;
    int32_t imm; //!< sign-extended imm16

    bool
    isRType() const
    {
        return static_cast<uint8_t>(op) < 16;
    }
};

/** Decode a 32-bit instruction word. */
DecodedInst decode(uint32_t inst);

/** Encode helpers. */
uint32_t encodeR(Op op, int rd, int rs1, int rs2);
uint32_t encodeI(Op op, int rd, int rs1, int32_t imm);

/** Render an instruction for line tracing, e.g. "addi r3, r3, -1". */
std::string disassemble(uint32_t inst);

/**
 * A tiny two-pass assembler with labels.
 *
 *   Assembler a;
 *   a.label("loop");
 *   a.lw(5, 1, 0);
 *   a.bne(3, 0, "loop");
 *   std::vector<uint32_t> words = a.finish();
 */
class Assembler
{
  public:
    void add(int rd, int rs1, int rs2) { emitR(Op::Add, rd, rs1, rs2); }
    void sub(int rd, int rs1, int rs2) { emitR(Op::Sub, rd, rs1, rs2); }
    void mul(int rd, int rs1, int rs2) { emitR(Op::Mul, rd, rs1, rs2); }
    void and_(int rd, int rs1, int rs2) { emitR(Op::And, rd, rs1, rs2); }
    void or_(int rd, int rs1, int rs2) { emitR(Op::Or, rd, rs1, rs2); }
    void xor_(int rd, int rs1, int rs2) { emitR(Op::Xor, rd, rs1, rs2); }
    void sll(int rd, int rs1, int rs2) { emitR(Op::Sll, rd, rs1, rs2); }
    void srl(int rd, int rs1, int rs2) { emitR(Op::Srl, rd, rs1, rs2); }
    void slt(int rd, int rs1, int rs2) { emitR(Op::Slt, rd, rs1, rs2); }

    void addi(int rd, int rs1, int32_t imm)
    {
        emitI(Op::Addi, rd, rs1, imm);
    }
    /** rd = imm << 16. */
    void lui(int rd, int32_t imm) { emitI(Op::Lui, rd, 0, imm); }
    /** rd = mem[R[rs1] + imm]. */
    void lw(int rd, int rs1, int32_t imm) { emitI(Op::Lw, rd, rs1, imm); }
    /** mem[R[rs1] + imm] = R[rd]. */
    void sw(int rd, int rs1, int32_t imm) { emitI(Op::Sw, rd, rs1, imm); }

    void beq(int ra, int rb, const std::string &target);
    void bne(int ra, int rb, const std::string &target);
    /** Branch if signed R[ra] < R[rb]. */
    void blt(int ra, int rb, const std::string &target);
    /** Call: rd = return address, jump to label. */
    void jal(int rd, const std::string &target);
    /** Return / indirect jump: pc = R[rs1]. */
    void jr(int rs1) { emitI(Op::Jr, 0, rs1, 0); }

    /** Transfer R[rs1] to accelerator control register @p ctrl;
     *  ctrl 0 starts the accelerator and writes the result to rd. */
    void accx(int rd, int rs1, int ctrl)
    {
        emitI(Op::Accx, rd, rs1, ctrl);
    }

    void halt() { emitI(Op::Halt, 0, 0, 0); }
    void nop() { emitR(Op::Add, 0, 0, 0); }

    /** Pseudo-instruction: load a full 32-bit constant (lui+addi). */
    void li(int rd, uint32_t value);

    /** Bind a label to the next instruction's address. */
    void label(const std::string &name);

    /** Current program counter (bytes). */
    uint32_t pc() const { return static_cast<uint32_t>(words_.size()) * 4; }

    /** Resolve branches and return the program image. */
    std::vector<uint32_t> finish();

  private:
    void emitR(Op op, int rd, int rs1, int rs2);
    void emitI(Op op, int rd, int rs1, int32_t imm);
    void emitBranch(Op op, int ra, int rb, const std::string &target);

    struct Fixup
    {
        size_t index;
        std::string target;
    };

    std::vector<uint32_t> words_;
    std::map<std::string, uint32_t> labels_;
    std::vector<Fixup> fixups_;
};

/**
 * A host-side golden-model executor for TinyRISC programs: the
 * simplest possible ISS, used to validate the FL/CL/RTL processors.
 * Memory is a flat word map; ACCX is emulated functionally.
 */
class GoldenIss
{
  public:
    explicit GoldenIss(const std::vector<uint32_t> &program);

    void writeMem(uint32_t addr, uint32_t value);
    uint32_t readMem(uint32_t addr) const;
    uint32_t reg(int index) const { return regs_[index]; }

    /** Run until HALT or @p max_insts; returns instructions executed. */
    uint64_t run(uint64_t max_insts = 1000000);
    bool halted() const { return halted_; }

  private:
    std::map<uint32_t, uint32_t> mem_;
    uint32_t regs_[kNumRegs] = {};
    uint32_t pc_ = 0;
    bool halted_ = false;
    // Accelerator architectural state.
    uint32_t acc_size_ = 0, acc_src0_ = 0, acc_src1_ = 0;
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_ISA_H
