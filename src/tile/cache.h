/**
 * @file
 * L1 caches at three abstraction levels.
 *
 * All three share the same serving/initiating interface pair, so any
 * level drops into the tile:
 *
 *  - CacheFL: a magic pass-through — functional behaviour, no cache
 *    timing (every request forwards to memory).
 *  - CacheCL: direct-mapped, 4-word lines, write-through/no-allocate,
 *    cycle-level timing with multi-cycle refills.
 *  - CacheRTL: direct-mapped, 1-word lines, write-through/no-allocate
 *    FSM built from IR with tag/data memory arrays; translatable and
 *    specializable.
 */

#ifndef CMTL_TILE_CACHE_H
#define CMTL_TILE_CACHE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "stdlib/adapters.h"
#include "stdlib/reqresp.h"

namespace cmtl {
namespace tile {

/** Common cache interface. */
class CacheBase : public Model
{
  public:
    ChildReqRespBundle proc_ifc; //!< from the processor / arbiter
    ParentReqRespBundle mem_ifc; //!< to main memory

    virtual uint64_t numAccesses() const { return accesses_; }
    virtual uint64_t numMisses() const { return misses_; }

  protected:
    CacheBase(Model *parent, const std::string &name)
        : Model(parent, name), proc_ifc(this, "proc_ifc", memIfcTypes()),
          mem_ifc(this, "mem_ifc", memIfcTypes())
    {}

    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

/** FL pass-through "cache". */
class CacheFL : public CacheBase
{
  public:
    CacheFL(Model *parent, const std::string &name);

  private:
    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> proc_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> mem_;
};

/** CL direct-mapped blocking cache, 4-word lines, write-through. */
class CacheCL : public CacheBase
{
  public:
    /** @param nlines number of 16-byte lines (power of two) */
    CacheCL(Model *parent, const std::string &name, int nlines = 64);

    std::string lineTrace() const override;

  private:
    static constexpr int kWordsPerLine = 4;

    struct Line
    {
        bool valid = false;
        uint32_t tag = 0;
        uint32_t data[kWordsPerLine] = {};
    };

    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> proc_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> mem_;

    std::vector<Line> lines_;
    int nlines_;
    // Refill state.
    bool refilling_ = false;
    int refill_received_ = 0;
    uint32_t refill_addr_ = 0; //!< original (word) request address
    uint32_t refill_data_[kWordsPerLine] = {};
    // In-flight memory responses: refill word (>=0) or write ack (-1).
    std::deque<int> mem_pending_;
    int outstanding_writes_ = 0;
};

/** RTL direct-mapped cache FSM with memory arrays. */
class CacheRTL : public CacheBase
{
  public:
    /** @param nlines number of 4-byte lines (power of two) */
    CacheRTL(Model *parent, const std::string &name, int nlines = 64);

    uint64_t numAccesses() const override;
    uint64_t numMisses() const override;

    std::string
    typeName() const override
    {
        return "CacheRTL_" + std::to_string(nlines_);
    }

  private:
    int nlines_;
    MemArray tags_; //!< {valid, tag}
    MemArray data_;
    Wire state_;
    Wire req_r_;    //!< latched request
    Wire resp_r_;   //!< prepared response
    Wire hit_;
    Wire acc_cnt_, miss_cnt_;
    Wire fill_issued_, fill_got_; //!< pipelined refill counters
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_CACHE_H
