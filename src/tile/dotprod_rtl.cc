#include "dotprod.h"

namespace cmtl {
namespace tile {

namespace {
constexpr uint64_t kIdle = 0;
constexpr uint64_t kRun = 1;
constexpr uint64_t kResp = 2;
} // namespace

DotProductRTL::DotProductRTL(Model *parent, const std::string &name)
    : DotProductBase(parent, name), size_(this, "size", 32),
      src0_(this, "src0", 32), src1_(this, "src1", 32),
      state_(this, "state", 2), req_cnt_(this, "req_cnt", 32),
      resp_cnt_(this, "resp_cnt", 32), done_cnt_(this, "done_cnt", 32),
      src0_data_r_(this, "src0_data_r", 32),
      src1_data_r_(this, "src1_data_r", 32), accum_(this, "accum", 32),
      mul_valid_(this, "mul_valid", kMulStages),
      mul_(this, "mul", 32, kMulStages), mul_a_(this, "mul_a", 32),
      mul_b_(this, "mul_b", 32), mul_out_(this, "mul_out", 32)
{
    const int addr_bits = mem_ifc.types.req.field("addr").nbits;
    connect(mul_a_, mul_.op_a);
    connect(mul_b_, mul_.op_b);
    connect(mul_out_, mul_.product);

    // ----------------------------------------------------- interface
    auto &rq = combinational("req_comb");
    {
        IrExpr st = rd(state_);
        rq.assign(cpu_ifc.req.rdy, st == kIdle);
        rq.assign(cpu_ifc.resp.val, st == kResp);
        rq.assign(cpu_ifc.resp.msg, rd(accum_));

        // Stage M: address generation (paper Fig 9 stage_comb_M).
        IrExpr base = mux(rd(req_cnt_).bit(0), rd(src1_), rd(src0_));
        IrExpr elem = rq.let("elem", rd(req_cnt_) >> 1);
        IrExpr addr = rq.let("addr", base + (elem << lit(3, 2)));
        rq.assign(mem_ifc.req.val,
                  (st == kRun) &&
                      (rd(req_cnt_) < (rd(size_) << lit(2, 1))));
        rq.assign(mem_ifc.req.msg,
                  cat({lit(1, 0), addr(addr_bits - 1, 0), lit(32, 0)}));
        rq.assign(mem_ifc.resp.rdy, st == kRun);

        // Stage X operands: the captured even element and the live
        // odd-response data.
        rq.assign(mul_a_, rd(src0_data_r_));
        rq.assign(mul_b_, rd(mem_ifc.resp.msg)(31, 0));
    }

    // ----------------------------------------------------------- FSM
    auto &t = tickRtl("ctrl");
    t.if_(rd(reset), [&] {
        t.assign(state_, kIdle);
        t.assign(mul_valid_, 0);
    },
    [&] {
        IrExpr st = rd(state_);

        t.if_(st == kIdle, [&] {
            t.if_(rd(cpu_ifc.req.val) && rd(cpu_ifc.req.rdy), [&] {
                IrExpr ctrl = rd(cpu_ifc.req.msg)(34, 32);
                IrExpr data = rd(cpu_ifc.req.msg)(31, 0);
                t.if_(ctrl == 1u, [&] { t.assign(size_, data); });
                t.if_(ctrl == 2u, [&] { t.assign(src0_, data); });
                t.if_(ctrl == 3u, [&] { t.assign(src1_, data); });
                t.if_(ctrl == 0u, [&] {
                    t.assign(req_cnt_, 0);
                    t.assign(resp_cnt_, 0);
                    t.assign(done_cnt_, 0);
                    t.assign(accum_, 0);
                    t.assign(mul_valid_, 0);
                    t.if_(rd(size_) == 0u,
                          [&] { t.assign(state_, kResp); },
                          [&] { t.assign(state_, kRun); });
                });
            });
        });

        t.if_(st == kRun, [&] {
            // Stage M: request issue.
            t.if_(rd(mem_ifc.req.val) && rd(mem_ifc.req.rdy),
                  [&] { t.assign(req_cnt_, rd(req_cnt_) + 1u); });

            // Stage R: response capture; odd responses launch the
            // multiplier (its operands are sampled this edge).
            IrExpr resp_fire =
                rd(mem_ifc.resp.val) && rd(mem_ifc.resp.rdy);
            IrExpr is_odd = rd(resp_cnt_).bit(0);
            t.if_(resp_fire, [&] {
                t.if_(!is_odd, [&] {
                    t.assign(src0_data_r_,
                             rd(mem_ifc.resp.msg)(31, 0));
                },
                [&] {
                    t.assign(src1_data_r_,
                             rd(mem_ifc.resp.msg)(31, 0));
                });
                t.assign(resp_cnt_, rd(resp_cnt_) + 1u);
            });

            // Stage X valid chain, aligned with the multiplier depth.
            IrExpr launched = resp_fire && is_odd;
            t.assign(mul_valid_,
                     cat(rd(mul_valid_)(kMulStages - 2, 0),
                         mux(launched, lit(1, 1), lit(1, 0))));

            // Stage A: accumulate products exiting the pipeline.
            t.if_(rd(mul_valid_).bit(kMulStages - 1), [&] {
                t.assign(accum_, rd(accum_) + rd(mul_out_));
                t.assign(done_cnt_, rd(done_cnt_) + 1u);
                t.if_(rd(done_cnt_) + 1u == rd(size_) ||
                          rd(size_) == 1u,
                      [&] { t.assign(state_, kResp); });
            });
        });

        t.if_(st == kResp, [&] {
            t.if_(rd(cpu_ifc.resp.val) && rd(cpu_ifc.resp.rdy),
                  [&] { t.assign(state_, kIdle); });
        });
    });
}

} // namespace tile
} // namespace cmtl
