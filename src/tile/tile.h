/**
 * @file
 * The accelerator-augmented compute tile (paper Figure 5a).
 *
 * Composes a processor, L1 instruction and data caches, a dot-product
 * accelerator and a shared-port arbiter, each independently at FL, CL
 * or RTL — the 27 ⟨P, C, A⟩ configurations of the paper's Figure 13 —
 * plus a backing test memory.
 */

#ifndef CMTL_TILE_TILE_H
#define CMTL_TILE_TILE_H

#include <memory>
#include <string>

#include "stdlib/test_memory.h"
#include "tile/arbiter.h"
#include "tile/cache.h"
#include "tile/dotprod.h"
#include "tile/proc.h"

namespace cmtl {
namespace tile {

/** Abstraction level of one tile component. */
enum class Level { FL, CL, RTL };

inline const char *
levelName(Level level)
{
    switch (level) {
      case Level::FL: return "FL";
      case Level::CL: return "CL";
      case Level::RTL: return "RTL";
    }
    return "?";
}

/** Level-of-detail score: FL=1, CL=2, RTL=3 (paper Figure 13). */
inline int
lodScore(Level level)
{
    return static_cast<int>(level) + 1;
}

/** The composed tile. */
class Tile : public Model
{
  public:
    /**
     * @param proc_level / cache_level / accel_level abstraction level
     *        of each component
     * @param mem_latency backing-memory latency in cycles
     */
    Tile(const std::string &name, Level proc_level, Level cache_level,
         Level accel_level, int mem_latency = 2);

    /**
     * A tile without backing memory, for multi-tile systems: the L1
     * refill ports are exported as imemPort()/dmemPort() and must be
     * connected externally (e.g. through a network bridge).
     */
    struct ExternalMemory
    {};
    Tile(Model *parent, const std::string &name, Level proc_level,
         Level cache_level, Level accel_level, ExternalMemory);

    ProcessorBase &proc() { return *proc_; }
    CacheBase &icache() { return *icache_; }
    CacheBase &dcache() { return *dcache_; }
    /** Backing memory; only with the self-contained constructor. */
    stdlib::TestMemory &mem() { return *mem_; }
    bool hasMemory() const { return mem_ != nullptr; }
    /** Exported refill ports (external-memory tiles only). */
    ParentReqRespBundle &imemPort() { return *imem_port_; }
    ParentReqRespBundle &dmemPort() { return *dmem_port_; }

    Level procLevel() const { return proc_level_; }
    Level cacheLevel() const { return cache_level_; }
    Level accelLevel() const { return accel_level_; }
    int lod() const
    {
        return lodScore(proc_level_) + lodScore(cache_level_) +
               lodScore(accel_level_);
    }
    std::string
    configName() const
    {
        return std::string(levelName(proc_level_)) + "-" +
               levelName(cache_level_) + "-" + levelName(accel_level_);
    }

    /** Load a program image at address 0. */
    void loadProgram(const std::vector<uint32_t> &image);

    bool halted() const { return proc_->halted.u64() != 0; }

  private:
    void build(Level proc_level, Level cache_level, Level accel_level,
               int mem_latency, bool external_memory);

    Level proc_level_, cache_level_, accel_level_;
    std::unique_ptr<ProcessorBase> proc_;
    std::unique_ptr<CacheBase> icache_;
    std::unique_ptr<CacheBase> dcache_;
    std::unique_ptr<DotProductBase> accel_;
    std::unique_ptr<MemArbiter> arbiter_;
    std::unique_ptr<stdlib::TestMemory> mem_;
    std::unique_ptr<ParentReqRespBundle> imem_port_;
    std::unique_ptr<ParentReqRespBundle> dmem_port_;
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_TILE_H
