/**
 * @file
 * Multi-tile system: compute tiles interconnected by an on-chip
 * network (the paper's Figure 5a vision).
 *
 * Each tile's L1 refill traffic is carried over a mesh network to a
 * shared memory node. Tiles may each use a different mix of FL/CL/RTL
 * components — the heterogeneous, mixed-level system simulation the
 * paper motivates. The memory node additionally serves a "who am I"
 * register (a read of kWhoAmIAddr returns the requester's terminal
 * id), which programs use to partition work.
 *
 * Network message payload: {port tag (1b), memory request (60b)} for
 * requests; {port tag (1b), memory response (33b)} for responses.
 */

#ifndef CMTL_TILE_MULTITILE_H
#define CMTL_TILE_MULTITILE_H

#include <array>
#include <memory>
#include <vector>

#include "net/fl_network.h"
#include "net/mesh.h"
#include "tile/programs.h"
#include "tile/tile.h"

namespace cmtl {
namespace tile {

/** Byte address whose read returns the requesting tile's id. */
constexpr uint32_t kWhoAmIAddr = 0x0ffc;

/** Bridges a tile's two refill ports onto one network terminal. */
class TileMemBridge : public Model
{
  public:
    ChildReqRespBundle imem_in;
    ChildReqRespBundle dmem_in;
    OutValRdy net_out; //!< to the network injection terminal
    InValRdy net_in;   //!< from the network ejection terminal

    TileMemBridge(Model *parent, const std::string &name, int tile_id,
                  const BitStructLayout &net_msg, int mem_node);

  private:
    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> imem_;
    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> dmem_;
    std::unique_ptr<stdlib::OutQueueAdapter> out_;
    std::unique_ptr<stdlib::InQueueAdapter> in_;
    BitStructLayout msg_;
    int tile_id_;
    int mem_node_;
    int rr_ = 0;
};

/** The shared memory node on the network. */
class MemNode : public Model
{
  public:
    OutValRdy net_out;
    InValRdy net_in;

    MemNode(Model *parent, const std::string &name,
            const BitStructLayout &net_msg, int latency = 2);

    uint32_t readWord(uint32_t addr) const;
    void writeWord(uint32_t addr, uint32_t value);
    uint64_t numRequests() const { return num_requests_; }

  private:
    struct Pending
    {
        uint64_t due;
        Bits msg;
    };

    std::unique_ptr<stdlib::OutQueueAdapter> out_;
    std::unique_ptr<stdlib::InQueueAdapter> in_;
    BitStructLayout msg_;
    ReqRespIfcTypes mem_types_;
    std::unordered_map<uint32_t, uint32_t> words_;
    std::deque<Pending> pending_;
    int latency_;
    uint64_t now_ = 0;
    uint64_t num_requests_ = 0;
};

/** Tiles + bridges + network + memory node, composed. */
class MultiTileSystem : public Model
{
  public:
    /**
     * @param tile_levels one ⟨P,C,A⟩ triple per tile (tile count =
     *        size); terminal count is rounded up to a perfect square
     * @param cl_network use the CL mesh instead of the FL crossbar
     */
    MultiTileSystem(const std::string &name,
                    std::vector<std::array<Level, 3>> tile_levels,
                    bool cl_network = false, int mem_latency = 2);

    int numTiles() const { return static_cast<int>(tiles_.size()); }
    Tile &tile(int index) { return *tiles_[index]; }
    MemNode &memNode() { return *mem_node_; }

    /** Load a program image at address 0 of the shared memory. */
    void loadProgram(const std::vector<uint32_t> &image);

    bool
    allHalted() const
    {
        for (const auto &t : tiles_) {
            if (!t->halted())
                return false;
        }
        return true;
    }

  private:
    BitStructLayout msg_;
    std::vector<std::unique_ptr<Tile>> tiles_;
    std::vector<std::unique_ptr<TileMemBridge>> bridges_;
    std::unique_ptr<net::NetworkFL> fl_net_;
    std::unique_ptr<net::MeshNetworkCL> cl_net_;
    std::unique_ptr<MemNode> mem_node_;
};

/**
 * A multi-tile mvmult workload: each tile reads its id from the
 * who-am-I register and computes the full product into a private
 * output region at out_addr + id * n * 4.
 */
Workload makeMvmultMultiTile(int n, bool use_accel);

/** Preload the shared memory node with the mvmult inputs. */
void loadMvmultData(MemNode &mem, const Workload &workload,
                    uint64_t seed = 1);

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_MULTITILE_H
