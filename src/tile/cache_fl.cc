#include "cache.h"

namespace cmtl {
namespace tile {

CacheFL::CacheFL(Model *parent, const std::string &name)
    : CacheBase(parent, name)
{
    proc_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(proc_ifc,
                                                               4);
    mem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(mem_ifc,
                                                               4);
    tickFl("cache_logic", [this] {
        proc_->xtick();
        mem_->xtick();
        // Forward requests and responses without modeling any timing.
        while (!proc_->req_q.empty() && !mem_->req_q.full()) {
            mem_->pushReq(proc_->getReq());
            ++accesses_;
        }
        while (!mem_->resp_q.empty() && !proc_->resp_q.full())
            proc_->pushResp(mem_->getResp());
    });
}

} // namespace tile
} // namespace cmtl
