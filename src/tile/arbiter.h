/**
 * @file
 * Two-requester memory-port arbiter.
 *
 * The processor and the accelerator share one L1 data cache port
 * (paper Figure 5a); this round-robin arbiter multiplexes their
 * request streams and routes responses back to the owning requester.
 */

#ifndef CMTL_TILE_ARBITER_H
#define CMTL_TILE_ARBITER_H

#include <deque>
#include <memory>

#include "stdlib/adapters.h"
#include "stdlib/reqresp.h"

namespace cmtl {
namespace tile {

/** Round-robin 2-to-1 request/response arbiter. */
class MemArbiter : public Model
{
  public:
    MemArbiter(Model *parent, const std::string &name);

    ChildReqRespBundle &port(int index) { return child_[index]; }
    ParentReqRespBundle &memPort() { return *parent_ifc_; }

  private:
    std::deque<ChildReqRespBundle> child_;
    std::deque<stdlib::ChildReqRespQueueAdapter> adapters_;
    std::unique_ptr<ParentReqRespBundle> parent_ifc_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> mem_;
    std::deque<int> owners_;
    int rr_ = 0;
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_ARBITER_H
