#include "cache.h"

namespace cmtl {
namespace tile {

CacheCL::CacheCL(Model *parent, const std::string &name, int nlines)
    : CacheBase(parent, name), lines_(nlines), nlines_(nlines)
{
    proc_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(proc_ifc,
                                                               4);
    mem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(mem_ifc,
                                                               8);

    tickCl("cache_logic", [this] {
        proc_->xtick();
        mem_->xtick();
        const auto &req_t = proc_->types.req;
        const auto &resp_t = proc_->types.resp;

        auto index_of = [&](uint32_t addr) {
            return (addr >> 4) & (static_cast<uint32_t>(nlines_) - 1);
        };
        auto tag_of = [&](uint32_t addr) {
            return addr >> (4 + bitsFor(nlines_));
        };

        // Drain memory responses: refill words or write acks.
        while (!mem_->resp_q.empty() && !mem_pending_.empty()) {
            Bits resp = mem_->getResp();
            int kind = mem_pending_.front();
            mem_pending_.pop_front();
            if (kind < 0) {
                --outstanding_writes_;
            } else {
                refill_data_[kind] = static_cast<uint32_t>(
                    mem_->types.resp.get(resp, "data").toUint64());
                ++refill_received_;
            }
        }

        // Finish a refill: install the line and answer the request.
        if (refilling_ && refill_received_ == kWordsPerLine &&
            !proc_->resp_q.full()) {
            Line &line = lines_[index_of(refill_addr_)];
            line.valid = true;
            line.tag = tag_of(refill_addr_);
            for (int w = 0; w < kWordsPerLine; ++w)
                line.data[w] = refill_data_[w];
            uint32_t word = (refill_addr_ >> 2) & (kWordsPerLine - 1);
            proc_->pushResp(resp_t.pack({0, line.data[word]}));
            refilling_ = false;
        }

        // Accept one processor request per cycle.
        if (!refilling_ && !proc_->req_q.empty() &&
            !proc_->resp_q.full()) {
            Bits req = proc_->req_q.front();
            uint64_t type = req_t.get(req, "type").toUint64();
            uint32_t addr = static_cast<uint32_t>(
                req_t.get(req, "addr").toUint64());
            uint32_t data = static_cast<uint32_t>(
                req_t.get(req, "data").toUint64());
            Line &line = lines_[index_of(addr)];
            bool hit = line.valid && line.tag == tag_of(addr);
            uint32_t word = (addr >> 2) & (kWordsPerLine - 1);

            if (type == static_cast<uint64_t>(MemReqType::Write)) {
                // Write-through, no-allocate; ack immediately.
                if (mem_->req_q.full())
                    return;
                proc_->getReq();
                ++accesses_;
                if (hit)
                    line.data[word] = data;
                mem_->pushReq(makeMemReq(mem_->types.req,
                                         MemReqType::Write, addr,
                                         data));
                mem_pending_.push_back(-1);
                ++outstanding_writes_;
                proc_->pushResp(resp_t.pack({1, 0}));
            } else if (hit) {
                proc_->getReq();
                ++accesses_;
                proc_->pushResp(resp_t.pack({0, line.data[word]}));
            } else {
                // Read miss: refill the whole line, but only once all
                // outstanding writes have drained (write-through
                // ordering) and the request queue has room.
                if (outstanding_writes_ > 0 ||
                    mem_->req_q.full())
                    return;
                proc_->getReq();
                ++accesses_;
                ++misses_;
                refilling_ = true;
                refill_received_ = 0;
                refill_addr_ = addr;
                uint32_t base = addr & ~((kWordsPerLine * 4) - 1);
                for (int w = 0; w < kWordsPerLine; ++w) {
                    mem_->pushReq(makeMemReq(
                        mem_->types.req, MemReqType::Read,
                        base + static_cast<uint32_t>(w) * 4));
                    mem_pending_.push_back(w);
                }
            }
        }
    });
}

std::string
CacheCL::lineTrace() const
{
    return refilling_ ? "$:miss" : "$:    ";
}

} // namespace tile
} // namespace cmtl
