/**
 * @file
 * Tile processors at three abstraction levels.
 *
 * All three processors expose the identical port-based interface —
 * instruction-memory, data-memory, and accelerator request/response
 * bundles plus a halted flag — so any of them composes with any cache
 * and accelerator level in the tile (paper Section III-C/IV-B).
 *
 *  - ProcFL: an instruction-set simulator wrapped in ports: fetches
 *    and executes one instruction at a time, blocking on every memory
 *    and accelerator interaction.
 *  - ProcCL: cycle-approximate pipelined timing: up to four
 *    outstanding sequential fetches with wrong-path discard after
 *    branches, non-blocking stores, blocking loads.
 *  - ProcRTL: a multicycle IR state machine with a register-file
 *    memory array; translatable and specializable.
 */

#ifndef CMTL_TILE_PROC_H
#define CMTL_TILE_PROC_H

#include <deque>
#include <memory>
#include <optional>

#include "stdlib/adapters.h"
#include "stdlib/reqresp.h"
#include "tile/isa.h"

namespace cmtl {
namespace tile {

/** Common interface of all processor implementations. */
class ProcessorBase : public Model
{
  public:
    ParentReqRespBundle imem_ifc;
    ParentReqRespBundle dmem_ifc;
    ParentReqRespBundle acc_ifc;
    OutPort halted;

    /** Committed instruction count. */
    virtual uint64_t numInsts() const = 0;

  protected:
    ProcessorBase(Model *parent, const std::string &name)
        : Model(parent, name), imem_ifc(this, "imem_ifc", memIfcTypes()),
          dmem_ifc(this, "dmem_ifc", memIfcTypes()),
          acc_ifc(this, "acc_ifc", cpuIfcTypes()),
          halted(this, "halted", 1)
    {}
};

/** Functional-level processor (ISS behind ports). */
class ProcFL : public ProcessorBase
{
  public:
    ProcFL(Model *parent, const std::string &name);
    uint64_t numInsts() const override { return num_insts_; }
    std::string lineTrace() const override;

  private:
    enum class State { Fetch, FetchWait, MemWait, AccWait };

    void execute(uint32_t inst);

    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> imem_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> dmem_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> acc_;

    State state_ = State::Fetch;
    uint32_t pc_ = 0;
    uint32_t regs_[kNumRegs] = {};
    int pending_rd_ = -1; //!< destination of an in-flight lw / accx
    bool is_halted_ = false;
    uint64_t num_insts_ = 0;
};

/** Cycle-level processor with pipelined fetch. */
class ProcCL : public ProcessorBase
{
  public:
    ProcCL(Model *parent, const std::string &name);
    uint64_t numInsts() const override { return num_insts_; }
    std::string lineTrace() const override;

  private:
    static constexpr size_t kFetchDepth = 4;

    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> imem_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> dmem_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> acc_;

    uint32_t arch_pc_ = 0;  //!< next instruction to commit
    uint32_t fetch_pc_ = 0; //!< next address to request
    std::deque<uint32_t> fetch_addrs_; //!< outstanding fetch addresses
    uint32_t regs_[kNumRegs] = {};
    std::deque<int> dmem_pending_; //!< rd per req, -1 for stores
    bool load_blocked_ = false;
    bool acc_blocked_ = false;
    int acc_rd_ = 0;
    bool is_halted_ = false;
    uint64_t num_insts_ = 0;
};

/**
 * Register-transfer-level 5-stage pipelined processor (the paper's
 * tile processor): F (fetch, 4-deep fetch buffer over the
 * latency-insensitive icache port, epoch-tagged outstanding requests
 * for wrong-path discard), D (decode, register read with full
 * X/M/W forwarding and load-use interlocks), X (execute, branch and
 * jump resolution with pipeline flush), M (memory/accelerator
 * transactions with pipeline stall), W (write-back and commit).
 */
class ProcRTL5 : public ProcessorBase
{
  public:
    ProcRTL5(Model *parent, const std::string &name);
    uint64_t numInsts() const override;

    std::string
    typeName() const override
    {
        return "ProcRTL5";
    }

  private:
    // Architectural state.
    MemArray regs_;
    // Fetch unit.
    Wire fetch_pc_, epoch_;
    MemArray fb_pc_, fb_inst_; //!< fetch buffer FIFO
    Wire fb_h_, fb_c_;
    MemArray ot_pc_, ot_ep_; //!< outstanding-request FIFO
    Wire ot_h_, ot_c_;
    // D stage combinational decode/bypass results.
    Wire d_valid_, d_inst_, d_pc_;
    Wire d_op_, d_rd_, d_imm_;
    Wire d_a_, d_b_, d_w_; //!< post-bypass rs1 / rs2 / rd values
    Wire d_stall_;
    // X stage pipeline register + results.
    Wire x_valid_, x_op_, x_rd_, x_pc_, x_imm_;
    Wire x_a_, x_b_, x_w_;
    Wire x_alu_, x_wen_, x_redirect_, x_target_;
    // M stage pipeline register.
    Wire m_valid_, m_kind_, m_rd_, m_wen_, m_addr_, m_data_, m_phase_;
    Wire m_done_;
    // W stage pipeline register.
    Wire w_valid_, w_rd_, w_value_, w_wen_;
    // Control.
    Wire adv_m_, adv_x_, adv_d_;
    Wire halt_r_, insts_;
};

/** Register-transfer-level multicycle processor. */
class ProcRTL : public ProcessorBase
{
  public:
    ProcRTL(Model *parent, const std::string &name);
    uint64_t numInsts() const override;

    std::string
    typeName() const override
    {
        return "ProcRTL";
    }

  private:
    // Architectural + microarchitectural state.
    MemArray regs_;
    Wire pc_;
    Wire state_;
    Wire ir_;
    Wire insts_;
    Wire halt_r_;
    // Decode wires.
    Wire opcode_, rd_, rs1_, rs2_, imm_;
    Wire rs1_val_, rs2_val_, rd_val_;
    Wire alu_, branch_taken_;
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_PROC_H
