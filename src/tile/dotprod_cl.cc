#include "dotprod.h"

#include <numeric>

namespace cmtl {
namespace tile {

DotProductCL::DotProductCL(Model *parent, const std::string &name)
    : DotProductBase(parent, name)
{
    cpu_ = std::make_unique<stdlib::ChildReqRespQueueAdapter>(cpu_ifc);
    mem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(mem_ifc, 4);

    tickCl("logic", [this] {
        cpu_->xtick();
        mem_->xtick();
        const auto &creq = cpu_->types.req;

        if (go_) {
            // Pipelined issue: push requests while backpressure allows
            // (paper Figure 8, lines 23-26).
            if (!addrs_.empty() && !mem_->req_q.full()) {
                mem_->pushReq(makeMemReq(mem_->types.req,
                                         MemReqType::Read,
                                         addrs_.front()));
                addrs_.pop_front();
            }
            if (!mem_->resp_q.empty()) {
                Bits resp = mem_->getResp();
                data_.push_back(static_cast<uint32_t>(
                    mem_->types.resp.get(resp, "data").toUint64()));
            }
            if (data_.size() == 2 * size_ && !cpu_->resp_q.full()) {
                // Interleaved stream: even elements from src0, odd
                // from src1 (paper Figure 8, line 29).
                uint32_t result = 0;
                for (uint32_t i = 0; i < size_; ++i)
                    result += data_[2 * i] * data_[2 * i + 1];
                cpu_->pushResp(result);
                go_ = false;
            }
        } else if (!cpu_->req_q.empty() && !cpu_->resp_q.full()) {
            Bits req = cpu_->getReq();
            uint64_t ctrl = creq.get(req, "ctrl_msg").toUint64();
            uint32_t data = static_cast<uint32_t>(
                creq.get(req, "data").toUint64());
            switch (ctrl) {
              case 1: size_ = data; break;
              case 2: src0_ = data; break;
              case 3: src1_ = data; break;
              case 0:
                // Pre-generate the interleaved address stream (paper
                // Figure 8, line 39).
                addrs_.clear();
                data_.clear();
                for (uint32_t i = 0; i < size_; ++i) {
                    addrs_.push_back(src0_ + i * 4);
                    addrs_.push_back(src1_ + i * 4);
                }
                go_ = true;
                break;
              default: break;
            }
        }
    });
}

std::string
DotProductCL::lineTrace() const
{
    if (!go_)
        return "A:idle";
    return "A:" + std::to_string(addrs_.size()) + "/" +
           std::to_string(data_.size());
}

} // namespace tile
} // namespace cmtl
