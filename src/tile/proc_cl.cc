#include "proc.h"

namespace cmtl {
namespace tile {

ProcCL::ProcCL(Model *parent, const std::string &name)
    : ProcessorBase(parent, name)
{
    imem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(imem_ifc,
                                                                4);
    dmem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(dmem_ifc,
                                                                4);
    acc_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(acc_ifc);

    tickCl("proc_logic", [this] {
        imem_->xtick();
        dmem_->xtick();
        acc_->xtick();
        halted.setNext(uint64_t(is_halted_ ? 1 : 0));
        if (reset.u64()) {
            arch_pc_ = fetch_pc_ = 0;
            fetch_addrs_.clear();
            dmem_pending_.clear();
            load_blocked_ = acc_blocked_ = is_halted_ = false;
            num_insts_ = 0;
            for (auto &r : regs_)
                r = 0;
            return;
        }

        const auto &mreq = dmem_->types.req;
        const auto &mresp = dmem_->types.resp;

        // Retire data-memory responses; a blocking load completes here.
        while (!dmem_->resp_q.empty() && !dmem_pending_.empty()) {
            int rd = dmem_pending_.front();
            Bits resp = dmem_->getResp();
            dmem_pending_.pop_front();
            if (rd >= 0) {
                if (rd > 0) {
                    regs_[rd] = static_cast<uint32_t>(
                        mresp.get(resp, "data").toUint64());
                }
                load_blocked_ = false;
            }
        }
        // Accelerator result completes a blocking ACCX-go.
        if (acc_blocked_ && !acc_->resp_q.empty()) {
            Bits resp = acc_->getResp();
            if (acc_rd_ > 0) {
                regs_[acc_rd_] = static_cast<uint32_t>(
                    acc_->types.resp.get(resp, "data").toUint64());
            }
            acc_blocked_ = false;
        }

        // Commit at most one instruction per cycle.
        if (!is_halted_ && !load_blocked_ && !acc_blocked_ &&
            !imem_->resp_q.empty()) {
            uint32_t addr = fetch_addrs_.front();
            if (addr != arch_pc_) {
                // Wrong-path fetch after a taken branch: discard.
                imem_->getResp();
                fetch_addrs_.pop_front();
            } else {
                uint32_t inst = static_cast<uint32_t>(
                    imem_->types.resp.get(imem_->resp_q.front(), "data")
                        .toUint64());
                DecodedInst d = decode(inst);
                // Structural stall: the request queue must have room
                // before the instruction can leave fetch.
                bool needs_dmem = d.op == Op::Lw || d.op == Op::Sw;
                bool needs_acc = d.op == Op::Accx;
                bool stall =
                    (needs_dmem && dmem_->req_q.full()) ||
                    (needs_acc && acc_->req_q.full());
                if (!stall) {
                    imem_->getResp();
                    fetch_addrs_.pop_front();
                    uint32_t a = regs_[d.rs1];
                    uint32_t b = regs_[d.rs2];
                    uint32_t next_pc = arch_pc_ + 4;
                    uint32_t result = 0;
                    bool write_rd = false;
                    switch (d.op) {
                      case Op::Add: result = a + b; write_rd = true; break;
                      case Op::Sub: result = a - b; write_rd = true; break;
                      case Op::Mul: result = a * b; write_rd = true; break;
                      case Op::And: result = a & b; write_rd = true; break;
                      case Op::Or: result = a | b; write_rd = true; break;
                      case Op::Xor: result = a ^ b; write_rd = true; break;
                      case Op::Sll:
                        result = a << (b & 31);
                        write_rd = true;
                        break;
                      case Op::Srl:
                        result = a >> (b & 31);
                        write_rd = true;
                        break;
                      case Op::Slt:
                        result = static_cast<int32_t>(a) <
                                 static_cast<int32_t>(b);
                        write_rd = true;
                        break;
                      case Op::Addi:
                        result = a + static_cast<uint32_t>(d.imm);
                        write_rd = true;
                        break;
                      case Op::Lui:
                        result = static_cast<uint32_t>(d.imm) << 16;
                        write_rd = true;
                        break;
                      case Op::Lw:
                        dmem_->pushReq(makeMemReq(
                            mreq, MemReqType::Read,
                            a + static_cast<uint32_t>(d.imm)));
                        dmem_pending_.push_back(d.rd == 0 ? 0 : d.rd);
                        load_blocked_ = true;
                        break;
                      case Op::Sw:
                        dmem_->pushReq(makeMemReq(
                            mreq, MemReqType::Write,
                            a + static_cast<uint32_t>(d.imm),
                            regs_[d.rd]));
                        dmem_pending_.push_back(-1);
                        break;
                      case Op::Beq:
                        if (a == regs_[d.rd])
                            next_pc = arch_pc_ + 4 +
                                      static_cast<uint32_t>(d.imm) * 4;
                        break;
                      case Op::Bne:
                        if (a != regs_[d.rd])
                            next_pc = arch_pc_ + 4 +
                                      static_cast<uint32_t>(d.imm) * 4;
                        break;
                      case Op::Blt:
                        if (static_cast<int32_t>(a) <
                            static_cast<int32_t>(regs_[d.rd]))
                            next_pc = arch_pc_ + 4 +
                                      static_cast<uint32_t>(d.imm) * 4;
                        break;
                      case Op::Jal:
                        result = arch_pc_ + 4;
                        write_rd = true;
                        next_pc = arch_pc_ + 4 +
                                  static_cast<uint32_t>(d.imm) * 4;
                        break;
                      case Op::Jr:
                        next_pc = a;
                        break;
                      case Op::Accx:
                        acc_->pushReq(acc_->types.req.pack(
                            {static_cast<uint64_t>(d.imm) & 7, a}));
                        if (d.imm == 0) {
                            acc_blocked_ = true;
                            acc_rd_ = d.rd;
                        }
                        break;
                      case Op::Halt:
                        is_halted_ = true;
                        next_pc = arch_pc_;
                        break;
                      default:
                        is_halted_ = true;
                        break;
                    }
                    if (write_rd && d.rd != 0)
                        regs_[d.rd] = result;
                    regs_[0] = 0;
                    if (next_pc != arch_pc_ + 4) {
                        // Redirect the fetch stream on taken branches.
                        fetch_pc_ = next_pc;
                    }
                    arch_pc_ = next_pc;
                    ++num_insts_;
                }
            }
        }

        // Keep the fetch pipeline full.
        while (!is_halted_ && !imem_->req_q.full() &&
               fetch_addrs_.size() < kFetchDepth) {
            imem_->pushReq(makeMemReq(imem_->types.req,
                                      MemReqType::Read, fetch_pc_));
            fetch_addrs_.push_back(fetch_pc_);
            fetch_pc_ += 4;
        }
    });
}

std::string
ProcCL::lineTrace() const
{
    if (is_halted_)
        return "P:halt";
    std::string flags;
    flags += load_blocked_ ? 'l' : '.';
    flags += acc_blocked_ ? 'a' : '.';
    return "P:" + Bits(32, arch_pc_).toHexString() + flags;
}

} // namespace tile
} // namespace cmtl
