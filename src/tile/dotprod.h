/**
 * @file
 * Dot-product accelerator coprocessor at three abstraction levels
 * (paper Figures 7, 8, 9).
 *
 * Protocol (control register transfers over cpu_ifc):
 *   ctrl 1 = vector size, ctrl 2 = src0 base address,
 *   ctrl 3 = src1 base address, ctrl 0 = go (responds with result).
 *
 *  - DotProductFL: unpipelined functional model; fetches both source
 *    vectors one element at a time then computes the dot product with
 *    a host library call (std::inner_product, the numpy.dot analog).
 *  - DotProductCL: cycle-approximate: pre-generates the interleaved
 *    address stream and pipelines memory requests as backpressure
 *    allows (paper Figure 8).
 *  - DotProductRTL: four-stage datapath — M (address generation),
 *    R (response capture), X (4-stage pipelined multiply),
 *    A (accumulate) — with full control FSM (paper Figure 9).
 */

#ifndef CMTL_TILE_DOTPROD_H
#define CMTL_TILE_DOTPROD_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "stdlib/adapters.h"
#include "stdlib/basic.h"
#include "stdlib/reqresp.h"

namespace cmtl {
namespace tile {

/** Common accelerator interface. */
class DotProductBase : public Model
{
  public:
    ChildReqRespBundle cpu_ifc;
    ParentReqRespBundle mem_ifc;

  protected:
    DotProductBase(Model *parent, const std::string &name)
        : Model(parent, name), cpu_ifc(this, "cpu_ifc", cpuIfcTypes()),
          mem_ifc(this, "mem_ifc", memIfcTypes())
    {}
};

/** Functional-level accelerator (paper Figure 7). */
class DotProductFL : public DotProductBase
{
  public:
    DotProductFL(Model *parent, const std::string &name);
    std::string lineTrace() const override;

  private:
    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> cpu_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> mem_;

    uint32_t size_ = 0, src0_ = 0, src1_ = 0;
    bool running_ = false;
    bool waiting_resp_ = false;
    uint32_t fetch_index_ = 0;
    std::vector<uint32_t> elems_; //!< src0 then src1 values
};

/** Cycle-level accelerator with pipelined requests (paper Figure 8). */
class DotProductCL : public DotProductBase
{
  public:
    DotProductCL(Model *parent, const std::string &name);
    std::string lineTrace() const override;

  private:
    std::unique_ptr<stdlib::ChildReqRespQueueAdapter> cpu_;
    std::unique_ptr<stdlib::ParentReqRespQueueAdapter> mem_;

    uint32_t size_ = 0, src0_ = 0, src1_ = 0;
    bool go_ = false;
    std::deque<uint32_t> addrs_;
    std::vector<uint32_t> data_;
};

/** RTL accelerator (paper Figure 9). */
class DotProductRTL : public DotProductBase
{
  public:
    DotProductRTL(Model *parent, const std::string &name);

    std::string
    typeName() const override
    {
        return "DotProductRTL";
    }

  private:
    static constexpr int kMulStages = 4;

    // Configuration registers.
    Wire size_, src0_, src1_;
    // Control.
    Wire state_;
    Wire req_cnt_;  //!< requests issued (0 .. 2*size)
    Wire resp_cnt_; //!< responses received
    Wire done_cnt_; //!< accumulated products
    // Datapath.
    Wire src0_data_r_, src1_data_r_;
    Wire accum_;
    Wire mul_valid_; //!< kMulStages-deep valid shift register
    stdlib::IntPipelinedMultiplier mul_;
    Wire mul_a_, mul_b_, mul_out_;
};

} // namespace tile
} // namespace cmtl

#endif // CMTL_TILE_DOTPROD_H
