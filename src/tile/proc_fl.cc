#include "proc.h"

namespace cmtl {
namespace tile {

ProcFL::ProcFL(Model *parent, const std::string &name)
    : ProcessorBase(parent, name)
{
    imem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(imem_ifc);
    dmem_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(dmem_ifc);
    acc_ = std::make_unique<stdlib::ParentReqRespQueueAdapter>(acc_ifc);

    tickFl("proc_logic", [this] {
        imem_->xtick();
        dmem_->xtick();
        acc_->xtick();
        halted.setNext(uint64_t(is_halted_ ? 1 : 0));
        if (reset.u64()) {
            state_ = State::Fetch;
            pc_ = 0;
            is_halted_ = false;
            num_insts_ = 0;
            for (auto &r : regs_)
                r = 0;
            return;
        }
        if (is_halted_)
            return;

        const auto &mreq = imem_->types.req;
        switch (state_) {
          case State::Fetch:
            if (!imem_->req_q.full()) {
                imem_->pushReq(
                    makeMemReq(mreq, MemReqType::Read, pc_));
                state_ = State::FetchWait;
            }
            break;
          case State::FetchWait:
            if (!imem_->resp_q.empty()) {
                Bits resp = imem_->getResp();
                uint32_t inst = static_cast<uint32_t>(
                    imem_->types.resp.get(resp, "data").toUint64());
                execute(inst);
            }
            break;
          case State::MemWait:
            if (!dmem_->resp_q.empty()) {
                Bits resp = dmem_->getResp();
                if (pending_rd_ > 0) {
                    regs_[pending_rd_] = static_cast<uint32_t>(
                        dmem_->types.resp.get(resp, "data").toUint64());
                }
                pending_rd_ = -1;
                state_ = State::Fetch;
            }
            break;
          case State::AccWait:
            if (!acc_->resp_q.empty()) {
                Bits resp = acc_->getResp();
                if (pending_rd_ > 0) {
                    regs_[pending_rd_] = static_cast<uint32_t>(
                        acc_->types.resp.get(resp, "data").toUint64());
                }
                pending_rd_ = -1;
                state_ = State::Fetch;
            }
            break;
        }
    });
}

void
ProcFL::execute(uint32_t inst)
{
    DecodedInst d = decode(inst);
    uint32_t a = regs_[d.rs1];
    uint32_t b = regs_[d.rs2];
    uint32_t next_pc = pc_ + 4;
    uint32_t result = 0;
    bool write_rd = false;
    State next_state = State::Fetch;
    const auto &mreq = dmem_->types.req;

    switch (d.op) {
      case Op::Add: result = a + b; write_rd = true; break;
      case Op::Sub: result = a - b; write_rd = true; break;
      case Op::Mul: result = a * b; write_rd = true; break;
      case Op::And: result = a & b; write_rd = true; break;
      case Op::Or: result = a | b; write_rd = true; break;
      case Op::Xor: result = a ^ b; write_rd = true; break;
      case Op::Sll: result = a << (b & 31); write_rd = true; break;
      case Op::Srl: result = a >> (b & 31); write_rd = true; break;
      case Op::Slt:
        result = static_cast<int32_t>(a) < static_cast<int32_t>(b);
        write_rd = true;
        break;
      case Op::Addi:
        result = a + static_cast<uint32_t>(d.imm);
        write_rd = true;
        break;
      case Op::Lui:
        result = static_cast<uint32_t>(d.imm) << 16;
        write_rd = true;
        break;
      case Op::Lw:
        dmem_->pushReq(makeMemReq(mreq, MemReqType::Read,
                                  a + static_cast<uint32_t>(d.imm)));
        pending_rd_ = d.rd;
        next_state = State::MemWait;
        break;
      case Op::Sw:
        dmem_->pushReq(makeMemReq(mreq, MemReqType::Write,
                                  a + static_cast<uint32_t>(d.imm),
                                  regs_[d.rd]));
        pending_rd_ = -1;
        next_state = State::MemWait;
        break;
      case Op::Beq:
        if (a == regs_[d.rd])
            next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::Bne:
        if (a != regs_[d.rd])
            next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::Blt:
        if (static_cast<int32_t>(a) < static_cast<int32_t>(regs_[d.rd]))
            next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::Jal:
        result = pc_ + 4;
        write_rd = true;
        next_pc = pc_ + 4 + static_cast<uint32_t>(d.imm) * 4;
        break;
      case Op::Jr:
        next_pc = a;
        break;
      case Op::Accx:
        acc_->pushReq(acc_->types.req.pack(
            {static_cast<uint64_t>(d.imm) & 7, a}));
        if (d.imm == 0) {
            pending_rd_ = d.rd;
            next_state = State::AccWait;
        }
        break;
      case Op::Halt:
        is_halted_ = true;
        next_pc = pc_;
        break;
      default:
        is_halted_ = true; // illegal instruction: stop
        break;
    }

    if (write_rd && d.rd != 0)
        regs_[d.rd] = result;
    regs_[0] = 0;
    pc_ = next_pc;
    ++num_insts_;
    state_ = next_state;
}

std::string
ProcFL::lineTrace() const
{
    if (is_halted_)
        return "P:halt";
    return "P:" + Bits(32, pc_).toHexString();
}

} // namespace tile
} // namespace cmtl
