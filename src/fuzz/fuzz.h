/**
 * @file
 * SimFuzz: randomized differential testing of the backend matrix.
 *
 * The paper's core claim — one elaborated design behaves identically
 * across abstraction levels and execution engines — is proven in this
 * repo on a handful of hand-written designs. SimFuzz turns the claim
 * adversarial: a seeded generator elaborates randomized block/net
 * graphs (comb + tick IR blocks, wide and narrow nets for layout
 * bit-packing pressure, MemArrays, a val/rdy channel, a dynamic flop
 * driven from a host lambda) plus a randomized StimTape, then runs
 * every backend x thread-count x arena-layout combination against the
 * boxed-interpreter reference and compares state digests and VCD
 * bytes. On mismatch the DivergenceBisector pinpoints the first
 * divergent cycle and a graph-shrinking loop drops blocks, nets and
 * stimulus channels while the divergence still reproduces, emitting a
 * minimal repro file that replays standalone.
 *
 * Everything is deterministic in the seed: entity i draws from its own
 * SplitMix64 stream keyed by (seed, kind, i), so disabling entity j
 * never perturbs entity i — the property the shrinker relies on — and
 * the same seed always elaborates the same design (same
 * designFingerprint), drives the same stimulus and prints the same
 * report.
 */

#ifndef CMTL_FUZZ_FUZZ_H
#define CMTL_FUZZ_FUZZ_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/sim.h"
#include "core/snap.h"

namespace cmtl {
namespace fuzz {

/**
 * Deterministic SplitMix64 stream keyed by (seed, stream name, index).
 * Per-entity streams are the backbone of shrinkability: the structure
 * of comb block 3 depends only on (seed, "comb", 3), never on how many
 * other entities exist or which are disabled.
 */
class FuzzRng
{
  public:
    FuzzRng(uint64_t seed, const char *stream, uint64_t index);

    uint64_t next();
    /** Uniform in [0, n); n must be nonzero. */
    uint64_t range(uint64_t n) { return next() % n; }
    /** Uniform in [lo, hi] inclusive. */
    int irange(int lo, int hi)
    {
        return lo + static_cast<int>(range(static_cast<uint64_t>(hi - lo + 1)));
    }
    /** True with probability percent/100. */
    bool chance(int percent) { return range(100) < static_cast<uint64_t>(percent); }

  private:
    uint64_t state_;
};

/** One side of a differential pair (a backend-matrix point). */
struct FuzzSide
{
    std::string backend = "interp";
    int threads = 1;
    std::string layout = "elab"; //!< "elab" | "profile"
    bool gating = true;

    /** Fully resolved simulator configuration. */
    SimConfig toSimConfig() const;

    /** Human label, e.g. "optinterp t4 profile" / "... ungated". */
    std::string str() const;

    /** Repro-file encoding: "<backend> <threads> <layout> <gating>". */
    std::string encode() const;
    /** Parse encode()'s format; throws std::runtime_error on garbage. */
    static FuzzSide decode(const std::string &text);

    /** True when this side needs the host C++ compiler. */
    bool needsCompiler() const;
};

/**
 * Optional injected fault: flip one bit of one net at the end of one
 * cycle, on side B only. This is the controlled "backend bug" the
 * tests (and the shrinker-convergence acceptance criterion) use to
 * prove the detection/minimization pipeline works end to end. The
 * perturbation is a pure function of the cycle counter, so it replays
 * identically under the bisector's restored probes.
 */
struct FuzzFault
{
    bool active = false;
    uint64_t cycle = 0;
    int net_ordinal = 0; //!< index into Elaboration::nets (mod size)
    int bit = 0;         //!< bit position to flip (mod net width)
};

/**
 * Complete, replayable description of one fuzz case: the seed (which
 * determines the whole design and stimulus), the cycle budget, the
 * disable masks the shrinker grows, the two simulator configs being
 * compared, and an optional injected fault. Round-trips through a
 * line-oriented text format (see encodeText) checked into
 * tests/data/fuzz_corpus/.
 */
struct FuzzSpec
{
    uint64_t seed = 1;
    uint64_t cycles = 200;
    /** Disabled entity ids (design shrinking; see FuzzDesign). */
    std::vector<int> comb_off;
    std::vector<int> tick_off;
    /** Stimulus channels forced to constant zero (stim shrinking). */
    std::vector<int> stim_off;
    FuzzSide side_a; //!< reference side
    FuzzSide side_b; //!< candidate side (faults apply here)
    FuzzFault fault;
    /**
     * Corpus replay expectation: +1 the pair must diverge (detector
     * regression — e.g. an injected fault must still be caught), 0 the
     * pair must agree (a once-divergent, since-fixed case must stay
     * fixed), -1 unspecified.
     */
    int expect = -1;

    bool combOff(int id) const;
    bool tickOff(int id) const;
    bool stimOff(int id) const;

    /**
     * Line-oriented text image:
     *
     *   CMTLFUZZ v1
     *   seed <n>
     *   cycles <n>
     *   side_a <backend> <threads> <layout> <gating>
     *   side_b <backend> <threads> <layout> <gating>
     *   comb_off <id> <id> ...        (omitted when empty)
     *   tick_off ...
     *   stim_off ...
     *   fault <cycle> <net_ordinal> <bit>   (omitted when inactive)
     *   expect diverge|agree               (omitted when unspecified)
     *
     * '#' starts a comment; blank lines are ignored.
     */
    std::string encodeText() const;
    /** Parse encodeText()'s format; throws std::runtime_error. */
    static FuzzSpec decodeText(const std::string &text);

    void saveFile(const std::string &path) const;
    static FuzzSpec loadFile(const std::string &path);
};

/** Entity counts of the design a seed generates (for shrinking). */
struct FuzzCounts
{
    int comb = 0; //!< maskable comb blocks (incl. the val/rdy driver)
    int tick = 0; //!< maskable tick blocks (incl. producer + lambda)
    int stim = 0; //!< stimulus input ports
};

/** Derive the entity counts without building a Model. */
FuzzCounts fuzzCounts(uint64_t seed);

/**
 * The generated design. All signals, arrays and their declaration
 * order depend only on the seed — disable masks omit *logic*, never
 * declarations — so net ids, the design fingerprint's name/width part
 * and StimTape channel bindings are stable while the shrinker prunes.
 *
 * Structure ("generator grammar", see DESIGN.md §3.1k):
 *  - stim ports: 2-4 InPorts, at least one multiword (>64 bits);
 *  - registered nets: 3-5 wires written non-blockingly by tick blocks;
 *  - comb blocks: 2-6 blocks arranged in 2-3 static levels (a block
 *    reads only lower-level outputs and sequential state, so the
 *    graph is acyclic under any mask);
 *  - MemArrays: 1-2 arrays, power-of-two depth, written by one tick
 *    block each, read asynchronously from comb and tick logic;
 *  - a val/rdy channel: tick producer drives val/msg, a comb block
 *    drives rdy;
 *  - a dynamic flop: a host tickFl lambda writes a wire with setNext;
 *  - an always-on observe block XOR-folding every net and array read
 *    into a 64-bit output port (keeps all logic live).
 *
 * Expressions draw from the full IR: +,-,* (narrow), &,|,^, shifts,
 * sra, comparisons, mux, cat, slices, zext/sext, reductions, aread,
 * let-temps and if_/else with full default assignment (latch-free by
 * construction). Generated designs are lint-error-free; warnings
 * (undriven nets behind a mask, lossy truncation) are expected.
 */
class FuzzDesign : public Model
{
  public:
    explicit FuzzDesign(const FuzzSpec &spec);

    std::string typeName() const override;

    int numCombEntities() const { return ncomb_entities_; }
    int numTickEntities() const { return ntick_entities_; }
    int numStimPorts() const { return static_cast<int>(stim_.size()); }

  private:
    int ncomb_entities_ = 0;
    int ntick_entities_ = 0;
    uint64_t seed_ = 0;

    // Declared in deques: stable addresses, construction order = net
    // id order after elaboration.
    std::deque<InPort> stim_;
    std::deque<Wire> regs_;
    std::deque<Wire> comb_out_;
    std::deque<MemArray> mems_;
    std::deque<Wire> chan_;  //!< ch_val, ch_rdy, ch_msg
    std::deque<Wire> dyn_;   //!< dynamic-flop wire
    std::deque<OutPort> obs_;
};

/**
 * Deterministic random stimulus for a spec: one StimTape channel per
 * stim port, spec.cycles entries, channel i drawn from stream
 * (seed, "stim", i) — or constant zero when the channel is disabled
 * by the shrinker.
 */
StimTape makeFuzzStim(const FuzzSpec &spec);

/**
 * The differential backend matrix, reference excluded. quick covers
 * the interpreter-family backends (optinterp/bytecode x threads x
 * layouts plus a gating-off point); full adds the compiled backends
 * (cpp-block, cpp-design), the boxed hybrids and a parallel
 * gating-off point. Entries needing an unavailable host compiler are
 * the runner's problem to skip.
 */
std::vector<FuzzSide> fuzzMatrix(bool full);

/** One confirmed divergence of a matrix candidate vs the reference. */
struct FuzzDivergence
{
    FuzzSide side;
    bool vcd_only = false;     //!< digests agreed, VCD bytes differed
    uint64_t first_cycle = 0;  //!< from the bisector (digest cases)
    size_t vcd_byte = 0;       //!< first differing byte (vcd_only)
    std::vector<std::string> nets; //!< divergent nets at first_cycle
    std::string detail;        //!< bisector summary / byte context
};

/** Outcome of one generated design through lint, audit and matrix. */
struct FuzzCaseResult
{
    uint64_t seed = 0;
    uint64_t fingerprint = 0; //!< designFingerprint of the elaboration
    uint64_t ref_digest = 0;  //!< reference final state digest
    int nets = 0;
    int blocks = 0;
    int matrix_run = 0;     //!< candidates executed
    int matrix_skipped = 0; //!< candidates skipped (no compiler)
    std::vector<std::string> lint_errors;
    std::vector<std::string> audit_errors;
    std::vector<FuzzDivergence> divergences;

    bool ok() const
    {
        return lint_errors.empty() && audit_errors.empty() &&
               divergences.empty();
    }

    /** One line per case; stable across runs of the same seed. */
    std::string summary() const;
};

/**
 * Executes fuzz cases: straight-line runs with stimulus replay and
 * optional fault injection, differential matrix sweeps, per-cycle
 * digest comparison for the shrinker, and bisection for divergence
 * reporting.
 */
class FuzzRunner
{
  public:
    /** Outcome of a side-a vs side-b comparison (comparePair). */
    struct PairOutcome
    {
        bool diverged = false;
        bool vcd_only = false;
        /** First cycle whose post-cycle digests differ (not vcd_only). */
        uint64_t first_cycle = 0;
    };

    /**
     * Lint + race-audit the generated design (errors recorded, not
     * thrown), run the reference side, then every matrix candidate,
     * comparing final state digests and VCD bytes; digest mismatches
     * are bisected to their first divergent cycle.
     */
    FuzzCaseResult runCase(const FuzzSpec &spec,
                           const std::vector<FuzzSide> &matrix);

    /**
     * Run side_a and side_b (fault applied to b) comparing digests
     * after every cycle plus final VCD bytes — the shrinker's
     * reproduction predicate, robust against divergences that wash
     * out of the final state.
     */
    PairOutcome comparePair(const FuzzSpec &spec);

    /**
     * DivergenceBisector over the pair, stimulus applied through the
     * setStimulus hook so restored probes see the same pokes as the
     * straight-line run.
     */
    DivergenceReport bisectPair(const FuzzSpec &spec);

    /**
     * Corpus replay: comparePair plus the spec's expectation. Returns
     * true when the observed outcome matches spec.expect (or when no
     * expectation is recorded).
     */
    bool replay(const FuzzSpec &spec, PairOutcome *outcome = nullptr);
};

/** Shrinking statistics alongside the minimized spec. */
struct FuzzShrinkResult
{
    FuzzSpec spec;           //!< minimized, still-diverging case
    uint64_t first_cycle = 0;
    int tried = 0;           //!< candidate removals attempted
    int removed = 0;         //!< entities/channels disabled + cycles kept
};

/**
 * Greedy delta-debugger over a diverging spec: truncate the cycle
 * budget to just past the first divergent cycle, then repeatedly try
 * disabling each comb block, tick block and stimulus channel, keeping
 * every removal under which the divergence still reproduces, until a
 * full pass removes nothing.
 */
class FuzzShrinker
{
  public:
    explicit FuzzShrinker(FuzzRunner &runner) : runner_(runner) {}

    /** @p spec must diverge (throws std::runtime_error otherwise). */
    FuzzShrinkResult shrink(FuzzSpec spec);

  private:
    FuzzRunner &runner_;
};

} // namespace fuzz
} // namespace cmtl

#endif // CMTL_FUZZ_FUZZ_H
