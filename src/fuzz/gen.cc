/**
 * @file
 * SimFuzz generator: seed -> design shape -> Model + StimTape, plus
 * the FuzzSpec text codec. Everything here is a pure function of the
 * spec; see fuzz.h for the per-entity stream discipline.
 */

#include "fuzz.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cmtl {
namespace fuzz {

// ------------------------------------------------------------ FuzzRng

FuzzRng::FuzzRng(uint64_t seed, const char *stream, uint64_t index)
{
    // FNV-1a over (seed, stream, index) keys the SplitMix64 stream.
    uint64_t h = 1469598103934665603ull;
    auto mix8 = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix8(seed);
    for (const char *c = stream; *c; ++c) {
        h ^= static_cast<unsigned char>(*c);
        h *= 1099511628211ull;
    }
    mix8(index);
    state_ = h;
    next();
    next();
}

uint64_t
FuzzRng::next()
{
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// ------------------------------------------------------- design shape

namespace {

/**
 * The seed-derived skeleton: how many of everything and how wide.
 * Disable masks never reach this layer, so the skeleton (and with it
 * every net id and the StimTape channel table) is mask-invariant.
 */
struct Shape
{
    std::vector<int> stim_w;
    std::vector<int> reg_w;
    struct CombSpec
    {
        int level;
        int width;
    };
    std::vector<CombSpec> combs;
    std::vector<int> arr_w;
    std::vector<int> arr_d;
    int ntick = 0; //!< generated tickRtl blocks (chprod/dyncl extra)
    int ch_w = 0;  //!< val/rdy channel message width
    int dyn_w = 0; //!< dynamic-flop wire width
};

Shape
deriveShape(uint64_t seed)
{
    FuzzRng r(seed, "shape", 0);
    Shape sh;

    // Stimulus: 2-4 ports, port 0 always multiword so every design
    // carries layout bit-packing pressure and unspecializable blocks.
    int nstim = r.irange(2, 4);
    for (int i = 0; i < nstim; ++i)
        sh.stim_w.push_back(i == 0 ? r.irange(65, 96) : r.irange(1, 16));

    // Registered state: 3-5 nets, mostly narrow, sometimes wide.
    int nregs = r.irange(3, 5);
    for (int i = 0; i < nregs; ++i)
        sh.reg_w.push_back(r.chance(25) ? r.irange(65, 80)
                                        : r.irange(2, 32));

    // Comb blocks in 2-3 static levels, 1-2 blocks per level, one
    // output net each.
    int nlevels = r.irange(2, 3);
    for (int l = 1; l <= nlevels; ++l) {
        int nblocks = r.irange(1, 2);
        for (int b = 0; b < nblocks; ++b)
            sh.combs.push_back({l, r.chance(20) ? r.irange(65, 80)
                                                : r.irange(1, 24)});
    }

    // Memory arrays: 1-2, power-of-two depth.
    int narr = r.irange(1, 2);
    for (int i = 0; i < narr; ++i) {
        sh.arr_w.push_back(r.irange(4, 31));
        sh.arr_d.push_back(1 << r.irange(2, 4));
    }

    sh.ntick = r.irange(2, 3);
    sh.ch_w = r.irange(4, 24);
    sh.dyn_w = r.irange(2, 30);
    return sh;
}

} // namespace

FuzzCounts
fuzzCounts(uint64_t seed)
{
    Shape sh = deriveShape(seed);
    FuzzCounts c;
    c.comb = static_cast<int>(sh.combs.size()) + 1; // + chrdy
    c.tick = sh.ntick + 2;                          // + chprod + dyncl
    c.stim = static_cast<int>(sh.stim_w.size());
    return c;
}

// ----------------------------------------------------------- FuzzSpec

bool
FuzzSpec::combOff(int id) const
{
    for (int v : comb_off)
        if (v == id)
            return true;
    return false;
}

bool
FuzzSpec::tickOff(int id) const
{
    for (int v : tick_off)
        if (v == id)
            return true;
    return false;
}

bool
FuzzSpec::stimOff(int id) const
{
    for (int v : stim_off)
        if (v == id)
            return true;
    return false;
}

std::string
FuzzSide::encode() const
{
    std::ostringstream os;
    os << backend << " " << threads << " " << layout << " "
       << (gating ? 1 : 0);
    return os.str();
}

FuzzSide
FuzzSide::decode(const std::string &text)
{
    std::istringstream is(text);
    FuzzSide side;
    int gating = 1;
    if (!(is >> side.backend >> side.threads >> side.layout >> gating))
        throw std::runtime_error("fuzz repro: bad side spec '" + text +
                                 "'");
    side.gating = gating != 0;
    return side;
}

std::string
FuzzSpec::encodeText() const
{
    std::ostringstream os;
    os << "CMTLFUZZ v1\n";
    os << "seed " << seed << "\n";
    os << "cycles " << cycles << "\n";
    os << "side_a " << side_a.encode() << "\n";
    os << "side_b " << side_b.encode() << "\n";
    auto list = [&os](const char *key, const std::vector<int> &ids) {
        if (ids.empty())
            return;
        os << key;
        for (int id : ids)
            os << " " << id;
        os << "\n";
    };
    list("comb_off", comb_off);
    list("tick_off", tick_off);
    list("stim_off", stim_off);
    if (fault.active)
        os << "fault " << fault.cycle << " " << fault.net_ordinal << " "
           << fault.bit << "\n";
    if (expect == 1)
        os << "expect diverge\n";
    else if (expect == 0)
        os << "expect agree\n";
    return os.str();
}

FuzzSpec
FuzzSpec::decodeText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    // The header is the first line that is not blank or a comment.
    bool have_header = false;
    while (std::getline(is, line)) {
        size_t at = line.find_first_not_of(" \t\r");
        if (at == std::string::npos || line[at] == '#')
            continue;
        have_header = line.rfind("CMTLFUZZ v1", at) == at;
        break;
    }
    if (!have_header)
        throw std::runtime_error("fuzz repro: missing CMTLFUZZ v1 "
                                 "header");
    FuzzSpec spec;
    while (std::getline(is, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key))
            continue;
        auto ids = [&ls]() {
            std::vector<int> out;
            int v;
            while (ls >> v)
                out.push_back(v);
            return out;
        };
        if (key == "seed") {
            ls >> spec.seed;
        } else if (key == "cycles") {
            ls >> spec.cycles;
        } else if (key == "side_a" || key == "side_b") {
            std::string rest;
            std::getline(ls, rest);
            (key == "side_a" ? spec.side_a : spec.side_b) =
                FuzzSide::decode(rest);
        } else if (key == "comb_off") {
            spec.comb_off = ids();
        } else if (key == "tick_off") {
            spec.tick_off = ids();
        } else if (key == "stim_off") {
            spec.stim_off = ids();
        } else if (key == "fault") {
            spec.fault.active = true;
            if (!(ls >> spec.fault.cycle >> spec.fault.net_ordinal >>
                  spec.fault.bit))
                throw std::runtime_error("fuzz repro: bad fault line");
        } else if (key == "expect") {
            std::string what;
            ls >> what;
            if (what == "diverge")
                spec.expect = 1;
            else if (what == "agree")
                spec.expect = 0;
            else
                throw std::runtime_error("fuzz repro: bad expect '" +
                                         what + "'");
        } else {
            throw std::runtime_error("fuzz repro: unknown key '" + key +
                                     "'");
        }
    }
    if (spec.cycles == 0)
        throw std::runtime_error("fuzz repro: zero cycle budget");
    return spec;
}

void
FuzzSpec::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot write fuzz repro '" + path +
                                 "': " + std::strerror(errno));
    out << encodeText();
}

FuzzSpec
FuzzSpec::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open fuzz repro '" + path +
                                 "': " + std::strerror(errno));
    std::ostringstream ss;
    ss << in.rdbuf();
    return decodeText(ss.str());
}

// ----------------------------------------------- expression generator

namespace {

/** Explicitly fit @p e to @p w so assigns never auto-truncate. */
IrExpr
fit(const IrExpr &e, int w)
{
    if (e.nbits() == w)
        return e;
    if (e.nbits() > w)
        return e.slice(0, w);
    return e.zext(w);
}

IrExpr
genLit(FuzzRng &rng, int w)
{
    if (w <= 64)
        return lit(w, rng.next());
    std::vector<uint64_t> words(static_cast<size_t>(bitsToWords(w)));
    for (uint64_t &word : words)
        word = rng.next();
    return lit(Bits::fromWords(w, words));
}

IrExpr
genLeaf(FuzzRng &rng, const std::vector<Signal *> &pool, int w)
{
    if (pool.empty() || rng.chance(25))
        return genLit(rng, w);
    return fit(rd(*pool[rng.range(pool.size())]), w);
}

/**
 * Random expression of width @p w over @p pool and @p arrs. Slices,
 * shifts and aread indexes are in-bounds by construction; multiplies
 * are capped at 32-bit operands so the compiled and tree-walk paths
 * agree on the (identical) truncated product.
 */
IrExpr
genExpr(FuzzRng &rng, const std::vector<Signal *> &pool,
        const std::vector<MemArray *> &arrs, int w, int depth)
{
    if (depth <= 0)
        return genLeaf(rng, pool, w);
    switch (rng.range(12)) {
      case 0:
      case 1:
        return genLeaf(rng, pool, w);
      case 2: { // add/sub at the target width
        IrExpr a = genExpr(rng, pool, arrs, w, depth - 1);
        IrExpr b = genExpr(rng, pool, arrs, w, depth - 1);
        return rng.chance(50) ? fit(a, w) + fit(b, w)
                              : fit(a, w) - fit(b, w);
      }
      case 3: { // narrow multiply
        int mw = w < 32 ? w : 32;
        IrExpr a = fit(genExpr(rng, pool, arrs, mw, depth - 1), mw);
        IrExpr b = fit(genExpr(rng, pool, arrs, mw, depth - 1), mw);
        return fit(a * b, w);
      }
      case 4: { // bitwise
        IrExpr a = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        IrExpr b = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        switch (rng.range(3)) {
          case 0: return a & b;
          case 1: return a | b;
          default: return a ^ b;
        }
      }
      case 5: { // shift by an in-range constant
        IrExpr a = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        IrExpr k = lit(8, rng.range(static_cast<uint64_t>(w)));
        switch (rng.range(3)) {
          case 0: return a << k;
          case 1: return a >> k;
          default: return sra(a, k);
        }
      }
      case 6: { // mux
        IrExpr c = fit(genExpr(rng, pool, arrs, 1, depth - 1), 1);
        IrExpr a = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        IrExpr b = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        return mux(c, a, b);
      }
      case 7: { // comparison, widened back up
        int cw = rng.irange(1, 32);
        IrExpr a = fit(genExpr(rng, pool, arrs, cw, depth - 1), cw);
        IrExpr b = fit(genExpr(rng, pool, arrs, cw, depth - 1), cw);
        IrExpr c;
        switch (rng.range(4)) {
          case 0: c = (a == b); break;
          case 1: c = (a != b); break;
          case 2: c = (a < b); break;
          default: c = (a >= b); break;
        }
        return fit(c, w);
      }
      case 8: { // unary / reductions / sign extension
        IrExpr a = fit(genExpr(rng, pool, arrs, w, depth - 1), w);
        switch (rng.range(4)) {
          case 0: return ~a;
          case 1: return fit(a.reduceXor(), w);
          case 2: return fit(!a, w);
          default: {
            if (w < 2)
                return ~a;
            int sw = rng.irange(1, w - 1);
            return fit(genExpr(rng, pool, arrs, sw, depth - 1), sw)
                .sext(w);
          }
        }
      }
      case 9: { // concatenation
        if (w < 2)
            return genLeaf(rng, pool, w);
        int k = rng.irange(1, w - 1);
        IrExpr hi = fit(genExpr(rng, pool, arrs, w - k, depth - 1), w - k);
        IrExpr lo = fit(genExpr(rng, pool, arrs, k, depth - 1), k);
        return cat(hi, lo);
      }
      case 10: { // in-bounds slice of a wider value
        int ew = w + rng.irange(1, 16);
        IrExpr e = fit(genExpr(rng, pool, arrs, ew, depth - 1), ew);
        int lsb = static_cast<int>(
            rng.range(static_cast<uint64_t>(ew - w + 1)));
        return e.slice(lsb, w);
      }
      default: { // asynchronous array read
        if (arrs.empty())
            return genLeaf(rng, pool, w);
        MemArray *arr = arrs[rng.range(arrs.size())];
        int iw = bitsFor(static_cast<uint64_t>(arr->depth()));
        IrExpr idx = fit(genExpr(rng, pool, arrs, iw, depth - 1), iw);
        return fit(aread(*arr, idx), w);
      }
    }
}

} // namespace

// --------------------------------------------------------- FuzzDesign

std::string
FuzzDesign::typeName() const
{
    return "FuzzDesign_" + std::to_string(seed_);
}

FuzzDesign::FuzzDesign(const FuzzSpec &spec)
    : Model(nullptr, "fuzz"), seed_(spec.seed)
{
    Shape sh = deriveShape(spec.seed);
    int ncomb = static_cast<int>(sh.combs.size());
    ncomb_entities_ = ncomb + 1;   // + chrdy
    ntick_entities_ = sh.ntick + 2; // + chprod + dyncl

    // --- declarations: fixed order, independent of disable masks ---
    for (size_t i = 0; i < sh.stim_w.size(); ++i)
        stim_.emplace_back(this, "stim" + std::to_string(i),
                           sh.stim_w[i]);
    for (size_t i = 0; i < sh.reg_w.size(); ++i)
        regs_.emplace_back(this, "reg" + std::to_string(i), sh.reg_w[i]);
    for (size_t i = 0; i < sh.combs.size(); ++i)
        comb_out_.emplace_back(this, "comb" + std::to_string(i),
                               sh.combs[i].width);
    for (size_t i = 0; i < sh.arr_w.size(); ++i)
        mems_.emplace_back(this, "mem" + std::to_string(i), sh.arr_w[i],
                           sh.arr_d[i]);
    chan_.emplace_back(this, "ch_val", 1);
    chan_.emplace_back(this, "ch_rdy", 1);
    chan_.emplace_back(this, "ch_msg", sh.ch_w);
    dyn_.emplace_back(this, "dyn", sh.dyn_w);
    obs_.emplace_back(this, "obs", 64);

    Wire &ch_val = chan_[0];
    Wire &ch_rdy = chan_[1];
    Wire &ch_msg = chan_[2];
    Wire &dyn = dyn_[0];

    std::vector<MemArray *> arrs;
    for (MemArray &m : mems_)
        arrs.push_back(&m);

    // Sequential logic reads anything; comb level l reads sequential
    // state plus the outputs of strictly lower levels, so the comb
    // graph is a DAG under any mask.
    std::vector<Signal *> seq_pool;
    for (InPort &s : stim_)
        seq_pool.push_back(&s);
    for (Wire &r : regs_)
        seq_pool.push_back(&r);
    seq_pool.push_back(&dyn);
    seq_pool.push_back(&ch_val);
    seq_pool.push_back(&ch_msg);
    for (Wire &c : comb_out_)
        seq_pool.push_back(&c);
    std::vector<Signal *> seq_pool_rdy = seq_pool;
    seq_pool_rdy.push_back(&ch_rdy);

    auto combPool = [&](int level) {
        std::vector<Signal *> pool;
        for (InPort &s : stim_)
            pool.push_back(&s);
        for (Wire &r : regs_)
            pool.push_back(&r);
        pool.push_back(&dyn);
        pool.push_back(&ch_val);
        pool.push_back(&ch_msg);
        for (size_t i = 0; i < sh.combs.size(); ++i)
            if (sh.combs[i].level < level)
                pool.push_back(&comb_out_[i]);
        return pool;
    };

    // --- generated comb blocks -------------------------------------
    for (int i = 0; i < ncomb; ++i) {
        if (spec.combOff(i))
            continue;
        FuzzRng rng(spec.seed, "comb", static_cast<uint64_t>(i));
        auto &b = combinational("comb_blk" + std::to_string(i));
        Wire &out = comb_out_[i];
        int w = out.nbits();
        std::vector<Signal *> pool = combPool(sh.combs[i].level);

        if (w >= 4 && rng.chance(25)) {
            // Build the whole value from width-covering slice assigns
            // (the test_sim idiom). Never mixed with a full assign:
            // the slice-assign's implicit read-modify-write would put
            // `out` in the block's own read set while the overwritten
            // intermediate commit re-triggers change detection — a
            // self-loop the event-driven scheduler cannot settle.
            int k = rng.irange(1, w - 1);
            b.assignSlice(out, 0, k,
                          fit(genExpr(rng, pool, arrs, k, 2), k));
            b.assignSlice(out, k, w - k,
                          fit(genExpr(rng, pool, arrs, w - k, 2),
                              w - k));
            continue;
        }
        IrExpr main = genExpr(rng, pool, arrs, w, 3);
        if (rng.chance(40)) {
            // Route part of the computation through a let-temp.
            IrExpr t = b.let("t" + std::to_string(i),
                             genExpr(rng, pool, arrs, w, 2));
            main = fit(main, w) ^ fit(t, w);
        }
        b.assign(out, fit(main, w));
        if (rng.chance(40)) {
            // Conditional override after the full default assignment —
            // exercises if_ without inferring a latch.
            IrExpr cond = fit(genExpr(rng, pool, arrs, 1, 2), 1);
            IrExpr alt = fit(genExpr(rng, pool, arrs, w, 2), w);
            b.if_(cond, [&] { b.assign(out, alt); });
        }
    }

    // --- val/rdy consumer side: comb rdy driver (entity ncomb) -----
    if (!spec.combOff(ncomb)) {
        FuzzRng rng(spec.seed, "chrdy", 0);
        auto &b = combinational("ch_rdy_drv");
        std::vector<Signal *> pool;
        for (InPort &s : stim_)
            pool.push_back(&s);
        for (Wire &r : regs_)
            pool.push_back(&r);
        pool.push_back(&dyn);
        b.assign(ch_rdy, fit(genExpr(rng, pool, arrs, 1, 2), 1));
    }

    // --- generated tick blocks -------------------------------------
    for (int k = 0; k < sh.ntick; ++k) {
        if (spec.tickOff(k))
            continue;
        FuzzRng rng(spec.seed, "tick", static_cast<uint64_t>(k));
        auto &b = tickRtl("tick_blk" + std::to_string(k));
        for (size_t r = 0; r < regs_.size(); ++r) {
            if (static_cast<int>(r) % sh.ntick != k)
                continue;
            Wire &reg = regs_[r];
            int w = reg.nbits();
            IrExpr next = fit(genExpr(rng, seq_pool_rdy, arrs, w, 3), w);
            int style = rng.irange(0, 3);
            if (style == 0) {
                // Synchronous reset idiom.
                b.if_(rd(reset), [&] { b.assign(reg, lit(w, 0)); },
                      [&] { b.assign(reg, next); });
            } else if (style == 1) {
                IrExpr cond =
                    fit(genExpr(rng, seq_pool_rdy, arrs, 1, 2), 1);
                IrExpr alt =
                    fit(genExpr(rng, seq_pool_rdy, arrs, w, 2), w);
                b.if_(cond, [&] { b.assign(reg, next); },
                      [&] { b.assign(reg, alt); });
            } else if (style == 2) {
                // Partial update: sequential hold is legal (no latch).
                IrExpr cond =
                    fit(genExpr(rng, seq_pool_rdy, arrs, 1, 2), 1);
                b.if_(cond, [&] { b.assign(reg, next); });
            } else {
                b.assign(reg, next);
            }
        }
        for (size_t m = 0; m < mems_.size(); ++m) {
            if (static_cast<int>(m) % sh.ntick != k)
                continue;
            MemArray &mem = mems_[m];
            int iw = bitsFor(static_cast<uint64_t>(mem.depth()));
            IrExpr idx =
                fit(genExpr(rng, seq_pool_rdy, arrs, iw, 2), iw);
            IrExpr val = fit(
                genExpr(rng, seq_pool_rdy, arrs, mem.nbits(), 3),
                mem.nbits());
            if (rng.chance(50)) {
                IrExpr cond =
                    fit(genExpr(rng, seq_pool_rdy, arrs, 1, 2), 1);
                b.if_(cond, [&] { b.writeArray(mem, idx, val); });
            } else {
                b.writeArray(mem, idx, val);
            }
        }
    }

    // --- val/rdy producer (tick entity sh.ntick) -------------------
    if (!spec.tickOff(sh.ntick)) {
        FuzzRng rng(spec.seed, "chprod", 0);
        auto &b = tickRtl("ch_prod");
        IrExpr val = fit(genExpr(rng, seq_pool, arrs, 1, 2), 1);
        IrExpr msg =
            fit(genExpr(rng, seq_pool, arrs, ch_msg.nbits(), 3),
                ch_msg.nbits());
        // Classic producer: refill when the consumer took the message
        // (or the channel is empty).
        b.if_(rd(ch_rdy) || !rd(ch_val), [&] {
            b.assign(ch_val, val);
            b.assign(ch_msg, msg);
        });
    }

    // --- dynamic flop from a host lambda (tick entity sh.ntick+1) --
    if (!spec.tickOff(sh.ntick + 1)) {
        FuzzRng rng(spec.seed, "dyncl", 0);
        Signal *src_a = seq_pool[rng.range(seq_pool.size())];
        Signal *src_b = seq_pool[rng.range(seq_pool.size())];
        uint64_t salt = rng.next();
        Wire *target = &dyn;
        int w = dyn.nbits();
        // setNext from host code registers the wire as a dynamic flop
        // at run time — the checkpoint/restore and ParSim paths for
        // lambda-registered state. Pure function of signal values, so
        // no Model::snapSave override is needed.
        tickFl("dyn_fl", [src_a, src_b, salt, target, w] {
            uint64_t v = (src_a->value().toUint64() ^ salt) +
                         src_b->value().toUint64();
            target->setNext(Bits(w, v));
        });
    }

    // --- observe: always-on XOR fold keeping every net live --------
    {
        auto &b = combinational("observe");
        IrExpr acc = lit(64, 0x243f6a8885a308d3ull);
        uint64_t salt = 1;
        auto fold = [&](Signal &s) {
            acc = (acc ^ fit(rd(s), 64)) + lit(64, salt);
            salt = salt * 6364136223846793005ull + 1442695040888963407ull;
        };
        for (InPort &s : stim_)
            fold(s);
        for (Wire &r : regs_)
            fold(r);
        for (Wire &c : comb_out_)
            fold(c);
        fold(ch_val);
        fold(ch_rdy);
        fold(ch_msg);
        fold(dyn);
        for (MemArray &m : mems_) {
            int iw = bitsFor(static_cast<uint64_t>(m.depth()));
            IrExpr idx = fit(rd(regs_[0]), iw);
            acc = acc ^ fit(aread(m, idx), 64);
        }
        b.assign(obs_[0], acc);
    }
}

// --------------------------------------------------------- fuzz stim

StimTape
makeFuzzStim(const FuzzSpec &spec)
{
    Shape sh = deriveShape(spec.seed);
    StimTape tape;
    for (size_t i = 0; i < sh.stim_w.size(); ++i)
        tape.channel("fuzz.stim" + std::to_string(i), sh.stim_w[i]);

    std::vector<FuzzRng> rngs;
    for (size_t i = 0; i < sh.stim_w.size(); ++i)
        rngs.emplace_back(spec.seed, "stim", static_cast<uint64_t>(i));

    for (uint64_t c = 0; c < spec.cycles; ++c) {
        std::vector<Bits> entry;
        for (size_t i = 0; i < sh.stim_w.size(); ++i) {
            int w = sh.stim_w[i];
            if (spec.stimOff(static_cast<int>(i))) {
                entry.emplace_back(w, 0);
                continue;
            }
            if (w <= 64) {
                entry.emplace_back(w, rngs[i].next());
            } else {
                std::vector<uint64_t> words(
                    static_cast<size_t>(bitsToWords(w)));
                for (uint64_t &word : words)
                    word = rngs[i].next();
                entry.push_back(Bits::fromWords(w, words));
            }
        }
        tape.append(entry);
    }
    return tape;
}

} // namespace fuzz
} // namespace cmtl
