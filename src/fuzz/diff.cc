/**
 * @file
 * SimFuzz differential runner: the backend matrix, straight-line runs
 * with stimulus replay, fault injection, VCD capture, per-cycle digest
 * comparison and bisection. See fuzz.h for the pipeline overview.
 */

#include "fuzz.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "core/jit_cpp.h"
#include "core/layout.h"
#include "core/lint.h"
#include "core/partition.h"
#include "core/psim.h"
#include "core/race_audit.h"
#include "core/vcd.h"

namespace cmtl {
namespace fuzz {

// ----------------------------------------------------------- FuzzSide

SimConfig
FuzzSide::toSimConfig() const
{
    SimConfig cfg;
    try {
        cfg = SimConfig::fromString(backend);
        cfg.layout = layoutPolicyFromName(layout);
    } catch (const std::invalid_argument &e) {
        throw std::runtime_error(std::string("fuzz side: ") + e.what());
    }
    cfg.threads = threads;
    cfg.gating = gating;
    // Tiered cpp-design hot-swaps mid-run on compiler timing; force the
    // blocking compile so fuzz runs are scheduling-independent.
    cfg.jit_tiered = false;
    return cfg;
}

std::string
FuzzSide::str() const
{
    std::ostringstream os;
    os << backend << " t" << threads << " " << layout;
    if (!gating)
        os << " ungated";
    return os.str();
}

bool
FuzzSide::needsCompiler() const
{
    return backend.find("cpp") != std::string::npos;
}

// --------------------------------------------------------- fuzzMatrix

std::vector<FuzzSide>
fuzzMatrix(bool full)
{
    auto side = [](const char *backend, int threads, const char *layout,
                   bool gating = true) {
        FuzzSide s;
        s.backend = backend;
        s.threads = threads;
        s.layout = layout;
        s.gating = gating;
        return s;
    };
    std::vector<FuzzSide> m;
    // Interpreter family: every thread x layout corner plus one
    // gating-off point (gating must be value-invisible).
    m.push_back(side("optinterp", 1, "elab"));
    m.push_back(side("optinterp", 1, "profile"));
    m.push_back(side("optinterp", 4, "elab"));
    m.push_back(side("optinterp", 4, "profile"));
    m.push_back(side("bytecode", 1, "elab"));
    m.push_back(side("bytecode", 4, "profile"));
    m.push_back(side("optinterp", 1, "elab", false));
    if (!full)
        return m;
    m.push_back(side("bytecode", 1, "profile"));
    m.push_back(side("bytecode", 4, "elab"));
    m.push_back(side("cpp-block", 1, "elab"));
    m.push_back(side("cpp-block", 1, "profile"));
    m.push_back(side("cpp-block", 4, "elab"));
    m.push_back(side("cpp-block", 4, "profile"));
    m.push_back(side("cpp-design", 1, "elab"));
    m.push_back(side("cpp-design", 1, "profile"));
    m.push_back(side("cpp-design", 4, "elab"));
    m.push_back(side("cpp-design", 4, "profile"));
    // Boxed hybrids are sequential-only (ParSim needs the arena).
    m.push_back(side("interp+bytecode", 1, "elab"));
    m.push_back(side("interp+cpp-block", 1, "elab"));
    m.push_back(side("optinterp", 4, "profile", false));
    return m;
}

// ------------------------------------------------------ run machinery

namespace {

/** Unique scratch path for a VCD capture (parallel-test safe). */
std::string
tmpVcdPath()
{
    static std::atomic<unsigned> counter{0};
    std::ostringstream os;
    os << "cmtl_fuzz_" << ::getpid() << "_" << counter++ << ".vcd";
    return os.str();
}

std::string
readAndRemove(const std::string &path)
{
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
    }
    std::remove(path.c_str());
    return bytes;
}

/**
 * Register the injected-fault hook: at the end of spec.fault.cycle,
 * flip one bit of one net. Registered before any VcdWriter so the
 * waveform records the post-fault value, and a pure function of the
 * hook's cycle argument so bisector-restored probes replay it.
 */
void
attachFault(Simulator &sim, const FuzzSpec &spec, const Elaboration &elab)
{
    if (!spec.fault.active || elab.nets.empty())
        return;
    int nnets = static_cast<int>(elab.nets.size());
    int net = ((spec.fault.net_ordinal % nnets) + nnets) % nnets;
    int nbits = elab.nets[net].nbits;
    int bit = ((spec.fault.bit % nbits) + nbits) % nbits;
    uint64_t at = spec.fault.cycle;
    Simulator *s = &sim;
    sim.onCycleEnd([s, net, bit, at](uint64_t cycle) {
        if (cycle != at)
            return;
        Bits v = s->readNet(net);
        bool cur = (v.word(bit / 64) >> (bit % 64)) & 1;
        v.setBit(bit, !cur);
        s->pokeNet(net, v);
    });
}

/** One straight-line run of a side: final digest + VCD bytes. */
struct SideRun
{
    uint64_t digest = 0;
    std::string vcd;
};

SideRun
runSide(const FuzzSpec &spec, const FuzzSide &side, bool apply_fault)
{
    auto top = std::make_shared<FuzzDesign>(spec);
    auto elab = top->elaborate();
    auto sim = makeSimulator(elab, side.toSimConfig());
    if (apply_fault)
        attachFault(*sim, spec, *elab);
    StimTape tape = makeFuzzStim(spec);
    std::string vcd_path = tmpVcdPath();
    SideRun out;
    {
        VcdWriter vcd(*sim, vcd_path);
        while (sim->numCycles() < spec.cycles) {
            tape.applyTo(*sim);
            sim->cycle();
        }
        out.digest = stateDigest(*sim);
        vcd.close();
    }
    out.vcd = readAndRemove(vcd_path);
    return out;
}

} // namespace

// --------------------------------------------------------- FuzzRunner

FuzzRunner::PairOutcome
FuzzRunner::comparePair(const FuzzSpec &spec)
{
    auto top_a = std::make_shared<FuzzDesign>(spec);
    auto elab_a = top_a->elaborate();
    auto sim_a = makeSimulator(elab_a, spec.side_a.toSimConfig());
    auto top_b = std::make_shared<FuzzDesign>(spec);
    auto elab_b = top_b->elaborate();
    auto sim_b = makeSimulator(elab_b, spec.side_b.toSimConfig());
    attachFault(*sim_b, spec, *elab_b);

    StimTape tape_a = makeFuzzStim(spec);
    StimTape tape_b = makeFuzzStim(spec);
    std::string path_a = tmpVcdPath();
    std::string path_b = tmpVcdPath();
    PairOutcome out;
    {
        VcdWriter vcd_a(*sim_a, path_a);
        VcdWriter vcd_b(*sim_b, path_b);
        // Lockstep with a digest checkpoint after every cycle: the
        // shrinker's predicate must catch divergences that wash out of
        // the final state.
        for (uint64_t c = 0; c < spec.cycles && !out.diverged; ++c) {
            tape_a.applyTo(*sim_a);
            sim_a->cycle();
            tape_b.applyTo(*sim_b);
            sim_b->cycle();
            if (stateDigest(*sim_a) != stateDigest(*sim_b)) {
                out.diverged = true;
                out.first_cycle = c;
            }
        }
        vcd_a.close();
        vcd_b.close();
    }
    std::string bytes_a = readAndRemove(path_a);
    std::string bytes_b = readAndRemove(path_b);
    if (!out.diverged && bytes_a != bytes_b) {
        out.diverged = true;
        out.vcd_only = true;
    }
    return out;
}

DivergenceReport
FuzzRunner::bisectPair(const FuzzSpec &spec)
{
    // The bisector builds fresh simulator pairs while it searches; the
    // Elaborations reference their FuzzDesign models by raw pointer, so
    // every model built by a factory is kept alive for the whole run.
    auto keep =
        std::make_shared<std::vector<std::shared_ptr<FuzzDesign>>>();
    auto factory = [keep, spec](const FuzzSide &side, bool fault) {
        return [keep, spec, side, fault]() -> std::unique_ptr<Simulator> {
            auto top = std::make_shared<FuzzDesign>(spec);
            keep->push_back(top);
            auto elab = top->elaborate();
            auto sim = makeSimulator(elab, side.toSimConfig());
            if (fault)
                attachFault(*sim, spec, *elab);
            return sim;
        };
    };
    DivergenceBisector bis(factory(spec.side_a, false),
                           factory(spec.side_b, spec.fault.active));
    auto tape = std::make_shared<StimTape>(makeFuzzStim(spec));
    bis.setStimulus([tape](Simulator &sim) { tape->applyTo(sim); });

    auto top = std::make_shared<FuzzDesign>(spec);
    auto elab = top->elaborate();
    auto ref = makeSimulator(elab, spec.side_a.toSimConfig());
    SimSnapshot start = snapSave(*ref);
    return bis.run(start, spec.cycles);
}

FuzzCaseResult
FuzzRunner::runCase(const FuzzSpec &spec,
                    const std::vector<FuzzSide> &matrix)
{
    FuzzCaseResult res;
    res.seed = spec.seed;

    auto top = std::make_shared<FuzzDesign>(spec);
    auto elab = top->elaborate();
    res.fingerprint = designFingerprint(*elab);
    res.nets = static_cast<int>(elab->nets.size());
    res.blocks = static_cast<int>(elab->blocks.size());

    // Every generated design must be lint-error-free (warnings —
    // undriven stim ports, masked logic — are expected) and pass the
    // static race audit at representative island counts.
    LintTool lint;
    for (const LintIssue &issue : lint.run(*elab)) {
        if (issue.severity != LintSeverity::Error)
            continue;
        res.lint_errors.push_back(issue.check + " @ " + issue.path +
                                  ": " + issue.message);
    }
    for (int nislands : {2, 4}) {
        RaceAuditReport audit =
            auditPartition(*elab, partitionDesign(*elab, nislands));
        if (!audit.ok())
            res.audit_errors.push_back(std::to_string(nislands) +
                                       " islands: " + audit.summary());
    }

    SideRun ref = runSide(spec, spec.side_a, /*apply_fault=*/false);
    res.ref_digest = ref.digest;

    bool have_compiler = CppJit::compilerAvailable();
    for (const FuzzSide &side : matrix) {
        if (side.needsCompiler() && !have_compiler) {
            ++res.matrix_skipped;
            continue;
        }
        SideRun run = runSide(spec, side, spec.fault.active);
        ++res.matrix_run;
        if (run.digest != ref.digest) {
            FuzzSpec pair = spec;
            pair.side_b = side;
            DivergenceReport rep = bisectPair(pair);
            FuzzDivergence d;
            d.side = side;
            d.first_cycle = rep.first_divergent_cycle;
            d.nets = rep.divergent_nets;
            d.detail = rep.summary();
            res.divergences.push_back(std::move(d));
        } else if (run.vcd != ref.vcd) {
            size_t n = std::min(run.vcd.size(), ref.vcd.size());
            size_t at = n;
            for (size_t i = 0; i < n; ++i) {
                if (run.vcd[i] != ref.vcd[i]) {
                    at = i;
                    break;
                }
            }
            FuzzDivergence d;
            d.side = side;
            d.vcd_only = true;
            d.vcd_byte = at;
            std::ostringstream os;
            os << "VCD bytes differ at offset " << at << " ("
               << ref.vcd.size() << " vs " << run.vcd.size()
               << " bytes) with identical final state digests";
            d.detail = os.str();
            res.divergences.push_back(std::move(d));
        }
    }
    return res;
}

bool
FuzzRunner::replay(const FuzzSpec &spec, PairOutcome *outcome)
{
    PairOutcome po = comparePair(spec);
    if (outcome)
        *outcome = po;
    if (spec.expect < 0)
        return true;
    return (spec.expect == 1) == po.diverged;
}

// ----------------------------------------------------- FuzzCaseResult

std::string
FuzzCaseResult::summary() const
{
    std::ostringstream os;
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    os << "seed " << seed << ": fp " << fp << ", " << nets << " nets, "
       << blocks << " blocks, matrix " << matrix_run << " run / "
       << matrix_skipped << " skipped";
    if (ok()) {
        os << ", OK";
        return os.str();
    }
    if (!lint_errors.empty())
        os << ", " << lint_errors.size() << " lint error(s)";
    if (!audit_errors.empty())
        os << ", " << audit_errors.size() << " race-audit error(s)";
    for (const FuzzDivergence &d : divergences) {
        os << ", DIVERGED [" << d.side.str() << "] ";
        if (d.vcd_only)
            os << "vcd byte " << d.vcd_byte;
        else
            os << "cycle " << d.first_cycle;
    }
    return os.str();
}

} // namespace fuzz
} // namespace cmtl
