/**
 * @file
 * SimFuzz shrinker: greedy delta-debugging over a diverging FuzzSpec.
 *
 * Works because of the generator's per-entity stream discipline
 * (fuzz.h): disabling entity j never changes the structure of any
 * surviving entity, so each trial run differs from the last only by
 * the removed logic. The loop is O(entities x passes) comparePair
 * runs, each at the (truncated) cycle budget.
 */

#include "fuzz.h"

#include <stdexcept>

namespace cmtl {
namespace fuzz {

FuzzShrinkResult
FuzzShrinker::shrink(FuzzSpec spec)
{
    FuzzRunner::PairOutcome po = runner_.comparePair(spec);
    if (!po.diverged)
        throw std::runtime_error(
            "fuzz shrink: seed " + std::to_string(spec.seed) +
            " does not diverge under the given sides");

    FuzzShrinkResult res;

    // Phase 1: truncate the cycle budget to just past the first
    // divergent cycle — every later trial gets cheaper.
    if (!po.vcd_only && po.first_cycle + 1 < spec.cycles) {
        FuzzSpec t = spec;
        t.cycles = po.first_cycle + 1;
        ++res.tried;
        FuzzRunner::PairOutcome tpo = runner_.comparePair(t);
        if (tpo.diverged) {
            spec = std::move(t);
            po = tpo;
            ++res.removed;
        }
    }

    // Phase 2: greedy entity removal to a fixed point. A removal is
    // kept when the divergence still reproduces without the entity.
    FuzzCounts counts = fuzzCounts(spec.seed);
    auto tryOff = [&](std::vector<int> FuzzSpec::*mask, int id) {
        FuzzSpec t = spec;
        (t.*mask).push_back(id);
        ++res.tried;
        FuzzRunner::PairOutcome tpo = runner_.comparePair(t);
        if (!tpo.diverged)
            return false;
        spec = std::move(t);
        po = tpo;
        ++res.removed;
        return true;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < counts.comb; ++i)
            if (!spec.combOff(i))
                changed |= tryOff(&FuzzSpec::comb_off, i);
        for (int i = 0; i < counts.tick; ++i)
            if (!spec.tickOff(i))
                changed |= tryOff(&FuzzSpec::tick_off, i);
        for (int i = 0; i < counts.stim; ++i)
            if (!spec.stimOff(i))
                changed |= tryOff(&FuzzSpec::stim_off, i);
    }

    // The minimized case is a detector regression by construction.
    spec.expect = 1;
    res.spec = std::move(spec);
    res.first_cycle = po.vcd_only ? 0 : po.first_cycle;
    return res;
}

} // namespace fuzz
} // namespace cmtl
