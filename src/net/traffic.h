/**
 * @file
 * Uniform-random traffic generation and measurement harness.
 *
 * Drives any of the three network implementations (FL/CL/RTL — they
 * share the same terminal interface) with open-loop Bernoulli traffic
 * and measures latency and throughput. The generator is deliberately
 * factored into TerminalTrafficGen so the hand-written C++ reference
 * network (src/refcpp) consumes the *identical* traffic stream,
 * enabling cycle-exact cross-validation, as the paper did between its
 * PyMTL and C++ mesh models.
 */

#ifndef CMTL_NET_TRAFFIC_H
#define CMTL_NET_TRAFFIC_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "net/fl_network.h"
#include "net/mesh.h"

namespace cmtl {
namespace net {

/** Deterministic per-terminal traffic source (xorshift64*). */
struct TerminalTrafficGen
{
    uint64_t state;

    void
    init(uint64_t seed, int terminal)
    {
        state = seed * 6364136223846793005ull +
                static_cast<uint64_t>(terminal) * 0x9e3779b97f4a7c15ull +
                1;
        next();
        next();
    }

    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** One Bernoulli draw against a fixed-point injection rate. */
    bool
    genThisCycle(uint64_t rate_fp32)
    {
        return (next() >> 32) < rate_fp32;
    }

    int pickDest(int nrouters) { return static_cast<int>(next() % nrouters); }
};

/** Fixed-point (Q32) encoding of an injection rate in [0, 1]. */
inline uint64_t
rateToFp32(double rate)
{
    return static_cast<uint64_t>(rate * 4294967296.0);
}

/**
 * Spatial/temporal traffic pattern (Dally & Towles terminology).
 *
 *  - Uniform: independent uniform destination per message.
 *  - Tornado: each coordinate shifts by half the mesh dimension —
 *    worst case for dimension-ordered routing on a mesh.
 *  - Hotspot: a fixed fraction of traffic converges on node 0, the
 *    rest is uniform.
 *  - BitComplement: terminal t sends to its coordinate mirror
 *    (nrouters-1-t on a square row-major mesh).
 *  - Bursty: uniform destinations, but injection is on/off modulated
 *    (25% duty cycle) at 4x the nominal rate so the *offered load*
 *    matches uniform while the instantaneous load stresses buffering.
 *
 * Every pattern derives its state from the cycle counter, the
 * terminal id and the per-terminal RNGs, so checkpoints need no
 * extra harness state and the snapshot format is pattern-agnostic.
 */
enum class TrafficPattern
{
    Uniform,
    Tornado,
    Hotspot,
    BitComplement,
    Bursty,
};

inline const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::Uniform: return "uniform";
      case TrafficPattern::Tornado: return "tornado";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::BitComplement: return "bit-complement";
      case TrafficPattern::Bursty: return "bursty";
    }
    return "?";
}

/** Parse a pattern name; returns false (out untouched) on unknown. */
bool trafficPatternFromName(const std::string &name,
                            TrafficPattern *out);

/** All patterns, in a stable sweep order. */
const std::vector<TrafficPattern> &allTrafficPatterns();

/**
 * Which network implementation a harness instantiates. CLSpec is the
 * IR-expressed cycle-level mesh (cycle-exact with CL) used where the
 * paper relies on SimJIT-CL specializing the CL model.
 */
enum class NetLevel { FL, CL, CLSpec, RTL };

inline const char *
netLevelName(NetLevel level)
{
    switch (level) {
      case NetLevel::FL: return "FL";
      case NetLevel::CL: return "CL";
      case NetLevel::CLSpec: return "CLSpec";
      case NetLevel::RTL: return "RTL";
    }
    return "?";
}

/** Aggregate network performance statistics. */
struct NetStats
{
    uint64_t cycles = 0;
    uint64_t generated = 0; //!< messages created (offered load)
    uint64_t injected = 0;  //!< messages accepted by the network
    uint64_t received = 0;
    uint64_t latency_sum = 0; //!< generation-to-ejection
    uint64_t latency_max = 0;

    double
    avgLatency() const
    {
        return received ? static_cast<double>(latency_sum) /
                              static_cast<double>(received)
                        : 0.0;
    }

    /** Received messages per terminal per cycle. */
    double
    throughput(int nterminals) const
    {
        return cycles ? static_cast<double>(received) /
                            static_cast<double>(cycles) / nterminals
                      : 0.0;
    }
};

/**
 * Top-level model: a network of the requested level plus traffic
 * sources/sinks on every terminal.
 */
class MeshTrafficTop : public Model
{
  public:
    /**
     * @param injection_rate per-terminal Bernoulli injection
     *        probability per cycle (offered load for every pattern;
     *        Bursty redistributes it in time, not in volume)
     */
    MeshTrafficTop(const std::string &name, NetLevel level, int nrouters,
                   int nentries, double injection_rate, uint64_t seed,
                   TrafficPattern pattern = TrafficPattern::Uniform);

    /** Zero the measurement counters (e.g. after warmup). */
    void resetStats();

    const NetStats &stats() const { return stats_; }
    int numTerminals() const { return nrouters_; }
    NetLevel level() const { return level_; }
    TrafficPattern pattern() const { return pattern_; }
    /** Messages inside the network (survives resetStats). */
    uint64_t inFlight() const { return inflight_; }
    /** Messages generated but not yet accepted by the network. */
    uint64_t queuedAtSources() const;

    // Harness state lives outside nets (RNGs, source queues,
    // counters), so checkpoints must carry it explicitly.
    void snapSave(SnapWriter &w) const override;
    void snapLoad(SnapReader &r) override;

  private:
    bool genThisCycle(int t);
    int pickDestFor(int t);

    BitStructLayout msg_;
    NetLevel level_;
    int nrouters_;
    uint64_t rate_fp_;
    TrafficPattern pattern_;
    uint64_t burst_rate_fp_; //!< on-phase rate for Bursty
    uint64_t now_ = 0;

    std::unique_ptr<NetworkFL> fl_;
    std::unique_ptr<MeshNetworkCL> cl_;
    std::unique_ptr<MeshNetworkCLSpec> cl_spec_;
    std::unique_ptr<MeshNetworkRTL> rtl_;
    std::deque<InValRdy> *net_in_ = nullptr;
    std::deque<OutValRdy> *net_out_ = nullptr;

    std::vector<TerminalTrafficGen> gens_;
    std::vector<std::deque<std::pair<Bits, uint64_t>>> srcq_;
    NetStats stats_;
    uint64_t inflight_ = 0;
};

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_TRAFFIC_H
