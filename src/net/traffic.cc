#include "traffic.h"

#include <algorithm>

#include "core/snap.h"

namespace cmtl {
namespace net {

namespace {
constexpr int kNumMsgIds = 16;
constexpr int kPayloadBits = 16;
constexpr uint64_t kTimeMask = (uint64_t(1) << kPayloadBits) - 1;

// Hotspot: this fraction of messages target node 0.
constexpr uint64_t kHotspotFrac = uint64_t(0.25 * 4294967296.0);
constexpr int kHotspotNode = 0;

// Bursty: 32-on / 96-off phases (25% duty), staggered per terminal.
constexpr uint64_t kBurstPeriod = 128;
constexpr uint64_t kBurstOn = 32;
} // namespace

bool
trafficPatternFromName(const std::string &name, TrafficPattern *out)
{
    for (TrafficPattern pattern : allTrafficPatterns()) {
        if (name == trafficPatternName(pattern)) {
            *out = pattern;
            return true;
        }
    }
    return false;
}

const std::vector<TrafficPattern> &
allTrafficPatterns()
{
    static const std::vector<TrafficPattern> all = {
        TrafficPattern::Uniform,       TrafficPattern::Tornado,
        TrafficPattern::Hotspot,       TrafficPattern::BitComplement,
        TrafficPattern::Bursty,
    };
    return all;
}

MeshTrafficTop::MeshTrafficTop(const std::string &name, NetLevel level,
                               int nrouters, int nentries,
                               double injection_rate, uint64_t seed,
                               TrafficPattern pattern)
    : Model(nullptr, name),
      msg_(makeNetMsg(nrouters, kNumMsgIds, kPayloadBits)),
      level_(level), nrouters_(nrouters),
      rate_fp_(rateToFp32(injection_rate)), pattern_(pattern),
      burst_rate_fp_(
          std::min(rateToFp32(injection_rate) * (kBurstPeriod / kBurstOn),
                   uint64_t(1) << 32))
{
    switch (level) {
      case NetLevel::FL:
        fl_ = std::make_unique<NetworkFL>(this, "net", nrouters,
                                          kNumMsgIds, kPayloadBits,
                                          nentries);
        net_in_ = &fl_->in_;
        net_out_ = &fl_->out;
        break;
      case NetLevel::CL:
        cl_ = std::make_unique<MeshNetworkCL>(this, "net", nrouters,
                                              kNumMsgIds, kPayloadBits,
                                              nentries);
        net_in_ = &cl_->in_;
        net_out_ = &cl_->out;
        break;
      case NetLevel::CLSpec:
        cl_spec_ = std::make_unique<MeshNetworkCLSpec>(
            this, "net", nrouters, kNumMsgIds, kPayloadBits, nentries);
        net_in_ = &cl_spec_->in_;
        net_out_ = &cl_spec_->out;
        break;
      case NetLevel::RTL:
        rtl_ = std::make_unique<MeshNetworkRTL>(this, "net", nrouters,
                                                kNumMsgIds, kPayloadBits,
                                                nentries);
        net_in_ = &rtl_->in_;
        net_out_ = &rtl_->out;
        break;
    }

    gens_.resize(nrouters);
    for (int t = 0; t < nrouters; ++t)
        gens_[t].init(seed, t);
    srcq_.resize(nrouters);

    tickFl("traffic", [this] {
        // Ejection: sinks are always ready; measure completed
        // transfers.
        for (int t = 0; t < nrouters_; ++t) {
            OutValRdy &o = (*net_out_)[t];
            if (o.fire()) {
                uint64_t sent =
                    msg_.get(o.msg.value(), "payload").toUint64();
                uint64_t lat = (now_ - sent) & kTimeMask;
                --inflight_;
                ++stats_.received;
                stats_.latency_sum += lat;
                stats_.latency_max = std::max(stats_.latency_max, lat);
            }
            o.rdy.setNext(uint64_t(1));
        }
        // Injection bookkeeping: a source head accepted last cycle
        // leaves its queue.
        for (int t = 0; t < nrouters_; ++t) {
            InValRdy &i = (*net_in_)[t];
            if (i.fire()) {
                srcq_[t].pop_front();
                ++inflight_;
                ++stats_.injected;
            }
        }
        // Generation: open-loop Bernoulli arrivals.
        for (int t = 0; t < nrouters_; ++t) {
            if (genThisCycle(t)) {
                int dest = pickDestFor(t);
                Bits msg = msg_.pack(
                    {static_cast<uint64_t>(dest),
                     static_cast<uint64_t>(t),
                     stats_.generated & (kNumMsgIds - 1),
                     now_ & kTimeMask});
                srcq_[t].emplace_back(msg, now_);
                ++stats_.generated;
            }
        }
        // Drive injection interfaces.
        for (int t = 0; t < nrouters_; ++t) {
            InValRdy &i = (*net_in_)[t];
            bool have = !srcq_[t].empty();
            i.val.setNext(uint64_t(have ? 1 : 0));
            if (have)
                i.msg.setNext(srcq_[t].front().first);
        }
        ++now_;
        ++stats_.cycles;
    });
}

bool
MeshTrafficTop::genThisCycle(int t)
{
    if (pattern_ != TrafficPattern::Bursty)
        return gens_[t].genThisCycle(rate_fp_);
    // Stagger burst phases across terminals so the network never sees
    // every source firing in lockstep; the draw is consumed in the
    // off phase too, keeping each terminal's RNG stream one-per-cycle
    // like every other pattern.
    bool on = (now_ + uint64_t(t) * 37) % kBurstPeriod < kBurstOn;
    return gens_[t].genThisCycle(on ? burst_rate_fp_ : 0);
}

int
MeshTrafficTop::pickDestFor(int t)
{
    switch (pattern_) {
      case TrafficPattern::Tornado: {
        int dim = meshDim(nrouters_);
        int x = t % dim;
        int y = t / dim;
        return ((y + dim / 2) % dim) * dim + (x + dim / 2) % dim;
      }
      case TrafficPattern::BitComplement:
        // Coordinate mirror; on a square row-major mesh this is the
        // index complement.
        return nrouters_ - 1 - t;
      case TrafficPattern::Hotspot:
        if ((gens_[t].next() >> 32) < kHotspotFrac)
            return kHotspotNode;
        return gens_[t].pickDest(nrouters_);
      case TrafficPattern::Uniform:
      case TrafficPattern::Bursty:
        break;
    }
    return gens_[t].pickDest(nrouters_);
}

void
MeshTrafficTop::resetStats()
{
    stats_ = NetStats{};
}

uint64_t
MeshTrafficTop::queuedAtSources() const
{
    uint64_t total = 0;
    for (const auto &q : srcq_)
        total += q.size();
    return total;
}

void
MeshTrafficTop::snapSave(SnapWriter &w) const
{
    w.u64(now_);
    w.u64(inflight_);
    w.u64(stats_.cycles);
    w.u64(stats_.generated);
    w.u64(stats_.injected);
    w.u64(stats_.received);
    w.u64(stats_.latency_sum);
    w.u64(stats_.latency_max);
    w.u32(static_cast<uint32_t>(gens_.size()));
    for (const TerminalTrafficGen &gen : gens_)
        w.u64(gen.state);
    w.u32(static_cast<uint32_t>(srcq_.size()));
    for (const auto &queue : srcq_) {
        w.u32(static_cast<uint32_t>(queue.size()));
        for (const auto &entry : queue) {
            w.bits(entry.first);
            w.u64(entry.second);
        }
    }
}

void
MeshTrafficTop::snapLoad(SnapReader &r)
{
    now_ = r.u64();
    inflight_ = r.u64();
    stats_.cycles = r.u64();
    stats_.generated = r.u64();
    stats_.injected = r.u64();
    stats_.received = r.u64();
    stats_.latency_sum = r.u64();
    stats_.latency_max = r.u64();
    uint32_t ngens = r.u32();
    if (ngens != gens_.size())
        throw SnapError("MeshTrafficTop: snapshot has " +
                        std::to_string(ngens) +
                        " traffic generator(s), model has " +
                        std::to_string(gens_.size()));
    for (TerminalTrafficGen &gen : gens_)
        gen.state = r.u64();
    uint32_t nqueues = r.u32();
    if (nqueues != srcq_.size())
        throw SnapError("MeshTrafficTop: snapshot has " +
                        std::to_string(nqueues) +
                        " source queue(s), model has " +
                        std::to_string(srcq_.size()));
    for (auto &queue : srcq_) {
        queue.clear();
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i) {
            Bits msg = r.bits();
            uint64_t born = r.u64();
            queue.emplace_back(std::move(msg), born);
        }
    }
}

} // namespace net
} // namespace cmtl
