/**
 * @file
 * Network message format and XY-mesh routing helpers.
 */

#ifndef CMTL_NET_NETMSG_H
#define CMTL_NET_NETMSG_H

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/bitstruct.h"

namespace cmtl {
namespace net {

/** Router port indices for a 2D mesh. */
enum MeshPort { TERM = 0, NORTH = 1, EAST = 2, SOUTH = 3, WEST = 4 };
constexpr int kMeshPorts = 5;

/**
 * The paper's NetMsg: dest | src | opaque | payload, parameterized by
 * router count, in-flight message id space and payload width.
 */
inline BitStructLayout
makeNetMsg(int nrouters, int nmsgs, int payload_nbits)
{
    return BitStructLayout("NetMsg", {{"dest", bitsFor(nrouters)},
                                      {"src", bitsFor(nrouters)},
                                      {"opaque", bitsFor(nmsgs)},
                                      {"payload", payload_nbits}});
}

/** Integer square root for mesh dimensions; throws if not square. */
inline int
meshDim(int nrouters)
{
    int dim = static_cast<int>(std::lround(std::sqrt(nrouters)));
    if (dim * dim != nrouters)
        throw std::invalid_argument("nrouters must be a perfect square");
    return dim;
}

/**
 * XY dimension-ordered routing: returns the output MeshPort a message
 * at router @p here must take to reach router @p dest.
 */
inline MeshPort
xyRoute(int here, int dest, int dim)
{
    int hx = here % dim, hy = here / dim;
    int dx = dest % dim, dy = dest / dim;
    if (dx > hx)
        return EAST;
    if (dx < hx)
        return WEST;
    if (dy > hy)
        return SOUTH;
    if (dy < hy)
        return NORTH;
    return TERM;
}

/** Number of XY hops (router-to-router links) between two routers. */
inline int
xyHops(int a, int b, int dim)
{
    return std::abs(a % dim - b % dim) + std::abs(a / dim - b / dim);
}

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_NETMSG_H
