/**
 * @file
 * Cycle-level mesh router.
 *
 * XY dimension-ordered routing with per-input buffering, round-robin
 * switch arbitration, and a two-stage (input, output) pipeline: a
 * message arriving at cycle t is eligible for switch traversal at
 * cycle t+1 and departs the output register at t+2, giving the
 * two-cycle-per-hop timing typical of elastic-buffer routers. Written
 * as a tick_cl lambda over host data structures — the cycle-level
 * modeling style the paper's Section III-D describes.
 */

#ifndef CMTL_NET_CL_ROUTER_H
#define CMTL_NET_CL_ROUTER_H

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/netmsg.h"
#include "stdlib/valrdy.h"

namespace cmtl {
namespace net {

/** Cycle-level 5-port mesh router. */
class RouterCL : public Model
{
  public:
    std::deque<InValRdy> in_; //!< TERM, NORTH, EAST, SOUTH, WEST
    std::deque<OutValRdy> out;

    RouterCL(Model *parent, const std::string &name, int id, int nrouters,
             int nmsgs, int payload_nbits, int nentries);

    int id() const { return id_; }

    std::string lineTrace() const override;

    void snapSave(SnapWriter &w) const override;
    void snapLoad(SnapReader &r) override;

  private:
    BitStructLayout msg_;
    int id_;
    int dim_;
    int nentries_;
    std::vector<std::deque<Bits>> inq_;    //!< eligible messages
    std::vector<std::deque<Bits>> staged_; //!< arrived this cycle
    std::vector<std::optional<Bits>> outbuf_;
    std::vector<int> rr_; //!< round-robin pointer per output
};

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_CL_ROUTER_H
