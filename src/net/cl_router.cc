#include "cl_router.h"

#include "core/snap.h"

namespace cmtl {
namespace net {

RouterCL::RouterCL(Model *parent, const std::string &name, int id,
                   int nrouters, int nmsgs, int payload_nbits,
                   int nentries)
    : Model(parent, name), msg_(makeNetMsg(nrouters, nmsgs, payload_nbits)),
      id_(id), dim_(meshDim(nrouters)), nentries_(nentries),
      inq_(kMeshPorts), staged_(kMeshPorts), outbuf_(kMeshPorts),
      rr_(kMeshPorts, 0)
{
    for (int p = 0; p < kMeshPorts; ++p) {
        in_.emplace_back(this, "in_" + std::to_string(p), msg_.nbits());
        out.emplace_back(this, "out" + std::to_string(p), msg_.nbits());
    }

    tickCl("router_logic", [this] {
        // 1. Output registers that fired drain.
        for (int o = 0; o < kMeshPorts; ++o) {
            if (out[o].fire())
                outbuf_[o].reset();
        }
        // 2. Sample arrivals into the staging stage.
        for (int p = 0; p < kMeshPorts; ++p) {
            if (in_[p].fire())
                staged_[p].push_back(in_[p].msg.value());
        }
        // 3. Switch traversal: per free output, round-robin over the
        //    inputs whose head routes to it. Head routes are
        //    snapshotted first so each input queue is popped at most
        //    once per cycle (one read port per buffer).
        int head_route[kMeshPorts];
        for (int p = 0; p < kMeshPorts; ++p) {
            if (inq_[p].empty()) {
                head_route[p] = -1;
            } else {
                uint64_t dest =
                    msg_.get(inq_[p].front(), "dest").toUint64();
                head_route[p] =
                    xyRoute(id_, static_cast<int>(dest), dim_);
            }
        }
        for (int o = 0; o < kMeshPorts; ++o) {
            if (outbuf_[o])
                continue;
            for (int k = 0; k < kMeshPorts; ++k) {
                int p = (rr_[o] + k) % kMeshPorts;
                if (head_route[p] != o)
                    continue;
                outbuf_[o] = inq_[p].front();
                inq_[p].pop_front();
                head_route[p] = -1;
                rr_[o] = (p + 1) % kMeshPorts;
                break;
            }
        }
        // 4. Stage advance: this cycle's arrivals become eligible.
        for (int p = 0; p < kMeshPorts; ++p) {
            while (!staged_[p].empty()) {
                inq_[p].push_back(staged_[p].front());
                staged_[p].pop_front();
            }
        }
        // 5. Drive interfaces for the next cycle.
        for (int o = 0; o < kMeshPorts; ++o) {
            out[o].val.setNext(uint64_t(outbuf_[o] ? 1 : 0));
            if (outbuf_[o])
                out[o].msg.setNext(*outbuf_[o]);
        }
        for (int p = 0; p < kMeshPorts; ++p) {
            bool room = inq_[p].size() <
                        static_cast<size_t>(nentries_);
            in_[p].rdy.setNext(uint64_t(room ? 1 : 0));
        }
    });
}

void
RouterCL::snapSave(SnapWriter &w) const
{
    auto putDeques = [&w](const std::vector<std::deque<Bits>> &deques) {
        for (const auto &dq : deques) {
            w.u32(static_cast<uint32_t>(dq.size()));
            for (const Bits &msg : dq)
                w.bits(msg);
        }
    };
    putDeques(inq_);
    putDeques(staged_);
    for (const auto &slot : outbuf_) {
        w.u8(slot ? 1 : 0);
        if (slot)
            w.bits(*slot);
    }
    for (int ptr : rr_)
        w.u32(static_cast<uint32_t>(ptr));
}

void
RouterCL::snapLoad(SnapReader &r)
{
    auto getDeques = [&r](std::vector<std::deque<Bits>> &deques) {
        for (auto &dq : deques) {
            dq.clear();
            uint32_t n = r.u32();
            for (uint32_t i = 0; i < n; ++i)
                dq.push_back(r.bits());
        }
    };
    getDeques(inq_);
    getDeques(staged_);
    for (auto &slot : outbuf_) {
        if (r.u8())
            slot = r.bits();
        else
            slot.reset();
    }
    for (int &ptr : rr_)
        ptr = static_cast<int>(r.u32());
}

std::string
RouterCL::lineTrace() const
{
    std::string occ;
    for (int p = 0; p < kMeshPorts; ++p)
        occ += std::to_string(inq_[p].size());
    return "r" + std::to_string(id_) + ":" + occ;
}

} // namespace net
} // namespace cmtl
