/**
 * @file
 * Structural mesh network (paper Figure 11).
 *
 * The mesh is parameterized by its router type: instantiating it with
 * RouterCL yields the cycle-level network, with RouterRTL the
 * register-transfer-level network — the paper's key composition
 * pattern for trading accuracy against simulation speed, or swapping
 * microarchitectures, without touching the top-level structure.
 */

#ifndef CMTL_NET_MESH_H
#define CMTL_NET_MESH_H

#include <deque>
#include <string>

#include "net/cl_router.h"
#include "net/cl_router_spec.h"
#include "net/netmsg.h"
#include "net/rtl_router.h"
#include "stdlib/valrdy.h"

namespace cmtl {
namespace net {

/** XY mesh composed structurally from any 5-port router model. */
template <typename RouterType>
class MeshNetworkStructural : public Model
{
  public:
    std::deque<InValRdy> in_;
    std::deque<OutValRdy> out;
    std::deque<RouterType> routers;

    MeshNetworkStructural(Model *parent, const std::string &name,
                          int nrouters, int nmsgs, int payload_nbits,
                          int nentries)
        : Model(parent, name),
          msg_(makeNetMsg(nrouters, nmsgs, payload_nbits)),
          nrouters_(nrouters)
    {
        const int dim = meshDim(nrouters);
        for (int i = 0; i < nrouters; ++i) {
            in_.emplace_back(this, "in_" + std::to_string(i),
                             msg_.nbits());
            out.emplace_back(this, "out" + std::to_string(i),
                             msg_.nbits());
            routers.emplace_back(this, "router" + std::to_string(i), i,
                                 nrouters, nmsgs, payload_nbits,
                                 nentries);
        }

        // Injection/ejection terminals.
        for (int i = 0; i < nrouters; ++i) {
            connectValRdy(*this, in_[i], routers[i].in_[TERM]);
            connectValRdy(*this, routers[i].out[TERM], out[i]);
        }

        // Mesh channels (east-west and north-south neighbor pairs).
        for (int j = 0; j < dim; ++j) {
            for (int i = 0; i < dim; ++i) {
                int idx = i + j * dim;
                RouterType &cur = routers[idx];
                if (i + 1 < dim) {
                    RouterType &east = routers[idx + 1];
                    connectValRdy(*this, cur.out[EAST], east.in_[WEST]);
                    connectValRdy(*this, east.out[WEST], cur.in_[EAST]);
                }
                if (j + 1 < dim) {
                    RouterType &south = routers[idx + dim];
                    connectValRdy(*this, cur.out[SOUTH],
                                  south.in_[NORTH]);
                    connectValRdy(*this, south.out[NORTH],
                                  cur.in_[SOUTH]);
                }
            }
        }
    }

    int numTerminals() const { return nrouters_; }
    const BitStructLayout &msgType() const { return msg_; }

    std::string
    typeName() const override
    {
        return "Mesh_" + routers[0].typeName() + "_" +
               std::to_string(nrouters_);
    }

  private:
    BitStructLayout msg_;
    int nrouters_;
};

using MeshNetworkCL = MeshNetworkStructural<RouterCL>;
using MeshNetworkCLSpec = MeshNetworkStructural<RouterCLSpec>;
using MeshNetworkRTL = MeshNetworkStructural<RouterRTL>;

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_MESH_H
