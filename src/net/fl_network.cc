#include "fl_network.h"

#include "core/snap.h"

namespace cmtl {
namespace net {

NetworkFL::NetworkFL(Model *parent, const std::string &name, int nrouters,
                     int nmsgs, int payload_nbits, int nentries)
    : Model(parent, name), msg_(makeNetMsg(nrouters, nmsgs, payload_nbits)),
      nrouters_(nrouters), nentries_(nentries)
{
    meshDim(nrouters); // validate: must be a perfect square
    for (int i = 0; i < nrouters; ++i) {
        in_.emplace_back(this, "in_" + std::to_string(i), msg_.nbits());
        out.emplace_back(this, "out" + std::to_string(i), msg_.nbits());
    }
    output_fifos_.resize(nrouters);

    tickFl("network_logic", [this] {
        // Dequeue logic: a transfer completed on each firing output.
        for (int i = 0; i < nrouters_; ++i) {
            if (out[i].fire())
                output_fifos_[i].pop_front();
        }
        // Enqueue logic: route every arriving message to its
        // destination FIFO ("magic" single-cycle crossbar).
        for (int i = 0; i < nrouters_; ++i) {
            if (in_[i].fire()) {
                Bits msg = in_[i].msg.value();
                uint64_t dest = msg_.get(msg, "dest").toUint64();
                output_fifos_[dest].push_back(msg);
            }
        }
        // Set output signals.
        for (int i = 0; i < nrouters_; ++i) {
            bool is_full =
                output_fifos_[i].size() >=
                static_cast<size_t>(nentries_);
            bool is_empty = output_fifos_[i].empty();
            out[i].val.setNext(uint64_t(is_empty ? 0 : 1));
            in_[i].rdy.setNext(uint64_t(is_full ? 0 : 1));
            if (!is_empty)
                out[i].msg.setNext(output_fifos_[i].front());
        }
    });
}

void
NetworkFL::snapSave(SnapWriter &w) const
{
    w.u32(static_cast<uint32_t>(output_fifos_.size()));
    for (const auto &fifo : output_fifos_) {
        w.u32(static_cast<uint32_t>(fifo.size()));
        for (const Bits &msg : fifo)
            w.bits(msg);
    }
}

void
NetworkFL::snapLoad(SnapReader &r)
{
    uint32_t nfifos = r.u32();
    if (nfifos != output_fifos_.size())
        throw SnapError("NetworkFL: snapshot has " +
                        std::to_string(nfifos) +
                        " output fifo(s), model has " +
                        std::to_string(output_fifos_.size()));
    for (auto &fifo : output_fifos_) {
        fifo.clear();
        uint32_t n = r.u32();
        for (uint32_t i = 0; i < n; ++i)
            fifo.push_back(r.bits());
    }
}

} // namespace net
} // namespace cmtl
