/**
 * @file
 * Register-transfer-level mesh router.
 *
 * Input-queued 5-port router: per-input RtlQueue buffering, XY
 * dimension-ordered route computation, per-output round-robin switch
 * arbitration and a combinational crossbar. Entirely IR-based, so it
 * is Verilog-translatable and fully SimJIT-specializable; it exposes
 * the identical port-based interface as RouterCL, allowing either to
 * parameterize the structural mesh (paper Figure 11).
 *
 * Requires the mesh dimension to be a power of two so destination x/y
 * coordinates are bitfields of the router id.
 */

#ifndef CMTL_NET_RTL_ROUTER_H
#define CMTL_NET_RTL_ROUTER_H

#include <deque>
#include <string>

#include "net/netmsg.h"
#include "stdlib/arbiters.h"
#include "stdlib/queues.h"
#include "stdlib/valrdy.h"

namespace cmtl {
namespace net {

/** RTL 5-port mesh router. */
class RouterRTL : public Model
{
  public:
    std::deque<InValRdy> in_; //!< TERM, NORTH, EAST, SOUTH, WEST
    std::deque<OutValRdy> out;

    RouterRTL(Model *parent, const std::string &name, int id,
              int nrouters, int nmsgs, int payload_nbits, int nentries);

    int id() const { return id_; }

    std::string
    typeName() const override
    {
        // Routers are position-specific (coordinates are baked into
        // the route logic), so each id is its own module.
        return "RouterRTL_" + std::to_string(id_) + "_" +
               std::to_string(nentries_);
    }

  private:
    BitStructLayout msg_;
    int id_;
    int dim_;
    int nentries_;
    std::deque<stdlib::RtlQueue> queues_;
    std::deque<stdlib::RoundRobinArbiter> arbiters_;
    std::deque<Wire> routes_; //!< per-input routed output port
    std::deque<Wire> reqs_;   //!< per-output request vector
    std::deque<Wire> grants_; //!< per-output grant vector (wired copy)
    std::deque<Wire> qmsg_;   //!< shadow of queue deq.msg
    std::deque<Wire> qval_;   //!< shadow of queue deq.val
    std::deque<Wire> qrdy_;   //!< shadow of queue deq.rdy
    std::deque<Wire> en_;     //!< shadow of arbiter enable
};

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_RTL_ROUTER_H
