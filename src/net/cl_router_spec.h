/**
 * @file
 * Cycle-level mesh router in the specializable subset.
 *
 * The same cycle-level behaviour as RouterCL — XY routing, per-input
 * buffering, round-robin switch arbitration, two-cycle-per-hop
 * timing — but expressed in the CMTL IR instead of arbitrary host
 * code. This is the analog of a PyMTL CL model written in the
 * restricted Python subset SimJIT-CL can translate (Section IV-A):
 * the paper's CL mesh results rely on exactly this property. It is
 * verified cycle-exact against RouterCL.
 *
 * Unlike RouterRTL this is a single flat model: queues are memory
 * arrays with head/count registers rather than structural shift
 * registers, and arbitration is inlined — the coarser modeling style
 * of cycle-level code.
 */

#ifndef CMTL_NET_CL_ROUTER_SPEC_H
#define CMTL_NET_CL_ROUTER_SPEC_H

#include <deque>
#include <string>

#include "net/netmsg.h"
#include "stdlib/valrdy.h"

namespace cmtl {
namespace net {

/** IR-based cycle-level 5-port mesh router. */
class RouterCLSpec : public Model
{
  public:
    std::deque<InValRdy> in_; //!< TERM, NORTH, EAST, SOUTH, WEST
    std::deque<OutValRdy> out;

    RouterCLSpec(Model *parent, const std::string &name, int id,
                 int nrouters, int nmsgs, int payload_nbits,
                 int nentries);

    int id() const { return id_; }

    std::string
    typeName() const override
    {
        return "RouterCLSpec_" + std::to_string(id_) + "_" +
               std::to_string(nentries_);
    }

  private:
    BitStructLayout msg_;
    int id_;
    int dim_;
    int nentries_;

    std::deque<MemArray> queues_; //!< per-input circular buffers
    std::deque<Wire> head_, count_;
    std::deque<Wire> route_;  //!< routed output of each input head
    std::deque<Wire> grant_;  //!< per-output one-hot grants (comb)
    std::deque<Wire> obuf_full_, obuf_msg_, rr_;
};

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_CL_ROUTER_SPEC_H
