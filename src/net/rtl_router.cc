#include "rtl_router.h"

#include <stdexcept>

namespace cmtl {
namespace net {

namespace {

int
log2Exact(int value)
{
    int bits = 0;
    while ((1 << bits) < value)
        ++bits;
    if ((1 << bits) != value)
        throw std::invalid_argument(
            "RouterRTL requires a power-of-two mesh dimension");
    return bits;
}

} // namespace

RouterRTL::RouterRTL(Model *parent, const std::string &name, int id,
                     int nrouters, int nmsgs, int payload_nbits,
                     int nentries)
    : Model(parent, name), msg_(makeNetMsg(nrouters, nmsgs, payload_nbits)),
      id_(id), dim_(meshDim(nrouters)), nentries_(nentries)
{
    const int coord_bits = log2Exact(dim_);
    const int dest_lsb = msg_.field("dest").lsb;
    const uint64_t hx = static_cast<uint64_t>(id_ % dim_);
    const uint64_t hy = static_cast<uint64_t>(id_ / dim_);

    // Parent-side wires shadowing child ports keep every IR block
    // local to this model, preserving Verilog translatability.
    for (int p = 0; p < kMeshPorts; ++p) {
        in_.emplace_back(this, "in_" + std::to_string(p), msg_.nbits());
        out.emplace_back(this, "out" + std::to_string(p), msg_.nbits());
        queues_.emplace_back(this, "queue" + std::to_string(p),
                             msg_.nbits(), nentries);
        arbiters_.emplace_back(this, "arb" + std::to_string(p),
                               kMeshPorts);
        routes_.emplace_back(this, "route" + std::to_string(p), 3);
        reqs_.emplace_back(this, "reqs" + std::to_string(p), kMeshPorts);
        grants_.emplace_back(this, "grants" + std::to_string(p),
                             kMeshPorts);
        qmsg_.emplace_back(this, "qmsg" + std::to_string(p),
                           msg_.nbits());
        qval_.emplace_back(this, "qval" + std::to_string(p), 1);
        qrdy_.emplace_back(this, "qrdy" + std::to_string(p), 1);
        en_.emplace_back(this, "en" + std::to_string(p), 1);
    }

    for (int p = 0; p < kMeshPorts; ++p) {
        // External ports feed the input queues.
        connectValRdy(*this, in_[p], queues_[p].enq);
        // Shadow wires for the queue dequeue side and arbiter ports.
        connect(qmsg_[p], queues_[p].deq.msg);
        connect(qval_[p], queues_[p].deq.val);
        connect(qrdy_[p], queues_[p].deq.rdy);
        connect(reqs_[p], arbiters_[p].reqs);
        connect(grants_[p], arbiters_[p].grants);
        connect(en_[p], arbiters_[p].en);
    }

    // Stage 1: route computation and per-output request vectors.
    auto &rc = combinational("route_comb");
    for (int p = 0; p < kMeshPorts; ++p) {
        // let() keeps the nested slices Verilog-translatable.
        IrExpr dest = rc.let("dest" + std::to_string(p),
                             rd(qmsg_[p]).slice(
                                 dest_lsb, msg_.field("dest").nbits));
        IrExpr dx = dest.slice(0, coord_bits);
        IrExpr dy = dest.slice(coord_bits, coord_bits);
        IrExpr route =
            mux(dx > lit(coord_bits, hx), lit(3, EAST),
                mux(dx < lit(coord_bits, hx), lit(3, WEST),
                    mux(dy > lit(coord_bits, hy), lit(3, SOUTH),
                        mux(dy < lit(coord_bits, hy), lit(3, NORTH),
                            lit(3, TERM)))));
        rc.assign(routes_[p], route);
    }
    for (int o = 0; o < kMeshPorts; ++o) {
        IrExpr req = lit(kMeshPorts, 0);
        for (int p = kMeshPorts - 1; p >= 0; --p) {
            IrExpr wants =
                rd(qval_[p]) &&
                (rd(routes_[p]) == static_cast<uint64_t>(o));
            req = req |
                  mux(wants, lit(kMeshPorts, uint64_t(1) << p),
                      lit(kMeshPorts, 0));
        }
        rc.assign(reqs_[o], req);
    }

    // Stage 2: crossbar traversal and handshakes, from the grants.
    auto &xb = combinational("xbar_comb");
    for (int o = 0; o < kMeshPorts; ++o) {
        IrExpr any = rd(grants_[o]).reduceOr();
        xb.assign(out[o].val, any);
        IrExpr msg = rd(qmsg_[0]);
        for (int p = kMeshPorts - 1; p >= 1; --p)
            msg = mux(rd(grants_[o]).bit(p), rd(qmsg_[p]), msg);
        xb.assign(out[o].msg, msg);
        xb.assign(en_[o], any && rd(out[o].rdy));
    }
    for (int p = 0; p < kMeshPorts; ++p) {
        IrExpr fired = lit(1, 0);
        for (int o = 0; o < kMeshPorts; ++o)
            fired = fired || (rd(grants_[o]).bit(p) && rd(out[o].rdy));
        xb.assign(qrdy_[p], fired);
    }
}

} // namespace net
} // namespace cmtl
