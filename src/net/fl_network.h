/**
 * @file
 * Functional-level network (paper Figure 10).
 *
 * Emulates the functionality but not the timing of a mesh network:
 * behaviourally an ideal single-cycle crossbar with one output FIFO
 * per terminal. Resource constraints exist only at the interface —
 * multiple packets may enter the same output queue in one cycle, but
 * only one may leave per cycle.
 */

#ifndef CMTL_NET_FL_NETWORK_H
#define CMTL_NET_FL_NETWORK_H

#include <deque>
#include <vector>

#include "net/netmsg.h"
#include "stdlib/valrdy.h"

namespace cmtl {
namespace net {

/** Magic-crossbar FL network with per-output FIFOs. */
class NetworkFL : public Model
{
  public:
    std::deque<InValRdy> in_;
    std::deque<OutValRdy> out;

    NetworkFL(Model *parent, const std::string &name, int nrouters,
              int nmsgs, int payload_nbits, int nentries);

    int numTerminals() const { return nrouters_; }

    void snapSave(SnapWriter &w) const override;
    void snapLoad(SnapReader &r) override;
    const BitStructLayout &msgType() const { return msg_; }

  private:
    BitStructLayout msg_;
    std::vector<std::deque<Bits>> output_fifos_;
    int nrouters_;
    int nentries_;
};

} // namespace net
} // namespace cmtl

#endif // CMTL_NET_FL_NETWORK_H
