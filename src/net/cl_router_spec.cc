#include "cl_router_spec.h"

#include <stdexcept>

namespace cmtl {
namespace net {

RouterCLSpec::RouterCLSpec(Model *parent, const std::string &name, int id,
                           int nrouters, int nmsgs, int payload_nbits,
                           int nentries)
    : Model(parent, name), msg_(makeNetMsg(nrouters, nmsgs, payload_nbits)),
      id_(id), dim_(meshDim(nrouters)), nentries_(nentries)
{
    if (nentries < 2 || (nentries & (nentries - 1)) != 0)
        throw std::invalid_argument(
            "RouterCLSpec requires a power-of-two queue depth");
    const int ib = bitsFor(nentries);      // head index bits
    const int cb = bitsFor(nentries + 1);  // count bits
    const int coord_bits = bitsFor(dim_);
    const int dest_lsb = msg_.field("dest").lsb;
    const uint64_t hx = static_cast<uint64_t>(id_ % dim_);
    const uint64_t hy = static_cast<uint64_t>(id_ / dim_);

    for (int p = 0; p < kMeshPorts; ++p) {
        in_.emplace_back(this, "in_" + std::to_string(p), msg_.nbits());
        out.emplace_back(this, "out" + std::to_string(p), msg_.nbits());
        queues_.emplace_back(this, "q" + std::to_string(p),
                             msg_.nbits(), nentries);
        head_.emplace_back(this, "head" + std::to_string(p), ib);
        count_.emplace_back(this, "count" + std::to_string(p), cb);
        route_.emplace_back(this, "route" + std::to_string(p), 3);
        grant_.emplace_back(this, "grant" + std::to_string(p),
                            kMeshPorts);
        obuf_full_.emplace_back(this, "obuf_full" + std::to_string(p),
                                1);
        obuf_msg_.emplace_back(this, "obuf_msg" + std::to_string(p),
                               msg_.nbits());
        rr_.emplace_back(this, "rr" + std::to_string(p), 3);
    }

    // ------------------------------------------------ combinational
    auto &c = combinational("comb");
    for (int p = 0; p < kMeshPorts; ++p) {
        // Route computation on each input queue's head message.
        IrExpr headmsg =
            c.let("hm" + std::to_string(p), aread(queues_[p], rd(head_[p])));
        IrExpr dest = c.let("dest" + std::to_string(p),
                            headmsg.slice(dest_lsb,
                                          msg_.field("dest").nbits));
        IrExpr dx = dest.slice(0, coord_bits);
        IrExpr dy = dest.slice(coord_bits, coord_bits);
        c.assign(route_[p],
                 mux(dx > lit(coord_bits, hx), lit(3, EAST),
                     mux(dx < lit(coord_bits, hx), lit(3, WEST),
                         mux(dy > lit(coord_bits, hy), lit(3, SOUTH),
                             mux(dy < lit(coord_bits, hy),
                                 lit(3, NORTH), lit(3, TERM))))));
        // Interface outputs mirror registered state.
        c.assign(out[p].val, rd(obuf_full_[p]));
        c.assign(out[p].msg, rd(obuf_msg_[p]));
        c.assign(in_[p].rdy,
                 rd(count_[p]) < static_cast<uint64_t>(nentries_));
    }
    // Per-output round-robin grant over requesting inputs.
    for (int o = 0; o < kMeshPorts; ++o) {
        IrExpr result = lit(kMeshPorts, 0);
        for (int r = kMeshPorts - 1; r >= 0; --r) {
            IrExpr pick = lit(kMeshPorts, 0);
            for (int k = kMeshPorts - 1; k >= 0; --k) {
                int p = (r + k) % kMeshPorts;
                IrExpr req =
                    (rd(count_[p]) != 0u) &&
                    (rd(route_[p]) == static_cast<uint64_t>(o));
                pick = mux(req, lit(kMeshPorts, uint64_t(1) << p),
                           pick);
            }
            result = mux(rd(rr_[o]) == static_cast<uint64_t>(r), pick,
                         result);
        }
        c.assign(grant_[o], result);
    }

    // -------------------------------------------------- sequential
    auto &t = tickRtl("seq");
    // Output-side: drain, then refill from the granted input.
    std::vector<IrExpr> free(kMeshPorts);
    for (int o = 0; o < kMeshPorts; ++o) {
        IrExpr fire = rd(obuf_full_[o]) && rd(out[o].rdy);
        free[o] = t.let("free" + std::to_string(o),
                        !rd(obuf_full_[o]) || fire);
        IrExpr any = rd(grant_[o]).reduceOr();
        t.if_(free[o] && any, [&] {
            // Crossbar: select the granted input's head message.
            IrExpr msg = aread(queues_[0], rd(head_[0]));
            IrExpr nrr = lit(3, 1);
            for (int p = kMeshPorts - 1; p >= 1; --p) {
                msg = mux(rd(grant_[o]).bit(p),
                          aread(queues_[p], rd(head_[p])), msg);
            }
            for (int p = kMeshPorts - 1; p >= 1; --p) {
                nrr = mux(rd(grant_[o]).bit(p),
                          lit(3, static_cast<uint64_t>((p + 1) %
                                                       kMeshPorts)),
                          nrr);
            }
            t.assign(obuf_msg_[o], msg);
            t.assign(obuf_full_[o], 1);
            t.assign(rr_[o], nrr);
        },
        [&] {
            t.if_(fire, [&] { t.assign(obuf_full_[o], 0); });
        });
    }
    // Input-side: enqueue arrivals, dequeue grants.
    for (int p = 0; p < kMeshPorts; ++p) {
        IrExpr enq = t.let("enq" + std::to_string(p),
                           rd(in_[p].val) && rd(in_[p].rdy));
        IrExpr deq = lit(1, 0);
        for (int o = 0; o < kMeshPorts; ++o)
            deq = deq || (free[o] && rd(grant_[o]).bit(p));
        deq = t.let("deq" + std::to_string(p), deq);
        t.if_(enq, [&] {
            IrExpr sum = t.let("hcsum" + std::to_string(p),
                               rd(head_[p]).zext(8) +
                                   rd(count_[p]).zext(8));
            t.writeArray(queues_[p], sum.slice(0, bitsFor(nentries_)),
                         rd(in_[p].msg));
        });
        t.if_(deq, [&] {
            t.assign(head_[p], rd(head_[p]) + 1u);
        });
        int cb2 = count_[p].nbits();
        t.assign(count_[p],
                 rd(count_[p]) + enq.zext(cb2) - deq.zext(cb2));
        t.if_(rd(reset), [&] {
            t.assign(count_[p], 0);
            t.assign(head_[p], 0);
        });
    }
}

} // namespace net
} // namespace cmtl
