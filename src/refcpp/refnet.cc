#include "refnet.h"

namespace cmtl {
namespace refcpp {

namespace {
constexpr int kNumMsgIds = 16;
constexpr int kPayloadBits = 16;
constexpr uint64_t kTimeMask = (uint64_t(1) << kPayloadBits) - 1;
} // namespace

RefMeshCL::RefMeshCL(int nrouters, int nentries, double injection_rate,
                     uint64_t seed)
    : nrouters_(nrouters), dim_(net::meshDim(nrouters)),
      nentries_(nentries), rate_fp_(net::rateToFp32(injection_rate))
{
    // Replicate makeNetMsg's most-significant-first field packing.
    dest_bits_ = bitsFor(static_cast<uint64_t>(nrouters));
    int opaque_bits = bitsFor(kNumMsgIds);
    payload_bits_ = kPayloadBits;
    opq_lsb_ = payload_bits_;
    src_lsb_ = opq_lsb_ + opaque_bits;
    dest_lsb_ = src_lsb_ + dest_bits_;

    rin_.resize(nrouters);
    rin_nxt_.resize(nrouters);
    sink_.resize(nrouters);
    sink_nxt_.resize(nrouters);
    routers_.resize(nrouters);
    srcq_.resize(nrouters);
    gens_.resize(nrouters);
    for (int t = 0; t < nrouters; ++t)
        gens_[t].init(seed, t);
}

uint32_t
RefMeshCL::destOf(uint32_t msg) const
{
    return (msg >> dest_lsb_) & ((1u << dest_bits_) - 1);
}

uint64_t
RefMeshCL::payloadOf(uint32_t msg) const
{
    return msg & kTimeMask;
}

uint32_t
RefMeshCL::packMsg(uint32_t dest, uint32_t src, uint32_t opaque,
                   uint64_t payload) const
{
    return (dest << dest_lsb_) | (src << src_lsb_) |
           (opaque << opq_lsb_) |
           static_cast<uint32_t>(payload & kTimeMask);
}

void
RefMeshCL::cycle()
{
    rin_nxt_ = rin_;
    sink_nxt_ = sink_;

    // --- Harness (mirrors MeshTrafficTop's tick, same order) --------
    for (int t = 0; t < nrouters_; ++t) {
        Chan &o = sink_[t];
        if (o.val && o.rdy) {
            uint64_t lat = (now_ - payloadOf(o.msg)) & kTimeMask;
            --inflight_;
            ++stats_.received;
            stats_.latency_sum += lat;
            stats_.latency_max = std::max(stats_.latency_max, lat);
        }
        sink_nxt_[t].rdy = 1;
    }
    for (int t = 0; t < nrouters_; ++t) {
        Chan &i = rin_[t][net::TERM];
        if (i.val && i.rdy) {
            srcq_[t].pop_front();
            ++inflight_;
            ++stats_.injected;
        }
    }
    for (int t = 0; t < nrouters_; ++t) {
        if (gens_[t].genThisCycle(rate_fp_)) {
            uint32_t dest =
                static_cast<uint32_t>(gens_[t].pickDest(nrouters_));
            srcq_[t].push_back(packMsg(
                dest, static_cast<uint32_t>(t),
                static_cast<uint32_t>(stats_.generated &
                                      (kNumMsgIds - 1)),
                now_));
            ++stats_.generated;
        }
    }
    for (int t = 0; t < nrouters_; ++t) {
        Chan &i = rin_nxt_[t][net::TERM];
        i.val = srcq_[t].empty() ? 0 : 1;
        if (!srcq_[t].empty())
            i.msg = srcq_[t].front();
    }

    // --- Routers (mirror RouterCL's tick) ----------------------------
    for (int r = 0; r < nrouters_; ++r) {
        Router &router = routers_[r];
        // Resolve each output's receiver channel (cur and next).
        auto receiver = [&](int o, bool next) -> Chan * {
            auto &rin = next ? rin_nxt_ : rin_;
            auto &sink = next ? sink_nxt_ : sink_;
            int x = r % dim_, y = r / dim_;
            switch (o) {
              case net::TERM: return &sink[r];
              case net::NORTH:
                return y > 0 ? &rin[r - dim_][net::SOUTH] : nullptr;
              case net::EAST:
                return x + 1 < dim_ ? &rin[r + 1][net::WEST] : nullptr;
              case net::SOUTH:
                return y + 1 < dim_ ? &rin[r + dim_][net::NORTH]
                                    : nullptr;
              case net::WEST:
                return x > 0 ? &rin[r - 1][net::EAST] : nullptr;
            }
            return nullptr;
        };

        // 1. Output registers that fired drain.
        for (int o = 0; o < kPorts; ++o) {
            Chan *ch = receiver(o, false);
            if (ch && ch->val && ch->rdy)
                router.outbuf[o].reset();
        }
        // 2. Arrivals into staging.
        for (int p = 0; p < kPorts; ++p) {
            Chan &ch = rin_[r][p];
            if (ch.val && ch.rdy)
                router.staged[p].push_back(ch.msg);
        }
        // 3. Switch traversal with round-robin arbitration; head
        //    routes snapshotted (single pop per input per cycle).
        int head_route[kPorts];
        for (int p = 0; p < kPorts; ++p) {
            head_route[p] =
                router.inq[p].empty()
                    ? -1
                    : net::xyRoute(
                          r,
                          static_cast<int>(destOf(router.inq[p].front())),
                          dim_);
        }
        for (int o = 0; o < kPorts; ++o) {
            if (router.outbuf[o])
                continue;
            for (int k = 0; k < kPorts; ++k) {
                int p = (router.rr[o] + k) % kPorts;
                if (head_route[p] != o)
                    continue;
                router.outbuf[o] = router.inq[p].front();
                router.inq[p].pop_front();
                head_route[p] = -1;
                router.rr[o] = (p + 1) % kPorts;
                break;
            }
        }
        // 4. Stage advance.
        for (int p = 0; p < kPorts; ++p) {
            while (!router.staged[p].empty()) {
                router.inq[p].push_back(router.staged[p].front());
                router.staged[p].pop_front();
            }
        }
        // 5. Drive outputs and input readiness for next cycle.
        for (int o = 0; o < kPorts; ++o) {
            Chan *ch = receiver(o, true);
            if (!ch)
                continue;
            ch->val = router.outbuf[o] ? 1 : 0;
            if (router.outbuf[o])
                ch->msg = *router.outbuf[o];
        }
        for (int p = 0; p < kPorts; ++p) {
            rin_nxt_[r][p].rdy =
                router.inq[p].size() < static_cast<size_t>(nentries_)
                    ? 1
                    : 0;
        }
    }

    rin_.swap(rin_nxt_);
    sink_.swap(sink_nxt_);
    ++now_;
    ++stats_.cycles;
}

void
RefMeshCL::cycle(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        cycle();
}

} // namespace refcpp
} // namespace cmtl
