/**
 * @file
 * Hand-written C++ mesh network simulator (no framework).
 *
 * The performance baseline of the paper's Figure 14/15: a direct C++
 * implementation of the same elastic-buffer XY mesh plus traffic
 * harness, with plain structs and arrays instead of models, signals
 * and simulator machinery. It consumes the identical
 * TerminalTrafficGen stream and replicates the CL network's
 * latency-insensitive channel timing register-for-register, so its
 * cycle-by-cycle statistics match MeshTrafficTop(NetLevel::CL)
 * exactly — the property the paper relied on ("verified to be
 * cycle-exact with our PyMTL implementation").
 */

#ifndef CMTL_REFCPP_REFNET_H
#define CMTL_REFCPP_REFNET_H

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/traffic.h"

namespace cmtl {
namespace refcpp {

/** Hand-coded cycle-level mesh network + traffic harness. */
class RefMeshCL
{
  public:
    RefMeshCL(int nrouters, int nentries, double injection_rate,
              uint64_t seed);

    /** Advance one cycle. */
    void cycle();
    void cycle(uint64_t n);

    void resetStats() { stats_ = net::NetStats{}; }
    const net::NetStats &stats() const { return stats_; }
    uint64_t inFlight() const { return inflight_; }
    int numTerminals() const { return nrouters_; }

  private:
    static constexpr int kPorts = net::kMeshPorts;

    struct Chan
    {
        uint8_t val = 0;
        uint8_t rdy = 0;
        uint32_t msg = 0;
    };

    struct Router
    {
        std::array<std::deque<uint32_t>, kPorts> inq;
        std::array<std::deque<uint32_t>, kPorts> staged;
        std::array<std::optional<uint32_t>, kPorts> outbuf;
        std::array<int, kPorts> rr{};
    };

    uint32_t destOf(uint32_t msg) const;
    uint64_t payloadOf(uint32_t msg) const;
    uint32_t packMsg(uint32_t dest, uint32_t src, uint32_t opaque,
                     uint64_t payload) const;

    int nrouters_;
    int dim_;
    int nentries_;
    uint64_t rate_fp_;
    uint64_t now_ = 0;

    // Field layout (identical to makeNetMsg).
    int dest_lsb_, dest_bits_, src_lsb_, opq_lsb_, payload_bits_;

    // Channels INTO router r, port p: val/msg written by the sender,
    // rdy by the router. Terminal-out channels into the sinks.
    std::vector<std::array<Chan, kPorts>> rin_, rin_nxt_;
    std::vector<Chan> sink_, sink_nxt_;

    std::vector<Router> routers_;
    std::vector<net::TerminalTrafficGen> gens_;
    std::vector<std::deque<uint32_t>> srcq_;

    net::NetStats stats_;
    uint64_t inflight_ = 0;
};

} // namespace refcpp
} // namespace cmtl

#endif // CMTL_REFCPP_REFNET_H
