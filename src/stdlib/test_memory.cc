#include "test_memory.h"

#include <stdexcept>

namespace cmtl {
namespace stdlib {

TestMemory::TestMemory(Model *parent, const std::string &name, int nports,
                       int latency)
    : Model(parent, name), types_(memIfcTypes()), latency_(latency)
{
    if (latency < 1)
        throw std::invalid_argument("TestMemory latency must be >= 1");
    for (int i = 0; i < nports; ++i) {
        ifc.emplace_back(this, "ifc" + std::to_string(i), types_);
        adapters_.emplace_back(ifc.back(), /*capacity=*/4);
    }
    pending_.resize(nports);

    tickFl("mem_logic", [this, nports] {
        ++now_;
        for (int p = 0; p < nports; ++p) {
            auto &ad = adapters_[p];
            ad.xtick();
            // Accept one request per port per cycle.
            if (!ad.req_q.empty()) {
                Bits req = ad.getReq();
                uint64_t type = types_.req.get(req, "type").toUint64();
                uint64_t addr = types_.req.get(req, "addr").toUint64();
                uint64_t data = types_.req.get(req, "data").toUint64();
                Bits resp(types_.resp.nbits());
                if (type == static_cast<uint64_t>(MemReqType::Read)) {
                    resp = types_.resp.pack({0, readWord(addr)});
                } else {
                    writeWord(addr, static_cast<uint32_t>(data));
                    resp = types_.resp.pack({1, 0});
                }
                pending_[p].push_back(
                    Pending{now_ + static_cast<uint64_t>(latency_) - 1,
                            resp});
                ++num_requests_;
            }
            // Deliver due responses, respecting backpressure.
            if (!pending_[p].empty() &&
                pending_[p].front().due_cycle <= now_ &&
                !ad.resp_q.full()) {
                ad.pushResp(pending_[p].front().resp);
                pending_[p].pop_front();
            }
        }
    });
}

uint32_t
TestMemory::readWord(uint64_t addr) const
{
    auto it = words_.find(addr >> 2);
    return it == words_.end() ? 0 : it->second;
}

void
TestMemory::writeWord(uint64_t addr, uint32_t value)
{
    words_[addr >> 2] = value;
}

std::string
TestMemory::lineTrace() const
{
    std::string out;
    for (size_t p = 0; p < pending_.size(); ++p) {
        if (!out.empty())
            out += " ";
        out += "m" + std::to_string(p) + ":" +
               std::to_string(pending_[p].size());
    }
    return out;
}

} // namespace stdlib
} // namespace cmtl
