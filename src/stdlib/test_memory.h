/**
 * @file
 * Functional-level test memory with configurable latency and ports.
 *
 * A magic word-addressed memory serving the standard memory interface
 * (see reqresp.h) on one or more ports. Requests complete after a
 * configurable pipeline latency; each port is fully independent and
 * pipelined, sustaining one request per cycle — the memory model the
 * paper composes with FL/CL/RTL processors and accelerators.
 */

#ifndef CMTL_STDLIB_TEST_MEMORY_H
#define CMTL_STDLIB_TEST_MEMORY_H

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "stdlib/adapters.h"
#include "stdlib/reqresp.h"

namespace cmtl {
namespace stdlib {

/** Magic multi-port memory (FL). */
class TestMemory : public Model
{
  public:
    std::deque<ChildReqRespBundle> ifc; //!< one serving bundle per port

    /**
     * @param nports number of independent memory ports
     * @param latency cycles from request acceptance to response
     *                validity (>= 1)
     */
    TestMemory(Model *parent, const std::string &name, int nports = 1,
               int latency = 1);

    /** Host access: read the 32-bit word at byte address @p addr. */
    uint32_t readWord(uint64_t addr) const;
    /** Host access: write the 32-bit word at byte address @p addr. */
    void writeWord(uint64_t addr, uint32_t value);

    /** Total requests served (all ports). */
    uint64_t numRequests() const { return num_requests_; }

    std::string lineTrace() const override;

  private:
    struct Pending
    {
        uint64_t due_cycle;
        Bits resp;
    };

    std::deque<ChildReqRespQueueAdapter> adapters_;
    std::vector<std::deque<Pending>> pending_;
    std::unordered_map<uint64_t, uint32_t> words_;
    ReqRespIfcTypes types_;
    int latency_;
    uint64_t now_ = 0;
    uint64_t num_requests_ = 0;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_TEST_MEMORY_H
