/**
 * @file
 * Round-robin arbiter (RTL, IR-based).
 *
 * Grants one of up to n requesters each cycle, rotating priority so
 * the most recently granted requester has lowest priority next time.
 * Used for router switch allocation and cache-port arbitration.
 */

#ifndef CMTL_STDLIB_ARBITERS_H
#define CMTL_STDLIB_ARBITERS_H

#include <string>

#include "core/model.h"

namespace cmtl {
namespace stdlib {

/** Rotating-priority arbiter with one-hot grants. */
class RoundRobinArbiter : public Model
{
  public:
    InPort reqs;   //!< bit i = requester i wants a grant
    InPort en;     //!< grant fires this cycle: advance priority
    OutPort grants; //!< one-hot grant vector (combinational)

    RoundRobinArbiter(Model *parent, const std::string &name,
                      int nreqs);

    std::string
    typeName() const override
    {
        return "RoundRobinArbiter_" + std::to_string(nreqs_);
    }

  private:
    Wire priority_; //!< index of the highest-priority requester
    int nreqs_;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_ARBITERS_H
