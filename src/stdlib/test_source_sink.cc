#include "test_source_sink.h"

#include "core/snap.h"

namespace cmtl {
namespace stdlib {

TestSource::TestSource(Model *parent, const std::string &name, int nbits,
                       std::vector<Bits> msgs, int interval)
    : Model(parent, name), out(this, "out", nbits), msgs_(std::move(msgs)),
      interval_(interval)
{
    tickFl("src_logic", [this] {
        if (out.fire()) {
            ++index_;
            wait_ = interval_;
        } else if (wait_ > 0 && out.val.u64() == 0) {
            --wait_;
        }
        bool send = index_ < msgs_.size() && wait_ == 0;
        out.val.setNext(uint64_t(send ? 1 : 0));
        if (send)
            out.msg.setNext(msgs_[index_]);
    });
}

void
TestSource::snapSave(SnapWriter &w) const
{
    w.u64(index_);
    w.u32(static_cast<uint32_t>(wait_));
}

void
TestSource::snapLoad(SnapReader &r)
{
    index_ = r.u64();
    wait_ = static_cast<int>(r.u32());
}

std::string
TestSource::lineTrace() const
{
    if (done())
        return ".";
    return out.val.u64() ? out.msg.value().toHexString() : " ";
}

TestSink::TestSink(Model *parent, const std::string &name, int nbits,
                   std::vector<Bits> expected, int interval)
    : Model(parent, name), in_(this, "in_", nbits),
      expected_(std::move(expected)), interval_(interval)
{
    tickFl("sink_logic", [this] {
        if (in_.fire()) {
            Bits got = in_.msg.value();
            if (index_ >= expected_.size()) {
                errors_.push_back("unexpected extra message " +
                                  got.toHexString());
            } else if (!(got == expected_[index_])) {
                errors_.push_back(
                    "message " + std::to_string(index_) + ": expected " +
                    expected_[index_].toHexString() + ", got " +
                    got.toHexString());
            }
            ++index_;
            wait_ = interval_;
        } else if (wait_ > 0) {
            --wait_;
        }
        bool accept = wait_ == 0;
        in_.rdy.setNext(uint64_t(accept ? 1 : 0));
    });
}

void
TestSink::snapSave(SnapWriter &w) const
{
    w.u64(index_);
    w.u32(static_cast<uint32_t>(wait_));
    w.u32(static_cast<uint32_t>(errors_.size()));
    for (const std::string &err : errors_)
        w.str(err);
}

void
TestSink::snapLoad(SnapReader &r)
{
    index_ = r.u64();
    wait_ = static_cast<int>(r.u32());
    errors_.clear();
    uint32_t nerrors = r.u32();
    for (uint32_t i = 0; i < nerrors; ++i)
        errors_.push_back(r.str());
}

std::string
TestSink::lineTrace() const
{
    if (done())
        return ".";
    return in_.fire() ? in_.msg.value().toHexString() : " ";
}

} // namespace stdlib
} // namespace cmtl
