/**
 * @file
 * SimOptions: the shared command-line front door of the examples and
 * benches.
 *
 * Every runnable binary used to hand-roll the same strcmp chains for
 * --threads/--profile/--level; this helper parses the common options
 * once and — the point of the exercise — adds `--backend=<str>` with
 * the canonical SimConfig::fromString() names everywhere:
 *
 *   --backend=<b>     interp | optinterp | bytecode | cpp-block |
 *                     cpp-design | interp+bytecode | interp+cpp-block
 *   --threads=<n>     >1 selects the parallel ParSim kernel
 *   --profile[=json]  attach SimScope (json = machine-readable)
 *   --level=<l>       abstraction level (fl|cl|clspec|rtl); the bare
 *                     token spelling is accepted too
 *   --full            paper-scale bench parameters (or CMTL_BENCH_FULL=1)
 *
 * Checkpoint/restore (snap.h) and waveform options ride along:
 *
 *   --cycles=<n>      simulate n cycles (binaries define the default)
 *   --seed=<n>        seed for traffic/stimulus generators, so every
 *                     run is reproducible from its command line
 *   --traffic=<p>     NoC traffic pattern (uniform | tornado |
 *                     hotspot | bit-complement | bursty); stored as a
 *                     string here, validated by the consumer so the
 *                     stdlib layer stays independent of cmtl_net
 *   --vcd=<path>      write a waveform dump to <path>
 *   --checkpoint=<path[:n]>  periodic checkpoints into <path> every n
 *                     cycles (atomic rename + rotation; default 1000)
 *   --resume=<path>   restore simulator state from a checkpoint
 *   --help            print the full option table and exit
 *
 * Static-analysis options (dataflow.h / race_audit.h):
 *
 *   --audit           run the static ParSim race auditor on the active
 *                     partition and fold a pass/fail line into
 *                     simulatorReport(); sequential runs report n/a
 *   --dead-elim       enable dead-logic elimination: comb blocks whose
 *                     outputs never reach an observed sink are dropped
 *                     from the schedule and from generated code
 *
 * SimServer daemon options (src/server/server.h):
 *
 *   --listen=<path>   Unix-domain socket the sim_server daemon binds
 *   --jobs=<n>        concurrent-job thread budget of the daemon's
 *                     scheduler (ParSim jobs draw cfg.threads units)
 *
 * `--threads N` / `--backend b` (separate argument) spellings are
 * accepted as well. Plain arguments are collected in `positional` for
 * the binary's own use (e.g. a problem size), but an unknown `--flag`
 * is an error: silent ignores mask typos like `--thread=4`, so parse()
 * prints a diagnostic pointing at --help and exits(2) — callers never
 * see a throw.
 */

#ifndef CMTL_STDLIB_OPTIONS_H
#define CMTL_STDLIB_OPTIONS_H

#include <string>
#include <vector>

#include "core/sim.h"

namespace cmtl {
namespace stdlib {

struct SimOptions
{
    /** Ready-to-use config: backend and threads already applied. */
    SimConfig cfg;
    bool backend_set = false; //!< --backend was given explicitly
    int threads = 1;
    bool profile = false;
    bool profile_json = false;
    bool full = false;        //!< --full or CMTL_BENCH_FULL=1
    bool audit = false;       //!< --audit: static race audit (ParSim)
    std::string level;        //!< "" when absent
    uint64_t seed = 0;        //!< --seed, 0 when absent
    bool seed_set = false;    //!< --seed was given explicitly
    std::string traffic;      //!< --traffic pattern name, "" when absent
    uint64_t cycles = 0;      //!< --cycles, 0 when absent
    std::string vcd;          //!< --vcd path, "" when absent
    std::string checkpoint_path;    //!< --checkpoint path, "" = off
    uint64_t checkpoint_every = 0;  //!< cycles between checkpoints
    std::string resume;             //!< --resume path, "" when absent
    std::string listen;             //!< --listen socket path, "" absent
    int jobs = 0;                   //!< --jobs budget, 0 when absent
    std::vector<std::string> positional;

    /** Parse argv (argv[0] is skipped); see the file comment. */
    static SimOptions parse(int argc, char **argv);

    /** First positional that parses as a positive integer, or @p dflt. */
    int intArg(int dflt) const;

    /** One-line usage fragment for the common options. */
    static const char *usage();

    /** The full option table --help prints. */
    static const char *helpTable();
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_OPTIONS_H
