#include "arbiters.h"

namespace cmtl {
namespace stdlib {

RoundRobinArbiter::RoundRobinArbiter(Model *parent,
                                     const std::string &name, int nreqs)
    : Model(parent, name), reqs(this, "reqs", nreqs), en(this, "en", 1),
      grants(this, "grants", nreqs),
      priority_(this, "priority", bitsFor(nreqs)), nreqs_(nreqs)
{
    // Combinational grant: scan requesters starting from the priority
    // pointer. Built as a priority mux over every pointer value.
    auto &c = combinational("comb_grant");
    IrExpr result = lit(nreqs, 0);
    for (int p = nreqs - 1; p >= 0; --p) {
        // Grant vector when the pointer is p: first asserted request
        // among p, p+1, ..., wrapping around.
        IrExpr pick = lit(nreqs, 0);
        for (int k = nreqs - 1; k >= 0; --k) {
            int idx = (p + k) % nreqs;
            pick = mux(rd(reqs).bit(idx),
                       lit(nreqs, uint64_t(1) << idx), pick);
        }
        result = mux(rd(priority_) == static_cast<uint64_t>(p), pick,
                     result);
    }
    c.assign(grants, result);

    // Pointer update: past the granted requester when a grant fires.
    auto &t = tickRtl("seq_priority");
    t.if_(rd(reset), [&] { t.assign(priority_, 0); },
          [&] {
              t.if_(rd(en) && rd(grants).reduceOr(), [&] {
                  IrExpr next = rd(priority_);
                  for (int i = 0; i < nreqs_; ++i) {
                      next = mux(rd(grants).bit(i),
                                 lit(priority_.nbits(),
                                     static_cast<uint64_t>((i + 1) %
                                                           nreqs_)),
                                 next);
                  }
                  t.assign(priority_, next);
              });
          });
}

} // namespace stdlib
} // namespace cmtl
