/**
 * @file
 * Test sources and sinks for val/rdy interfaces.
 *
 * The paper's central claim about test reuse rests on these: because
 * every FL/CL/RTL implementation of a component shares the same
 * latency-insensitive interface, a single source/sink test bench
 * verifies all three. Sources inject a message list with optional
 * inter-message delay; sinks check arrival order and values, with
 * optional back-pressure injection.
 */

#ifndef CMTL_STDLIB_TEST_SOURCE_SINK_H
#define CMTL_STDLIB_TEST_SOURCE_SINK_H

#include <string>
#include <vector>

#include "stdlib/valrdy.h"

namespace cmtl {
namespace stdlib {

/** Drives a message list onto an OutValRdy interface. */
class TestSource : public Model
{
  public:
    OutValRdy out;

    /**
     * @param interval idle cycles inserted between sends (0 = stream)
     */
    TestSource(Model *parent, const std::string &name, int nbits,
               std::vector<Bits> msgs, int interval = 0);

    bool done() const { return index_ >= msgs_.size(); }
    size_t numSent() const { return index_; }

    std::string lineTrace() const override;

    void snapSave(SnapWriter &w) const override;
    void snapLoad(SnapReader &r) override;

  private:
    std::vector<Bits> msgs_;
    size_t index_ = 0;
    int interval_;
    int wait_ = 0;
};

/** Receives and checks a message list from an InValRdy interface. */
class TestSink : public Model
{
  public:
    InValRdy in_;

    /**
     * @param interval cycles of rdy-deassertion between receives
     */
    TestSink(Model *parent, const std::string &name, int nbits,
             std::vector<Bits> expected, int interval = 0);

    bool done() const { return index_ >= expected_.size(); }
    size_t numReceived() const { return index_; }
    /** Mismatch descriptions, empty when all checks passed. */
    const std::vector<std::string> &errors() const { return errors_; }

    std::string lineTrace() const override;

    void snapSave(SnapWriter &w) const override;
    void snapLoad(SnapReader &r) override;

  private:
    std::vector<Bits> expected_;
    std::vector<std::string> errors_;
    size_t index_ = 0;
    int interval_;
    int wait_ = 0;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_TEST_SOURCE_SINK_H
