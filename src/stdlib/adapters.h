/**
 * @file
 * Queue adapters: programmer-friendly FL/CL views of val/rdy bundles
 * (PyMTL's ChildReqRespQueueAdapter / ParentReqRespQueueAdapter).
 *
 * An adapter hides the latency-insensitive handshake behind a small
 * software queue. The owning model calls xtick() once at the top of
 * its tick block; afterwards it can treat the interface as deques:
 * pop requests, push responses, and the adapter drives val/rdy/msg
 * with correct backpressure. All output driving uses non-blocking
 * (setNext) writes, so adapters behave identically under every
 * scheduling mode.
 */

#ifndef CMTL_STDLIB_ADAPTERS_H
#define CMTL_STDLIB_ADAPTERS_H

#include <deque>

#include "stdlib/reqresp.h"

namespace cmtl {
namespace stdlib {

/** Receiving-side adapter: an InValRdy that fills a software queue. */
class InQueueAdapter
{
  public:
    InQueueAdapter(InValRdy &ifc, size_t capacity = 2)
        : ifc_(ifc), capacity_(capacity)
    {}

    /** Sample a completed transfer and re-drive rdy. Call every tick. */
    void
    xtick()
    {
        if (ifc_.val.u64() && ifc_.rdy.u64())
            q_.push_back(ifc_.msg.value());
        ifc_.rdy.setNext(uint64_t(q_.size() < capacity_ ? 1 : 0));
    }

    bool empty() const { return q_.empty(); }
    size_t size() const { return q_.size(); }
    const Bits &front() const { return q_.front(); }

    Bits
    pop()
    {
        Bits msg = q_.front();
        q_.pop_front();
        return msg;
    }

  private:
    InValRdy &ifc_;
    std::deque<Bits> q_;
    size_t capacity_;
};

/** Sending-side adapter: a software queue draining an OutValRdy. */
class OutQueueAdapter
{
  public:
    OutQueueAdapter(OutValRdy &ifc, size_t capacity = 2)
        : ifc_(ifc), capacity_(capacity)
    {}

    void
    xtick()
    {
        if (ifc_.val.u64() && ifc_.rdy.u64())
            q_.pop_front();
        ifc_.val.setNext(uint64_t(q_.empty() ? 0 : 1));
        if (!q_.empty())
            ifc_.msg.setNext(q_.front());
    }

    bool full() const { return q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }

    void push(const Bits &msg) { q_.push_back(msg); }

  private:
    OutValRdy &ifc_;
    std::deque<Bits> q_;
    size_t capacity_;
};

/** Serving-side request/response adapter (paper Figure 7/8). */
class ChildReqRespQueueAdapter
{
  public:
    explicit ChildReqRespQueueAdapter(ChildReqRespBundle &ifc,
                                      size_t capacity = 2)
        : types(ifc.types), req_q(ifc.req, capacity),
          resp_q(ifc.resp, capacity)
    {}

    void
    xtick()
    {
        req_q.xtick();
        resp_q.xtick();
    }

    Bits getReq() { return req_q.pop(); }
    void pushResp(const Bits &msg) { resp_q.push(msg); }
    void
    pushResp(uint64_t value)
    {
        resp_q.push(Bits(types.resp.nbits(), value));
    }

    ReqRespIfcTypes types;
    InQueueAdapter req_q;
    OutQueueAdapter resp_q;
};

/** Initiating-side request/response adapter (paper Figure 8). */
class ParentReqRespQueueAdapter
{
  public:
    explicit ParentReqRespQueueAdapter(ParentReqRespBundle &ifc,
                                       size_t capacity = 2)
        : types(ifc.types), req_q(ifc.req, capacity),
          resp_q(ifc.resp, capacity)
    {}

    void
    xtick()
    {
        req_q.xtick();
        resp_q.xtick();
    }

    void pushReq(const Bits &msg) { req_q.push(msg); }
    Bits getResp() { return resp_q.pop(); }

    ReqRespIfcTypes types;
    OutQueueAdapter req_q;
    InQueueAdapter resp_q;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_ADAPTERS_H
