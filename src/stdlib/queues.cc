#include "queues.h"

#include <stdexcept>

namespace cmtl {
namespace stdlib {

BypassQueue1::BypassQueue1(Model *parent, const std::string &name,
                           int nbits)
    : Model(parent, name), enq(this, "enq", nbits), deq(this, "deq", nbits),
      full_(this, "full", 1), entry_(this, "entry", nbits)
{
    // The forward (val/msg) and backward (rdy) paths live in separate
    // blocks so queue chains stay acyclic at block granularity.
    auto &cv = combinational("comb_val");
    cv.assign(deq.val, rd(full_) || rd(enq.val));
    cv.assign(deq.msg, mux(rd(full_), rd(entry_), rd(enq.msg)));
    auto &cr = combinational("comb_rdy");
    cr.assign(enq.rdy, !rd(full_));

    auto &t = tickRtl("seq");
    IrExpr do_enq = rd(enq.val) && rd(enq.rdy);
    IrExpr do_deq = rd(deq.val) && rd(deq.rdy);
    t.if_(rd(reset), [&] { t.assign(full_, 0); },
          [&] {
              // Occupied and drained -> empty; arriving without a
              // same-cycle bypass -> occupied.
              t.if_(rd(full_) && do_deq, [&] { t.assign(full_, 0); });
              t.if_(!rd(full_) && do_enq && !do_deq, [&] {
                  t.assign(full_, 1);
                  t.assign(entry_, rd(enq.msg));
              });
          });
}

PipeQueue1::PipeQueue1(Model *parent, const std::string &name, int nbits)
    : Model(parent, name), enq(this, "enq", nbits), deq(this, "deq", nbits),
      full_(this, "full", 1), entry_(this, "entry", nbits)
{
    // Forward and backward paths split (see BypassQueue1).
    auto &cv = combinational("comb_val");
    cv.assign(deq.val, rd(full_));
    cv.assign(deq.msg, rd(entry_));
    // Accept while draining: rdy passes through combinationally.
    auto &cr = combinational("comb_rdy");
    cr.assign(enq.rdy, !rd(full_) || rd(deq.rdy));

    auto &t = tickRtl("seq");
    IrExpr do_enq = rd(enq.val) && rd(enq.rdy);
    IrExpr do_deq = rd(deq.val) && rd(deq.rdy);
    t.if_(rd(reset), [&] { t.assign(full_, 0); },
          [&] {
              t.if_(do_deq && !do_enq, [&] { t.assign(full_, 0); });
              t.if_(do_enq, [&] {
                  t.assign(full_, 1);
                  t.assign(entry_, rd(enq.msg));
              });
          });
}

RtlQueue::RtlQueue(Model *parent, const std::string &name, int nbits,
                   int nentries)
    : Model(parent, name), enq(this, "enq", nbits), deq(this, "deq", nbits),
      count_(this, "count", bitsFor(nentries + 1)), nentries_(nentries)
{
    if (nentries < 1)
        throw std::invalid_argument("RtlQueue needs >= 1 entries");
    for (int i = 0; i < nentries; ++i)
        entries_.emplace_back(this, "entry" + std::to_string(i), nbits);

    // Outputs depend only on registered state: no val/rdy cycles.
    auto &c = combinational("comb");
    c.assign(deq.val, rd(count_) != 0);
    c.assign(deq.msg, rd(entries_[0]));
    c.assign(enq.rdy, rd(count_) < static_cast<uint64_t>(nentries_));

    auto &t = tickRtl("seq");
    t.if_(rd(reset), [&] { t.assign(count_, 0); },
          [&] {
              IrExpr do_deq = rd(deq.val) && rd(deq.rdy);
              IrExpr do_enq = rd(enq.val) && rd(enq.rdy);
              int cw = count_.nbits();
              t.assign(count_, rd(count_) + do_enq.zext(cw) -
                                   do_deq.zext(cw));
              // Head-shifting storage: on dequeue everything moves
              // down one slot; a simultaneous enqueue lands behind the
              // last remaining element.
              for (int i = 0; i < nentries_; ++i) {
                  IrExpr shifted =
                      (i + 1 < nentries_) ? rd(entries_[i + 1])
                                          : rd(entries_[i]);
                  IrExpr after_deq =
                      mux(do_enq &&
                              (rd(count_) ==
                               static_cast<uint64_t>(i + 1)),
                          rd(enq.msg), shifted);
                  IrExpr after_enq =
                      mux(do_enq &&
                              (rd(count_) == static_cast<uint64_t>(i)),
                          rd(enq.msg), rd(entries_[i]));
                  t.assign(entries_[i],
                           mux(do_deq, after_deq, after_enq));
              }
          });
}

} // namespace stdlib
} // namespace cmtl
