/**
 * @file
 * Basic RTL building blocks: registers, mux, pipelined multiplier.
 *
 * These are the CMTL equivalents of the PyMTL standard library models
 * used throughout the paper's examples (Figure 2's Register and Mux,
 * Figure 9's IntPipelinedMultiplier). All are IR-based and therefore
 * translatable and specializable.
 */

#ifndef CMTL_STDLIB_BASIC_H
#define CMTL_STDLIB_BASIC_H

#include <deque>
#include <string>

#include "core/model.h"

namespace cmtl {
namespace stdlib {

/** Positive-edge register. */
class Register : public Model
{
  public:
    InPort in_;
    OutPort out;

    Register(Model *parent, const std::string &name, int nbits)
        : Model(parent, name), in_(this, "in_", nbits),
          out(this, "out", nbits)
    {
        auto &b = tickRtl("seq_logic");
        b.assign(out, rd(in_));
    }

    std::string
    typeName() const override
    {
        return "Register_" + std::to_string(in_.nbits());
    }
};

/** Register with synchronous reset to a constant. */
class RegRst : public Model
{
  public:
    InPort in_;
    OutPort out;

    RegRst(Model *parent, const std::string &name, int nbits,
           uint64_t reset_value = 0)
        : Model(parent, name), in_(this, "in_", nbits),
          out(this, "out", nbits), reset_value_(reset_value)
    {
        auto &b = tickRtl("seq_logic");
        b.if_(rd(reset),
              [&] { b.assign(out, lit(nbits, reset_value)); },
              [&] { b.assign(out, rd(in_)); });
    }

    std::string
    typeName() const override
    {
        return "RegRst_" + std::to_string(in_.nbits()) + "_" +
               std::to_string(reset_value_);
    }

  private:
    uint64_t reset_value_;
};

/** Register with write enable. */
class RegEn : public Model
{
  public:
    InPort in_;
    InPort en;
    OutPort out;

    RegEn(Model *parent, const std::string &name, int nbits)
        : Model(parent, name), in_(this, "in_", nbits),
          en(this, "en", 1), out(this, "out", nbits)
    {
        auto &b = tickRtl("seq_logic");
        b.if_(rd(en), [&] { b.assign(out, rd(in_)); });
    }

    std::string
    typeName() const override
    {
        return "RegEn_" + std::to_string(in_.nbits());
    }
};

/** N-way multiplexer. */
class Mux : public Model
{
  public:
    std::deque<InPort> in_;
    InPort sel;
    OutPort out;

    Mux(Model *parent, const std::string &name, int nbits, int nports)
        : Model(parent, name), sel(this, "sel", bitsFor(nports)),
          out(this, "out", nbits)
    {
        for (int i = 0; i < nports; ++i)
            in_.emplace_back(this, "in_" + std::to_string(i), nbits);
        auto &b = combinational("comb_logic");
        IrExpr result = rd(in_[0]);
        for (int i = nports - 1; i >= 1; --i) {
            result = mux(rd(sel) == static_cast<uint64_t>(i),
                         rd(in_[i]), result);
        }
        b.assign(out, result);
    }

    std::string
    typeName() const override
    {
        return "Mux_" + std::to_string(out.nbits()) + "_" +
               std::to_string(in_.size());
    }
};

/**
 * Fixed-latency pipelined integer multiplier (paper Figure 9).
 *
 * The product appears nstages cycles after the operands. There is no
 * stall signal: surrounding control is responsible for scheduling,
 * exactly like the paper's dot-product datapath.
 */
class IntPipelinedMultiplier : public Model
{
  public:
    InPort op_a;
    InPort op_b;
    OutPort product;

    IntPipelinedMultiplier(Model *parent, const std::string &name,
                           int nbits, int nstages)
        : Model(parent, name), op_a(this, "op_a", nbits),
          op_b(this, "op_b", nbits), product(this, "product", nbits),
          nstages_(nstages)
    {
        for (int i = 0; i < nstages - 1; ++i)
            stages_.emplace_back(this, "stage" + std::to_string(i), nbits);

        auto &b = tickRtl("pipe");
        if (nstages == 1) {
            b.assign(product, rd(op_a) * rd(op_b));
        } else {
            b.assign(stages_[0], rd(op_a) * rd(op_b));
            for (int i = 1; i < nstages - 1; ++i)
                b.assign(stages_[i], rd(stages_[i - 1]));
            b.assign(product, rd(stages_[nstages - 2]));
        }
    }

    std::string
    typeName() const override
    {
        return "IntPipelinedMultiplier_" +
               std::to_string(op_a.nbits()) + "_" +
               std::to_string(nstages_);
    }

  private:
    std::deque<Wire> stages_;
    int nstages_;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_BASIC_H
