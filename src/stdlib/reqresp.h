/**
 * @file
 * Request/response port bundles and standard memory message formats
 * (PyMTL's ReqRespBundles and mem msgs).
 *
 * A *child* bundle is the serving side (requests in, responses out); a
 * *parent* bundle is the initiating side (requests out, responses in),
 * matching the paper's ChildReqRespBundle / ParentReqRespBundle.
 */

#ifndef CMTL_STDLIB_REQRESP_H
#define CMTL_STDLIB_REQRESP_H

#include <string>

#include "core/bitstruct.h"
#include "stdlib/valrdy.h"

namespace cmtl {

/** Message formats of a request/response interface. */
struct ReqRespIfcTypes
{
    BitStructLayout req;
    BitStructLayout resp;
};

/** Standard memory interface: 1-bit type, 27-bit addr, 32-bit data. */
inline ReqRespIfcTypes
memIfcTypes()
{
    return ReqRespIfcTypes{
        BitStructLayout("MemReq",
                        {{"type", 1}, {"addr", 27}, {"data", 32}}),
        BitStructLayout("MemResp", {{"type", 1}, {"data", 32}})};
}

/** Memory request type field values. */
enum class MemReqType : uint64_t { Read = 0, Write = 1 };

/** Standard accelerator control interface: 3-bit reg id + data. */
inline ReqRespIfcTypes
cpuIfcTypes()
{
    return ReqRespIfcTypes{
        BitStructLayout("CpuReq", {{"ctrl_msg", 3}, {"data", 32}}),
        BitStructLayout("CpuResp", {{"data", 32}})};
}

/** Serving side: requests arrive, responses leave. */
struct ChildReqRespBundle
{
    ReqRespIfcTypes types;
    InValRdy req;
    OutValRdy resp;

    ChildReqRespBundle(Model *owner, const std::string &name,
                       const ReqRespIfcTypes &ifc_types)
        : types(ifc_types), req(owner, name + "_req", ifc_types.req.nbits()),
          resp(owner, name + "_resp", ifc_types.resp.nbits())
    {}
};

/** Initiating side: requests leave, responses arrive. */
struct ParentReqRespBundle
{
    ReqRespIfcTypes types;
    OutValRdy req;
    InValRdy resp;

    ParentReqRespBundle(Model *owner, const std::string &name,
                        const ReqRespIfcTypes &ifc_types)
        : types(ifc_types), req(owner, name + "_req", ifc_types.req.nbits()),
          resp(owner, name + "_resp", ifc_types.resp.nbits())
    {}
};

/** Connect an initiator to a server within @p scope. */
inline void
connectReqResp(Model &scope, ParentReqRespBundle &parent,
               ChildReqRespBundle &child)
{
    connectValRdy(scope, parent.req, child.req);
    connectValRdy(scope, child.resp, parent.resp);
}

/** Pass a serving bundle through a hierarchy level. */
inline void
connectReqResp(Model &scope, ChildReqRespBundle &outer,
               ChildReqRespBundle &inner)
{
    connectValRdy(scope, outer.req, inner.req);
    connectValRdy(scope, inner.resp, outer.resp);
}

/** Pass an initiating bundle through a hierarchy level. */
inline void
connectReqResp(Model &scope, ParentReqRespBundle &inner,
               ParentReqRespBundle &outer)
{
    connectValRdy(scope, inner.req, outer.req);
    connectValRdy(scope, outer.resp, inner.resp);
}

/** Build a memory read request. */
inline Bits
makeMemReq(const BitStructLayout &layout, MemReqType type, uint64_t addr,
           uint64_t data = 0)
{
    return layout.pack({static_cast<uint64_t>(type), addr, data});
}

} // namespace cmtl

#endif // CMTL_STDLIB_REQRESP_H
