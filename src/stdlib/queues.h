/**
 * @file
 * Val/rdy queues.
 *
 * RtlQueue is a shift-register FIFO with val/rdy interfaces on both
 * sides — the standard normal queue used for router input buffering
 * and elastic-buffer flow control. It is IR-based, so it translates to
 * Verilog and specializes under SimJIT. Enqueue readiness depends only
 * on registered state, so composing queues never creates
 * combinational val/rdy cycles.
 */

#ifndef CMTL_STDLIB_QUEUES_H
#define CMTL_STDLIB_QUEUES_H

#include <deque>
#include <string>

#include "stdlib/valrdy.h"

namespace cmtl {
namespace stdlib {

/**
 * Single-entry bypass queue (PyMTL's SingleElementBypassQueue): an
 * arriving message may combinationally bypass to the dequeue side in
 * the same cycle when the buffer is empty — zero-cycle latency, but a
 * combinational val path from enq to deq.
 */
class BypassQueue1 : public Model
{
  public:
    InValRdy enq;
    OutValRdy deq;

    BypassQueue1(Model *parent, const std::string &name, int nbits);

    std::string
    typeName() const override
    {
        return "BypassQueue1_" + std::to_string(enq.msg.nbits());
    }

  private:
    Wire full_;
    Wire entry_;
};

/**
 * Single-entry pipelined queue (PyMTL's SingleElementPipelinedQueue):
 * the buffer re-fills in the same cycle it drains, sustaining one
 * message per cycle — a combinational rdy path from deq to enq.
 */
class PipeQueue1 : public Model
{
  public:
    InValRdy enq;
    OutValRdy deq;

    PipeQueue1(Model *parent, const std::string &name, int nbits);

    std::string
    typeName() const override
    {
        return "PipeQueue1_" + std::to_string(enq.msg.nbits());
    }

  private:
    Wire full_;
    Wire entry_;
};

/** Shift-register FIFO with val/rdy enqueue/dequeue interfaces. */
class RtlQueue : public Model
{
  public:
    InValRdy enq;
    OutValRdy deq;

    /**
     * @param nbits message width
     * @param nentries queue capacity (>= 1)
     */
    RtlQueue(Model *parent, const std::string &name, int nbits,
             int nentries);

    int numEntries() const { return nentries_; }

    std::string
    typeName() const override
    {
        return "RtlQueue_" + std::to_string(enq.msg.nbits()) + "_" +
               std::to_string(nentries_);
    }

  private:
    std::deque<Wire> entries_;
    Wire count_;
    int nentries_;
};

} // namespace stdlib
} // namespace cmtl

#endif // CMTL_STDLIB_QUEUES_H
