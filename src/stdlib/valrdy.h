/**
 * @file
 * Latency-insensitive val/rdy port bundles (PyMTL's ValRdyBundles).
 *
 * Consistent use of val/rdy interfaces at module boundaries is the key
 * mechanism that lets FL, CL and RTL implementations of a component be
 * swapped freely: a message transfers on a cycle where both val and
 * rdy are high, and backpressure (rdy low) naturally implements stall
 * logic at every abstraction level.
 */

#ifndef CMTL_STDLIB_VALRDY_H
#define CMTL_STDLIB_VALRDY_H

#include <string>

#include "core/model.h"
#include "core/scope.h"

namespace cmtl {

/** Receiver-side bundle: msg/val in, rdy out. */
struct InValRdy
{
    InPort msg;
    InPort val;
    OutPort rdy;

    InValRdy(Model *owner, const std::string &name, int nbits)
        : msg(owner, name + "_msg", nbits), val(owner, name + "_val", 1),
          rdy(owner, name + "_rdy", 1)
    {}

    /** True when a message transfers this cycle (simulation-time). */
    bool
    fire() const
    {
        return val.u64() && rdy.u64();
    }
};

/** Sender-side bundle: msg/val out, rdy in. */
struct OutValRdy
{
    OutPort msg;
    OutPort val;
    InPort rdy;

    OutValRdy(Model *owner, const std::string &name, int nbits)
        : msg(owner, name + "_msg", nbits), val(owner, name + "_val", 1),
          rdy(owner, name + "_rdy", 1)
    {}

    bool
    fire() const
    {
        return val.u64() && rdy.u64();
    }
};

/** Connect a sender bundle to a receiver bundle within @p scope. */
inline void
connectValRdy(Model &scope, OutValRdy &out, InValRdy &in)
{
    scope.connect(out.msg, in.msg);
    scope.connect(out.val, in.val);
    scope.connect(out.rdy, in.rdy);
}

/** Pass a parent-facing input bundle through to a child's input. */
inline void
connectValRdy(Model &scope, InValRdy &outer, InValRdy &inner)
{
    scope.connect(outer.msg, inner.msg);
    scope.connect(outer.val, inner.val);
    scope.connect(outer.rdy, inner.rdy);
}

/** Pass a child's output bundle through to a parent-facing output. */
inline void
connectValRdy(Model &scope, OutValRdy &inner, OutValRdy &outer)
{
    scope.connect(inner.msg, outer.msg);
    scope.connect(inner.val, outer.val);
    scope.connect(inner.rdy, outer.rdy);
}

/** Trace a receiver bundle's channel in @p scope under @p name. */
inline void
traceValRdy(SimScope &scope, const std::string &name, const InValRdy &in)
{
    scope.traceValRdy(name, in.msg, in.val, in.rdy);
}

/** Trace a sender bundle's channel in @p scope under @p name. */
inline void
traceValRdy(SimScope &scope, const std::string &name, const OutValRdy &out)
{
    scope.traceValRdy(name, out.msg, out.val, out.rdy);
}

} // namespace cmtl

#endif // CMTL_STDLIB_VALRDY_H
