#include "options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace cmtl {
namespace stdlib {

namespace {

/** "--name=value" / "--name value" accessor; empty when absent. */
bool
optionValue(const char *name, int argc, char **argv, int &i,
            std::string &out)
{
    const char *arg = argv[i];
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    if (arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    if (arg[n] == '\0' && i + 1 < argc) {
        out = argv[++i];
        return true;
    }
    return false;
}

bool
isLevelToken(const char *arg)
{
    return !std::strcmp(arg, "fl") || !std::strcmp(arg, "cl") ||
           !std::strcmp(arg, "clspec") || !std::strcmp(arg, "rtl");
}

/** Parse an unsigned cycle/interval count; exits(2) on garbage. */
uint64_t
parseCount(const char *prog, const char *flag, const std::string &text)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "%s: %s wants a non-negative integer, "
                             "got '%s'\n",
                     prog, flag, text.c_str());
        std::exit(2);
    }
    return static_cast<uint64_t>(v);
}

} // namespace

const char *
SimOptions::usage()
{
    return "[--backend=interp|optinterp|bytecode|cpp-block|cpp-design]"
           " [--layout=elab|profile] [--threads=N] [--profile[=json]]"
           " [--level=fl|cl|clspec|rtl]"
           " [--cycles=N] [--seed=N] [--traffic=pattern]"
           " [--vcd=path] [--checkpoint=path[:N]]"
           " [--resume=path] [--listen=socket] [--jobs=N] [--audit]"
           " [--dead-elim] [--full] [--help]";
}

const char *
SimOptions::helpTable()
{
    return
        "Common options:\n"
        "  --backend=<name>    execution backend: interp | optinterp |\n"
        "                      bytecode | cpp-block | cpp-design |\n"
        "                      interp+bytecode | interp+cpp-block\n"
        "                      (\"cpp\" is accepted for cpp-block)\n"
        "  --layout=<p>        arena data layout policy: elab (net\n"
        "                      declaration order) | profile (group by\n"
        "                      partition island and producer block,\n"
        "                      bit-pack narrow nets, coalesce the flop\n"
        "                      phase; with cpp-design tiering, re-lays\n"
        "                      out from measured block heat)\n"
        "  --threads=<n>       host threads; >1 runs the parallel\n"
        "                      ParSim kernel (clamped to the hardware\n"
        "                      thread count with a warning)\n"
        "  --level=<l>         abstraction level: fl | cl | clspec |\n"
        "                      rtl (the bare token works too)\n"
        "  --profile[=json]    attach SimScope; =json emits the\n"
        "                      machine-readable snapshot on stdout\n"
        "  --cycles=<n>        simulate n cycles (each binary defines\n"
        "                      its own default)\n"
        "  --seed=<n>          RNG seed for traffic/stimulus\n"
        "                      generators (each binary defines its own\n"
        "                      default)\n"
        "  --traffic=<p>       NoC traffic pattern: uniform | tornado |\n"
        "                      hotspot | bit-complement | bursty\n"
        "  --vcd=<path>        write a VCD waveform dump to <path>\n"
        "  --checkpoint=<path[:n]>\n"
        "                      write a checkpoint to <path> every n\n"
        "                      cycles (default 1000) with atomic\n"
        "                      rename and keep-last-3 rotation\n"
        "  --resume=<path>     restore simulator state from a\n"
        "                      checkpoint file before running\n"
        "  --listen=<path>     Unix-domain socket path a SimServer\n"
        "                      daemon binds and serves jobs on\n"
        "  --jobs=<n>          SimServer concurrent-job thread budget\n"
        "                      (ParSim jobs draw their --threads worth)\n"
        "  --audit             run the static ParSim race auditor on\n"
        "                      the active partition and report the\n"
        "                      verdict (n/a on sequential runs)\n"
        "  --dead-elim         drop comb blocks whose outputs never\n"
        "                      reach an observed sink from the schedule\n"
        "                      and from generated code\n"
        "  --full              paper-scale bench parameters (also\n"
        "                      CMTL_BENCH_FULL=1)\n"
        "  --help              print this table and exit\n";
}

SimOptions
SimOptions::parse(int argc, char **argv)
{
    SimOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (optionValue("--backend", argc, argv, i, value)) {
            try {
                SimConfig parsed = SimConfig::fromString(value);
                opts.cfg.backend = parsed.backend;
                opts.cfg.exec = parsed.exec;
                opts.cfg.spec = parsed.spec;
                opts.backend_set = true;
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                std::exit(2);
            }
        } else if (optionValue("--layout", argc, argv, i, value)) {
            try {
                opts.cfg.layout = layoutPolicyFromName(value);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                std::exit(2);
            }
        } else if (optionValue("--threads", argc, argv, i, value)) {
            opts.threads = std::atoi(value.c_str());
            if (opts.threads < 1) {
                std::fprintf(stderr, "%s: --threads wants a positive "
                                     "integer, got '%s'\n",
                             argv[0], value.c_str());
                std::exit(2);
            }
            // Oversubscribing ParSim's spin-barrier workers is strictly
            // counterproductive (spinners time-slice against each
            // other), so the CLI clamps to the hardware. Programmatic
            // SimConfig::threads is left alone: tests and benches set
            // it deliberately.
            unsigned hw = std::thread::hardware_concurrency();
            if (hw > 0 && opts.threads > static_cast<int>(hw)) {
                std::fprintf(stderr,
                             "%s: --threads %d exceeds the %u hardware "
                             "threads; clamping to %u\n",
                             argv[0], opts.threads, hw, hw);
                opts.threads = static_cast<int>(hw);
            }
            opts.cfg.threads = opts.threads;
        } else if (!std::strcmp(argv[i], "--profile")) {
            opts.profile = true;
        } else if (!std::strcmp(argv[i], "--profile=json")) {
            opts.profile = opts.profile_json = true;
        } else if (optionValue("--level", argc, argv, i, value)) {
            opts.level = value;
        } else if (isLevelToken(argv[i])) {
            opts.level = argv[i];
        } else if (!std::strcmp(argv[i], "--full")) {
            opts.full = true;
        } else if (!std::strcmp(argv[i], "--audit")) {
            opts.audit = true;
        } else if (!std::strcmp(argv[i], "--dead-elim")) {
            opts.cfg.dead_elim = true;
        } else if (optionValue("--cycles", argc, argv, i, value)) {
            opts.cycles = parseCount(argv[0], "--cycles", value);
        } else if (optionValue("--seed", argc, argv, i, value)) {
            opts.seed = parseCount(argv[0], "--seed", value);
            opts.seed_set = true;
        } else if (optionValue("--traffic", argc, argv, i, value)) {
            if (value.empty()) {
                std::fprintf(stderr,
                             "%s: --traffic wants a pattern name\n",
                             argv[0]);
                std::exit(2);
            }
            opts.traffic = value;
        } else if (optionValue("--vcd", argc, argv, i, value)) {
            opts.vcd = value;
        } else if (optionValue("--checkpoint", argc, argv, i, value)) {
            // path[:every_n_cycles]; the suffix must be all digits so
            // paths with colons elsewhere still work.
            opts.checkpoint_path = value;
            opts.checkpoint_every = 1000;
            size_t colon = value.rfind(':');
            if (colon != std::string::npos && colon + 1 < value.size() &&
                value.find_first_not_of("0123456789", colon + 1) ==
                    std::string::npos) {
                opts.checkpoint_path = value.substr(0, colon);
                opts.checkpoint_every = parseCount(
                    argv[0], "--checkpoint", value.substr(colon + 1));
            }
            if (opts.checkpoint_path.empty()) {
                std::fprintf(stderr,
                             "%s: --checkpoint wants a file path\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (optionValue("--resume", argc, argv, i, value)) {
            opts.resume = value;
        } else if (optionValue("--listen", argc, argv, i, value)) {
            if (value.empty()) {
                std::fprintf(stderr,
                             "%s: --listen wants a socket path\n",
                             argv[0]);
                std::exit(2);
            }
            opts.listen = value;
        } else if (optionValue("--jobs", argc, argv, i, value)) {
            opts.jobs = std::atoi(value.c_str());
            if (opts.jobs < 1) {
                std::fprintf(stderr, "%s: --jobs wants a positive "
                                     "integer, got '%s'\n",
                             argv[0], value.c_str());
                std::exit(2);
            }
        } else if (!std::strcmp(argv[i], "--help")) {
            std::printf("usage: %s [options]\n%s", argv[0],
                        helpTable());
            std::exit(0);
        } else if (!std::strncmp(argv[i], "--", 2)) {
            std::fprintf(stderr,
                         "%s: unknown option '%s' (see --help)\n",
                         argv[0], argv[i]);
            std::exit(2);
        } else {
            opts.positional.emplace_back(argv[i]);
        }
    }
    if (!opts.full) {
        const char *env = std::getenv("CMTL_BENCH_FULL");
        opts.full = env && env[0] == '1';
    }
    return opts;
}

int
SimOptions::intArg(int dflt) const
{
    for (const std::string &arg : positional) {
        int v = std::atoi(arg.c_str());
        if (v > 0)
            return v;
    }
    return dflt;
}

} // namespace stdlib
} // namespace cmtl
