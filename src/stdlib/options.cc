#include "options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace cmtl {
namespace stdlib {

namespace {

/** "--name=value" / "--name value" accessor; empty when absent. */
bool
optionValue(const char *name, int argc, char **argv, int &i,
            std::string &out)
{
    const char *arg = argv[i];
    size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) != 0)
        return false;
    if (arg[n] == '=') {
        out = arg + n + 1;
        return true;
    }
    if (arg[n] == '\0' && i + 1 < argc) {
        out = argv[++i];
        return true;
    }
    return false;
}

bool
isLevelToken(const char *arg)
{
    return !std::strcmp(arg, "fl") || !std::strcmp(arg, "cl") ||
           !std::strcmp(arg, "clspec") || !std::strcmp(arg, "rtl");
}

} // namespace

const char *
SimOptions::usage()
{
    return "[--backend=interp|optinterp|bytecode|cpp-block|cpp-design]"
           " [--threads=N] [--profile[=json]] [--level=fl|cl|clspec|rtl]"
           " [--full]";
}

SimOptions
SimOptions::parse(int argc, char **argv)
{
    SimOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string value;
        if (optionValue("--backend", argc, argv, i, value)) {
            try {
                SimConfig parsed = SimConfig::fromString(value);
                opts.cfg.backend = parsed.backend;
                opts.cfg.exec = parsed.exec;
                opts.cfg.spec = parsed.spec;
                opts.backend_set = true;
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
                std::exit(2);
            }
        } else if (optionValue("--threads", argc, argv, i, value)) {
            opts.threads = std::atoi(value.c_str());
            if (opts.threads < 1) {
                std::fprintf(stderr, "%s: --threads wants a positive "
                                     "integer, got '%s'\n",
                             argv[0], value.c_str());
                std::exit(2);
            }
            opts.cfg.threads = opts.threads;
        } else if (!std::strcmp(argv[i], "--profile")) {
            opts.profile = true;
        } else if (!std::strcmp(argv[i], "--profile=json")) {
            opts.profile = opts.profile_json = true;
        } else if (optionValue("--level", argc, argv, i, value)) {
            opts.level = value;
        } else if (isLevelToken(argv[i])) {
            opts.level = argv[i];
        } else if (!std::strcmp(argv[i], "--full")) {
            opts.full = true;
        } else {
            opts.positional.emplace_back(argv[i]);
        }
    }
    if (!opts.full) {
        const char *env = std::getenv("CMTL_BENCH_FULL");
        opts.full = env && env[0] == '1';
    }
    return opts;
}

int
SimOptions::intArg(int dflt) const
{
    for (const std::string &arg : positional) {
        int v = std::atoi(arg.c_str());
        if (v > 0)
            return v;
    }
    return dflt;
}

} // namespace stdlib
} // namespace cmtl
