#include "layout.h"

#include <algorithm>
#include <stdexcept>

#include "partition.h"

namespace cmtl {

namespace {

/**
 * Widest net eligible for word sharing. Width is only half the
 * eligibility test: once a measured profile exists, packing is also
 * gated on the writer being cold (see profiled()). On the fig14 RTL
 * mesh, packing nets the steady-state loop writes every cycle costs
 * 10-20% throughput — each store becomes a read-modify-write through
 * a word shared with other writers, serialising otherwise independent
 * blocks. Cold nets pay that tax never-to-rarely, so for them the
 * footprint win is free and the width cap can be generous.
 */
constexpr int kPackMaxBits = 32;

} // namespace

const char *
layoutPolicyName(LayoutPolicy policy)
{
    return policy == LayoutPolicy::Profile ? "profile" : "elab";
}

LayoutPolicy
layoutPolicyFromName(const std::string &name)
{
    if (name == "elab")
        return LayoutPolicy::Elab;
    if (name == "profile")
        return LayoutPolicy::Profile;
    throw std::invalid_argument("unknown layout policy '" + name +
                                "' (valid: elab, profile)");
}

void
ArenaLayout::finishArrays(const Elaboration &elab)
{
    int array_off = words_per_phase_ * 2;
    for (const MemArray *array : elab.arrays) {
        array_offset_.push_back(array_off);
        array_off += array->depth();
    }
    total_words_ = array_off;
}

void
ArenaLayout::finishStats(const Elaboration &elab)
{
    int64_t unpacked_words = 0;
    for (const Net &net : elab.nets)
        unpacked_words += bitsToWords(net.nbits);
    stats_.words_per_phase = words_per_phase_;
    stats_.packed_bits_saved = (unpacked_words - words_per_phase_) * 64;
    stats_.packed_nets = 0;
    for (char p : packed_)
        stats_.packed_nets += p ? 1 : 0;
}

ArenaLayout
ArenaLayout::elabOrder(const Elaboration &elab)
{
    ArenaLayout out;
    const int nnets = static_cast<int>(elab.nets.size());
    out.slots_.resize(nnets);
    out.packed_.assign(nnets, 0);
    int off = 0;
    for (int i = 0; i < nnets; ++i) {
        const Net &net = elab.nets[i];
        LayoutSlot &s = out.slots_[i];
        s.word_off = off;
        s.shift = 0;
        s.nwords = bitsToWords(net.nbits);
        s.nbits = net.nbits;
        s.mask = topWordMask(net.nbits);
        off += s.nwords;
    }
    out.words_per_phase_ = off;
    out.word_nets_.resize(off);
    for (int i = 0; i < nnets; ++i) {
        const LayoutSlot &s = out.slots_[i];
        for (int w = 0; w < s.nwords; ++w)
            out.word_nets_[s.word_off + w].push_back(i);
    }
    out.stats_.policy = LayoutPolicy::Elab;
    out.finishArrays(elab);
    out.finishStats(elab);
    return out;
}

ArenaLayout
ArenaLayout::profiled(const Elaboration &elab, const PartitionPlan *plan,
                      const std::vector<double> *block_heat)
{
    ArenaLayout out;
    const int nnets = static_cast<int>(elab.nets.size());
    const int nblocks = static_cast<int>(elab.blocks.size());
    out.slots_.resize(nnets);
    out.packed_.assign(nnets, 0);

    // Producer block of each net (the statically known writer).
    std::vector<int> producer(nnets, -1);
    for (int b = 0; b < nblocks; ++b) {
        for (int tok : elab.blocks[b].writes) {
            if (tok < nnets)
                producer[tok] = b;
        }
    }

    // Ordering key of a producer block: measured-heat rank when a
    // profile is available (the PGO loop), schedule position
    // otherwise. Comb blocks follow the levelized order, tick blocks
    // trail in tick order — their outputs are flopped state read at
    // the top of the next cycle.
    std::vector<int> block_key(nblocks, nblocks);
    {
        int pos = 0;
        for (int b : elab.combOrder)
            block_key[b] = pos++;
        for (int b : elab.tickOrder)
            block_key[b] = pos++;
    }
    if (block_heat && !block_heat->empty()) {
        // Quantized heat rank, mirroring designCombOrder(): sampled
        // heat is noisy, so only order-of-magnitude (power-of-two
        // bucket) differences reorder blocks; ties keep the schedule
        // position, preserving the baseline order's locality.
        auto heatOf = [&](int b) {
            return b < static_cast<int>(block_heat->size())
                       ? (*block_heat)[b]
                       : 0.0;
        };
        double hmax = 0.0;
        for (int b = 0; b < nblocks; ++b)
            hmax = std::max(hmax, heatOf(b));
        if (hmax > 0.0) {
            std::vector<int> bucket(nblocks, 64);
            for (int b = 0; b < nblocks; ++b) {
                const double h = heatOf(b);
                if (h <= 0.0)
                    continue;
                int k = 0;
                double t = hmax;
                while (k < 63 && h < t / 8) {
                    t /= 8;
                    ++k;
                }
                bucket[b] = k;
            }
            std::vector<int> by_heat;
            for (int b = 0; b < nblocks; ++b)
                by_heat.push_back(b);
            std::stable_sort(by_heat.begin(), by_heat.end(),
                             [&](int a, int b) {
                                 if (bucket[a] != bucket[b])
                                     return bucket[a] < bucket[b];
                                 return block_key[a] < block_key[b];
                             });
            for (int rank = 0; rank < nblocks; ++rank)
                block_key[by_heat[rank]] = rank;
        }
        out.stats_.pgo = true;
    }

    // Packing cold-writer gate. Before a profile exists the layout is
    // footprint-optimal: every narrow net may share a word. Once the
    // PGO loop hands in measured heat, any net whose producer block
    // showed up in the profile is exempted — the heat-refined
    // re-layout un-packs the hot nets. A packed store is a
    // read-modify-write through a word shared with other writers, and
    // measured on the fig14 RTL mesh that serialisation costs 10-20%
    // of steady-state throughput, more than the smaller cache
    // footprint buys back. Producer-less nets (testbench-driven
    // inputs, written through the accessor path) always count as
    // cold.
    auto coldNet = [&](int net) {
        if (producer[net] < 0)
            return true;
        if (!block_heat || block_heat->empty())
            return true; // no profile yet: pack by width alone
        const int b = producer[net];
        const double h = b < static_cast<int>(block_heat->size())
                             ? (*block_heat)[b]
                             : 0.0;
        return h <= 0.0;
    };

    // Group index of a net: its owner island (external participant
    // last), single group without a plan. Word-mates must share a
    // group so ParSim's whole-word pushes stay within one ownership
    // domain.
    auto groupOf = [&](int net) {
        if (!plan)
            return 0;
        int island = net < static_cast<int>(plan->ownerOf.size())
                         ? plan->ownerOf[net]
                         : kExternalIsland;
        return island == kExternalIsland ? plan->nislands : island;
    };

    // Sort nets by (island, flop class, producer order, id). Flopped
    // nets lead each island so the flop phase coalesces into a few
    // contiguous next->cur ranges; packing never crosses a class or
    // island boundary.
    struct Key
    {
        int group, klass, block, id;
    };
    std::vector<Key> order(nnets);
    for (int i = 0; i < nnets; ++i) {
        const Net &net = elab.nets[i];
        order[i] = {groupOf(i), net.floppedStatic ? 0 : 1,
                    producer[i] >= 0 ? block_key[producer[i]] : -1, i};
    }
    std::sort(order.begin(), order.end(), [](const Key &a, const Key &b) {
        if (a.group != b.group)
            return a.group < b.group;
        if (a.klass != b.klass)
            return a.klass < b.klass;
        if (a.block != b.block)
            return a.block < b.block;
        return a.id < b.id;
    });

    // Greedy first-fit packing along the sorted order.
    int off = 0;
    int fill = 64; // bits used in the open word (64 = no open word)
    int open_group = -2, open_klass = -1;
    for (const Key &key : order) {
        const Net &net = elab.nets[key.id];
        LayoutSlot &s = out.slots_[key.id];
        s.nbits = net.nbits;
        s.nwords = bitsToWords(net.nbits);
        s.mask = topWordMask(net.nbits);
        const bool narrow_cold =
            net.nbits <= kPackMaxBits && coldNet(key.id);
        bool packable = narrow_cold && key.group == open_group &&
                        key.klass == open_klass;
        if (packable && fill + net.nbits <= 64) {
            s.word_off = off - 1; // continue the open word
            s.shift = fill;
            fill += net.nbits;
        } else {
            s.word_off = off;
            s.shift = 0;
            off += s.nwords;
            // Only a narrow cold net leaves its word open for mates.
            fill = narrow_cold ? net.nbits : 64;
            open_group = key.group;
            open_klass = key.klass;
        }
    }
    out.words_per_phase_ = off;

    out.word_nets_.resize(off);
    for (int i = 0; i < nnets; ++i) {
        const LayoutSlot &s = out.slots_[i];
        for (int w = 0; w < s.nwords; ++w)
            out.word_nets_[s.word_off + w].push_back(i);
    }
    for (int i = 0; i < nnets; ++i) {
        const LayoutSlot &s = out.slots_[i];
        if (s.nwords == 1 && out.word_nets_[s.word_off].size() > 1)
            out.packed_[i] = 1;
    }

    out.stats_.policy = LayoutPolicy::Profile;
    out.finishArrays(elab);
    out.finishStats(elab);
    return out;
}

FlopCopyPlan
ArenaLayout::flopPlan(const std::vector<int> &flop_nets) const
{
    FlopCopyPlan plan;
    std::vector<int> covered(words_per_phase_, 0);
    for (int net : flop_nets) {
        const LayoutSlot &s = slots_[net];
        for (int w = 0; w < s.nwords; ++w)
            ++covered[s.word_off + w];
    }
    // A word is whole-copyable iff every resident net is flopped.
    std::vector<char> copyable(words_per_phase_, 0);
    for (int w = 0; w < words_per_phase_; ++w) {
        copyable[w] =
            covered[w] > 0 &&
            covered[w] == static_cast<int>(word_nets_[w].size());
    }
    for (int net : flop_nets) {
        const LayoutSlot &s = slots_[net];
        bool whole = true;
        for (int w = 0; w < s.nwords; ++w)
            whole = whole && copyable[s.word_off + w];
        if (!whole)
            plan.rmw_nets.push_back(net);
    }
    for (int w = 0; w < words_per_phase_; ++w) {
        if (!copyable[w])
            continue;
        if (!plan.ranges.empty() &&
            plan.ranges.back().off + plan.ranges.back().nwords == w)
            ++plan.ranges.back().nwords;
        else
            plan.ranges.push_back({w, 1});
    }
    return plan;
}

} // namespace cmtl
