#include "jit_cpp.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace cmtl {

namespace {

double
seconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** FNV-1a over the source text; good enough for a build cache key. */
std::string
sourceHash(const std::string &source)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : source) {
        h ^= c;
        h *= 1099511628211ull;
    }
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

int
runCommand(const std::string &cmd)
{
    return std::system(cmd.c_str());
}

} // namespace

CppJitLibrary::~CppJitLibrary()
{
    if (handle_)
        ::dlclose(handle_);
}

CppJitLibrary::CppJitLibrary(CppJitLibrary &&other) noexcept
    : handle_(other.handle_), groups_(std::move(other.groups_)),
      cache_hit_(other.cache_hit_), compile_seconds_(other.compile_seconds_),
      wrap_seconds_(other.wrap_seconds_)
{
    other.handle_ = nullptr;
}

CppJitLibrary &
CppJitLibrary::operator=(CppJitLibrary &&other) noexcept
{
    if (this != &other) {
        if (handle_)
            ::dlclose(handle_);
        handle_ = other.handle_;
        groups_ = std::move(other.groups_);
        cache_hit_ = other.cache_hit_;
        compile_seconds_ = other.compile_seconds_;
        wrap_seconds_ = other.wrap_seconds_;
        other.handle_ = nullptr;
    }
    return *this;
}

CppJit::CppJit(std::string cache_dir, bool use_cache)
    : cache_dir_(std::move(cache_dir)), use_cache_(use_cache)
{
    ::mkdir(cache_dir_.c_str(), 0755);
}

std::string
CppJit::defaultCacheDir()
{
    if (const char *env = std::getenv("CMTL_JIT_CACHE"))
        return env;
    return "/tmp/cmtl-jit-" + std::to_string(::getuid());
}

bool
CppJit::compilerAvailable()
{
    static int cached = -1;
    if (cached < 0)
        cached = runCommand("g++ --version > /dev/null 2>&1") == 0 ? 1 : 0;
    return cached == 1;
}

CppJitLibrary
CppJit::compile(const std::string &source, int ngroups)
{
    CppJitLibrary lib;
    std::string hash = sourceHash(source);
    std::string base = cache_dir_ + "/cmtl_" + hash;
    std::string so_path = base + ".so";

    double t0 = seconds();
    if (use_cache_ && fileExists(so_path)) {
        lib.cache_hit_ = true;
    } else {
        // Scratch paths are unique per compile (pid + process-wide
        // counter): two simulators compiling the same source
        // concurrently — same process or not — must not clobber each
        // other's in-progress files. Only the final rename below is
        // shared, and rename is atomic.
        static std::atomic<uint64_t> compile_seq{0};
        std::string scratch = base + ".build." +
                              std::to_string(::getpid()) + "." +
                              std::to_string(compile_seq.fetch_add(1));
        std::string cc_path = scratch + ".cc";
        std::string log_path = scratch + ".log";
        std::string tmp_so = scratch + ".so";
        {
            std::ofstream out(cc_path);
            if (!out)
                throw std::runtime_error("SimJIT: cannot write " + cc_path);
            out << source;
        }
        // -O1, like the paper's verilator flow ("the relatively fast
        // -O1 optimization level").
        std::string cmd = "g++ -O1 -shared -fPIC -o " + tmp_so + " " +
                          cc_path + " 2> " + log_path;
        if (runCommand(cmd) != 0) {
            throw std::runtime_error(
                "SimJIT: compiler failed; see " + log_path);
        }
        // Atomic publish so concurrent compiles share the cache safely.
        if (::rename(tmp_so.c_str(), so_path.c_str()) != 0)
            throw std::runtime_error("SimJIT: cannot publish " + so_path);
        std::remove(cc_path.c_str());
        std::remove(log_path.c_str());
    }
    lib.compile_seconds_ = seconds() - t0;

    double t1 = seconds();
    lib.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!lib.handle_)
        throw std::runtime_error(std::string("SimJIT: dlopen failed: ") +
                                 ::dlerror());
    for (int k = 0; k < ngroups; ++k) {
        std::string sym = "cmtl_grp_" + std::to_string(k);
        void *fn = ::dlsym(lib.handle_, sym.c_str());
        if (!fn)
            throw std::runtime_error("SimJIT: missing symbol " + sym);
        lib.groups_.push_back(
            reinterpret_cast<CppJitLibrary::GroupFn>(fn));
    }
    lib.wrap_seconds_ = seconds() - t1;
    return lib;
}

} // namespace cmtl
