#include "jit_cpp.h"

#include <dirent.h>
#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

namespace cmtl {

namespace {

double
seconds()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/**
 * Cache format version. Bump whenever the key scheme or the on-disk
 * layout changes: the version is part of the file name, so entries
 * written under an older scheme stop matching without any cleanup.
 */
constexpr const char *kCacheFormatVersion = "v2";

/** Base flags; the paper's "relatively fast -O1 optimization level". */
constexpr const char *kBaseFlags = "-O1 -shared -fPIC";

/** FNV-1a; good enough for a build cache key. */
std::string
fnvHash(const std::string &text)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    std::ostringstream os;
    os << std::hex << h;
    return os.str();
}

int
runCommand(const std::string &cmd)
{
    return std::system(cmd.c_str());
}

/** Single-quote @p path for POSIX sh ('\'' escapes embedded quotes). */
std::string
shellQuote(const std::string &path)
{
    std::string out = "'";
    for (char c : path) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/** mkdir -p: create @p path and all missing parents. */
bool
makeDirs(const std::string &path)
{
    if (path.empty())
        return false;
    std::string partial;
    size_t pos = 0;
    while (pos < path.size()) {
        size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        partial = path.substr(0, next);
        if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST) {
            return false;
        }
        pos = next + 1;
    }
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace

CppJitLibrary::~CppJitLibrary()
{
    if (handle_)
        ::dlclose(handle_);
}

CppJitLibrary::CppJitLibrary(CppJitLibrary &&other) noexcept
    : handle_(other.handle_), groups_(std::move(other.groups_)),
      cache_hit_(other.cache_hit_), compile_seconds_(other.compile_seconds_),
      wrap_seconds_(other.wrap_seconds_)
{
    other.handle_ = nullptr;
}

CppJitLibrary &
CppJitLibrary::operator=(CppJitLibrary &&other) noexcept
{
    if (this != &other) {
        if (handle_)
            ::dlclose(handle_);
        handle_ = other.handle_;
        groups_ = std::move(other.groups_);
        cache_hit_ = other.cache_hit_;
        compile_seconds_ = other.compile_seconds_;
        wrap_seconds_ = other.wrap_seconds_;
        other.handle_ = nullptr;
    }
    return *this;
}

CppJit::CppJit(std::string cache_dir, bool use_cache,
               std::string extra_flags)
    : cache_dir_(std::move(cache_dir)), use_cache_(use_cache),
      extra_flags_(std::move(extra_flags))
{
    // CMTL_JIT_CACHE may name a nested path; create all parents and
    // fail loudly (with errno context) instead of letting every later
    // compile die on an unwritable scratch file.
    if (!makeDirs(cache_dir_)) {
        throw std::runtime_error("SimJIT: cannot create cache dir '" +
                                 cache_dir_ + "': " +
                                 std::strerror(errno));
    }
}

std::string
CppJit::defaultCacheDir()
{
    if (const char *env = std::getenv("CMTL_JIT_CACHE"))
        return env;
    return "/tmp/cmtl-jit-" + std::to_string(::getuid());
}

bool
CppJit::compilerAvailable()
{
    static int cached = -1;
    if (cached < 0)
        cached = runCommand("g++ --version > /dev/null 2>&1") == 0 ? 1 : 0;
    return cached == 1;
}

std::string
CppJit::compilerVersion()
{
    // -dumpfullversion prints the full x.y.z on g++ >= 7 but nothing
    // on some older releases; -dumpversion backstops it. Queried once.
    static std::string cached = [] {
        std::string out;
        if (FILE *pipe = ::popen(
                "g++ -dumpfullversion -dumpversion 2>/dev/null", "r")) {
            char buf[128];
            while (::fgets(buf, sizeof(buf), pipe))
                out += buf;
            ::pclose(pipe);
        }
        while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
            out.pop_back();
        return out.empty() ? std::string("unknown") : out;
    }();
    return cached;
}

std::string
CppJit::flagString() const
{
    return extra_flags_.empty() ? std::string(kBaseFlags)
                                : std::string(kBaseFlags) + " " +
                                      extra_flags_;
}

uint64_t
CppJit::cacheMaxBytes()
{
    if (const char *env = std::getenv("CMTL_JIT_CACHE_MAX_MB")) {
        char *end = nullptr;
        unsigned long long mb = std::strtoull(env, &end, 10);
        if (end != env)
            return static_cast<uint64_t>(mb) * 1024 * 1024;
    }
    return 256ull * 1024 * 1024;
}

void
CppJit::evictCache(const std::string &dir, uint64_t max_bytes,
                   const std::string &keep)
{
    struct Entry
    {
        std::string path;
        uint64_t size;
        time_t mtime;
    };
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return;
    std::vector<Entry> entries;
    uint64_t total = 0;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        // Only published libraries count; in-progress scratch files
        // (.build.*) belong to a live compile and are left alone.
        if (name.rfind("cmtl_", 0) != 0 || name.size() < 4 ||
            name.compare(name.size() - 3, 3, ".so") != 0)
            continue;
        std::string path = dir + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        entries.push_back(
            {path, static_cast<uint64_t>(st.st_size), st.st_mtime});
        total += static_cast<uint64_t>(st.st_size);
    }
    ::closedir(d);
    if (total <= max_bytes)
        return;
    // Oldest mtime first = least recently used (hits touch the file).
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry &en : entries) {
        if (total <= max_bytes)
            break;
        if (en.path == keep)
            continue;
        if (::unlink(en.path.c_str()) == 0)
            total -= en.size;
    }
}

std::string
CppJit::cachePathFor(const std::string &source) const
{
    // The key covers everything that determines the produced binary:
    // format version, compiler version, exact flags, source text.
    std::string key = std::string(kCacheFormatVersion) + "\n" +
                      compilerVersion() + "\n" + flagString() + "\n" +
                      source;
    return cache_dir_ + "/cmtl_" + kCacheFormatVersion + "_" +
           fnvHash(key) + ".so";
}

CppJitLibrary
CppJit::compile(const std::string &source, int ngroups)
{
    CppJitLibrary lib;
    std::string so_path = cachePathFor(source);
    std::string base = so_path.substr(0, so_path.size() - 3);

    double t0 = seconds();
    if (use_cache_ && fileExists(so_path)) {
        lib.cache_hit_ = true;
        // Refresh the entry's mtime: eviction is LRU over mtimes.
        ::utimes(so_path.c_str(), nullptr);
    } else {
        // Scratch paths are unique per compile (pid + process-wide
        // counter): two simulators compiling the same source
        // concurrently — same process or not — must not clobber each
        // other's in-progress files. Only the final rename below is
        // shared, and rename is atomic.
        static std::atomic<uint64_t> compile_seq{0};
        std::string scratch = base + ".build." +
                              std::to_string(::getpid()) + "." +
                              std::to_string(compile_seq.fetch_add(1));
        std::string cc_path = scratch + ".cc";
        std::string log_path = scratch + ".log";
        std::string tmp_so = scratch + ".so";
        {
            std::ofstream out(cc_path);
            if (!out)
                throw std::runtime_error("SimJIT: cannot write " + cc_path);
            out << source;
        }
        // Quote every interpolated path: the cache dir comes from the
        // environment and may contain spaces or shell metacharacters.
        std::string cmd = "g++ " + flagString() + " -o " +
                          shellQuote(tmp_so) + " " + shellQuote(cc_path) +
                          " 2> " + shellQuote(log_path);
        if (runCommand(cmd) != 0) {
            throw std::runtime_error(
                "SimJIT: compiler failed; see " + log_path);
        }
        // Atomic publish so concurrent compiles share the cache safely.
        if (::rename(tmp_so.c_str(), so_path.c_str()) != 0)
            throw std::runtime_error("SimJIT: cannot publish " + so_path);
        std::remove(cc_path.c_str());
        std::remove(log_path.c_str());
        // Keep the cache directory bounded (it otherwise grows by one
        // .so per distinct design/flag/compiler combination, forever).
        evictCache(cache_dir_, cacheMaxBytes(), so_path);
    }
    lib.compile_seconds_ = seconds() - t0;

    double t1 = seconds();
    lib.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!lib.handle_)
        throw std::runtime_error(std::string("SimJIT: dlopen failed: ") +
                                 ::dlerror());
    for (int k = 0; k < ngroups; ++k) {
        std::string sym = "cmtl_grp_" + std::to_string(k);
        void *fn = ::dlsym(lib.handle_, sym.c_str());
        if (!fn)
            throw std::runtime_error("SimJIT: missing symbol " + sym);
        lib.groups_.push_back(
            reinterpret_cast<CppJitLibrary::GroupFn>(fn));
    }
    lib.wrap_seconds_ = seconds() - t1;
    return lib;
}

std::vector<CppJitLibrary>
CppJit::compileMany(const std::vector<std::string> &sources,
                    const std::vector<int> &ngroups)
{
    if (sources.size() != ngroups.size())
        throw std::logic_error(
            "SimJIT: compileMany sources/ngroups size mismatch");
    std::vector<CppJitLibrary> libs;
    libs.reserve(sources.size());
    for (size_t i = 0; i < sources.size(); ++i)
        libs.push_back(compile(sources[i], ngroups[i]));
    return libs;
}

} // namespace cmtl
