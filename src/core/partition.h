/**
 * @file
 * ParSim static design partitioner.
 *
 * Cuts the elaborated block/net graph into load-balanced *islands* for
 * the bulk-synchronous parallel simulator (psim.h). The cut follows
 * the structure the paper's concurrent-structural designs expose:
 * sequential (flop) boundaries cost nothing to cross — a flopped net
 * changes only at the clock edge, so its value is exchanged once per
 * cycle — while combinational edges that cross islands are legal but
 * force an extra settle *superstep* (a barrier-separated exchange
 * round). Val/rdy channels between components cut cheaply because the
 * stdlib queues drive their handshake outputs from registered state,
 * so a channel contributes at most one cross-island comb edge (the
 * backward rdy path), giving a two-superstep settle for meshes of any
 * size.
 *
 * Only blocks with statically known effects are assigned to islands:
 * IR blocks (CombIr/TickIr, whose read/write sets come from the IR)
 * and comb lambdas (whose sets are declared). TickFl/TickCl lambdas
 * run arbitrary host code with undeclared effects; they stay on the
 * coordinating thread ("island -1", the external participant) in
 * declaration order, preserving sequential semantics exactly.
 *
 * Determinism: the partition never changes simulated values — islands
 * execute their blocks in the global topological order restricted to
 * the island, and cross-island values are exchanged only at barriers —
 * so any island count produces bit-identical results (see psim.h).
 */

#ifndef CMTL_CORE_PARTITION_H
#define CMTL_CORE_PARTITION_H

#include <string>
#include <vector>

#include "model.h"

namespace cmtl {

/** Island index of the external participant (main thread). */
constexpr int kExternalIsland = -1;

/** Tuning knobs for partitionDesign(). */
struct PartitionOptions
{
    /**
     * Run the KLFM-style min-cut refinement pass over the chunked
     * seed: iteratively move boundary clusters between islands when
     * the move shrinks the cut (tokens first, comb edges as the
     * tiebreak) without exceeding the balance bound.
     */
    bool refine = true;
    /** Maximum refinement passes (a pass locks each moved cluster). */
    int maxRefinePasses = 8;
    /** An island may grow to (1+slack)*mean weight (or the seed max). */
    double balanceSlack = 0.10;
};

/** One island of the partitioned design. */
struct PartitionIsland
{
    /** Comb block ids, global topological order, grouped by level. */
    std::vector<int> combBlocks;
    /** Settle superstep of each entry of combBlocks (nondecreasing). */
    std::vector<int> combLevels;
    /** Tick block ids (TickIr only), global tick order. */
    std::vector<int> tickBlocks;
    /** Tokens owned (statically written) by this island. */
    std::vector<int> ownedTokens;
    /** Owned nets that are statically flopped. */
    std::vector<int> flopNets;
    /** Estimated per-cycle work (IR statement count proxy). */
    long weight = 0;
};

/** The full partition of an elaborated design. */
struct PartitionPlan
{
    int nislands = 0;
    std::vector<PartitionIsland> islands;

    /**
     * Token -> owning island, or kExternalIsland for tokens without a
     * statically assigned writer (top-level inputs, nets driven only
     * by tick lambdas or the test bench).
     */
    std::vector<int> ownerOf;

    /**
     * Token -> sorted island indices with a statically known reader
     * (comb or tick). The external participant reads owner replicas
     * directly and never appears here.
     */
    std::vector<std::vector<int>> readerIslands;

    /** TickFl/TickCl block ids for the external participant, in order. */
    std::vector<int> lambdaTicks;

    /** Number of settle supersteps (1 + max cross-island comb depth). */
    int nlevels = 1;

    // --- Partition quality (for StatsTool reporting) ---------------
    long totalWeight = 0;
    int cutTokens = 0;      //!< tokens pushed between islands per cycle
    int cutCombEdges = 0;   //!< comb writer->reader pairs crossing islands
    int nclusters = 0;      //!< atomic clusters before balancing

    /**
     * Islands the caller asked for, before clamping to the cluster
     * count and compacting islands the chunker left empty. nislands
     * is always the *effective* count: every island in the plan has
     * at least one cluster (or the design has none at all).
     */
    int requestedIslands = 0;

    /** Cut of the weight-balanced seed, before refinement. */
    int seedCutTokens = 0;
    int seedCutCombEdges = 0;

    /** Refinement effort actually spent. */
    int refinePasses = 0;
    int refineMoves = 0;

    /** max island weight / mean island weight (1.0 = perfect). */
    double imbalance() const;
};

/**
 * Partition @p elab into @p nislands islands.
 *
 * @p nislands is clamped to [1, number of atomic clusters], and
 * islands the weight-balancer leaves empty are compacted away — the
 * plan's nislands is the effective count, requestedIslands the ask.
 * By default the weight-balanced seed is improved by a KLFM-style
 * min-cut refinement pass (see PartitionOptions). Throws
 * std::logic_error if the design has a combinational cycle (ParSim is
 * statically scheduled, like SchedMode::Static).
 */
PartitionPlan partitionDesign(const Elaboration &elab, int nislands,
                              const PartitionOptions &opts);
PartitionPlan partitionDesign(const Elaboration &elab, int nislands);

/** Human-readable partition-quality report (one line per island). */
std::string partitionReport(const Elaboration &elab,
                            const PartitionPlan &plan);

} // namespace cmtl

#endif // CMTL_CORE_PARTITION_H
