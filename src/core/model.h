/**
 * @file
 * Model base class and elaboration.
 *
 * CMTL models are described concurrent-structurally, mirroring PyMTL:
 * interfaces are port-based, logic lives in concurrent blocks, and
 * components compose structurally via connect(). A model's constructor
 * performs *elaboration-time configuration* (ports, wires, submodels,
 * connectivity — arbitrary C++ is allowed here) and declares *run-time
 * simulation logic*:
 *
 *  - tickFl()/tickCl(): sequential lambda blocks with arbitrary host
 *    code (the analog of PyMTL's @s.tick_fl/@s.tick_cl);
 *  - tickRtl()/combinational(): IR blocks built through a BlockBuilder
 *    (the analog of @s.tick_rtl/@s.combinational — the translatable,
 *    specializable subset);
 *  - combLambda(): a combinational lambda with an explicit sensitivity
 *    list, for FL conveniences.
 *
 * Following the model/tool split, elaborate() produces an Elaboration
 * — an in-memory representation of the flattened design — which tools
 * (SimulationTool, TranslationTool, Lint, VcdWriter) consume.
 */

#ifndef CMTL_CORE_MODEL_H
#define CMTL_CORE_MODEL_H

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir.h"
#include "signal.h"

namespace cmtl {

class Model;
class SnapWriter; // snap.h
class SnapReader; // snap.h

/** Kind of a concurrent block after elaboration. */
enum class BlockKind { TickFl, TickCl, CombLambda, TickIr, CombIr };

/** True for blocks that execute at the clock edge. */
inline bool
isTick(BlockKind k)
{
    return k == BlockKind::TickFl || k == BlockKind::TickCl ||
           k == BlockKind::TickIr;
}

/** A concurrent block of an elaborated design. */
struct ElabBlock
{
    BlockKind kind;
    std::string name; //!< hierarchical, e.g. "top.router0.comb_route"
    Model *model = nullptr;
    std::function<void()> fn;    //!< lambda blocks
    const IrBlock *ir = nullptr; //!< IR blocks
    std::vector<int> reads;      //!< net ids read (comb scheduling)
    std::vector<int> writes;     //!< net ids written
};

/**
 * A synchronous-write, asynchronous-read memory array (SRAM/regfile).
 *
 * Depth must be a power of two; read indices are masked to the depth.
 * Writes are only legal from sequential (tickRtl) blocks and take
 * effect at the clock edge; reads from combinational blocks observe
 * the post-edge contents. With a single writing block this matches
 * Verilog `reg [w-1:0] mem [0:d-1]` semantics; multiple tick blocks
 * writing one array would be tick-order dependent and are rejected by
 * the linter.
 */
class MemArray
{
  public:
    MemArray(Model *owner, std::string name, int nbits, int depth);
    MemArray(const MemArray &) = delete;
    MemArray &operator=(const MemArray &) = delete;

    Model *owner() const { return owner_; }
    const std::string &name() const { return name_; }
    std::string fullName() const;
    int nbits() const { return nbits_; }
    int depth() const { return depth_; }
    uint64_t indexMask() const { return static_cast<uint64_t>(depth_) - 1; }

    /** Dense array id; valid after elaboration (-1 before). */
    int arrayId() const { return array_id_; }
    void setArrayId(int id) { array_id_ = id; }

  private:
    Model *owner_;
    std::string name_;
    int nbits_;
    int depth_;
    int array_id_ = -1;
};

/** A net: an equivalence class of connected signals. */
struct Net
{
    int id = -1;
    int nbits = 0;
    std::string name;             //!< shallowest member signal's full name
    bool floppedStatic = false;   //!< written by a non-blocking IR assign
    std::vector<Signal *> signals;
};

/**
 * In-memory representation of an elaborated design.
 *
 * This is the interface between models and tools: simulators,
 * translators, linters and visualizers all consume an Elaboration.
 */
class Elaboration
{
  public:
    Model *top = nullptr;
    std::vector<Model *> models;   //!< pre-order hierarchy walk
    std::vector<Signal *> signals; //!< all signals, dense ids
    std::vector<Net> nets;
    std::vector<MemArray *> arrays;
    std::vector<ElabBlock> blocks;

    /**
     * Scheduling token for an array: arrays share the net id space
     * above nets.size() so sensitivity tracking covers them.
     */
    int
    arrayToken(int array_id) const
    {
        return static_cast<int>(nets.size()) + array_id;
    }

    std::vector<int> tickOrder; //!< block indices, declaration order
    std::vector<int> combOrder; //!< block indices, topological order
    bool hasCombCycle = false;  //!< static scheduling impossible
    /** For event-driven scheduling: net id -> comb blocks reading it. */
    std::vector<std::vector<int>> netReaders;

    const Net &netOf(const Signal &sig) const { return nets[sig.netId()]; }
};

/**
 * Base class of all CMTL hardware models.
 */
class Model
{
  public:
    /**
     * @param parent enclosing model, or nullptr for a top-level model
     * @param name instance name within the parent
     */
    Model(Model *parent, std::string name);
    virtual ~Model() = default;
    Model(const Model &) = delete;
    Model &operator=(const Model &) = delete;

    /**
     * Type name used by the Verilog translator as the module name.
     * Parameterized models should encode their parameters, e.g.
     * "Mux_8_4".
     */
    virtual std::string typeName() const { return "Model_" + name_; }

    Model *parent() const { return parent_; }
    const std::string &instName() const { return name_; }
    /** Hierarchical instance name, e.g. "top.router0". */
    std::string fullName() const;
    const std::vector<Model *> &children() const { return children_; }

    /** Structurally connect two signals (same width required). */
    void connect(Signal &a, Signal &b);

    // --- Concurrent block declaration (call from constructors) -----

    /** Functional-level sequential block (arbitrary host code). */
    void tickFl(const std::string &name, std::function<void()> fn);
    /** Cycle-level sequential block (arbitrary host code). */
    void tickCl(const std::string &name, std::function<void()> fn);
    /** RTL sequential block; assignments are non-blocking. */
    BlockBuilder &tickRtl(const std::string &name);
    /** Combinational IR block; assignments are blocking. */
    BlockBuilder &combinational(const std::string &name);
    /**
     * Combinational lambda with an explicit sensitivity list.
     * @param reads  signals whose changes re-trigger the block
     * @param writes signals the block may write
     */
    void combLambda(const std::string &name, std::function<void()> fn,
                    std::vector<Signal *> reads,
                    std::vector<Signal *> writes);

    /** Per-cycle line-trace fragment (optional override). */
    virtual std::string lineTrace() const { return ""; }

    /**
     * Serialize host-side lambda-block state (SimSnap, snap.h).
     * Models whose tickFl/tickCl/combLambda blocks carry state outside
     * nets and arrays — RNGs, software queues, counters — override
     * both so checkpoints capture the complete simulation; snapLoad
     * must read exactly the bytes snapSave wrote. The defaults
     * serialize nothing (fine for pure-IR models).
     */
    virtual void snapSave(SnapWriter &) const {}
    virtual void snapLoad(SnapReader &) {}

    /**
     * Elaborate the hierarchy rooted at this model. Call once, on the
     * top-level model, after construction.
     */
    std::shared_ptr<Elaboration> elaborate();

    // --- Framework internals ----------------------------------------
    void registerSignal(Signal *sig) { signals_.push_back(sig); }
    void registerArray(MemArray *array) { arrays_.push_back(array); }
    const std::vector<Signal *> &ownSignals() const { return signals_; }
    const std::vector<MemArray *> &ownArrays() const { return arrays_; }
    const std::vector<std::pair<Signal *, Signal *>> &
    ownConnections() const
    {
        return connections_;
    }
    const std::deque<IrBlock> &ownIrBlocks() const { return ir_blocks_; }

  private:
    friend class Elaborator;

    struct LambdaDecl
    {
        BlockKind kind;
        std::string name;
        std::function<void()> fn;
        std::vector<Signal *> reads;
        std::vector<Signal *> writes;
    };

    Model *parent_;
    std::string name_;
    std::vector<Model *> children_;
    std::vector<Signal *> signals_;
    std::vector<MemArray *> arrays_;
    std::vector<std::pair<Signal *, Signal *>> connections_;
    std::vector<LambdaDecl> lambda_blocks_;
    std::deque<IrBlock> ir_blocks_;
    std::deque<BlockBuilder> builders_;

  public:
    /**
     * Implicit reset input, auto-connected through the hierarchy at
     * elaboration time (like PyMTL's implicit s.reset). Declared last
     * so the registration containers above are constructed first.
     */
    InPort reset;
};

} // namespace cmtl

#endif // CMTL_CORE_MODEL_H
