#include "translate.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace cmtl {

namespace {

/** Sanitize an instance/signal name into a Verilog identifier. */
std::string
vlogId(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_')
            out += c;
        else
            out += '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out = "v_" + out;
    return out;
}

std::string
vlogConst(const Bits &value)
{
    std::string hex = value.toHexString().substr(2);
    return std::to_string(value.nbits()) + "'h" + hex;
}

std::string
vlogRange(int nbits)
{
    if (nbits == 1)
        return "";
    return "[" + std::to_string(nbits - 1) + ":0] ";
}

/** Emits one module definition for a model class. */
class ModuleEmitter
{
  public:
    ModuleEmitter(const Model &model) : model_(model) {}

    std::string
    run()
    {
        collectRegs();
        collectConnections();
        emitHeader();
        emitDecls();
        emitChildInstances();
        emitAssigns();
        emitBlocks();
        os_ << "endmodule\n";
        return os_.str();
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw std::logic_error("translation of model '" +
                               model_.fullName() + "' (" +
                               model_.typeName() + "): " + msg);
    }

    /** Signals written by any IR block become Verilog regs. */
    void
    collectRegs()
    {
        for (const IrBlock &blk : model_.ownIrBlocks()) {
            std::vector<Signal *> reads, writes;
            irCollectAccess(blk, reads, writes);
            for (Signal *sig : writes) {
                if (sig->owner() != &model_)
                    fail("block '" + blk.name +
                         "' writes a foreign signal " + sig->fullName());
                regs_.insert(sig);
            }
            for (Signal *sig : reads) {
                if (sig->owner() != &model_)
                    fail("block '" + blk.name +
                         "' reads a foreign signal " + sig->fullName());
            }
        }
    }

    void
    emitHeader()
    {
        os_ << "module " << vlogId(model_.typeName()) << "\n(\n";
        os_ << "  input  wire clk";
        for (const Signal *sig : model_.ownSignals()) {
            if (sig->dir() == SignalDir::Wire)
                continue;
            os_ << ",\n";
            if (sig->dir() == SignalDir::Input) {
                os_ << "  input  wire " << vlogRange(sig->nbits())
                    << vlogId(sig->name());
            } else {
                bool is_reg = regs_.count(const_cast<Signal *>(sig)) > 0;
                os_ << "  output " << (is_reg ? "reg  " : "wire ")
                    << vlogRange(sig->nbits()) << vlogId(sig->name());
            }
        }
        os_ << "\n);\n\n";
    }

    void
    emitDecls()
    {
        // Memory arrays.
        for (const MemArray *array : model_.ownArrays()) {
            os_ << "  reg  " << vlogRange(array->nbits())
                << vlogId(array->name()) << " [0:"
                << (array->depth() - 1) << "];\n";
        }
        // Internal wires.
        for (const Signal *sig : model_.ownSignals()) {
            if (sig->dir() != SignalDir::Wire)
                continue;
            bool is_reg = regs_.count(const_cast<Signal *>(sig)) > 0;
            os_ << "  " << (is_reg ? "reg  " : "wire ")
                << vlogRange(sig->nbits()) << vlogId(sig->name())
                << ";\n";
        }
        // Wires for child-to-child connections and child outputs.
        for (const auto &[name, nbits] : extra_wires_)
            os_ << "  wire " << vlogRange(nbits) << name << ";\n";
        // Block temporaries.
        int blk_idx = 0;
        for (const IrBlock &blk : model_.ownIrBlocks()) {
            for (size_t t = 0; t < blk.temps.size(); ++t) {
                os_ << "  reg  " << vlogRange(blk.temps[t].nbits)
                    << tempName(blk_idx, static_cast<int>(t), blk)
                    << ";\n";
            }
            ++blk_idx;
        }
        os_ << "\n";
    }

    std::string
    tempName(int blk_idx, int temp_idx, const IrBlock &blk) const
    {
        return vlogId(blk.name) + "_" + std::to_string(blk_idx) + "__" +
               vlogId(blk.temps[temp_idx].name);
    }

    /**
     * Resolve what every child port connects to inside this module's
     * scope, creating intermediate wires for child-child links.
     */
    void
    collectConnections()
    {
        std::vector<std::pair<const Signal *, const Signal *>>
            parent_aliases;
        for (const auto &[a, b] : model_.ownConnections()) {
            const Signal *pa = a;
            const Signal *pb = b;
            bool a_child = pa->owner() != &model_;
            bool b_child = pb->owner() != &model_;
            if (a_child && pa->owner()->parent() != &model_)
                fail("connection reaches through hierarchy: " +
                     pa->fullName());
            if (b_child && pb->owner()->parent() != &model_)
                fail("connection reaches through hierarchy: " +
                     pb->fullName());
            if (a_child && b_child) {
                // Child-to-child: route through a generated wire.
                std::string wname = "w_" + vlogId(pa->owner()->instName()) +
                                    "_" + vlogId(pa->name());
                auto [it, fresh] =
                    child_wire_.try_emplace(pa, wname);
                if (fresh)
                    extra_wires_.emplace_back(wname, pa->nbits());
                child_wire_.try_emplace(pb, it->second);
            } else if (a_child || b_child) {
                const Signal *child = a_child ? pa : pb;
                const Signal *parent = a_child ? pb : pa;
                peer_[child] = parent;
            } else {
                parent_aliases.emplace_back(pa, pb);
            }
        }
        parent_aliases_ = parent_aliases;
    }

    void
    emitChildInstances()
    {
        for (const Model *child : model_.children()) {
            os_ << "  " << vlogId(child->typeName()) << " "
                << vlogId(child->instName()) << "\n  (\n"
                << "    .clk(clk)";
            for (const Signal *sig : child->ownSignals()) {
                if (sig->dir() == SignalDir::Wire)
                    continue;
                os_ << ",\n    ." << vlogId(sig->name()) << "(";
                if (sig == &child->reset) {
                    os_ << "reset";
                } else if (auto it = child_wire_.find(sig);
                           it != child_wire_.end()) {
                    os_ << it->second;
                } else if (auto pit = peer_.find(sig);
                           pit != peer_.end()) {
                    os_ << vlogId(pit->second->name());
                } else {
                    // Unconnected port: leave open.
                }
                os_ << ")";
            }
            os_ << "\n  );\n\n";
        }
    }

    void
    emitAssigns()
    {
        for (const auto &[a, b] : parent_aliases_) {
            // Direction heuristic: drive the output/wire from the input.
            const Signal *dst = a;
            const Signal *src = b;
            if (a->dir() == SignalDir::Input) {
                dst = b;
                src = a;
            }
            os_ << "  assign " << vlogId(dst->name()) << " = "
                << vlogId(src->name()) << ";\n";
        }
        if (!parent_aliases_.empty())
            os_ << "\n";
    }

    std::string
    expr(const IrExprNode *e, const IrBlock &blk, int blk_idx)
    {
        switch (e->kind) {
          case IrExprNode::Kind::Const:
            return vlogConst(e->cval);
          case IrExprNode::Kind::Ref:
            return vlogId(e->sig->name());
          case IrExprNode::Kind::Temp:
            return tempName(blk_idx, e->temp, blk);
          case IrExprNode::Kind::BinOp: {
            std::string a = expr(e->args[0].get(), blk, blk_idx);
            std::string b = expr(e->args[1].get(), blk, blk_idx);
            const char *op = nullptr;
            switch (e->op) {
              case IrOp::Add: op = "+"; break;
              case IrOp::Sub: op = "-"; break;
              case IrOp::Mul: op = "*"; break;
              case IrOp::And: op = "&"; break;
              case IrOp::Or: op = "|"; break;
              case IrOp::Xor: op = "^"; break;
              case IrOp::Shl: op = "<<"; break;
              case IrOp::Shr: op = ">>"; break;
              case IrOp::Sra: op = ">>>"; break;
              case IrOp::Eq: op = "=="; break;
              case IrOp::Ne: op = "!="; break;
              case IrOp::Lt: op = "<"; break;
              case IrOp::Le: op = "<="; break;
              case IrOp::Gt: op = ">"; break;
              case IrOp::Ge: op = ">="; break;
              case IrOp::LAnd: op = "&&"; break;
              case IrOp::LOr: op = "||"; break;
            }
            if (e->op == IrOp::Sra) {
                return "($signed(" + a + ") >>> " + b + ")";
            }
            return "(" + a + " " + op + " " + b + ")";
          }
          case IrExprNode::Kind::UnOp: {
            std::string a = expr(e->args[0].get(), blk, blk_idx);
            switch (e->unop) {
              case IrUnOp::Inv: return "(~" + a + ")";
              case IrUnOp::LNot: return "(!" + a + ")";
              case IrUnOp::ReduceOr: return "(|" + a + ")";
              case IrUnOp::ReduceAnd: return "(&" + a + ")";
              case IrUnOp::ReduceXor: return "(^" + a + ")";
            }
            fail("unhandled unary op");
          }
          case IrExprNode::Kind::Slice: {
            const IrExprNode *base = e->args[0].get();
            if (base->kind != IrExprNode::Kind::Ref &&
                base->kind != IrExprNode::Kind::Temp)
                fail("block '" + blk.name +
                     "': Verilog cannot slice a compound expression; "
                     "bind it to a temporary with let() first");
            std::string name = expr(base, blk, blk_idx);
            if (e->nbits == 1)
                return name + "[" + std::to_string(e->lsb) + "]";
            return name + "[" + std::to_string(e->lsb + e->nbits - 1) +
                   ":" + std::to_string(e->lsb) + "]";
          }
          case IrExprNode::Kind::Concat: {
            std::string out = "{";
            for (size_t i = 0; i < e->args.size(); ++i) {
                if (i)
                    out += ", ";
                out += expr(e->args[i].get(), blk, blk_idx);
            }
            return out + "}";
          }
          case IrExprNode::Kind::Mux:
            return "(" + expr(e->args[0].get(), blk, blk_idx) + " ? " +
                   expr(e->args[1].get(), blk, blk_idx) + " : " +
                   expr(e->args[2].get(), blk, blk_idx) + ")";
          case IrExprNode::Kind::Zext: {
            int pad = e->nbits - e->args[0]->nbits;
            if (pad <= 0)
                return expr(e->args[0].get(), blk, blk_idx);
            return "{{" + std::to_string(pad) + "{1'b0}}, " +
                   expr(e->args[0].get(), blk, blk_idx) + "}";
          }
          case IrExprNode::Kind::ARead: {
            if (e->array->owner() != &model_)
                fail("array read reaches a foreign array " +
                     e->array->fullName());
            return vlogId(e->array->name()) + "[" +
                   expr(e->args[0].get(), blk, blk_idx) + "]";
          }
          case IrExprNode::Kind::Sext: {
            const IrExprNode *base = e->args[0].get();
            // The sign bit must be individually selectable: the base
            // must be a (possibly sliced) signal or temporary.
            std::string msb;
            if (base->kind == IrExprNode::Kind::Ref ||
                base->kind == IrExprNode::Kind::Temp) {
                msb = expr(base, blk, blk_idx) + "[" +
                      std::to_string(base->nbits - 1) + "]";
            } else if (base->kind == IrExprNode::Kind::Slice &&
                       (base->args[0]->kind == IrExprNode::Kind::Ref ||
                        base->args[0]->kind ==
                            IrExprNode::Kind::Temp)) {
                msb = expr(base->args[0].get(), blk, blk_idx) + "[" +
                      std::to_string(base->lsb + base->nbits - 1) + "]";
            } else {
                fail("sext of a compound expression; use let() first");
            }
            int pad = e->nbits - base->nbits;
            std::string name = expr(base, blk, blk_idx);
            if (pad <= 0)
                return name;
            return "{{" + std::to_string(pad) + "{" + msb + "}}, " +
                   name + "}";
          }
        }
        fail("unhandled expression kind");
        return {};
    }

    void
    emitStmts(const std::vector<IrStmt> &stmts, const IrBlock &blk,
              int blk_idx, int indent)
    {
        std::string pad(indent, ' ');
        for (const IrStmt &s : stmts) {
            switch (s.kind) {
              case IrStmt::Kind::Assign: {
                os_ << pad;
                const char *assign_op =
                    (blk.sequential && s.nonblocking) ? "<=" : "=";
                if (s.temp >= 0 && !s.sig) {
                    os_ << tempName(blk_idx, s.temp, blk) << " = "
                        << expr(s.rhs.get(), blk, blk_idx) << ";\n";
                    break;
                }
                os_ << vlogId(s.sig->name());
                if (s.width >= 0) {
                    if (s.width == 1)
                        os_ << "[" << s.lsb << "]";
                    else
                        os_ << "[" << (s.lsb + s.width - 1) << ":"
                            << s.lsb << "]";
                }
                os_ << " " << assign_op << " "
                    << expr(s.rhs.get(), blk, blk_idx) << ";\n";
                break;
              }
              case IrStmt::Kind::If:
                os_ << pad << "if ("
                    << expr(s.cond.get(), blk, blk_idx) << ") begin\n";
                emitStmts(s.thenBody, blk, blk_idx, indent + 2);
                if (!s.elseBody.empty()) {
                    os_ << pad << "end else begin\n";
                    emitStmts(s.elseBody, blk, blk_idx, indent + 2);
                }
                os_ << pad << "end\n";
                break;
              case IrStmt::Kind::AWrite:
                if (s.array->owner() != &model_)
                    fail("array write reaches a foreign array " +
                         s.array->fullName());
                os_ << pad << vlogId(s.array->name()) << "["
                    << expr(s.cond.get(), blk, blk_idx)
                    << "] <= " << expr(s.rhs.get(), blk, blk_idx)
                    << ";\n";
                break;
            }
        }
    }

    void
    emitBlocks()
    {
        int blk_idx = 0;
        for (const IrBlock &blk : model_.ownIrBlocks()) {
            os_ << "  // " << blk.name << "\n";
            if (blk.sequential)
                os_ << "  always @(posedge clk) begin\n";
            else
                os_ << "  always @(*) begin\n";
            emitStmts(blk.stmts, blk, blk_idx, 4);
            os_ << "  end\n\n";
            ++blk_idx;
        }
    }

    const Model &model_;
    std::ostringstream os_;
    std::set<const Signal *> regs_;
    std::vector<std::pair<std::string, int>> extra_wires_;
    std::unordered_map<const Signal *, std::string> child_wire_;
    std::unordered_map<const Signal *, const Signal *> peer_;
    std::vector<std::pair<const Signal *, const Signal *>>
        parent_aliases_;
};

} // namespace

std::string
TranslationTool::translate(const Elaboration &elab)
{
    // One module per distinct typeName, children before parents.
    std::map<std::string, const Model *> modules;
    for (const Model *m : elab.models) {
        // Reject lambda blocks anywhere in the hierarchy.
        auto it = modules.find(m->typeName());
        if (it == modules.end())
            modules.emplace(m->typeName(), m);
    }
    for (const Model *m : elab.models) {
        bool has_lambda = false;
        for (const ElabBlock &blk : elab.blocks) {
            if (blk.model == m && !blk.ir) {
                has_lambda = true;
                break;
            }
        }
        if (has_lambda) {
            throw std::logic_error(
                "model '" + m->fullName() + "' (" + m->typeName() +
                ") contains non-RTL lambda blocks and is not "
                "translatable");
        }
    }

    std::ostringstream os;
    os << "//" << std::string(70, '-') << "\n"
       << "// Generated by the CMTL TranslationTool\n"
       << "// Top-level module: " << vlogId(elab.top->typeName()) << "\n"
       << "//" << std::string(70, '-') << "\n\n";
    for (auto it = modules.rbegin(); it != modules.rend(); ++it)
        os << ModuleEmitter(*it->second).run() << "\n";
    return os.str();
}

std::string
TranslationTool::translateToFile(const Elaboration &elab,
                                 const std::string &path)
{
    std::string source = translate(elab);
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot write " + path);
    out << source;
    return source;
}

} // namespace cmtl
