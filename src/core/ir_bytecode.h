/**
 * @file
 * SimJIT bytecode backend.
 *
 * The bytecode specializer is the always-available SimJIT engine: at
 * simulator-construction time it compiles elaborated IR blocks into a
 * flat register-machine program operating directly on the ArenaStore
 * word arena, eliminating tree-walking dispatch, Bits temporaries, and
 * per-signal indirection. It plays the role of PyMTL's generated-C++
 * specializers when no host compiler is available, and serves as the
 * ablation point against the real compiled-C++ backend (jit_cpp).
 *
 * Restrictions (the "specializable subset", mirroring SimJIT's
 * restricted-Python subset): every referenced net and every
 * intermediate value must fit in 64 bits. Blocks outside the subset
 * keep executing on the tree-walking evaluators.
 */

#ifndef CMTL_CORE_IR_BYTECODE_H
#define CMTL_CORE_IR_BYTECODE_H

#include <cstdint>
#include <vector>

#include "model.h"
#include "store.h"

namespace cmtl {

/** Bytecode opcodes. */
enum class Bc : uint8_t
{
    LdImm, //!< dst = imm
    Mov,   //!< dst = R(a) & mask
    Add, Sub, Mul, And, Or, Xor,
    Shl, Shr, Sra,
    Eq, Ne, Lt, Le, Gt, Ge, LAnd, LOr,
    Inv, LNot, ROr, RAnd, RXor,
    Slice,    //!< dst = (R(a) >> sh) & mask
    SetSlice, //!< dst = (dst & ~(mask<<sh)) | ((R(a)&mask) << sh)
    Mux,      //!< dst = R(c) ? R(a) : R(b)
    Sext,     //!< dst = signextend(R(a), imm bits) & mask
    ALoad,    //!< dst = words[imm + (R(a) & c)]
    AStore,   //!< words[imm + (R(a) & c)] = R(b) & mask
    Jz,       //!< if (!R(a)) pc = imm
    Jmp,      //!< pc = imm
};

/**
 * One bytecode instruction. Register operands >= 0 address arena
 * words; operands < 0 address scratch slot (-idx - 1).
 */
struct BcInst
{
    Bc op;
    int32_t dst = 0;
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
    uint64_t imm = 0;
    uint64_t mask = ~uint64_t(0);
    uint8_t sh = 0;
};

/** A compiled block. */
struct BcProgram
{
    std::vector<BcInst> insts;
    int nscratch = 0;
};

/** True iff the block is within the specializable subset. */
bool bcSpecializable(const ElabBlock &blk, const ArenaStore &store);

/** Compile an IR block against an arena layout. */
BcProgram bcCompile(const ElabBlock &blk, const ArenaStore &store);

/** Execute a compiled program. @p scratch must have >= nscratch slots. */
void bcRun(const BcProgram &prog, uint64_t *words, uint64_t *scratch);

} // namespace cmtl

#endif // CMTL_CORE_IR_BYTECODE_H
