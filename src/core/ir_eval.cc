#include "ir_eval.h"

#include <stdexcept>

namespace cmtl {

Bits
irEvalBinOp(IrOp op, const Bits &a, const Bits &b, int nbits)
{
    switch (op) {
      case IrOp::Add: return (a + b).zext(nbits);
      case IrOp::Sub: return (a - b).zext(nbits);
      case IrOp::Mul: return (a * b).zext(nbits);
      case IrOp::And: return (a & b).zext(nbits);
      case IrOp::Or: return (a | b).zext(nbits);
      case IrOp::Xor: return (a ^ b).zext(nbits);
      case IrOp::Shl: return (a << b).zext(nbits);
      case IrOp::Shr: return (a >> b).zext(nbits);
      case IrOp::Sra:
        return a.sra(static_cast<int>(
            b.fitsUint64() ? std::min<uint64_t>(b.toUint64(), a.nbits())
                           : a.nbits()));
      case IrOp::Eq: return Bits(1, a == b);
      case IrOp::Ne: return Bits(1, a != b);
      case IrOp::Lt: return Bits(1, a < b);
      case IrOp::Le: return Bits(1, a <= b);
      case IrOp::Gt: return Bits(1, a > b);
      case IrOp::Ge: return Bits(1, a >= b);
      case IrOp::LAnd: return Bits(1, a.any() && b.any());
      case IrOp::LOr: return Bits(1, a.any() || b.any());
    }
    throw std::logic_error("unhandled IrOp");
}

Bits
irEvalUnOp(IrUnOp op, const Bits &a)
{
    switch (op) {
      case IrUnOp::Inv: return ~a;
      case IrUnOp::LNot: return Bits(1, !a.any());
      case IrUnOp::ReduceOr: return a.reduceOr();
      case IrUnOp::ReduceAnd: return a.reduceAnd();
      case IrUnOp::ReduceXor: return a.reduceXor();
    }
    throw std::logic_error("unhandled IrUnOp");
}

// -------------------------------------------------------- BoxedEvaluator

BoxedEvaluator::Box
BoxedEvaluator::eval(const IrExprNode *e)
{
    // Every intermediate allocates a fresh box: CPython object churn.
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        return std::make_shared<const Bits>(e->cval);
      case IrExprNode::Kind::Ref:
        return std::make_shared<const Bits>(store_.read(e->sig->netId()));
      case IrExprNode::Kind::Temp:
        return temps_[e->temp];
      case IrExprNode::Kind::BinOp: {
        Box a = eval(e->args[0].get());
        Box b = eval(e->args[1].get());
        return std::make_shared<const Bits>(
            irEvalBinOp(e->op, *a, *b, e->nbits));
      }
      case IrExprNode::Kind::UnOp: {
        Box a = eval(e->args[0].get());
        return std::make_shared<const Bits>(irEvalUnOp(e->unop, *a));
      }
      case IrExprNode::Kind::Slice: {
        Box a = eval(e->args[0].get());
        return std::make_shared<const Bits>(a->slice(e->lsb, e->nbits));
      }
      case IrExprNode::Kind::Concat: {
        Bits out(e->nbits);
        int pos = e->nbits;
        for (const auto &arg : e->args) {
            Box part = eval(arg.get());
            pos -= arg->nbits;
            out.setSlice(pos, *part);
        }
        return std::make_shared<const Bits>(std::move(out));
      }
      case IrExprNode::Kind::Mux: {
        Box c = eval(e->args[0].get());
        Box v = c->any() ? eval(e->args[1].get()) : eval(e->args[2].get());
        return std::make_shared<const Bits>(v->zext(e->nbits));
      }
      case IrExprNode::Kind::Zext: {
        Box a = eval(e->args[0].get());
        return std::make_shared<const Bits>(a->zext(e->nbits));
      }
      case IrExprNode::Kind::Sext: {
        Box a = eval(e->args[0].get());
        return std::make_shared<const Bits>(a->sext(e->nbits));
      }
      case IrExprNode::Kind::ARead: {
        Box idx = eval(e->args[0].get());
        return std::make_shared<const Bits>(
            store_.arrayRead(e->array->arrayId(), idx->toUint64()));
      }
    }
    throw std::logic_error("unhandled IrExprNode kind");
}

void
BoxedEvaluator::exec(const std::vector<IrStmt> &stmts, bool sequential,
                     std::vector<int> *changed)
{
    for (const IrStmt &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign: {
            Box rhs = eval(s.rhs.get());
            if (s.temp >= 0 && !s.sig) {
                temps_[s.temp] = rhs;
                break;
            }
            int net = s.sig->netId();
            if (s.width < 0) {
                if (sequential && s.nonblocking) {
                    store_.writeNext(net, *rhs);
                } else {
                    if (store_.write(net, *rhs) && changed)
                        changed->push_back(net);
                }
            } else {
                Bits whole = (sequential && s.nonblocking)
                                 ? store_.readNext(net)
                                 : store_.read(net);
                whole.setSlice(s.lsb, rhs->zext(s.width));
                if (sequential && s.nonblocking) {
                    store_.writeNext(net, whole);
                } else {
                    if (store_.write(net, whole) && changed)
                        changed->push_back(net);
                }
            }
            break;
          }
          case IrStmt::Kind::If: {
            Box cond = eval(s.cond.get());
            if (cond->any())
                exec(s.thenBody, sequential, changed);
            else
                exec(s.elseBody, sequential, changed);
            break;
          }
          case IrStmt::Kind::AWrite: {
            Box idx = eval(s.cond.get());
            Box val = eval(s.rhs.get());
            store_.arrayWrite(s.array->arrayId(), idx->toUint64(),
                              *val);
            break;
          }
        }
    }
}

void
BoxedEvaluator::run(const ElabBlock &blk, std::vector<int> *changed)
{
    temps_.assign(blk.ir->temps.size(), nullptr);
    exec(blk.ir->stmts, blk.ir->sequential, changed);
}

// --------------------------------------------------------- SlotEvaluator

Bits
SlotEvaluator::eval(const IrExprNode *e)
{
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        return e->cval;
      case IrExprNode::Kind::Ref:
        return store_.read(e->sig->netId());
      case IrExprNode::Kind::Temp:
        return temps_[e->temp];
      case IrExprNode::Kind::BinOp:
        return irEvalBinOp(e->op, eval(e->args[0].get()),
                         eval(e->args[1].get()), e->nbits);
      case IrExprNode::Kind::UnOp:
        return irEvalUnOp(e->unop, eval(e->args[0].get()));
      case IrExprNode::Kind::Slice:
        return eval(e->args[0].get()).slice(e->lsb, e->nbits);
      case IrExprNode::Kind::Concat: {
        Bits out(e->nbits);
        int pos = e->nbits;
        for (const auto &arg : e->args) {
            pos -= arg->nbits;
            out.setSlice(pos, eval(arg.get()));
        }
        return out;
      }
      case IrExprNode::Kind::Mux:
        return (eval(e->args[0].get()).any() ? eval(e->args[1].get())
                                             : eval(e->args[2].get()))
            .zext(e->nbits);
      case IrExprNode::Kind::Zext:
        return eval(e->args[0].get()).zext(e->nbits);
      case IrExprNode::Kind::Sext:
        return eval(e->args[0].get()).sext(e->nbits);
      case IrExprNode::Kind::ARead:
        return store_.arrayRead(e->array->arrayId(),
                                eval(e->args[0].get()).toUint64());
    }
    throw std::logic_error("unhandled IrExprNode kind");
}

void
SlotEvaluator::exec(const std::vector<IrStmt> &stmts, bool sequential,
                    std::vector<int> *changed)
{
    for (const IrStmt &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign: {
            Bits rhs = eval(s.rhs.get());
            if (s.temp >= 0 && !s.sig) {
                temps_[s.temp] = std::move(rhs);
                break;
            }
            int net = s.sig->netId();
            if (s.width < 0) {
                if (sequential && s.nonblocking) {
                    store_.writeNext(net, rhs);
                } else {
                    if (store_.write(net, rhs) && changed)
                        changed->push_back(net);
                }
            } else {
                Bits whole = (sequential && s.nonblocking)
                                 ? store_.readNext(net)
                                 : store_.read(net);
                whole.setSlice(s.lsb, rhs.zext(s.width));
                if (sequential && s.nonblocking) {
                    store_.writeNext(net, whole);
                } else {
                    if (store_.write(net, whole) && changed)
                        changed->push_back(net);
                }
            }
            break;
          }
          case IrStmt::Kind::If:
            if (eval(s.cond.get()).any())
                exec(s.thenBody, sequential, changed);
            else
                exec(s.elseBody, sequential, changed);
            break;
          case IrStmt::Kind::AWrite:
            store_.arrayWrite(s.array->arrayId(),
                              eval(s.cond.get()).toUint64(),
                              eval(s.rhs.get()));
            break;
        }
    }
}

void
SlotEvaluator::run(const ElabBlock &blk, std::vector<int> *changed)
{
    temps_.assign(blk.ir->temps.size(), Bits());
    exec(blk.ir->stmts, blk.ir->sequential, changed);
}

} // namespace cmtl
