/**
 * @file
 * Static ParSim race auditor.
 *
 * ParSim's bit-identical claim rests on invariants the partitioner is
 * supposed to establish (partition.h) and the BSP kernel to rely on
 * (psim.h). This auditor *proves* them on any PartitionPlan by
 * independent recomputation from the elaborated design — a
 * machine-checked certificate rather than a test-suite hope, in the
 * spirit of Manticore's statically-proven parallelization. Checked
 * invariants:
 *
 *  - **block coverage**: every statically scheduled block (CombIr,
 *    TickIr, CombLambda) is assigned to exactly one island, and every
 *    host tick lambda (TickFl/TickCl, undeclared effects) to the
 *    external participant;
 *  - **write disjointness / ownership**: no token (net, MemArray, or
 *    tick state) is statically written from two distinct islands, and
 *    each token's owner is exactly its writing island (external when
 *    none);
 *  - **superstep order**: a combinational edge crossing islands is
 *    separated by a settle barrier (reader level >= writer level + 1);
 *    within an island the writer precedes the reader in schedule
 *    order;
 *  - **push coverage**: the boundary-exchange push set (readerIslands)
 *    *exactly* covers the islands with a static reader — no
 *    cross-island read without a push, no push without a reader;
 *  - **flop boundary**: a sequentially written net read from another
 *    island is statically flopped (exchanged at the flop barrier);
 *    anything else crossing islands must be a barrier-separated
 *    combinational edge;
 *  - **array locality**: a MemArray is touched (read or written) by at
 *    most one island — arrays are never boundary-exchanged.
 *
 * A violation pinpoints the offending net/array and island pair.
 * Reports surface through simulatorReport (stats.h), the `--audit`
 * flag of stdlib::SimOptions, and as `audit-*` error findings via
 * toLintIssues() — the CI gate runs the auditor over the whole corpus
 * at threads {2,4}.
 */

#ifndef CMTL_CORE_RACE_AUDIT_H
#define CMTL_CORE_RACE_AUDIT_H

#include <string>
#include <vector>

#include "analyze.h"
#include "model.h"
#include "partition.h"

namespace cmtl {

/** One proven invariant violation. */
struct RaceAuditIssue
{
    std::string invariant; //!< check id, e.g. "audit-shared-write"
    std::string path;      //!< hierarchical subject (net/array/block)
    std::string message;   //!< full description with island pair
    int token = -1;        //!< offending token, -1 when block-level
    int island_a = kExternalIsland;
    int island_b = kExternalIsland;
};

/** Outcome of auditPartition(): pass/fail plus coverage counters. */
struct RaceAuditReport
{
    std::vector<RaceAuditIssue> issues;
    int nislands = 0;
    int blocksChecked = 0;
    int tokensChecked = 0;
    int edgesChecked = 0;  //!< cross-block writer->reader pairs
    int pushesChecked = 0; //!< readerIslands entries validated

    bool ok() const { return issues.empty(); }

    /** One line: "race audit: PASS (...)" / "FAIL: N violations". */
    std::string summary() const;

    /** Multi-line report: summary plus one line per violation. */
    std::string format() const;

    /** Render violations as `audit-*` lint findings (errors). */
    std::vector<LintIssue>
    toLintIssues(const AnalyzeOptions &options = {}) const;
};

/**
 * Prove the partitioner invariants of @p plan against @p elab. The
 * audit is pure recomputation — it never trusts the plan's derived
 * fields (ownerOf, readerIslands, levels) without re-deriving the
 * ground truth from the block access sets.
 */
RaceAuditReport auditPartition(const Elaboration &elab,
                               const PartitionPlan &plan);

} // namespace cmtl

#endif // CMTL_CORE_RACE_AUDIT_H
