#include "bitstruct.h"

#include <stdexcept>

namespace cmtl {

BitStructLayout::BitStructLayout(
    std::string name,
    std::initializer_list<std::pair<const char *, int>> fields)
    : name_(std::move(name))
{
    for (const auto &[fname, fbits] : fields) {
        if (fbits < 1)
            throw std::invalid_argument("field width must be >= 1");
        fields_.push_back(BitField{fname, fbits, 0});
        nbits_ += fbits;
    }
    int pos = nbits_;
    for (auto &f : fields_) {
        pos -= f.nbits;
        f.lsb = pos;
    }
}

bool
BitStructLayout::hasField(const std::string &field) const
{
    for (const auto &f : fields_) {
        if (f.name == field)
            return true;
    }
    return false;
}

const BitField &
BitStructLayout::field(const std::string &field) const
{
    for (const auto &f : fields_) {
        if (f.name == field)
            return f;
    }
    throw std::out_of_range("no field '" + field + "' in " + name_);
}

Bits
BitStructLayout::get(const Bits &msg, const std::string &fname) const
{
    const BitField &f = field(fname);
    return msg.slice(f.lsb, f.nbits);
}

Bits
BitStructLayout::set(const Bits &msg, const std::string &fname,
                     const Bits &value) const
{
    const BitField &f = field(fname);
    Bits out = msg;
    out.setSlice(f.lsb, value.zext(f.nbits));
    return out;
}

Bits
BitStructLayout::set(const Bits &msg, const std::string &fname,
                     uint64_t value) const
{
    const BitField &f = field(fname);
    return set(msg, fname, Bits(f.nbits, value));
}

Bits
BitStructLayout::pack(std::initializer_list<uint64_t> values) const
{
    if (values.size() != fields_.size())
        throw std::invalid_argument("pack: wrong number of field values");
    Bits out(nbits_);
    auto it = values.begin();
    for (const auto &f : fields_) {
        out.setSlice(f.lsb, Bits(f.nbits, *it));
        ++it;
    }
    return out;
}

std::string
BitStructLayout::trace(const Bits &msg) const
{
    std::string out;
    for (const auto &f : fields_) {
        if (!out.empty())
            out += "|";
        out += f.name + ":" + msg.slice(f.lsb, f.nbits).toHexString();
    }
    return out;
}

} // namespace cmtl
