#include "scope.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "psim.h"

namespace cmtl {

namespace {

/** JSON string escape (quotes included). */
void
jsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** Compact double formatting ("%.9g", no locale surprises). */
void
jsonNum(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

} // namespace

// --------------------------------------------------- ScopeHistogram

void
ScopeHistogram::record(uint64_t value)
{
    int idx = 0;
    if (value > 0) {
        idx = 64 - __builtin_clzll(value); // 1 + floor(log2(value))
        if (idx > 64)
            idx = 64;
    }
    ++counts_[idx];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::vector<uint64_t>
ScopeHistogram::buckets() const
{
    int top = -1;
    for (int i = 0; i < 65; ++i) {
        if (counts_[i])
            top = i;
    }
    return std::vector<uint64_t>(counts_, counts_ + top + 1);
}

std::string
ScopeHistogram::toJson() const
{
    std::ostringstream os;
    os << "{\"count\":" << count_ << ",\"sum\":" << sum_
       << ",\"min\":" << min() << ",\"max\":" << max_ << ",\"mean\":";
    jsonNum(os, mean());
    os << ",\"buckets\":[";
    std::vector<uint64_t> b = buckets();
    for (size_t i = 0; i < b.size(); ++i)
        os << (i ? "," : "") << b[i];
    os << "]}";
    return os.str();
}

// -------------------------------------------------- MetricsRegistry

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, v] : other.counters_)
        counters_[name] += v;
    for (const auto &[name, v] : other.gauges_)
        gauges_[name] = v;
    for (const auto &[name, h] : other.histograms_) {
        // Histograms are merged by value: last write wins per name.
        histograms_[name] = h;
    }
}

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : counters_) {
        os << (first ? "" : ",");
        first = false;
        jsonString(os, name);
        os << ":" << v;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : gauges_) {
        os << (first ? "" : ",");
        first = false;
        jsonString(os, name);
        os << ":";
        jsonNum(os, v);
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",");
        first = false;
        jsonString(os, name);
        os << ":" << h.toJson();
    }
    os << "}}";
    return os.str();
}

// ----------------------------------------------------------- SimScope

/**
 * Hook-shared state: the per-cycle channel sampler captures a
 * shared_ptr to this, so the hook stays safe (and inert) after the
 * SimScope object is detached or destroyed.
 */
struct SimScope::State
{
    Simulator *sim = nullptr;
    bool attached = true;
    uint64_t cycles = 0;
    std::vector<ChannelStats> channels;
};

namespace {

void
sampleChannel(const Simulator &sim, SimScope::ChannelStats &ch)
{
    bool val = sim.readNet(ch.val_net).any();
    bool rdy = sim.readNet(ch.rdy_net).any();
    ++ch.cycles;
    if (!val) {
        ++ch.idle_cycles;
        ch.pending_age = 0;
        return;
    }
    if (rdy) {
        ++ch.transfers;
        ch.latency.record(ch.pending_age);
        ch.pending_age = 0;
    } else {
        ++ch.stall_cycles;
        ++ch.pending_age;
    }
}

} // namespace

SimScope::SimScope(Simulator &sim, Options opt)
    : sim_(sim), state_(std::make_shared<State>())
{
    state_->sim = &sim;
    probe_.exact = opt.timing == Timing::Exact;
    probe_.sample_period = std::max<uint32_t>(1, opt.sample_period);

    const size_t nblocks = sim.elaboration().blocks.size();
    probe_.block_seconds.assign(nblocks, 0.0);
    probe_.block_calls.assign(nblocks, 0);
    probe_.until_sample.assign(nblocks, probe_.sample_period);

    if (const auto *par = dynamic_cast<const ParSimulationTool *>(&sim)) {
        parsim_ = true;
        const size_t n =
            static_cast<size_t>(par->plan().nislands);
        probe_.island_settle_seconds.assign(n, 0.0);
        probe_.island_tick_seconds.assign(n, 0.0);
        probe_.island_flop_seconds.assign(n, 0.0);
        probe_.island_barrier_seconds.assign(n, 0.0);
        probe_.island_boundary_bytes.assign(n, 0);
        probe_.island_gated_supersteps.assign(n, 0);
    }

    sim.attachScope(&probe_);
    sim.onCycleEnd([state = state_](uint64_t) {
        if (!state->attached)
            return;
        ++state->cycles;
        for (ChannelStats &ch : state->channels)
            sampleChannel(*state->sim, ch);
    });
}

SimScope::~SimScope()
{
    detach();
}

void
SimScope::detach()
{
    if (!state_->attached)
        return;
    state_->attached = false;
    if (sim_.scopeProbe() == &probe_)
        sim_.attachScope(nullptr);
}

bool
SimScope::attached() const
{
    return state_->attached;
}

uint64_t
SimScope::cycles() const
{
    return state_->cycles;
}

void
SimScope::traceValRdy(const std::string &name, const Signal &msg,
                      const Signal &val, const Signal &rdy)
{
    ChannelStats ch;
    ch.name = name;
    ch.msg_net = msg.netId();
    ch.val_net = val.netId();
    ch.rdy_net = rdy.netId();
    state_->channels.push_back(std::move(ch));
}

int
SimScope::traceAllValRdy()
{
    // Connected endpoints (e.g. a queue's deq and the next router's
    // in_) share one net triple; trace each triple once, under the
    // first model in pre-order (the shallowest/owning scope).
    std::set<std::tuple<int, int, int>> seen;
    for (const ChannelStats &ch : state_->channels)
        seen.insert({ch.msg_net, ch.val_net, ch.rdy_net});

    int traced = 0;
    for (const Model *model : sim_.elaboration().models) {
        std::map<std::string, const Signal *> byName;
        for (const Signal *sig : model->ownSignals())
            byName[sig->name()] = sig;
        for (const auto &[name, val] : byName) {
            if (name.size() <= 4 ||
                name.compare(name.size() - 4, 4, "_val") != 0)
                continue;
            std::string prefix = name.substr(0, name.size() - 4);
            auto msg = byName.find(prefix + "_msg");
            auto rdy = byName.find(prefix + "_rdy");
            if (msg == byName.end() || rdy == byName.end())
                continue;
            std::tuple<int, int, int> key{msg->second->netId(),
                                          val->netId(),
                                          rdy->second->netId()};
            if (!seen.insert(key).second)
                continue;
            traceValRdy(model->fullName() + "." + prefix, *msg->second,
                        *val, *rdy->second);
            ++traced;
        }
    }
    return traced;
}

const std::vector<SimScope::ChannelStats> &
SimScope::channels() const
{
    return state_->channels;
}

std::vector<SimScope::BlockCost>
SimScope::hotBlocks(size_t n) const
{
    const auto &blocks = sim_.elaboration().blocks;
    std::vector<int> order;
    for (size_t i = 0; i < probe_.block_calls.size(); ++i) {
        if (probe_.block_calls[i])
            order.push_back(static_cast<int>(i));
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return probe_.block_seconds[a] > probe_.block_seconds[b];
    });
    if (order.size() > n)
        order.resize(n);

    std::vector<BlockCost> out;
    out.reserve(order.size());
    for (int idx : order) {
        BlockCost cost;
        cost.path = blocks[idx].name;
        cost.seconds = probe_.block_seconds[idx];
        cost.calls = probe_.block_calls[idx];
        out.push_back(std::move(cost));
    }
    return out;
}

SimScope::PhaseBreakdown
SimScope::phaseBreakdown() const
{
    PhaseBreakdown pb;
    if (parsim_) {
        pb.nislands =
            static_cast<int>(probe_.island_settle_seconds.size());
        for (int i = 0; i < pb.nislands; ++i) {
            pb.settle_seconds += probe_.island_settle_seconds[i];
            pb.tick_seconds += probe_.island_tick_seconds[i];
            pb.flop_seconds += probe_.island_flop_seconds[i];
            pb.barrier_seconds += probe_.island_barrier_seconds[i];
            pb.boundary_bytes += probe_.island_boundary_bytes[i];
            pb.gated_supersteps += probe_.island_gated_supersteps[i];
        }
    } else {
        pb.settle_seconds = probe_.settle_seconds;
        pb.tick_seconds = probe_.tick_seconds;
        pb.flop_seconds = probe_.flop_seconds;
        pb.gated_supersteps = probe_.gated_steps;
    }
    return pb;
}

void
SimScope::exportMetrics(MetricsRegistry &reg) const
{
    reg.setCounter("scope.cycles", cycles());
    // Backend/JIT cost metrics, so --profile=json and the bench
    // "metrics" sections carry compile overhead and the tier
    // transition next to the runtime phase numbers.
    const SpecStats &spec = sim_.specStats();
    reg.setGauge("scope.jit.codegen_seconds", spec.codegenSeconds);
    reg.setGauge("scope.jit.compile_seconds", spec.compileSeconds);
    reg.setCounter("scope.jit.cache_hit", spec.cacheHit ? 1 : 0);
    if (spec.tiered) {
        // Tier-transition event: -1 while the warm-up (bytecode) tier
        // is still running, else the cycle the native module went
        // live at a cycle boundary.
        reg.setGauge("scope.jit.tier_swap_cycle",
                     static_cast<double>(spec.tierSwapCycle));
        reg.setCounter("scope.jit.tier_swaps",
                       spec.tierSwapCycle >= 0 ? 1 : 0);
    }
    PhaseBreakdown pb = phaseBreakdown();
    reg.setGauge("scope.phase.settle_seconds", pb.settle_seconds);
    reg.setGauge("scope.phase.tick_seconds", pb.tick_seconds);
    reg.setGauge("scope.phase.flop_seconds", pb.flop_seconds);
    reg.setCounter("scope.gated_supersteps", pb.gated_supersteps);
    if (parsim_) {
        reg.setGauge("scope.phase.barrier_seconds", pb.barrier_seconds);
        reg.setCounter("scope.boundary_bytes", pb.boundary_bytes);
        for (int i = 0; i < pb.nislands; ++i) {
            std::string base = "scope.island." + std::to_string(i);
            reg.setGauge(base + ".compute_seconds",
                         probe_.island_settle_seconds[i] +
                             probe_.island_tick_seconds[i] +
                             probe_.island_flop_seconds[i]);
            reg.setGauge(base + ".barrier_seconds",
                         probe_.island_barrier_seconds[i]);
            reg.setCounter(base + ".boundary_bytes",
                           probe_.island_boundary_bytes[i]);
        }
    }
    for (const BlockCost &b : hotBlocks(20)) {
        reg.setGauge("scope.block." + b.path + ".self_seconds",
                     b.seconds);
        reg.setCounter("scope.block." + b.path + ".calls", b.calls);
    }
    for (const ChannelStats &ch : state_->channels) {
        std::string base = "scope.channel." + ch.name;
        reg.setCounter(base + ".transfers", ch.transfers);
        reg.setCounter(base + ".stall_cycles", ch.stall_cycles);
        reg.setCounter(base + ".idle_cycles", ch.idle_cycles);
        reg.setGauge(base + ".occupancy", ch.occupancy());
        reg.histogram(base + ".latency_cycles") = ch.latency;
    }
}

std::string
SimScope::jsonSnapshot() const
{
    std::ostringstream os;
    os << "{\"scope_version\":1,\"kernel\":"
       << (parsim_ ? "\"parsim\"" : "\"sequential\"")
       << ",\"backend\":";
    // Same canonical string SimConfig round-trips and
    // simulatorReport prints.
    jsonString(os, sim_.config().toString());
    os << ",\"timing\":" << (probe_.exact ? "\"exact\"" : "\"sampled\"")
       << ",\"cycles\":" << cycles();

    {
        const LayoutStats lay = sim_.layoutStats();
        os << ",\"layout\":{\"policy\":";
        jsonString(os, layoutPolicyName(lay.policy));
        os << ",\"pgo\":" << (lay.pgo ? "true" : "false")
           << ",\"packed_nets\":" << lay.packed_nets
           << ",\"packed_bits_saved\":" << lay.packed_bits_saved
           << ",\"words_per_phase\":" << lay.words_per_phase
           << ",\"flop_memcpy_ranges\":" << lay.flop_memcpy_ranges
           << "}";
    }

    PhaseBreakdown pb = phaseBreakdown();
    os << ",\"phases\":{\"settle_seconds\":";
    jsonNum(os, pb.settle_seconds);
    os << ",\"tick_seconds\":";
    jsonNum(os, pb.tick_seconds);
    os << ",\"flop_seconds\":";
    jsonNum(os, pb.flop_seconds);
    os << ",\"barrier_seconds\":";
    jsonNum(os, pb.barrier_seconds);
    os << ",\"boundary_bytes\":" << pb.boundary_bytes
       << ",\"gated_supersteps\":" << pb.gated_supersteps
       << ",\"islands\":[";
    if (parsim_) {
        for (int i = 0; i < pb.nislands; ++i) {
            os << (i ? "," : "") << "{\"compute_seconds\":";
            jsonNum(os, probe_.island_settle_seconds[i] +
                            probe_.island_tick_seconds[i] +
                            probe_.island_flop_seconds[i]);
            os << ",\"settle_seconds\":";
            jsonNum(os, probe_.island_settle_seconds[i]);
            os << ",\"tick_seconds\":";
            jsonNum(os, probe_.island_tick_seconds[i]);
            os << ",\"flop_seconds\":";
            jsonNum(os, probe_.island_flop_seconds[i]);
            os << ",\"barrier_seconds\":";
            jsonNum(os, probe_.island_barrier_seconds[i]);
            os << ",\"boundary_bytes\":"
               << probe_.island_boundary_bytes[i]
               << ",\"gated_supersteps\":"
               << probe_.island_gated_supersteps[i] << "}";
        }
    } else {
        // The sequential kernel is one island with no barriers, so
        // consumers can treat both kernels uniformly.
        os << "{\"compute_seconds\":";
        jsonNum(os, pb.settle_seconds + pb.tick_seconds +
                        pb.flop_seconds);
        os << ",\"settle_seconds\":";
        jsonNum(os, pb.settle_seconds);
        os << ",\"tick_seconds\":";
        jsonNum(os, pb.tick_seconds);
        os << ",\"flop_seconds\":";
        jsonNum(os, pb.flop_seconds);
        os << ",\"barrier_seconds\":0,\"boundary_bytes\":0}";
    }
    os << "]}";

    os << ",\"blocks\":[";
    bool first = true;
    for (const BlockCost &b : hotBlocks(20)) {
        os << (first ? "" : ",") << "{\"path\":";
        first = false;
        jsonString(os, b.path);
        os << ",\"seconds\":";
        jsonNum(os, b.seconds);
        os << ",\"calls\":" << b.calls << "}";
    }
    os << "]";

    os << ",\"channels\":[";
    first = true;
    for (const ChannelStats &ch : state_->channels) {
        os << (first ? "" : ",") << "{\"name\":";
        first = false;
        jsonString(os, ch.name);
        os << ",\"transfers\":" << ch.transfers
           << ",\"stall_cycles\":" << ch.stall_cycles
           << ",\"idle_cycles\":" << ch.idle_cycles
           << ",\"occupancy\":";
        jsonNum(os, ch.occupancy());
        os << ",\"latency\":" << ch.latency.toJson() << "}";
    }
    os << "]";

    MetricsRegistry merged = user_metrics_;
    exportMetrics(merged);
    os << ",\"metrics\":" << merged.toJson() << "}";
    return os.str();
}

std::string
SimScope::report(size_t nblocks) const
{
    std::ostringstream os;
    os << "SimScope: " << cycles() << " cycles profiled, "
       << (probe_.exact ? "exact" : "sampled") << " timing\n";

    PhaseBreakdown pb = phaseBreakdown();
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  phases: settle %.4fs  tick %.4fs  flop %.4fs",
                  pb.settle_seconds, pb.tick_seconds, pb.flop_seconds);
    os << buf;
    if (parsim_) {
        std::snprintf(buf, sizeof(buf), "  barrier %.4fs",
                      pb.barrier_seconds);
        os << buf;
    }
    if (pb.gated_supersteps > 0) {
        std::snprintf(buf, sizeof(buf), "  gated %llu",
                      static_cast<unsigned long long>(
                          pb.gated_supersteps));
        os << buf;
    }
    os << "\n";
    if (parsim_) {
        for (int i = 0; i < pb.nislands; ++i) {
            std::snprintf(
                buf, sizeof(buf),
                "  island %d: compute %.4fs  barrier %.4fs  boundary "
                "%llu B  gated %llu\n",
                i,
                probe_.island_settle_seconds[i] +
                    probe_.island_tick_seconds[i] +
                    probe_.island_flop_seconds[i],
                probe_.island_barrier_seconds[i],
                static_cast<unsigned long long>(
                    probe_.island_boundary_bytes[i]),
                static_cast<unsigned long long>(
                    probe_.island_gated_supersteps[i]));
            os << buf;
        }
    }

    std::vector<BlockCost> hot = hotBlocks(nblocks);
    double total = 0.0;
    for (double s : probe_.block_seconds)
        total += s;
    os << "  hot blocks (self time):\n";
    for (size_t i = 0; i < hot.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "  %3zu. %10.6fs %5.1f%% %10llu calls  %s\n",
                      i + 1, hot[i].seconds,
                      total > 0 ? 100.0 * hot[i].seconds / total : 0.0,
                      static_cast<unsigned long long>(hot[i].calls),
                      hot[i].path.c_str());
        os << buf;
    }

    if (!state_->channels.empty()) {
        os << "  channels:\n";
        for (const ChannelStats &ch : state_->channels) {
            std::snprintf(
                buf, sizeof(buf),
                "    %-40s %8llu xfers %8llu stalls  occ %.2f  avg "
                "wait %.2f\n",
                ch.name.c_str(),
                static_cast<unsigned long long>(ch.transfers),
                static_cast<unsigned long long>(ch.stall_cycles),
                ch.occupancy(), ch.latency.mean());
            os << buf;
        }
    }
    return os.str();
}

} // namespace cmtl
