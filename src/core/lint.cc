#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "dataflow.h"

namespace cmtl {

namespace {

/** Minimal JSON string escaping for the one-finding-per-line format. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

LintTool &
LintTool::suppress(const std::string &check)
{
    options_.suppress(check);
    return *this;
}

LintTool &
LintTool::setSeverity(const std::string &check, LintSeverity severity)
{
    options_.setSeverity(check, severity);
    return *this;
}

std::vector<LintIssue>
LintTool::run(const Elaboration &elab)
{
    std::vector<LintIssue> issues;
    const size_t nnets = elab.nets.size();
    std::vector<int> comb_writers(nnets, 0);
    std::vector<int> seq_writers(nnets, 0);
    std::vector<int> readers(nnets, 0);
    std::vector<int> array_writers(elab.arrays.size(), 0);

    for (const ElabBlock &blk : elab.blocks) {
        for (int net : blk.writes) {
            if (net >= static_cast<int>(nnets)) {
                ++array_writers[net - nnets];
                continue;
            }
            if (isTick(blk.kind))
                ++seq_writers[net];
            else
                ++comb_writers[net];
        }
        for (int net : blk.reads) {
            if (net < static_cast<int>(nnets))
                ++readers[net];
        }
    }

    for (size_t i = 0; i < elab.arrays.size(); ++i) {
        if (array_writers[i] > 1) {
            options_.emit(
                issues, LintSeverity::Error, "multiple-array-writers",
                elab.arrays[i]->fullName(),
                "array '" + elab.arrays[i]->fullName() +
                    "' is written by " +
                    std::to_string(array_writers[i]) +
                    " blocks; write ordering would be undefined");
        }
    }

    for (const Net &net : elab.nets) {
        int cw = comb_writers[net.id];
        int sw = seq_writers[net.id];
        if (cw + sw > 1) {
            options_.emit(
                issues, LintSeverity::Error, "multiple-drivers",
                lintNetPath(net),
                lintNetLocation(net) + " is written by " +
                    std::to_string(cw) + " combinational and " +
                    std::to_string(sw) + " sequential block(s)");
        }

        bool has_top_input = false;
        bool has_top_output = false;
        for (const Signal *sig : net.signals) {
            if (sig->owner() == elab.top) {
                if (sig->dir() == SignalDir::Input)
                    has_top_input = true;
                if (sig->dir() == SignalDir::Output)
                    has_top_output = true;
            }
        }
        if (readers[net.id] > 0 && cw + sw == 0 && !has_top_input) {
            options_.emit(issues, LintSeverity::Warning, "undriven-net",
                          lintNetPath(net),
                          lintNetLocation(net) +
                              " is read but never written and has no "
                              "top-level input");
        }
        if (readers[net.id] == 0 && cw + sw > 0 && !has_top_output) {
            options_.emit(issues, LintSeverity::Warning, "unread-net",
                          lintNetPath(net),
                          lintNetLocation(net) +
                              " is written but never read");
        }
    }

    if (elab.hasCombCycle) {
        options_.emit(issues, LintSeverity::Error, "comb-cycle",
                      elab.top ? elab.top->fullName() : "",
                      "combinational blocks form a dependency cycle; "
                      "only event-driven simulation is possible");
    }

    // Deep IR-level checks (latches, ordering, widths, dead logic,
    // blocking/non-blocking misuse) over every IR block.
    std::vector<LintIssue> ir_issues = analyzeIr(elab, options_);
    issues.insert(issues.end(),
                  std::make_move_iterator(ir_issues.begin()),
                  std::make_move_iterator(ir_issues.end()));

    // Whole-design dataflow clients: dead-logic liveness and
    // X-propagation (dataflow.h) run over the cross-block net graph.
    DataflowResult flow = dataflowAnalyze(elab);
    std::vector<LintIssue> flow_issues = dataflowLint(elab, flow, options_);
    issues.insert(issues.end(),
                  std::make_move_iterator(flow_issues.begin()),
                  std::make_move_iterator(flow_issues.end()));
    return issues;
}

std::string
LintTool::format(const std::vector<LintIssue> &issues)
{
    std::ostringstream os;
    for (const LintIssue &issue : issues) {
        os << (issue.severity == LintSeverity::Error ? "error" : "warning")
           << " [" << issue.check << "] " << issue.message << "\n";
    }
    return os.str();
}

std::string
LintTool::formatJson(const std::vector<LintIssue> &issues)
{
    std::ostringstream os;
    for (const LintIssue &issue : issues) {
        os << "{\"check\":\"" << jsonEscape(issue.check)
           << "\",\"severity\":\""
           << (issue.severity == LintSeverity::Error ? "error" : "warning")
           << "\",\"path\":\"" << jsonEscape(issue.path)
           << "\",\"message\":\"" << jsonEscape(issue.message) << "\"}\n";
    }
    return os.str();
}

} // namespace cmtl
