#include "lint.h"

#include <sstream>

namespace cmtl {

std::vector<LintIssue>
LintTool::run(const Elaboration &elab)
{
    std::vector<LintIssue> issues;
    const size_t nnets = elab.nets.size();
    std::vector<int> comb_writers(nnets, 0);
    std::vector<int> seq_writers(nnets, 0);
    std::vector<int> readers(nnets, 0);
    std::vector<int> array_writers(elab.arrays.size(), 0);

    for (const ElabBlock &blk : elab.blocks) {
        for (int net : blk.writes) {
            if (net >= static_cast<int>(nnets)) {
                ++array_writers[net - nnets];
                continue;
            }
            if (isTick(blk.kind))
                ++seq_writers[net];
            else
                ++comb_writers[net];
        }
        for (int net : blk.reads) {
            if (net < static_cast<int>(nnets))
                ++readers[net];
        }
    }

    for (size_t i = 0; i < elab.arrays.size(); ++i) {
        if (array_writers[i] > 1) {
            issues.push_back(
                {LintSeverity::Error, "multiple-array-writers",
                 "array '" + elab.arrays[i]->fullName() +
                     "' is written by " +
                     std::to_string(array_writers[i]) +
                     " blocks; write ordering would be undefined"});
        }
    }

    for (const Net &net : elab.nets) {
        int cw = comb_writers[net.id];
        int sw = seq_writers[net.id];
        if (cw + sw > 1) {
            issues.push_back(
                {LintSeverity::Error, "multiple-drivers",
                 "net '" + net.name + "' is written by " +
                     std::to_string(cw) + " combinational and " +
                     std::to_string(sw) + " sequential block(s)"});
        }

        bool has_top_input = false;
        bool has_top_output = false;
        for (const Signal *sig : net.signals) {
            if (sig->owner() == elab.top) {
                if (sig->dir() == SignalDir::Input)
                    has_top_input = true;
                if (sig->dir() == SignalDir::Output)
                    has_top_output = true;
            }
        }
        if (readers[net.id] > 0 && cw + sw == 0 && !has_top_input) {
            issues.push_back({LintSeverity::Warning, "undriven-net",
                              "net '" + net.name +
                                  "' is read but never written and has "
                                  "no top-level input"});
        }
        if (readers[net.id] == 0 && cw + sw > 0 && !has_top_output) {
            issues.push_back({LintSeverity::Warning, "unread-net",
                              "net '" + net.name +
                                  "' is written but never read"});
        }
    }

    if (elab.hasCombCycle) {
        issues.push_back({LintSeverity::Error, "comb-cycle",
                          "combinational blocks form a dependency "
                          "cycle; only event-driven simulation is "
                          "possible"});
    }
    return issues;
}

std::string
LintTool::format(const std::vector<LintIssue> &issues)
{
    std::ostringstream os;
    for (const LintIssue &issue : issues) {
        os << (issue.severity == LintSeverity::Error ? "error" : "warning")
           << " [" << issue.check << "] " << issue.message << "\n";
    }
    return os.str();
}

} // namespace cmtl
