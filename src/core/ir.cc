#include "ir.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "model.h"
#include "signal.h"

namespace cmtl {

namespace {

IrExpr
makeNode(IrExprNode node)
{
    return IrExpr(std::make_shared<const IrExprNode>(std::move(node)));
}

void
requireValid(const IrExpr &e, const char *what)
{
    if (!e.valid())
        throw std::invalid_argument(std::string("invalid IrExpr in ") + what);
}

IrExpr
binop(IrOp op, const IrExpr &a, const IrExpr &b)
{
    requireValid(a, "binop");
    requireValid(b, "binop");
    IrExprNode n;
    n.kind = IrExprNode::Kind::BinOp;
    n.op = op;
    switch (op) {
      case IrOp::Eq: case IrOp::Ne: case IrOp::Lt: case IrOp::Le:
      case IrOp::Gt: case IrOp::Ge: case IrOp::LAnd: case IrOp::LOr:
        n.nbits = 1;
        break;
      case IrOp::Shl: case IrOp::Shr: case IrOp::Sra:
        n.nbits = a.nbits();
        break;
      default:
        n.nbits = std::max(a.nbits(), b.nbits());
    }
    n.args = {a.node(), b.node()};
    return makeNode(std::move(n));
}

} // namespace

IrExpr
rd(Signal &sig)
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::Ref;
    n.nbits = sig.nbits();
    n.sig = &sig;
    return makeNode(std::move(n));
}

IrExpr
aread(MemArray &array, const IrExpr &index)
{
    requireValid(index, "aread");
    IrExprNode n;
    n.kind = IrExprNode::Kind::ARead;
    n.nbits = array.nbits();
    n.array = &array;
    n.args = {index.node()};
    return makeNode(std::move(n));
}

IrExpr
lit(int nbits, uint64_t value)
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::Const;
    n.nbits = nbits;
    n.cval = Bits(nbits, value);
    return makeNode(std::move(n));
}

IrExpr
lit(const Bits &value)
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::Const;
    n.nbits = value.nbits();
    n.cval = value;
    return makeNode(std::move(n));
}

IrExpr
IrExpr::slice(int lsb, int len) const
{
    requireValid(*this, "slice");
    if (lsb < 0 || len < 1 || lsb + len > nbits())
        throw std::out_of_range("IR slice out of range");
    IrExprNode n;
    n.kind = IrExprNode::Kind::Slice;
    n.nbits = len;
    n.lsb = lsb;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::zext(int nbits) const
{
    requireValid(*this, "zext");
    if (nbits == this->nbits())
        return *this;
    IrExprNode n;
    n.kind = IrExprNode::Kind::Zext;
    n.nbits = nbits;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::sext(int nbits) const
{
    requireValid(*this, "sext");
    if (nbits == this->nbits())
        return *this;
    IrExprNode n;
    n.kind = IrExprNode::Kind::Sext;
    n.nbits = nbits;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::operator~() const
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::UnOp;
    n.unop = IrUnOp::Inv;
    n.nbits = nbits();
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::operator!() const
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::UnOp;
    n.unop = IrUnOp::LNot;
    n.nbits = 1;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::reduceOr() const
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::UnOp;
    n.unop = IrUnOp::ReduceOr;
    n.nbits = 1;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::reduceAnd() const
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::UnOp;
    n.unop = IrUnOp::ReduceAnd;
    n.nbits = 1;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
IrExpr::reduceXor() const
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::UnOp;
    n.unop = IrUnOp::ReduceXor;
    n.nbits = 1;
    n.args = {node_};
    return makeNode(std::move(n));
}

IrExpr
mux(const IrExpr &cond, const IrExpr &a, const IrExpr &b)
{
    requireValid(cond, "mux");
    requireValid(a, "mux");
    requireValid(b, "mux");
    IrExprNode n;
    n.kind = IrExprNode::Kind::Mux;
    n.nbits = std::max(a.nbits(), b.nbits());
    n.args = {cond.node(), a.node(), b.node()};
    return makeNode(std::move(n));
}

IrExpr
cat(std::initializer_list<IrExpr> parts)
{
    IrExprNode n;
    n.kind = IrExprNode::Kind::Concat;
    n.nbits = 0;
    for (const auto &p : parts) {
        requireValid(p, "cat");
        n.nbits += p.nbits();
        n.args.push_back(p.node());
    }
    if (n.args.empty())
        throw std::invalid_argument("cat of zero parts");
    return makeNode(std::move(n));
}

IrExpr
cat(const IrExpr &hi, const IrExpr &lo)
{
    return cat({hi, lo});
}

IrExpr operator+(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Add, a, b); }
IrExpr operator-(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Sub, a, b); }
IrExpr operator*(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Mul, a, b); }
IrExpr operator&(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::And, a, b); }
IrExpr operator|(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Or, a, b); }
IrExpr operator^(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Xor, a, b); }
IrExpr operator<<(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Shl, a, b); }
IrExpr operator>>(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Shr, a, b); }
IrExpr sra(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Sra, a, b); }
IrExpr operator==(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Eq, a, b); }
IrExpr operator!=(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Ne, a, b); }
IrExpr operator<(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Lt, a, b); }
IrExpr operator<=(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Le, a, b); }
IrExpr operator>(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Gt, a, b); }
IrExpr operator>=(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::Ge, a, b); }
IrExpr operator&&(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::LAnd, a, b); }
IrExpr operator||(const IrExpr &a, const IrExpr &b)
{ return binop(IrOp::LOr, a, b); }

IrExpr operator+(const IrExpr &a, uint64_t b)
{ return a + lit(a.nbits(), b); }
IrExpr operator-(const IrExpr &a, uint64_t b)
{ return a - lit(a.nbits(), b); }
IrExpr operator==(const IrExpr &a, uint64_t b)
{ return a == lit(a.nbits(), b); }
IrExpr operator!=(const IrExpr &a, uint64_t b)
{ return a != lit(a.nbits(), b); }
IrExpr operator<(const IrExpr &a, uint64_t b)
{ return a < lit(a.nbits(), b); }
IrExpr operator<=(const IrExpr &a, uint64_t b)
{ return a <= lit(a.nbits(), b); }
IrExpr operator>(const IrExpr &a, uint64_t b)
{ return a > lit(a.nbits(), b); }
IrExpr operator>=(const IrExpr &a, uint64_t b)
{ return a >= lit(a.nbits(), b); }
IrExpr operator<<(const IrExpr &a, int b)
{ return a << lit(32, static_cast<uint64_t>(b)); }
IrExpr operator>>(const IrExpr &a, int b)
{ return a >> lit(32, static_cast<uint64_t>(b)); }

BlockBuilder::BlockBuilder(IrBlock *block) : block_(block)
{
    stack_.push_back(&block_->stmts);
}

void
BlockBuilder::push(const IrStmt &stmt)
{
    current()->push_back(stmt);
}

IrExpr
BlockBuilder::let(const std::string &name, const IrExpr &rhs)
{
    if (!rhs.valid())
        throw std::invalid_argument("let: invalid rhs");
    int idx = static_cast<int>(block_->temps.size());
    block_->temps.push_back(IrTemp{name, rhs.nbits()});

    IrStmt stmt;
    stmt.kind = IrStmt::Kind::Assign;
    stmt.temp = idx;
    stmt.rhs = rhs.node();
    push(stmt);

    IrExprNode ref;
    ref.kind = IrExprNode::Kind::Temp;
    ref.nbits = rhs.nbits();
    ref.temp = idx;
    return IrExpr(std::make_shared<const IrExprNode>(std::move(ref)));
}

void
BlockBuilder::setTemp(const IrExpr &temp, const IrExpr &rhs)
{
    if (!temp.valid() || temp.node()->kind != IrExprNode::Kind::Temp)
        throw std::invalid_argument("setTemp: target is not a temp");
    IrStmt stmt;
    stmt.kind = IrStmt::Kind::Assign;
    stmt.temp = temp.node()->temp;
    stmt.rhs = rhs.node();
    push(stmt);
}

void
BlockBuilder::assign(Signal &target, const IrExpr &rhs)
{
    if (!rhs.valid())
        throw std::invalid_argument("assign: invalid rhs");
    IrStmt stmt;
    stmt.kind = IrStmt::Kind::Assign;
    stmt.sig = &target;
    stmt.nonblocking = block_->sequential;
    stmt.rhs = rhs.nbits() == target.nbits()
                   ? rhs.node()
                   : rhs.zext(target.nbits()).node();
    push(stmt);
}

void
BlockBuilder::assign(Signal &target, uint64_t rhs)
{
    assign(target, lit(target.nbits(), rhs));
}

void
BlockBuilder::assignSlice(Signal &target, int lsb, int width,
                          const IrExpr &rhs)
{
    if (lsb < 0 || width < 1 || lsb + width > target.nbits())
        throw std::out_of_range("assignSlice out of range");
    IrStmt stmt;
    stmt.kind = IrStmt::Kind::Assign;
    stmt.sig = &target;
    stmt.lsb = lsb;
    stmt.width = width;
    stmt.nonblocking = block_->sequential;
    stmt.rhs = rhs.nbits() == width ? rhs.node() : rhs.zext(width).node();
    push(stmt);
}

void
BlockBuilder::writeArray(MemArray &target, const IrExpr &index,
                         const IrExpr &rhs)
{
    if (!block_->sequential)
        throw std::logic_error(
            "writeArray is only legal in sequential (tickRtl) blocks");
    if (!index.valid() || !rhs.valid())
        throw std::invalid_argument("writeArray: invalid operand");
    IrStmt stmt;
    stmt.kind = IrStmt::Kind::AWrite;
    stmt.array = &target;
    stmt.cond = index.node();
    stmt.rhs = rhs.nbits() == target.nbits()
                   ? rhs.node()
                   : rhs.zext(target.nbits()).node();
    push(stmt);
}

void
BlockBuilder::if_(const IrExpr &cond, const std::function<void()> &then_,
                  const std::function<void()> &else_)
{
    if (!cond.valid())
        throw std::invalid_argument("if_: invalid condition");
    IrStmt stmt;
    stmt.kind = IrStmt::Kind::If;
    stmt.cond = cond.node();
    push(stmt);
    IrStmt &placed = current()->back();

    stack_.push_back(&placed.thenBody);
    then_();
    stack_.pop_back();

    if (else_) {
        stack_.push_back(&placed.elseBody);
        else_();
        stack_.pop_back();
    }
}

void
BlockBuilder::ifChain(
    std::initializer_list<std::pair<IrExpr, std::function<void()>>> arms,
    const std::function<void()> &else_)
{
    // Build nested if/else from the arm list, recursively.
    std::vector<std::pair<IrExpr, std::function<void()>>> v(arms);
    std::function<void(size_t)> emit = [&](size_t i) {
        if (i >= v.size()) {
            if (else_)
                else_();
            return;
        }
        if_(v[i].first, v[i].second, [&] { emit(i + 1); });
    };
    emit(0);
}

namespace {

void
collectExpr(const IrExprPtr &e, std::vector<Signal *> &reads)
{
    if (!e)
        return;
    if (e->kind == IrExprNode::Kind::Ref)
        reads.push_back(e->sig);
    for (const auto &arg : e->args)
        collectExpr(arg, reads);
}

void
collectStmts(const std::vector<IrStmt> &stmts, std::vector<Signal *> &reads,
             std::vector<Signal *> &writes)
{
    for (const auto &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign:
            collectExpr(s.rhs, reads);
            if (s.sig) {
                writes.push_back(s.sig);
                // Partial writes also read the previous contents.
                if (s.width >= 0 && !s.nonblocking)
                    reads.push_back(s.sig);
            }
            break;
          case IrStmt::Kind::If:
            collectExpr(s.cond, reads);
            collectStmts(s.thenBody, reads, writes);
            collectStmts(s.elseBody, reads, writes);
            break;
          case IrStmt::Kind::AWrite:
            collectExpr(s.cond, reads); // index
            collectExpr(s.rhs, reads);
            break;
        }
    }
}

void
collectArraysExpr(const IrExprPtr &e, std::vector<MemArray *> &reads)
{
    if (!e)
        return;
    if (e->kind == IrExprNode::Kind::ARead)
        reads.push_back(e->array);
    for (const auto &arg : e->args)
        collectArraysExpr(arg, reads);
}

void
collectArraysStmts(const std::vector<IrStmt> &stmts,
                   std::vector<MemArray *> &reads,
                   std::vector<MemArray *> &writes)
{
    for (const auto &s : stmts) {
        collectArraysExpr(s.rhs, reads);
        collectArraysExpr(s.cond, reads);
        if (s.kind == IrStmt::Kind::AWrite)
            writes.push_back(s.array);
        collectArraysStmts(s.thenBody, reads, writes);
        collectArraysStmts(s.elseBody, reads, writes);
    }
}

void
dedup(std::vector<Signal *> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

const char *
opSymbol(IrOp op)
{
    switch (op) {
      case IrOp::Add: return "+";
      case IrOp::Sub: return "-";
      case IrOp::Mul: return "*";
      case IrOp::And: return "&";
      case IrOp::Or: return "|";
      case IrOp::Xor: return "^";
      case IrOp::Shl: return "<<";
      case IrOp::Shr: return ">>";
      case IrOp::Sra: return ">>>";
      case IrOp::Eq: return "==";
      case IrOp::Ne: return "!=";
      case IrOp::Lt: return "<";
      case IrOp::Le: return "<=";
      case IrOp::Gt: return ">";
      case IrOp::Ge: return ">=";
      case IrOp::LAnd: return "&&";
      case IrOp::LOr: return "||";
    }
    return "?";
}

const char *
unopSymbol(IrUnOp op)
{
    switch (op) {
      case IrUnOp::Inv: return "~";
      case IrUnOp::LNot: return "!";
      case IrUnOp::ReduceOr: return "|";
      case IrUnOp::ReduceAnd: return "&";
      case IrUnOp::ReduceXor: return "^";
    }
    return "?";
}

std::string
exprToString(const IrExprPtr &e)
{
    if (!e)
        return "<null>";
    std::ostringstream os;
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        os << e->cval.toHexString();
        break;
      case IrExprNode::Kind::Ref:
        os << e->sig->fullName();
        break;
      case IrExprNode::Kind::Temp:
        os << "t" << e->temp;
        break;
      case IrExprNode::Kind::BinOp:
        os << "(" << exprToString(e->args[0]) << " " << opSymbol(e->op)
           << " " << exprToString(e->args[1]) << ")";
        break;
      case IrExprNode::Kind::UnOp:
        os << "(" << unopSymbol(e->unop) << exprToString(e->args[0])
           << ")";
        break;
      case IrExprNode::Kind::Slice:
        os << exprToString(e->args[0]) << "[" << (e->lsb + e->nbits - 1)
           << ":" << e->lsb << "]";
        break;
      case IrExprNode::Kind::Concat:
        os << "{";
        for (size_t i = 0; i < e->args.size(); ++i)
            os << (i ? "," : "") << exprToString(e->args[i]);
        os << "}";
        break;
      case IrExprNode::Kind::Mux:
        os << "(" << exprToString(e->args[0]) << " ? "
           << exprToString(e->args[1]) << " : " << exprToString(e->args[2])
           << ")";
        break;
      case IrExprNode::Kind::Zext:
        os << "zext(" << exprToString(e->args[0]) << "," << e->nbits << ")";
        break;
      case IrExprNode::Kind::Sext:
        os << "sext(" << exprToString(e->args[0]) << "," << e->nbits << ")";
        break;
      case IrExprNode::Kind::ARead:
        os << e->array->fullName() << "[" << exprToString(e->args[0])
           << "]";
        break;
    }
    return os.str();
}

void
stmtsToString(const std::vector<IrStmt> &stmts, int indent,
              std::ostringstream &os)
{
    std::string pad(indent, ' ');
    for (const auto &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign:
            os << pad;
            if (s.sig)
                os << s.sig->fullName();
            else
                os << "t" << s.temp;
            if (s.width >= 0)
                os << "[" << (s.lsb + s.width - 1) << ":" << s.lsb << "]";
            os << (s.nonblocking ? " <= " : " = ") << exprToString(s.rhs)
               << "\n";
            break;
          case IrStmt::Kind::If:
            os << pad << "if " << exprToString(s.cond) << ":\n";
            stmtsToString(s.thenBody, indent + 2, os);
            if (!s.elseBody.empty()) {
                os << pad << "else:\n";
                stmtsToString(s.elseBody, indent + 2, os);
            }
            break;
          case IrStmt::Kind::AWrite:
            os << pad << s.array->fullName() << "["
               << exprToString(s.cond) << "] <= " << exprToString(s.rhs)
               << "\n";
            break;
        }
    }
}

} // namespace

void
irCollectAccess(const IrBlock &block, std::vector<Signal *> &reads,
                std::vector<Signal *> &writes)
{
    collectStmts(block.stmts, reads, writes);
    dedup(reads);
    dedup(writes);
}

void
irCollectArrays(const IrBlock &block, std::vector<MemArray *> &reads,
                std::vector<MemArray *> &writes)
{
    collectArraysStmts(block.stmts, reads, writes);
    std::sort(reads.begin(), reads.end());
    reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
    std::sort(writes.begin(), writes.end());
    writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
}

std::string
irExprToString(const IrExprPtr &expr)
{
    return exprToString(expr);
}

std::string
irToString(const IrBlock &block)
{
    std::ostringstream os;
    os << (block.sequential ? "tick_rtl " : "combinational ") << block.name
       << ":\n";
    stmtsToString(block.stmts, 2, os);
    return os.str();
}

} // namespace cmtl
