#include "store.h"

namespace cmtl {

// ------------------------------------------------------------ BoxedStore

BoxedStore::BoxedStore(const Elaboration &elab) : elab_(elab)
{
    for (const Net &net : elab.nets) {
        cur_[net.name] = std::make_shared<Bits>(net.nbits, 0);
        nxt_[net.name] = std::make_shared<Bits>(net.nbits, 0);
    }
    for (const MemArray *array : elab.arrays) {
        arrays_[array->fullName()] = std::vector<Box>(
            array->depth(),
            std::make_shared<Bits>(array->nbits(), 0));
    }
}

Bits
BoxedStore::arrayRead(int array_id, uint64_t index) const
{
    const MemArray *array = elab_.arrays[array_id];
    const auto &vec = arrays_.find(array->fullName())->second;
    return *vec[index & array->indexMask()];
}

void
BoxedStore::arrayWrite(int array_id, uint64_t index, const Bits &value)
{
    const MemArray *array = elab_.arrays[array_id];
    auto &vec = arrays_.find(array->fullName())->second;
    vec[index & array->indexMask()] =
        std::make_shared<Bits>(value.zext(array->nbits()));
}

Bits
BoxedStore::read(int net) const
{
    // Hash lookup of the hierarchical name, then unbox: the cost model
    // of a CPython attribute read.
    return *cur_.find(elab_.nets[net].name)->second;
}

Bits
BoxedStore::readNext(int net) const
{
    return *nxt_.find(elab_.nets[net].name)->second;
}

bool
BoxedStore::write(int net, const Bits &value)
{
    auto it = cur_.find(elab_.nets[net].name);
    Bits truncated = value.zext(elab_.nets[net].nbits);
    if (*it->second == truncated)
        return false;
    // Rebind to a freshly allocated box, like Python object churn.
    it->second = std::make_shared<Bits>(truncated);
    return true;
}

void
BoxedStore::writeNext(int net, const Bits &value)
{
    auto it = nxt_.find(elab_.nets[net].name);
    it->second = std::make_shared<Bits>(value.zext(elab_.nets[net].nbits));
}

bool
BoxedStore::flop(int net)
{
    auto nit = nxt_.find(elab_.nets[net].name);
    auto cit = cur_.find(elab_.nets[net].name);
    if (*cit->second == *nit->second)
        return false;
    cit->second = std::make_shared<Bits>(*nit->second);
    return true;
}

// ------------------------------------------------------------ ArenaStore

ArenaStore::ArenaStore(const Elaboration &elab)
    : ArenaStore(elab, std::make_shared<const ArenaLayout>(
                           ArenaLayout::elabOrder(elab)))
{
}

ArenaStore::ArenaStore(const Elaboration &elab,
                       std::shared_ptr<const ArenaLayout> layout)
    : layout_(std::move(layout))
{
    const int nnets = static_cast<int>(elab.nets.size());
    offset_.resize(nnets);
    shift_.resize(nnets);
    packed_.resize(nnets);
    nwords_.resize(nnets);
    nbits_.resize(nnets);
    mask_.resize(nnets);
    for (int i = 0; i < nnets; ++i) {
        const LayoutSlot &s = layout_->slot(i);
        offset_[i] = s.word_off;
        shift_[i] = s.shift;
        packed_[i] = layout_->packed(i) ? 1 : 0;
        nwords_[i] = s.nwords;
        nbits_[i] = s.nbits;
        mask_[i] = s.mask;
    }
    words_per_phase_ = layout_->wordsPerPhase();

    // Array storage lives past the two net phases.
    for (size_t a = 0; a < elab.arrays.size(); ++a) {
        const MemArray *array = elab.arrays[a];
        array_offset_.push_back(
            layout_->arrayOffset(static_cast<int>(a)));
        array_mask_.push_back(array->indexMask());
        array_vmask_.push_back(topWordMask(array->nbits()));
        array_nbits_.push_back(array->nbits());
    }
    words_.assign(static_cast<size_t>(layout_->totalWords()), 0);
}

Bits
ArenaStore::arrayRead(int array_id, uint64_t index) const
{
    const uint64_t masked = index & array_mask_[array_id];
    return Bits(array_nbits_[array_id],
                words_[array_offset_[array_id] + masked]);
}

void
ArenaStore::arrayWrite(int array_id, uint64_t index, const Bits &value)
{
    const uint64_t masked = index & array_mask_[array_id];
    words_[array_offset_[array_id] + masked] =
        value.toUint64() & array_vmask_[array_id];
}

Bits
ArenaStore::read(int net) const
{
    if (nwords_[net] == 1)
        return Bits(nbits_[net],
                    (words_[offset_[net]] >> shift_[net]) & mask_[net]);
    std::vector<uint64_t> w(words_.begin() + offset_[net],
                            words_.begin() + offset_[net] + nwords_[net]);
    return Bits::fromWords(nbits_[net], w);
}

Bits
ArenaStore::readNext(int net) const
{
    int base = offset_[net] + words_per_phase_;
    if (nwords_[net] == 1)
        return Bits(nbits_[net],
                    (words_[base] >> shift_[net]) & mask_[net]);
    std::vector<uint64_t> w(words_.begin() + base,
                            words_.begin() + base + nwords_[net]);
    return Bits::fromWords(nbits_[net], w);
}

bool
ArenaStore::write(int net, const Bits &value)
{
    int base = offset_[net];
    if (nwords_[net] == 1) {
        // Masked read-modify-write: packed word-mates keep their
        // bits; the change test covers only this net's field.
        uint64_t v = value.word(0) & mask_[net];
        uint64_t &w = words_[base];
        if (((w >> shift_[net]) & mask_[net]) == v)
            return false;
        w = (w & ~(mask_[net] << shift_[net])) | (v << shift_[net]);
        return true;
    }
    bool changed = false;
    for (int i = 0; i < nwords_[net]; ++i) {
        uint64_t w = value.word(i);
        if (i == nwords_[net] - 1)
            w &= mask_[net];
        if (words_[base + i] != w) {
            words_[base + i] = w;
            changed = true;
        }
    }
    return changed;
}

void
ArenaStore::writeNext(int net, const Bits &value)
{
    int base = offset_[net] + words_per_phase_;
    if (nwords_[net] == 1) {
        uint64_t v = value.word(0) & mask_[net];
        uint64_t &w = words_[base];
        w = (w & ~(mask_[net] << shift_[net])) | (v << shift_[net]);
        return;
    }
    for (int i = 0; i < nwords_[net]; ++i) {
        uint64_t w = value.word(i);
        if (i == nwords_[net] - 1)
            w &= mask_[net];
        words_[base + i] = w;
    }
}

bool
ArenaStore::flop(int net)
{
    int cur = offset_[net];
    int nxt = cur + words_per_phase_;
    if (nwords_[net] == 1) {
        // Copy only this net's field: word-mates may not be flopped
        // (dynamically registered flops can live in comb words).
        uint64_t v = (words_[nxt] >> shift_[net]) & mask_[net];
        uint64_t &w = words_[cur];
        if (((w >> shift_[net]) & mask_[net]) == v)
            return false;
        w = (w & ~(mask_[net] << shift_[net])) | (v << shift_[net]);
        return true;
    }
    bool changed = false;
    for (int i = 0; i < nwords_[net]; ++i) {
        if (words_[cur + i] != words_[nxt + i]) {
            words_[cur + i] = words_[nxt + i];
            changed = true;
        }
    }
    return changed;
}

void
ArenaStore::flopRanges(const std::vector<FlopRange> &ranges)
{
    uint64_t *w = words_.data();
    for (const FlopRange &r : ranges) {
        const uint64_t *src = w + r.off + words_per_phase_;
        uint64_t *dst = w + r.off;
        for (int i = 0; i < r.nwords; ++i)
            dst[i] = src[i];
    }
}

} // namespace cmtl
