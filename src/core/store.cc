#include "store.h"

namespace cmtl {

// ------------------------------------------------------------ BoxedStore

BoxedStore::BoxedStore(const Elaboration &elab) : elab_(elab)
{
    for (const Net &net : elab.nets) {
        cur_[net.name] = std::make_shared<Bits>(net.nbits, 0);
        nxt_[net.name] = std::make_shared<Bits>(net.nbits, 0);
    }
    for (const MemArray *array : elab.arrays) {
        arrays_[array->fullName()] = std::vector<Box>(
            array->depth(),
            std::make_shared<Bits>(array->nbits(), 0));
    }
}

Bits
BoxedStore::arrayRead(int array_id, uint64_t index) const
{
    const MemArray *array = elab_.arrays[array_id];
    const auto &vec = arrays_.find(array->fullName())->second;
    return *vec[index & array->indexMask()];
}

void
BoxedStore::arrayWrite(int array_id, uint64_t index, const Bits &value)
{
    const MemArray *array = elab_.arrays[array_id];
    auto &vec = arrays_.find(array->fullName())->second;
    vec[index & array->indexMask()] =
        std::make_shared<Bits>(value.zext(array->nbits()));
}

Bits
BoxedStore::read(int net) const
{
    // Hash lookup of the hierarchical name, then unbox: the cost model
    // of a CPython attribute read.
    return *cur_.find(elab_.nets[net].name)->second;
}

Bits
BoxedStore::readNext(int net) const
{
    return *nxt_.find(elab_.nets[net].name)->second;
}

bool
BoxedStore::write(int net, const Bits &value)
{
    auto it = cur_.find(elab_.nets[net].name);
    Bits truncated = value.zext(elab_.nets[net].nbits);
    if (*it->second == truncated)
        return false;
    // Rebind to a freshly allocated box, like Python object churn.
    it->second = std::make_shared<Bits>(truncated);
    return true;
}

void
BoxedStore::writeNext(int net, const Bits &value)
{
    auto it = nxt_.find(elab_.nets[net].name);
    it->second = std::make_shared<Bits>(value.zext(elab_.nets[net].nbits));
}

bool
BoxedStore::flop(int net)
{
    auto nit = nxt_.find(elab_.nets[net].name);
    auto cit = cur_.find(elab_.nets[net].name);
    if (*cit->second == *nit->second)
        return false;
    cit->second = std::make_shared<Bits>(*nit->second);
    return true;
}

// ------------------------------------------------------------ ArenaStore

ArenaStore::ArenaStore(const Elaboration &elab)
{
    const int nnets = static_cast<int>(elab.nets.size());
    offset_.resize(nnets);
    nwords_.resize(nnets);
    nbits_.resize(nnets);
    mask_.resize(nnets);
    int off = 0;
    for (int i = 0; i < nnets; ++i) {
        const Net &net = elab.nets[i];
        offset_[i] = off;
        nwords_[i] = bitsToWords(net.nbits);
        nbits_[i] = net.nbits;
        mask_[i] = topWordMask(net.nbits);
        off += nwords_[i];
    }
    words_per_phase_ = off;

    // Array storage lives past the two net phases.
    int array_off = off * 2;
    for (const MemArray *array : elab.arrays) {
        array_offset_.push_back(array_off);
        array_mask_.push_back(array->indexMask());
        array_vmask_.push_back(topWordMask(array->nbits()));
        array_nbits_.push_back(array->nbits());
        array_off += array->depth();
    }
    words_.assign(static_cast<size_t>(array_off), 0);
}

Bits
ArenaStore::arrayRead(int array_id, uint64_t index) const
{
    const uint64_t masked = index & array_mask_[array_id];
    return Bits(array_nbits_[array_id],
                words_[array_offset_[array_id] + masked]);
}

void
ArenaStore::arrayWrite(int array_id, uint64_t index, const Bits &value)
{
    const uint64_t masked = index & array_mask_[array_id];
    words_[array_offset_[array_id] + masked] =
        value.toUint64() & array_vmask_[array_id];
}

Bits
ArenaStore::read(int net) const
{
    if (nwords_[net] == 1)
        return Bits(nbits_[net], words_[offset_[net]]);
    std::vector<uint64_t> w(words_.begin() + offset_[net],
                            words_.begin() + offset_[net] + nwords_[net]);
    return Bits::fromWords(nbits_[net], w);
}

Bits
ArenaStore::readNext(int net) const
{
    int base = offset_[net] + words_per_phase_;
    if (nwords_[net] == 1)
        return Bits(nbits_[net], words_[base]);
    std::vector<uint64_t> w(words_.begin() + base,
                            words_.begin() + base + nwords_[net]);
    return Bits::fromWords(nbits_[net], w);
}

bool
ArenaStore::write(int net, const Bits &value)
{
    bool changed = false;
    int base = offset_[net];
    for (int i = 0; i < nwords_[net]; ++i) {
        uint64_t w = value.word(i);
        if (i == nwords_[net] - 1)
            w &= mask_[net];
        if (words_[base + i] != w) {
            words_[base + i] = w;
            changed = true;
        }
    }
    return changed;
}

void
ArenaStore::writeNext(int net, const Bits &value)
{
    int base = offset_[net] + words_per_phase_;
    for (int i = 0; i < nwords_[net]; ++i) {
        uint64_t w = value.word(i);
        if (i == nwords_[net] - 1)
            w &= mask_[net];
        words_[base + i] = w;
    }
}

bool
ArenaStore::flop(int net)
{
    bool changed = false;
    int cur = offset_[net];
    int nxt = cur + words_per_phase_;
    for (int i = 0; i < nwords_[net]; ++i) {
        if (words_[cur + i] != words_[nxt + i]) {
            words_[cur + i] = words_[nxt + i];
            changed = true;
        }
    }
    return changed;
}

} // namespace cmtl
