#include "dataflow.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "ir_eval.h"
#include "signal.h"

namespace cmtl {

namespace {

// ------------------------------------------------- assignment coverage
//
// Per-signal bit coverage accumulated along one control path. Bit
// granularity (not just whole-signal flags) so slice assignments that
// together cover a signal count as a full assignment, matching the
// latch-inference analysis.

struct Coverage
{
    std::map<Signal *, std::vector<uint8_t>> bits;
};

void
markAssign(Coverage &cov, Signal *sig, int lsb, int width)
{
    if (!sig)
        return;
    auto &v = cov.bits[sig];
    if (v.empty())
        v.assign(static_cast<size_t>(sig->nbits()), 0);
    if (width < 0) {
        lsb = 0;
        width = sig->nbits();
    }
    for (int i = lsb; i < lsb + width && i < sig->nbits(); ++i)
        if (i >= 0)
            v[static_cast<size_t>(i)] = 1;
}

/** Path-merge: a bit is covered only when both branches cover it. */
Coverage
intersectCov(const Coverage &a, const Coverage &b)
{
    Coverage out;
    for (const auto &[sig, va] : a.bits) {
        auto it = b.bits.find(sig);
        if (it == b.bits.end())
            continue;
        std::vector<uint8_t> v(va.size(), 0);
        for (size_t i = 0; i < va.size(); ++i)
            v[i] = va[i] && it->second[i];
        out.bits.emplace(sig, std::move(v));
    }
    return out;
}

bool
fullyCovered(const Coverage &cov, const Net &net)
{
    for (Signal *sig : net.signals) {
        auto it = cov.bits.find(sig);
        if (it == cov.bits.end())
            continue;
        bool all = true;
        for (uint8_t b : it->second)
            all = all && b;
        if (all)
            return true;
    }
    return false;
}

// --------------------------------------------- folding under reset=1
//
// Partial evaluator substituting the design's reset net with constant
// 1, used to follow the branch a sequential block takes during
// Simulator::reset(). Shares irEvalBinOp/irEvalUnOp with the
// simulators so folded values match execution bit-for-bit.

std::optional<Bits>
foldUnderReset(const IrExprNode *e, int reset_net)
{
    if (!e)
        return std::nullopt;
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        return e->cval;
      case IrExprNode::Kind::Ref:
        if (e->sig && e->sig->netId() == reset_net)
            return Bits(e->nbits, 1);
        return std::nullopt;
      case IrExprNode::Kind::BinOp: {
        auto a = foldUnderReset(e->args[0].get(), reset_net);
        auto b = foldUnderReset(e->args[1].get(), reset_net);
        // Short-circuit forms dominate reset conditions
        // (e.g. "reset || flush"): one decisive operand suffices.
        if (e->op == IrOp::LAnd) {
            if ((a && !a->any()) || (b && !b->any()))
                return Bits(1, 0);
            if (a && b)
                return Bits(1, 1);
            return std::nullopt;
        }
        if (e->op == IrOp::LOr) {
            if ((a && a->any()) || (b && b->any()))
                return Bits(1, 1);
            if (a && b)
                return Bits(1, 0);
            return std::nullopt;
        }
        if (a && b)
            return irEvalBinOp(e->op, *a, *b, e->nbits);
        return std::nullopt;
      }
      case IrExprNode::Kind::UnOp: {
        auto a = foldUnderReset(e->args[0].get(), reset_net);
        if (a)
            return irEvalUnOp(e->unop, *a);
        return std::nullopt;
      }
      case IrExprNode::Kind::Slice: {
        auto a = foldUnderReset(e->args[0].get(), reset_net);
        if (a && e->lsb >= 0 && e->lsb + e->nbits <= a->nbits())
            return a->slice(e->lsb, e->nbits);
        return std::nullopt;
      }
      case IrExprNode::Kind::Zext: {
        auto a = foldUnderReset(e->args[0].get(), reset_net);
        if (a)
            return a->zext(e->nbits);
        return std::nullopt;
      }
      case IrExprNode::Kind::Sext: {
        auto a = foldUnderReset(e->args[0].get(), reset_net);
        if (a)
            return a->sext(e->nbits);
        return std::nullopt;
      }
      case IrExprNode::Kind::Mux: {
        auto c = foldUnderReset(e->args[0].get(), reset_net);
        if (c)
            return foldUnderReset(e->args[c->any() ? 1 : 2].get(),
                                  reset_net);
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

/**
 * Walk a statement list accumulating assignment coverage. With
 * @p reset_net >= 0 the walk follows only the branch taken under
 * reset=1 when the condition folds (reset-path coverage); otherwise
 * branches merge by intersection (all-paths coverage).
 */
void
walkCoverage(const std::vector<IrStmt> &stmts, Coverage &cov,
             int reset_net)
{
    for (const IrStmt &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign:
            if (s.sig)
                markAssign(cov, s.sig, s.lsb, s.width);
            break;
          case IrStmt::Kind::If: {
            if (reset_net >= 0) {
                if (auto c = foldUnderReset(s.cond.get(), reset_net)) {
                    walkCoverage(c->any() ? s.thenBody : s.elseBody,
                                 cov, reset_net);
                    break;
                }
            }
            Coverage then_cov = cov;
            Coverage else_cov = cov;
            walkCoverage(s.thenBody, then_cov, reset_net);
            walkCoverage(s.elseBody, else_cov, reset_net);
            cov = intersectCov(then_cov, else_cov);
            break;
          }
          case IrStmt::Kind::AWrite:
            break;
        }
    }
}

} // namespace

// ------------------------------------------------------------ liveness

std::vector<int>
DataflowResult::deadCombBlocks() const
{
    std::vector<int> out;
    for (size_t b = 0; b < liveBlock.size(); ++b)
        if (!liveBlock[b])
            out.push_back(static_cast<int>(b));
    return out;
}

DataflowResult
dataflowAnalyze(const Elaboration &elab, const DataflowOptions &opts)
{
    DataflowResult r;
    const int nnets = static_cast<int>(elab.nets.size());
    const int narrays = static_cast<int>(elab.arrays.size());
    const int ntokens = nnets + narrays;
    const int nblocks = static_cast<int>(elab.blocks.size());

    r.liveNet.assign(static_cast<size_t>(nnets), 0);
    r.liveArray.assign(static_cast<size_t>(narrays), 0);
    r.liveBlock.assign(static_cast<size_t>(nblocks), 0);
    r.definedNet.assign(static_cast<size_t>(nnets), 0);
    r.xKind.assign(static_cast<size_t>(nnets), XCauseKind::Defined);
    r.xCause.assign(static_cast<size_t>(nnets), -1);
    r.netHasWriter.assign(static_cast<size_t>(nnets), 0);
    r.netHasReader.assign(static_cast<size_t>(nnets), 0);

    // token -> writing block indices (driver->reader graph edges).
    std::vector<std::vector<int>> writers(static_cast<size_t>(ntokens));
    for (int b = 0; b < nblocks; ++b) {
        for (int t : elab.blocks[static_cast<size_t>(b)].writes) {
            if (t >= 0 && t < ntokens)
                writers[static_cast<size_t>(t)].push_back(b);
            if (t >= 0 && t < nnets)
                r.netHasWriter[static_cast<size_t>(t)] = 1;
        }
        for (int t : elab.blocks[static_cast<size_t>(b)].reads)
            if (t >= 0 && t < nnets)
                r.netHasReader[static_cast<size_t>(t)] = 1;
    }

    // Observed models: the top model (test benches drive and read it
    // directly) and every model owning a host lambda block, whose
    // access is undeclared or only partially declared.
    std::set<const Model *> observed;
    observed.insert(elab.top);
    for (const ElabBlock &blk : elab.blocks) {
        if (blk.kind == BlockKind::TickFl ||
            blk.kind == BlockKind::TickCl ||
            blk.kind == BlockKind::CombLambda)
            observed.insert(blk.model);
    }

    std::deque<int> queue;
    std::vector<char> live(static_cast<size_t>(ntokens), 0);
    auto markLive = [&](int t) {
        if (t >= 0 && t < ntokens && !live[static_cast<size_t>(t)]) {
            live[static_cast<size_t>(t)] = 1;
            queue.push_back(t);
        }
    };

    for (const Net &net : elab.nets) {
        if (opts.observe_all) {
            markLive(net.id);
            continue;
        }
        for (const Signal *sig : net.signals) {
            if (observed.count(sig->owner())) {
                markLive(net.id);
                break;
            }
        }
    }
    for (int a = 0; a < narrays; ++a) {
        if (opts.observe_all ||
            observed.count(elab.arrays[static_cast<size_t>(a)]->owner()))
            markLive(elab.arrayToken(a));
    }
    for (int t : opts.extra_sinks)
        markLive(t);

    // Blocks that always execute: everything except eliminable IR comb
    // blocks. Their reads are observed demands.
    for (int b = 0; b < nblocks; ++b) {
        const ElabBlock &blk = elab.blocks[static_cast<size_t>(b)];
        if (blk.kind == BlockKind::CombIr)
            continue;
        r.liveBlock[static_cast<size_t>(b)] = 1;
        for (int t : blk.reads)
            markLive(t);
    }

    // Backward fixpoint: a live token resurrects its eliminable
    // writers, whose demands become live in turn.
    while (!queue.empty()) {
        int t = queue.front();
        queue.pop_front();
        for (int b : writers[static_cast<size_t>(t)]) {
            if (r.liveBlock[static_cast<size_t>(b)])
                continue;
            r.liveBlock[static_cast<size_t>(b)] = 1;
            for (int rt : elab.blocks[static_cast<size_t>(b)].reads)
                markLive(rt);
        }
    }

    for (int t = 0; t < nnets; ++t)
        r.liveNet[static_cast<size_t>(t)] = live[static_cast<size_t>(t)];
    for (int a = 0; a < narrays; ++a)
        r.liveArray[static_cast<size_t>(a)] =
            live[static_cast<size_t>(elab.arrayToken(a))];

    for (int t = 0; t < nnets; ++t)
        if (!r.liveNet[static_cast<size_t>(t)] &&
            r.netHasWriter[static_cast<size_t>(t)] &&
            r.netHasReader[static_cast<size_t>(t)])
            ++r.deadNets;
    for (int b = 0; b < nblocks; ++b)
        if (!r.liveBlock[static_cast<size_t>(b)])
            ++r.deadBlocks;

    // -------------------------------------------------- X-propagation
    //
    // Forward reaching-definitions. Candidates are nets with at least
    // one declared driver; everything else belongs to the host/test-
    // bench domain (undriven-net covers the truly dangling ones) and
    // counts as defined. Reset-path coverage is computed by folding
    // if-conditions under reset=1.

    const int reset_net =
        elab.top ? elab.top->reset.netId() : -1;

    struct DriverCov
    {
        int block;
        bool seq;
        bool lambda;
        bool full_all = false;
        bool full_reset = false;
    };
    std::vector<std::vector<DriverCov>> drivers(
        static_cast<size_t>(nnets));

    for (int b = 0; b < nblocks; ++b) {
        const ElabBlock &blk = elab.blocks[static_cast<size_t>(b)];
        const bool is_ir = blk.kind == BlockKind::CombIr ||
                           blk.kind == BlockKind::TickIr;
        const bool is_lambda = blk.kind == BlockKind::CombLambda;
        if (!is_ir && !is_lambda)
            continue; // TickFl/TickCl: undeclared writes, no candidates
        Coverage all_cov, reset_cov;
        if (is_ir && blk.ir) {
            walkCoverage(blk.ir->stmts, all_cov, /*reset_net=*/-1);
            walkCoverage(blk.ir->stmts, reset_cov, reset_net);
        }
        for (int t : blk.writes) {
            if (t < 0 || t >= nnets)
                continue;
            DriverCov d;
            d.block = b;
            d.seq = isTick(blk.kind);
            d.lambda = is_lambda;
            if (is_ir) {
                const Net &net = elab.nets[static_cast<size_t>(t)];
                d.full_all = fullyCovered(all_cov, net);
                d.full_reset = fullyCovered(reset_cov, net);
            }
            drivers[static_cast<size_t>(t)].push_back(d);
        }
    }

    // The implicit reset input itself is driven by Simulator::reset().
    auto initiallyDefined = [&](int t) {
        if (t == reset_net)
            return true;
        return drivers[static_cast<size_t>(t)].empty();
    };
    for (int t = 0; t < nnets; ++t)
        if (initiallyDefined(t))
            r.definedNet[static_cast<size_t>(t)] = 1;

    auto firstUndefinedRead = [&](int b) {
        for (int t : elab.blocks[static_cast<size_t>(b)].reads)
            if (t >= 0 && t < nnets && t != reset_net &&
                !r.definedNet[static_cast<size_t>(t)])
                return t;
        return -1;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int t = 0; t < nnets; ++t) {
            if (r.definedNet[static_cast<size_t>(t)])
                continue;
            for (const DriverCov &d : drivers[static_cast<size_t>(t)]) {
                bool ok = false;
                if (d.lambda) {
                    // Contract: a comb lambda fully assigns its
                    // declared writes each settling round.
                    ok = firstUndefinedRead(d.block) < 0;
                } else if (d.seq) {
                    ok = d.full_reset ||
                         (d.full_all && firstUndefinedRead(d.block) < 0);
                } else {
                    ok = d.full_all && firstUndefinedRead(d.block) < 0;
                }
                if (ok) {
                    r.definedNet[static_cast<size_t>(t)] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Root causes for the witness chains.
    for (int t = 0; t < nnets; ++t) {
        if (r.definedNet[static_cast<size_t>(t)])
            continue;
        const auto &ds = drivers[static_cast<size_t>(t)];
        if (ds.empty()) {
            r.xKind[static_cast<size_t>(t)] = XCauseKind::NoDriver;
            continue;
        }
        const DriverCov &d = ds.front();
        if (d.seq && !d.full_reset && !d.full_all) {
            r.xKind[static_cast<size_t>(t)] = XCauseKind::NoReset;
        } else if (!d.seq && !d.lambda && !d.full_all) {
            r.xKind[static_cast<size_t>(t)] = XCauseKind::PartialAssign;
        } else {
            r.xKind[static_cast<size_t>(t)] = XCauseKind::Upstream;
            r.xCause[static_cast<size_t>(t)] =
                firstUndefinedRead(d.block);
        }
    }

    return r;
}

// ------------------------------------------------------------ findings

std::string
dataflowWitness(const Elaboration &elab, const DataflowResult &result,
                int net)
{
    const int nnets = static_cast<int>(elab.nets.size());
    if (net < 0 || net >= nnets ||
        result.definedNet[static_cast<size_t>(net)])
        return "";
    std::string out;
    std::set<int> visited;
    int t = net;
    int hops = 0;
    while (t >= 0 && visited.insert(t).second && hops++ < 8) {
        if (!out.empty())
            out += " <- ";
        out += elab.nets[static_cast<size_t>(t)].name;
        XCauseKind k = result.xKind[static_cast<size_t>(t)];
        if (k != XCauseKind::Upstream) {
            switch (k) {
              case XCauseKind::NoReset:
                out += " (flopped without reset-path or full "
                       "assignment)";
                break;
              case XCauseKind::PartialAssign:
                out += " (combinational driver misses it on some "
                       "path)";
                break;
              case XCauseKind::NoDriver:
                out += " (no driver)";
                break;
              default:
                break;
            }
            return out;
        }
        t = result.xCause[static_cast<size_t>(t)];
    }
    out += " <- ...";
    return out;
}

std::vector<LintIssue>
dataflowLint(const Elaboration &elab, const DataflowResult &result,
             const AnalyzeOptions &options)
{
    std::vector<LintIssue> issues;
    for (const Net &net : elab.nets) {
        const size_t i = static_cast<size_t>(net.id);
        if (!result.liveNet[i] && result.netHasWriter[i] &&
            result.netHasReader[i]) {
            options.emit(issues, LintSeverity::Warning, "dead-net",
                         lintNetPath(net),
                         lintNetLocation(net) +
                             " is computed and read but cannot "
                             "influence any observed sink");
        }
    }
    for (size_t b = 0; b < elab.blocks.size(); ++b) {
        if (result.liveBlock[b])
            continue;
        const ElabBlock &blk = elab.blocks[b];
        options.emit(issues, LintSeverity::Warning, "dead-block",
                     blk.name,
                     "combinational block '" + blk.name +
                         "' drives only dead nets; dead-logic "
                         "elimination skips it");
    }
    // Only root causes become findings — fixing the root (add a reset,
    // complete the paths) clears the whole tainted cone, which stays
    // queryable through DataflowResult/dataflowWitness.
    for (const Net &net : elab.nets) {
        const size_t i = static_cast<size_t>(net.id);
        if (result.definedNet[i] || !result.netHasWriter[i] ||
            !result.netHasReader[i])
            continue;
        if (result.xKind[i] != XCauseKind::NoReset &&
            result.xKind[i] != XCauseKind::PartialAssign)
            continue;
        options.emit(issues, LintSeverity::Warning,
                     "maybe-uninitialized", lintNetPath(net),
                     lintNetLocation(net) +
                         " may be read before any driver or reset "
                         "assigns it; witness: " +
                         dataflowWitness(elab, result, net.id));
    }
    return issues;
}

} // namespace cmtl
