#include "ir_cpp.h"

#include <sstream>
#include <stdexcept>

#include "analyze.h"

namespace cmtl {

namespace {

std::string
maskHex(int nbits)
{
    uint64_t mask =
        nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
    std::ostringstream os;
    os << "0x" << std::hex << mask << "ull";
    return os.str();
}

/** Emits the body of one block. */
class BlockEmitter
{
  public:
    /** @p array_alias (optional, indexed by array id): arrays bound
     *  to a typed local `aN` pointer by the enclosing entry point. */
    BlockEmitter(const ElabBlock &blk, const ArenaStore &store,
                 std::ostringstream &os,
                 const std::vector<char> *array_alias = nullptr)
        : blk_(blk), store_(store), os_(os), array_alias_(array_alias)
    {}

    void
    run(int indent)
    {
        for (size_t i = 0; i < blk_.ir->temps.size(); ++i) {
            pad(indent);
            os_ << "uint64_t t" << i << " = 0; (void)t" << i << ";\n";
        }
        emitStmts(blk_.ir->stmts, indent);
    }

  private:
    void
    pad(int indent)
    {
        os_ << std::string(indent, ' ');
    }

    std::string
    cur(int net) const
    {
        return "w[" + std::to_string(store_.offset(net)) + "]";
    }

    std::string
    nxt(int net) const
    {
        return "w[" +
               std::to_string(store_.offset(net) + store_.wordsPerPhase()) +
               "]";
    }

    /** Rvalue of a net's current value (field extract when packed). */
    std::string
    curRead(int net) const
    {
        if (!store_.packed(net))
            return cur(net);
        std::string out = "((" + cur(net);
        if (store_.shift(net))
            out += " >> " + std::to_string(store_.shift(net));
        return out + ") & " + maskHex(store_.nbits(net)) + ")";
    }

    /**
     * Emit "<dst> = <rhs>;" with the field insert semantics the
     * layout demands: plain masked store for exclusive words,
     * read-modify-write for packed or partial-width destinations.
     * @p lsb/@p width describe a partial assign (width < 0 = full).
     */
    void
    emitAssign(const std::string &dst, int net, int lsb, int width,
               const std::string &rhs)
    {
        int shift = store_.shift(net);
        if (width < 0 && !store_.packed(net)) {
            os_ << dst << " = " << rhs << " & "
                << maskHex(store_.nbits(net)) << ";\n";
            return;
        }
        std::string m =
            width < 0 ? maskHex(store_.nbits(net)) : maskHex(width);
        int pos = width < 0 ? shift : shift + lsb;
        os_ << dst << " = (" << dst << " & ~(" << m << " << " << pos
            << ")) | ((" << rhs << " & " << m << ") << " << pos
            << ");\n";
    }

    /** Open-bracketed base of an array element access. */
    std::string
    arrayBase(int id) const
    {
        if (array_alias_ && (*array_alias_)[id])
            return "a" + std::to_string(id) + "[";
        return "w[" + std::to_string(store_.arrayOffset(id)) + " + ";
    }

    std::string
    expr(const IrExprNode *e)
    {
        // Collapse whole constant subtrees (the analyzer's folder
        // shares exact simulation semantics, so the emitted literal
        // matches what the interpreted backends compute).
        if (e->kind != IrExprNode::Kind::Const && e->nbits <= 64) {
            if (auto folded = irConstFold(e)) {
                std::ostringstream os;
                os << "0x" << std::hex << folded->toUint64() << "ull";
                return os.str();
            }
        }
        switch (e->kind) {
          case IrExprNode::Kind::Const: {
            std::ostringstream os;
            os << "0x" << std::hex << e->cval.toUint64() << "ull";
            return os.str();
          }
          case IrExprNode::Kind::Ref:
            return curRead(e->sig->netId());
          case IrExprNode::Kind::Temp:
            return "t" + std::to_string(e->temp);
          case IrExprNode::Kind::BinOp: {
            std::string a = expr(e->args[0].get());
            std::string b = expr(e->args[1].get());
            std::string m = maskHex(e->nbits);
            switch (e->op) {
              case IrOp::Add: return "((" + a + " + " + b + ") & " + m + ")";
              case IrOp::Sub: return "((" + a + " - " + b + ") & " + m + ")";
              case IrOp::Mul: return "((" + a + " * " + b + ") & " + m + ")";
              case IrOp::And: return "(" + a + " & " + b + ")";
              case IrOp::Or: return "(" + a + " | " + b + ")";
              case IrOp::Xor: return "(" + a + " ^ " + b + ")";
              case IrOp::Shl:
                return "(cmtl_shl(" + a + ", " + b + ") & " + m + ")";
              case IrOp::Shr:
                return "cmtl_shr(" + a + ", " + b + ")";
              case IrOp::Sra:
                return "(cmtl_sra(" + a + ", " +
                       std::to_string(e->args[0]->nbits) + ", " + b +
                       ") & " + m + ")";
              case IrOp::Eq: return "uint64_t(" + a + " == " + b + ")";
              case IrOp::Ne: return "uint64_t(" + a + " != " + b + ")";
              case IrOp::Lt: return "uint64_t(" + a + " < " + b + ")";
              case IrOp::Le: return "uint64_t(" + a + " <= " + b + ")";
              case IrOp::Gt: return "uint64_t(" + a + " > " + b + ")";
              case IrOp::Ge: return "uint64_t(" + a + " >= " + b + ")";
              case IrOp::LAnd:
                return "uint64_t((" + a + " != 0) && (" + b + " != 0))";
              case IrOp::LOr:
                return "uint64_t((" + a + " != 0) || (" + b + " != 0))";
            }
            throw std::logic_error("unhandled binop");
          }
          case IrExprNode::Kind::UnOp: {
            std::string a = expr(e->args[0].get());
            switch (e->unop) {
              case IrUnOp::Inv:
                return "(~" + a + " & " + maskHex(e->nbits) + ")";
              case IrUnOp::LNot:
                return "uint64_t(" + a + " == 0)";
              case IrUnOp::ReduceOr:
                return "uint64_t(" + a + " != 0)";
              case IrUnOp::ReduceAnd:
                return "uint64_t(" + a +
                       " == " + maskHex(e->args[0]->nbits) + ")";
              case IrUnOp::ReduceXor:
                return "(uint64_t)(__builtin_popcountll(" + a + ") & 1)";
            }
            throw std::logic_error("unhandled unop");
          }
          case IrExprNode::Kind::Slice:
            return "((" + expr(e->args[0].get()) + " >> " +
                   std::to_string(e->lsb) + ") & " + maskHex(e->nbits) +
                   ")";
          case IrExprNode::Kind::Concat: {
            // Most-significant part first.
            std::string out;
            int pos = e->nbits;
            for (const auto &argp : e->args) {
                pos -= argp->nbits;
                std::string part = "(" + expr(argp.get()) + " << " +
                                   std::to_string(pos) + ")";
                if (pos == 0)
                    part = expr(argp.get());
                out = out.empty() ? part : "(" + out + " | " + part + ")";
            }
            return out;
          }
          case IrExprNode::Kind::Mux:
            return "((" + expr(e->args[0].get()) + ") ? uint64_t(" +
                   expr(e->args[1].get()) + ") : uint64_t(" +
                   expr(e->args[2].get()) + "))";
          case IrExprNode::Kind::Zext:
            return expr(e->args[0].get());
          case IrExprNode::Kind::Sext:
            return "(cmtl_sext(" + expr(e->args[0].get()) + ", " +
                   std::to_string(e->args[0]->nbits) + ") & " +
                   maskHex(e->nbits) + ")";
          case IrExprNode::Kind::ARead: {
            int id = e->array->arrayId();
            return arrayBase(id) + "((" + expr(e->args[0].get()) +
                   ") & " + std::to_string(store_.arrayIndexMask(id)) +
                   "ull)]";
          }
        }
        throw std::logic_error("unhandled expr kind");
    }

    void
    emitStmts(const std::vector<IrStmt> &stmts, int indent)
    {
        bool seq = blk_.ir->sequential;
        for (const IrStmt &s : stmts) {
            switch (s.kind) {
              case IrStmt::Kind::Assign: {
                pad(indent);
                if (s.temp >= 0 && !s.sig) {
                    os_ << "t" << s.temp << " = " << expr(s.rhs.get())
                        << ";\n";
                    break;
                }
                int net = s.sig->netId();
                std::string dst =
                    (seq && s.nonblocking) ? nxt(net) : cur(net);
                emitAssign(dst, net, s.lsb, s.width, expr(s.rhs.get()));
                break;
              }
              case IrStmt::Kind::If:
                pad(indent);
                os_ << "if (" << expr(s.cond.get()) << ") {\n";
                emitStmts(s.thenBody, indent + 4);
                if (!s.elseBody.empty()) {
                    pad(indent);
                    os_ << "} else {\n";
                    emitStmts(s.elseBody, indent + 4);
                }
                pad(indent);
                os_ << "}\n";
                break;
              case IrStmt::Kind::AWrite: {
                pad(indent);
                int id = s.array->arrayId();
                os_ << arrayBase(id) << "((" << expr(s.cond.get())
                    << ") & " << store_.arrayIndexMask(id)
                    << "ull)] = " << expr(s.rhs.get()) << " & "
                    << maskHex(s.array->nbits()) << ";\n";
                break;
              }
            }
        }
    }

    const ElabBlock &blk_;
    const ArenaStore &store_;
    std::ostringstream &os_;
    const std::vector<char> *array_alias_;
};

/** The shared translation-unit header (helpers used by both modes). */
void
emitPrelude(std::ostringstream &os, const Elaboration &elab)
{
    os << "// Generated by CMTL SimJIT-C++ specializer.\n"
       << "// Design: " << elab.top->fullName() << "\n"
       << "#include <cstdint>\n\n"
       << "static inline uint64_t cmtl_shl(uint64_t a, uint64_t n)\n"
       << "{ return n >= 64 ? 0 : a << n; }\n"
       << "static inline uint64_t cmtl_shr(uint64_t a, uint64_t n)\n"
       << "{ return n >= 64 ? 0 : a >> n; }\n"
       << "static inline uint64_t cmtl_sra(uint64_t a, int nb, uint64_t n)\n"
       << "{ int64_t v = (int64_t)(a << (64 - nb)) >> (64 - nb);\n"
       << "  return (uint64_t)(v >> (n > 63 ? 63 : (int)n)); }\n"
       << "static inline uint64_t cmtl_sext(uint64_t a, int nb)\n"
       << "{ return (uint64_t)((int64_t)(a << (64 - nb)) >> (64 - nb)); }\n"
       << "\n";
}

} // namespace

std::string
cppGroupSymbol(int k)
{
    return "cmtl_grp_" + std::to_string(k);
}

std::string
cppEmitProgram(const Elaboration &elab, const ArenaStore &store,
               const std::vector<std::vector<int>> &groups)
{
    std::ostringstream os;
    emitPrelude(os, elab);

    for (size_t k = 0; k < groups.size(); ++k) {
        os << "extern \"C\" void " << cppGroupSymbol(static_cast<int>(k))
           << "(uint64_t *w)\n{\n";
        for (int blk_idx : groups[k]) {
            const ElabBlock &blk = elab.blocks[blk_idx];
            os << "    { // " << blk.name << "\n";
            std::ostringstream body;
            BlockEmitter(blk, store, body).run(8);
            os << body.str() << "    }\n";
        }
        os << "}\n\n";
    }
    return os.str();
}

std::string
cppEmitProgram(const Elaboration &elab, const ArenaStore &store,
               const std::vector<CppUnit> &units)
{
    std::ostringstream os;
    emitPrelude(os, elab);

    const int nnets = static_cast<int>(elab.nets.size());
    for (size_t k = 0; k < units.size(); ++k) {
        os << "extern \"C\" void " << cppGroupSymbol(static_cast<int>(k))
           << "(uint64_t *w)\n{\n";

        // Bind every memory array this unit touches to a typed local
        // alias; the compiler then treats each array as a distinct C
        // array instead of re-deriving offsets into one giant buffer.
        std::vector<char> alias(elab.arrays.size(), 0);
        for (const CppUnit::Item &item : units[k].items) {
            if (item.block < 0)
                continue;
            const ElabBlock &blk = elab.blocks[item.block];
            for (int tok : blk.reads) {
                if (tok >= nnets)
                    alias[tok - nnets] = 1;
            }
            for (int tok : blk.writes) {
                if (tok >= nnets)
                    alias[tok - nnets] = 1;
            }
        }
        for (size_t id = 0; id < alias.size(); ++id) {
            if (!alias[id])
                continue;
            os << "    uint64_t *const a" << id << " = w + "
               << store.arrayOffset(static_cast<int>(id)) << "; // "
               << elab.arrays[id]->depth() << "x"
               << elab.arrays[id]->nbits() << "b\n";
        }

        for (const CppUnit::Item &item : units[k].items) {
            if (item.block >= 0) {
                const ElabBlock &blk = elab.blocks[item.block];
                os << "    { // " << blk.name << "\n";
                std::ostringstream body;
                BlockEmitter(blk, store, body, &alias).run(8);
                os << body.str() << "    }\n";
            } else if (item.flopNet >= 0) {
                // next -> current register copy. Packed nets copy
                // only their field: word-mates may be combinational
                // (dynamically registered flops) or flop separately.
                int net = item.flopNet;
                int cur = store.offset(net);
                int nxt = cur + store.wordsPerPhase();
                if (store.packed(net)) {
                    std::string m = maskHex(store.nbits(net));
                    int sh = store.shift(net);
                    os << "    w[" << cur << "] = (w[" << cur
                       << "] & ~(" << m << " << " << sh << ")) | (w["
                       << nxt << "] & (" << m << " << " << sh
                       << "));\n";
                } else {
                    for (int wd = 0; wd < store.nwords(net); ++wd) {
                        os << "    w[" << cur + wd << "] = w["
                           << nxt + wd << "];\n";
                    }
                }
            } else {
                // Coalesced flop range: straight word copies, long
                // runs as a loop the compiler turns into memmove.
                int cur = item.rangeOff;
                int nxt = cur + store.wordsPerPhase();
                if (item.rangeWords <= 4) {
                    for (int wd = 0; wd < item.rangeWords; ++wd) {
                        os << "    w[" << cur + wd << "] = w["
                           << nxt + wd << "];\n";
                    }
                } else {
                    os << "    for (int i = 0; i < " << item.rangeWords
                       << "; ++i) w[" << cur << " + i] = w[" << nxt
                       << " + i];\n";
                }
            }
        }
        os << "}\n\n";
    }
    return os.str();
}

} // namespace cmtl
