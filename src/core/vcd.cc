#include "vcd.h"

#include <sstream>
#include <stdexcept>

namespace cmtl {

VcdWriter::VcdWriter(Simulator &sim, const std::string &path)
    : sim_(sim), out_(path)
{
    if (!out_)
        throw std::runtime_error("VcdWriter: cannot open " + path);
    writeHeader();
    last_.assign(sim_.elaboration().nets.size(), Bits());
    dumpInitial();
    sim_.onCycleEnd([this](uint64_t cycle) { dump(cycle); });
}

VcdWriter::~VcdWriter()
{
    close();
}

void
VcdWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    closed_ = true;
}

std::string
VcdWriter::idCode(int index)
{
    // Printable-ASCII base-94 identifier codes.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return code;
}

void
VcdWriter::writeHeader()
{
    out_ << "$date today $end\n"
         << "$version CMTL VcdWriter $end\n"
         << "$timescale 1ns $end\n";
    writeScope(sim_.elaboration().top, 0);
    out_ << "$enddefinitions $end\n";
}

void
VcdWriter::writeScope(const Model *model, int depth)
{
    std::string pad(static_cast<size_t>(depth) * 2, ' ');
    out_ << pad << "$scope module " << model->instName() << " $end\n";
    for (const Signal *sig : model->ownSignals()) {
        out_ << pad << "  $var wire " << sig->nbits() << " "
             << idCode(sig->netId()) << " " << sig->name() << " $end\n";
    }
    for (const Model *child : model->children())
        writeScope(child, depth + 1);
    out_ << pad << "$upscope $end\n";
}

void
VcdWriter::emitValue(std::ostream &os, const Net &net, const Bits &value)
{
    if (net.nbits == 1) {
        os << (value.any() ? "1" : "0") << idCode(net.id) << "\n";
    } else {
        // Binary value without the "0b" prefix.
        os << "b" << value.toBinString().substr(2) << " " << idCode(net.id)
           << "\n";
    }
}

void
VcdWriter::dumpInitial()
{
    // The VCD spec wants an initial-value section so viewers know
    // every variable's value before the first change. Anchoring it at
    // the simulator's current time (zero for a fresh run) lets a
    // writer attached to a snapshot-restored simulator produce a tail
    // that continues the original waveform byte-for-byte.
    out_ << "#" << sim_.numCycles() * 10 << "\n$dumpvars\n";
    for (const Net &net : sim_.elaboration().nets) {
        Bits value = sim_.readNet(net.id);
        last_[net.id] = value;
        emitValue(out_, net, value);
    }
    out_ << "$end\n";
}

void
VcdWriter::dump(uint64_t cycle)
{
    const Elaboration &elab = sim_.elaboration();
    // Buffer the changes: a timestamp with no value changes under it
    // is noise (and bloats long idle stretches), so emit the #time
    // line only when at least one net actually changed.
    std::ostringstream changes;
    for (const Net &net : elab.nets) {
        Bits value = sim_.readNet(net.id);
        if (value == last_[net.id])
            continue;
        last_[net.id] = value;
        emitValue(changes, net, value);
    }
    std::string body = changes.str();
    if (!body.empty())
        out_ << "#" << cycle * 10 << "\n" << body;
}

} // namespace cmtl
