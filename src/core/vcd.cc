#include "vcd.h"

#include <stdexcept>

namespace cmtl {

VcdWriter::VcdWriter(Simulator &sim, const std::string &path)
    : sim_(sim), out_(path)
{
    if (!out_)
        throw std::runtime_error("VcdWriter: cannot open " + path);
    writeHeader();
    last_.assign(sim_.elaboration().nets.size(), Bits());
    sim_.onCycleEnd([this](uint64_t cycle) { dump(cycle); });
}

VcdWriter::~VcdWriter()
{
    close();
}

void
VcdWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    closed_ = true;
}

std::string
VcdWriter::idCode(int index)
{
    // Printable-ASCII base-94 identifier codes.
    std::string code;
    do {
        code += static_cast<char>('!' + index % 94);
        index /= 94;
    } while (index > 0);
    return code;
}

void
VcdWriter::writeHeader()
{
    out_ << "$date today $end\n"
         << "$version CMTL VcdWriter $end\n"
         << "$timescale 1ns $end\n";
    writeScope(sim_.elaboration().top, 0);
    out_ << "$enddefinitions $end\n";
}

void
VcdWriter::writeScope(const Model *model, int depth)
{
    std::string pad(static_cast<size_t>(depth) * 2, ' ');
    out_ << pad << "$scope module " << model->instName() << " $end\n";
    for (const Signal *sig : model->ownSignals()) {
        out_ << pad << "  $var wire " << sig->nbits() << " "
             << idCode(sig->netId()) << " " << sig->name() << " $end\n";
    }
    for (const Model *child : model->children())
        writeScope(child, depth + 1);
    out_ << pad << "$upscope $end\n";
}

void
VcdWriter::dump(uint64_t cycle)
{
    const Elaboration &elab = sim_.elaboration();
    out_ << "#" << cycle * 10 << "\n";
    for (const Net &net : elab.nets) {
        Bits value = sim_.readNet(net.id);
        if (!first_ && value == last_[net.id])
            continue;
        last_[net.id] = value;
        if (net.nbits == 1) {
            out_ << (value.any() ? "1" : "0") << idCode(net.id) << "\n";
        } else {
            // Binary value without the "0b" prefix.
            out_ << "b" << value.toBinString().substr(2) << " "
                 << idCode(net.id) << "\n";
        }
    }
    first_ = false;
}

} // namespace cmtl
