#include "accessor.h"

namespace cmtl {

void
NetAccessor::bind(ArenaStore *arena, BoxedStore *boxed,
                  std::function<bool(int)> in_arena)
{
    arena_ = arena;
    boxed_ = boxed;
    in_arena_ = std::move(in_arena);
    replicas_ = nullptr;
    owner_of_ = nullptr;
}

void
NetAccessor::bindReplicas(
    std::vector<std::unique_ptr<ArenaStore>> *replicas,
    const std::vector<int> *owner_of)
{
    replicas_ = replicas;
    owner_of_ = owner_of;
    arena_ = nullptr;
    boxed_ = nullptr;
    in_arena_ = nullptr;
}

void
NetAccessor::onPokeChanged(std::function<void(int)> fn)
{
    on_changed_ = std::move(fn);
}

Bits
NetAccessor::readNetNext(int net) const
{
    if (replicas_) {
        int owner = (*owner_of_)[net];
        return (*replicas_)[owner >= 0 ? owner : 0]->readNext(net);
    }
    return in_arena_(net) ? arena_->readNext(net)
                          : boxed_->readNext(net);
}

void
NetAccessor::pokeNet(int net, const Bits &value)
{
    bool changed;
    if (replicas_) {
        // Keep every replica coherent so any reader island sees the
        // restored value next phase; change detection runs against the
        // owner's (authoritative) copy.
        int owner = (*owner_of_)[net];
        changed = (*replicas_)[owner >= 0 ? owner : 0]->write(net, value);
        for (auto &replica : *replicas_)
            replica->write(net, value);
    } else {
        changed = in_arena_(net) ? arena_->write(net, value)
                                 : boxed_->write(net, value);
    }
    if (changed && on_changed_)
        on_changed_(net);
}

void
NetAccessor::pokeNetNext(int net, const Bits &value)
{
    if (replicas_) {
        for (auto &replica : *replicas_)
            replica->writeNext(net, value);
        return;
    }
    if (in_arena_(net))
        arena_->writeNext(net, value);
    else
        boxed_->writeNext(net, value);
}

std::vector<int>
NetAccessor::dynamicFlops(const Elaboration &elab,
                          const std::vector<int> &flop_nets)
{
    std::vector<int> out;
    for (int net : flop_nets)
        if (!elab.nets[net].floppedStatic)
            out.push_back(net);
    return out;
}

} // namespace cmtl
