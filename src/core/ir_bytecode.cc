#include "ir_bytecode.h"

#include <bit>
#include <stdexcept>

namespace cmtl {

namespace {

uint64_t
widthMask(int nbits)
{
    return nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
}

bool
exprSpecializable(const IrExprNode *e, const ArenaStore &store)
{
    if (e->nbits > 64)
        return false;
    // ARead indexes are computed values; always representable.
    if (e->kind == IrExprNode::Kind::Ref &&
        !store.narrow(e->sig->netId()))
        return false;
    for (const auto &arg : e->args) {
        if (!exprSpecializable(arg.get(), store))
            return false;
    }
    return true;
}

bool
stmtsSpecializable(const std::vector<IrStmt> &stmts, const ArenaStore &store)
{
    for (const auto &s : stmts) {
        switch (s.kind) {
          case IrStmt::Kind::Assign:
            if (s.sig && !store.narrow(s.sig->netId()))
                return false;
            if (!exprSpecializable(s.rhs.get(), store))
                return false;
            break;
          case IrStmt::Kind::If:
            if (!exprSpecializable(s.cond.get(), store))
                return false;
            if (!stmtsSpecializable(s.thenBody, store))
                return false;
            if (!stmtsSpecializable(s.elseBody, store))
                return false;
            break;
          case IrStmt::Kind::AWrite:
            if (!exprSpecializable(s.cond.get(), store) ||
                !exprSpecializable(s.rhs.get(), store))
                return false;
            break;
        }
    }
    return true;
}

/** Compiles one block into bytecode. */
class Compiler
{
  public:
    Compiler(const ElabBlock &blk, const ArenaStore &store)
        : blk_(blk), store_(store)
    {}

    BcProgram
    run()
    {
        // Persistent scratch slots for declared temps.
        temp_slot_.resize(blk_.ir->temps.size());
        for (size_t i = 0; i < temp_slot_.size(); ++i)
            temp_slot_[i] = allocScratch();
        persistent_scratch_ = next_scratch_;
        compileStmts(blk_.ir->stmts);
        prog_.nscratch = max_scratch_;
        return std::move(prog_);
    }

  private:
    int
    allocScratch()
    {
        int slot = next_scratch_++;
        max_scratch_ = std::max(max_scratch_, next_scratch_);
        return -(slot + 1);
    }

    void
    emit(BcInst inst)
    {
        prog_.insts.push_back(inst);
    }

    int32_t
    curSlot(int net) const
    {
        return store_.offset(net);
    }

    int32_t
    nxtSlot(int net) const
    {
        return store_.offset(net) + store_.wordsPerPhase();
    }

    /**
     * Register holding a net's current value. Unpacked nets use
     * their arena word directly; packed nets extract their field
     * into scratch with the existing Slice op.
     */
    int32_t
    loadCur(int net)
    {
        if (!store_.packed(net))
            return curSlot(net);
        int32_t dst = allocScratch();
        emit({Bc::Slice, dst, curSlot(net), 0, 0, 0,
              widthMask(store_.nbits(net)),
              static_cast<uint8_t>(store_.shift(net))});
        return dst;
    }

    /** Compile an expression; returns the register holding the value. */
    int32_t
    compileExpr(const IrExprNode *e)
    {
        switch (e->kind) {
          case IrExprNode::Kind::Const: {
            int32_t dst = allocScratch();
            emit({Bc::LdImm, dst, 0, 0, 0, e->cval.toUint64(),
                  widthMask(e->nbits), 0});
            return dst;
          }
          case IrExprNode::Kind::Ref:
            return loadCur(e->sig->netId());
          case IrExprNode::Kind::Temp:
            return temp_slot_[e->temp];
          case IrExprNode::Kind::BinOp: {
            int32_t a = compileExpr(e->args[0].get());
            int32_t b = compileExpr(e->args[1].get());
            int32_t dst = allocScratch();
            Bc op = Bc::Add;
            uint64_t imm = 0;
            switch (e->op) {
              case IrOp::Add: op = Bc::Add; break;
              case IrOp::Sub: op = Bc::Sub; break;
              case IrOp::Mul: op = Bc::Mul; break;
              case IrOp::And: op = Bc::And; break;
              case IrOp::Or: op = Bc::Or; break;
              case IrOp::Xor: op = Bc::Xor; break;
              case IrOp::Shl: op = Bc::Shl; break;
              case IrOp::Shr: op = Bc::Shr; break;
              case IrOp::Sra:
                op = Bc::Sra;
                imm = e->args[0]->nbits;
                break;
              case IrOp::Eq: op = Bc::Eq; break;
              case IrOp::Ne: op = Bc::Ne; break;
              case IrOp::Lt: op = Bc::Lt; break;
              case IrOp::Le: op = Bc::Le; break;
              case IrOp::Gt: op = Bc::Gt; break;
              case IrOp::Ge: op = Bc::Ge; break;
              case IrOp::LAnd: op = Bc::LAnd; break;
              case IrOp::LOr: op = Bc::LOr; break;
              default:
                throw std::logic_error("unhandled binop");
            }
            emit({op, dst, a, b, 0, imm, widthMask(e->nbits), 0});
            return dst;
          }
          case IrExprNode::Kind::UnOp: {
            int32_t a = compileExpr(e->args[0].get());
            int32_t dst = allocScratch();
            Bc op = Bc::Inv;
            uint64_t imm = 0;
            switch (e->unop) {
              case IrUnOp::Inv: op = Bc::Inv; break;
              case IrUnOp::LNot: op = Bc::LNot; break;
              case IrUnOp::ReduceOr: op = Bc::ROr; break;
              case IrUnOp::ReduceAnd:
                op = Bc::RAnd;
                imm = widthMask(e->args[0]->nbits);
                break;
              case IrUnOp::ReduceXor: op = Bc::RXor; break;
            }
            emit({op, dst, a, 0, 0, imm, widthMask(e->nbits), 0});
            return dst;
          }
          case IrExprNode::Kind::Slice: {
            int32_t a = compileExpr(e->args[0].get());
            int32_t dst = allocScratch();
            emit({Bc::Slice, dst, a, 0, 0, 0, widthMask(e->nbits),
                  static_cast<uint8_t>(e->lsb)});
            return dst;
          }
          case IrExprNode::Kind::Concat: {
            // Fold parts most-significant-first: acc = (acc << w) | part.
            int32_t acc = allocScratch();
            bool first = true;
            for (const auto &argp : e->args) {
                int32_t part = compileExpr(argp.get());
                if (first) {
                    emit({Bc::Mov, acc, part, 0, 0, 0,
                          widthMask(argp->nbits), 0});
                    first = false;
                } else {
                    // acc = (acc << part.nbits) | part
                    int32_t amt = allocScratch();
                    emit({Bc::LdImm, amt, 0, 0, 0,
                          static_cast<uint64_t>(argp->nbits), ~uint64_t(0),
                          0});
                    emit({Bc::Shl, acc, acc, amt, 0, 0,
                          widthMask(e->nbits), 0});
                    emit({Bc::Or, acc, acc, part, 0, 0,
                          widthMask(e->nbits), 0});
                }
            }
            return acc;
          }
          case IrExprNode::Kind::Mux: {
            int32_t c = compileExpr(e->args[0].get());
            int32_t a = compileExpr(e->args[1].get());
            int32_t b = compileExpr(e->args[2].get());
            int32_t dst = allocScratch();
            emit({Bc::Mux, dst, a, b, c, 0, widthMask(e->nbits), 0});
            return dst;
          }
          case IrExprNode::Kind::Zext:
            // Values are kept masked; widening is free.
            return compileExpr(e->args[0].get());
          case IrExprNode::Kind::Sext: {
            int32_t a = compileExpr(e->args[0].get());
            int32_t dst = allocScratch();
            emit({Bc::Sext, dst, a, 0, 0,
                  static_cast<uint64_t>(e->args[0]->nbits),
                  widthMask(e->nbits), 0});
            return dst;
          }
          case IrExprNode::Kind::ARead: {
            int32_t idx = compileExpr(e->args[0].get());
            int32_t dst = allocScratch();
            int id = e->array->arrayId();
            emit({Bc::ALoad, dst, idx, 0,
                  static_cast<int32_t>(store_.arrayIndexMask(id)),
                  static_cast<uint64_t>(store_.arrayOffset(id)),
                  widthMask(e->nbits), 0});
            return dst;
          }
        }
        throw std::logic_error("unhandled expr kind");
    }

    void
    compileStmts(const std::vector<IrStmt> &stmts)
    {
        bool seq = blk_.ir->sequential;
        for (const IrStmt &s : stmts) {
            int expr_base = next_scratch_;
            switch (s.kind) {
              case IrStmt::Kind::Assign: {
                int32_t rhs = compileExpr(s.rhs.get());
                if (s.temp >= 0 && !s.sig) {
                    emit({Bc::Mov, temp_slot_[s.temp], rhs, 0, 0, 0,
                          widthMask(s.rhs->nbits), 0});
                } else {
                    int net = s.sig->netId();
                    int32_t dst =
                        (seq && s.nonblocking) ? nxtSlot(net) : curSlot(net);
                    int shift = store_.shift(net);
                    if (s.width < 0 && !store_.packed(net)) {
                        emit({Bc::Mov, dst, rhs, 0, 0, 0,
                              widthMask(store_.nbits(net)), 0});
                    } else if (s.width < 0) {
                        // Packed full-width write: read-modify-write
                        // the shared word so word-mates survive.
                        emit({Bc::SetSlice, dst, rhs, 0, 0, 0,
                              widthMask(store_.nbits(net)),
                              static_cast<uint8_t>(shift)});
                    } else {
                        emit({Bc::SetSlice, dst, rhs, 0, 0, 0,
                              widthMask(s.width),
                              static_cast<uint8_t>(shift + s.lsb)});
                    }
                }
                break;
              }
              case IrStmt::Kind::AWrite: {
                int32_t idx = compileExpr(s.cond.get());
                int32_t val = compileExpr(s.rhs.get());
                int id = s.array->arrayId();
                emit({Bc::AStore, 0, idx, val,
                      static_cast<int32_t>(store_.arrayIndexMask(id)),
                      static_cast<uint64_t>(store_.arrayOffset(id)),
                      store_.arrayValueMask(id), 0});
                break;
              }
              case IrStmt::Kind::If: {
                int32_t cond = compileExpr(s.cond.get());
                size_t jz_at = prog_.insts.size();
                emit({Bc::Jz, 0, cond, 0, 0, 0, 0, 0});
                compileStmts(s.thenBody);
                if (s.elseBody.empty()) {
                    prog_.insts[jz_at].imm = prog_.insts.size();
                } else {
                    size_t jmp_at = prog_.insts.size();
                    emit({Bc::Jmp, 0, 0, 0, 0, 0, 0, 0});
                    prog_.insts[jz_at].imm = prog_.insts.size();
                    compileStmts(s.elseBody);
                    prog_.insts[jmp_at].imm = prog_.insts.size();
                }
                break;
              }
            }
            // Expression scratch is dead after the statement.
            next_scratch_ = std::max(expr_base, persistent_scratch_);
        }
    }

    const ElabBlock &blk_;
    const ArenaStore &store_;
    BcProgram prog_;
    std::vector<int32_t> temp_slot_;
    int next_scratch_ = 0;
    int max_scratch_ = 0;
    int persistent_scratch_ = 0;
};

} // namespace

bool
bcSpecializable(const ElabBlock &blk, const ArenaStore &store)
{
    if (!blk.ir)
        return false;
    for (const auto &t : blk.ir->temps) {
        if (t.nbits > 64)
            return false;
    }
    return stmtsSpecializable(blk.ir->stmts, store);
}

BcProgram
bcCompile(const ElabBlock &blk, const ArenaStore &store)
{
    return Compiler(blk, store).run();
}

void
bcRun(const BcProgram &prog, uint64_t *words, uint64_t *scratch)
{
    auto reg = [&](int32_t i) -> uint64_t & {
        return i >= 0 ? words[i] : scratch[-i - 1];
    };
    const BcInst *insts = prog.insts.data();
    const size_t n = prog.insts.size();
    size_t pc = 0;
    while (pc < n) {
        const BcInst &in = insts[pc];
        switch (in.op) {
          case Bc::LdImm:
            reg(in.dst) = in.imm & in.mask;
            break;
          case Bc::Mov:
            reg(in.dst) = reg(in.a) & in.mask;
            break;
          case Bc::Add:
            reg(in.dst) = (reg(in.a) + reg(in.b)) & in.mask;
            break;
          case Bc::Sub:
            reg(in.dst) = (reg(in.a) - reg(in.b)) & in.mask;
            break;
          case Bc::Mul:
            reg(in.dst) = (reg(in.a) * reg(in.b)) & in.mask;
            break;
          case Bc::And:
            reg(in.dst) = (reg(in.a) & reg(in.b)) & in.mask;
            break;
          case Bc::Or:
            reg(in.dst) = (reg(in.a) | reg(in.b)) & in.mask;
            break;
          case Bc::Xor:
            reg(in.dst) = (reg(in.a) ^ reg(in.b)) & in.mask;
            break;
          case Bc::Shl: {
            uint64_t amt = reg(in.b);
            reg(in.dst) = amt >= 64 ? 0 : (reg(in.a) << amt) & in.mask;
            break;
          }
          case Bc::Shr: {
            uint64_t amt = reg(in.b);
            reg(in.dst) = amt >= 64 ? 0 : (reg(in.a) >> amt) & in.mask;
            break;
          }
          case Bc::Sra: {
            int nbits = static_cast<int>(in.imm);
            int64_t v = static_cast<int64_t>(reg(in.a) << (64 - nbits)) >>
                        (64 - nbits);
            uint64_t amt = std::min<uint64_t>(reg(in.b), 63);
            reg(in.dst) =
                static_cast<uint64_t>(v >> static_cast<int>(amt)) & in.mask;
            break;
          }
          case Bc::Eq:
            reg(in.dst) = reg(in.a) == reg(in.b);
            break;
          case Bc::Ne:
            reg(in.dst) = reg(in.a) != reg(in.b);
            break;
          case Bc::Lt:
            reg(in.dst) = reg(in.a) < reg(in.b);
            break;
          case Bc::Le:
            reg(in.dst) = reg(in.a) <= reg(in.b);
            break;
          case Bc::Gt:
            reg(in.dst) = reg(in.a) > reg(in.b);
            break;
          case Bc::Ge:
            reg(in.dst) = reg(in.a) >= reg(in.b);
            break;
          case Bc::LAnd:
            reg(in.dst) = (reg(in.a) != 0) && (reg(in.b) != 0);
            break;
          case Bc::LOr:
            reg(in.dst) = (reg(in.a) != 0) || (reg(in.b) != 0);
            break;
          case Bc::Inv:
            reg(in.dst) = ~reg(in.a) & in.mask;
            break;
          case Bc::LNot:
            reg(in.dst) = reg(in.a) == 0;
            break;
          case Bc::ROr:
            reg(in.dst) = reg(in.a) != 0;
            break;
          case Bc::RAnd:
            reg(in.dst) = reg(in.a) == in.imm;
            break;
          case Bc::RXor:
            reg(in.dst) = std::popcount(reg(in.a)) & 1;
            break;
          case Bc::Slice:
            reg(in.dst) = (reg(in.a) >> in.sh) & in.mask;
            break;
          case Bc::SetSlice:
            reg(in.dst) = (reg(in.dst) & ~(in.mask << in.sh)) |
                          ((reg(in.a) & in.mask) << in.sh);
            break;
          case Bc::Mux:
            reg(in.dst) = (reg(in.c) ? reg(in.a) : reg(in.b)) & in.mask;
            break;
          case Bc::Sext: {
            int nbits = static_cast<int>(in.imm);
            int64_t v = static_cast<int64_t>(reg(in.a) << (64 - nbits)) >>
                        (64 - nbits);
            reg(in.dst) = static_cast<uint64_t>(v) & in.mask;
            break;
          }
          case Bc::ALoad:
            reg(in.dst) =
                words[in.imm + (reg(in.a) &
                                static_cast<uint64_t>(in.c))];
            break;
          case Bc::AStore:
            words[in.imm +
                  (reg(in.a) & static_cast<uint64_t>(in.c))] =
                reg(in.b) & in.mask;
            break;
          case Bc::Jz:
            if (reg(in.a) == 0) {
                pc = in.imm;
                continue;
            }
            break;
          case Bc::Jmp:
            pc = in.imm;
            continue;
        }
        ++pc;
    }
}

} // namespace cmtl
