#include "snap.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "model.h"

namespace cmtl {

// ------------------------------------------------------------- crc32

namespace {

const uint32_t *
crcTable()
{
    static uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

uint32_t
snapCrc32(const void *data, size_t len, uint32_t seed)
{
    const uint32_t *table = crcTable();
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// ----------------------------------------------------- writer/reader

void
SnapWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
SnapWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
}

void
SnapWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
}

void
SnapWriter::bits(const Bits &b)
{
    u32(static_cast<uint32_t>(b.nbits()));
    for (int w = 0; w < b.nwords(); ++w)
        u64(b.word(w));
}

void
SnapWriter::raw(const void *p, size_t n)
{
    buf_.append(static_cast<const char *>(p), n);
}

void
SnapReader::need(size_t n) const
{
    if (remaining() < n)
        throw SnapError("snapshot truncated: wanted " +
                        std::to_string(n) + " more byte(s), have " +
                        std::to_string(remaining()));
}

uint8_t
SnapReader::u8()
{
    need(1);
    return *p_++;
}

uint32_t
SnapReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
}

uint64_t
SnapReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
}

std::string
SnapReader::str()
{
    uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char *>(p_), n);
    p_ += n;
    return s;
}

Bits
SnapReader::bits()
{
    uint32_t nbits = u32();
    if (nbits == 0 || nbits > (1u << 20))
        throw SnapError("snapshot corrupted: implausible bit width " +
                        std::to_string(nbits));
    std::vector<uint64_t> words(bitsToWords(static_cast<int>(nbits)));
    for (uint64_t &w : words)
        w = u64();
    return Bits::fromWords(static_cast<int>(nbits), words);
}

void
SnapReader::raw(void *p, size_t n)
{
    need(n);
    std::memcpy(p, p_, n);
    p_ += n;
}

// ------------------------------------------------------ encode/decode

namespace {

constexpr uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<uint32_t>(static_cast<uint8_t>(a)) |
           static_cast<uint32_t>(static_cast<uint8_t>(b)) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(c)) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(d)) << 24;
}

constexpr uint32_t kTagNets = fourcc('N', 'E', 'T', 'S');
constexpr uint32_t kTagNxts = fourcc('N', 'X', 'T', 'S');
constexpr uint32_t kTagArry = fourcc('A', 'R', 'R', 'Y');
constexpr uint32_t kTagFlop = fourcc('F', 'L', 'O', 'P');
constexpr uint32_t kTagModl = fourcc('M', 'O', 'D', 'L');
// v2: optional, informational — the capturing arena's layout policy.
constexpr uint32_t kTagLayt = fourcc('L', 'A', 'Y', 'T');

std::string
tagName(uint32_t tag)
{
    std::string s(4, '?');
    for (int i = 0; i < 4; ++i) {
        char c = static_cast<char>((tag >> (8 * i)) & 0xffu);
        s[i] = (c >= 32 && c < 127) ? c : '?';
    }
    return s;
}

constexpr char kSnapMagic[8] = {'C', 'M', 'T', 'L', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;
constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8;

void
encodeNetSection(SnapWriter &w,
                 const std::vector<std::vector<uint64_t>> &nets)
{
    w.u32(static_cast<uint32_t>(nets.size()));
    for (const auto &words : nets) {
        w.u32(static_cast<uint32_t>(words.size()));
        for (uint64_t word : words)
            w.u64(word);
    }
}

std::vector<std::vector<uint64_t>>
decodeNetSection(SnapReader &r)
{
    uint32_t count = r.u32();
    if (static_cast<size_t>(count) * 12 > r.remaining() + 8)
        throw SnapError("snapshot corrupted: implausible net count " +
                        std::to_string(count));
    std::vector<std::vector<uint64_t>> nets(count);
    for (auto &words : nets) {
        uint32_t nwords = r.u32();
        if (nwords > (1u << 16))
            throw SnapError("snapshot corrupted: implausible net "
                            "width (" +
                            std::to_string(nwords) + " words)");
        words.resize(nwords);
        for (uint64_t &word : words)
            word = r.u64();
    }
    return nets;
}

} // namespace

std::string
SimSnapshot::encode() const
{
    SnapWriter nets_w;
    encodeNetSection(nets_w, nets);
    SnapWriter nxts_w;
    encodeNetSection(nxts_w, nets_next);

    SnapWriter arry_w;
    arry_w.u32(static_cast<uint32_t>(arrays.size()));
    for (size_t i = 0; i < arrays.size(); ++i) {
        arry_w.u32(array_elem_words[i]);
        arry_w.u64(arrays[i].size());
        for (uint64_t word : arrays[i])
            arry_w.u64(word);
    }

    SnapWriter flop_w;
    flop_w.u32(static_cast<uint32_t>(dynamic_flops.size()));
    for (int net : dynamic_flops)
        flop_w.u32(static_cast<uint32_t>(net));

    SnapWriter modl_w;
    modl_w.u32(static_cast<uint32_t>(model_state.size()));
    for (const auto &entry : model_state) {
        modl_w.str(entry.first);
        modl_w.str(entry.second);
    }

    SnapWriter layt_w;
    layt_w.str(layout_policy);

    struct Section
    {
        uint32_t tag;
        const std::string *payload;
    };
    const Section sections[] = {
        {kTagNets, &nets_w.buffer()}, {kTagNxts, &nxts_w.buffer()},
        {kTagArry, &arry_w.buffer()}, {kTagFlop, &flop_w.buffer()},
        {kTagModl, &modl_w.buffer()}, {kTagLayt, &layt_w.buffer()},
    };
    const size_t nsections = sizeof(sections) / sizeof(sections[0]);

    SnapWriter out;
    out.raw(kSnapMagic, sizeof(kSnapMagic));
    out.u32(kSnapFormatVersion);
    out.u32(static_cast<uint32_t>(nsections));
    out.u64(design_hash);
    out.u64(cycle);
    uint64_t offset = kHeaderBytes + nsections * kTableEntryBytes;
    for (const Section &sec : sections) {
        out.u32(sec.tag);
        out.u32(snapCrc32(sec.payload->data(), sec.payload->size()));
        out.u64(offset);
        out.u64(sec.payload->size());
        offset += sec.payload->size();
    }
    for (const Section &sec : sections)
        out.raw(sec.payload->data(), sec.payload->size());
    out.u32(snapCrc32(out.buffer().data(), out.buffer().size()));
    return out.take();
}

SimSnapshot
SimSnapshot::decode(const std::string &bytes)
{
    if (bytes.size() < kHeaderBytes + 4)
        throw SnapError("not a CMTL snapshot: only " +
                        std::to_string(bytes.size()) + " byte(s)");
    if (std::memcmp(bytes.data(), kSnapMagic, sizeof(kSnapMagic)) != 0)
        throw SnapError("not a CMTL snapshot (bad magic)");

    SnapReader header(bytes);
    char magic[8];
    header.raw(magic, sizeof(magic));
    uint32_t version = header.u32();
    if (version < kSnapMinFormatVersion || version > kSnapFormatVersion)
        throw SnapError(
            "snapshot format version " + std::to_string(version) +
            " unsupported (this build reads versions " +
            std::to_string(kSnapMinFormatVersion) + ".." +
            std::to_string(kSnapFormatVersion) +
            "); regenerate the snapshot, or the header is corrupted");

    uint32_t stored_crc = 0;
    {
        SnapReader tail(
            reinterpret_cast<const uint8_t *>(bytes.data()) +
                bytes.size() - 4,
            4);
        stored_crc = tail.u32();
    }
    uint32_t actual_crc = snapCrc32(bytes.data(), bytes.size() - 4);
    if (stored_crc != actual_crc)
        throw SnapError("snapshot corrupted: file checksum mismatch");

    uint32_t nsections = header.u32();
    if (nsections > 64)
        throw SnapError("snapshot corrupted: implausible section "
                        "count " +
                        std::to_string(nsections));

    SimSnapshot snap;
    snap.design_hash = header.u64();
    snap.cycle = header.u64();

    const size_t payload_end = bytes.size() - 4;
    bool seen_nets = false, seen_nxts = false, seen_arry = false,
         seen_flop = false, seen_modl = false;
    for (uint32_t s = 0; s < nsections; ++s) {
        uint32_t tag = header.u32();
        uint32_t crc = header.u32();
        uint64_t offset = header.u64();
        uint64_t length = header.u64();
        if (offset < kHeaderBytes + nsections * kTableEntryBytes ||
            offset > payload_end || length > payload_end - offset)
            throw SnapError("snapshot corrupted: section '" +
                            tagName(tag) + "' out of bounds");
        const uint8_t *payload =
            reinterpret_cast<const uint8_t *>(bytes.data()) + offset;
        if (snapCrc32(payload, length) != crc)
            throw SnapError("snapshot corrupted: section '" +
                            tagName(tag) + "' checksum mismatch");
        SnapReader r(payload, length);
        if (tag == kTagNets) {
            snap.nets = decodeNetSection(r);
            seen_nets = true;
        } else if (tag == kTagNxts) {
            snap.nets_next = decodeNetSection(r);
            seen_nxts = true;
        } else if (tag == kTagArry) {
            uint32_t count = r.u32();
            if (count > (1u << 24))
                throw SnapError("snapshot corrupted: implausible "
                                "array count " +
                                std::to_string(count));
            snap.arrays.resize(count);
            snap.array_elem_words.resize(count);
            for (uint32_t i = 0; i < count; ++i) {
                snap.array_elem_words[i] = r.u32();
                uint64_t nwords = r.u64();
                if (nwords > r.remaining() / 8)
                    throw SnapError("snapshot corrupted: array "
                                    "payload overruns its section");
                snap.arrays[i].resize(nwords);
                for (uint64_t &word : snap.arrays[i])
                    word = r.u64();
            }
            seen_arry = true;
        } else if (tag == kTagFlop) {
            uint32_t count = r.u32();
            if (count > (1u << 24))
                throw SnapError("snapshot corrupted: implausible "
                                "flop count " +
                                std::to_string(count));
            snap.dynamic_flops.resize(count);
            for (int &net : snap.dynamic_flops)
                net = static_cast<int>(r.u32());
            seen_flop = true;
        } else if (tag == kTagModl) {
            uint32_t count = r.u32();
            if (count > (1u << 24))
                throw SnapError("snapshot corrupted: implausible "
                                "model count " +
                                std::to_string(count));
            snap.model_state.resize(count);
            for (auto &entry : snap.model_state) {
                entry.first = r.str();
                entry.second = r.str();
            }
            seen_modl = true;
        } else if (tag == kTagLayt) {
            // Optional since v2; informational only, so absence (any
            // v1 image) or presence never gates the restore.
            snap.layout_policy = r.str();
        } else {
            throw SnapError("snapshot corrupted: unknown section '" +
                            tagName(tag) + "'");
        }
        if (!r.atEnd())
            throw SnapError("snapshot corrupted: section '" +
                            tagName(tag) + "' has trailing bytes");
    }
    if (!seen_nets || !seen_nxts || !seen_arry || !seen_flop ||
        !seen_modl)
        throw SnapError("snapshot corrupted: missing section(s)");
    if (snap.nets.size() != snap.nets_next.size())
        throw SnapError("snapshot corrupted: current/next net counts "
                        "disagree");
    return snap;
}

// ------------------------------------------------------------ digest

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
fnvByte(uint64_t &h, uint8_t b)
{
    h ^= b;
    h *= kFnvPrime;
}

void
fnvU64(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        fnvByte(h, static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
}

void
fnvStr(uint64_t &h, const std::string &s)
{
    fnvU64(h, s.size());
    for (char c : s)
        fnvByte(h, static_cast<uint8_t>(c));
}

void
fnvWordLists(uint64_t &h,
             const std::vector<std::vector<uint64_t>> &lists)
{
    fnvU64(h, lists.size());
    for (const auto &words : lists) {
        fnvU64(h, words.size());
        for (uint64_t word : words)
            fnvU64(h, word);
    }
}

} // namespace

uint64_t
SimSnapshot::digest() const
{
    uint64_t h = kFnvOffset;
    fnvWordLists(h, nets);
    fnvWordLists(h, nets_next);
    fnvWordLists(h, arrays);
    fnvU64(h, model_state.size());
    for (const auto &entry : model_state) {
        fnvStr(h, entry.first);
        fnvStr(h, entry.second);
    }
    return h;
}

uint64_t
designFingerprint(const Elaboration &elab)
{
    uint64_t h = kFnvOffset;
    fnvStr(h, "CMTLDSGN");
    fnvU64(h, elab.nets.size());
    for (const Net &net : elab.nets) {
        fnvStr(h, net.name);
        fnvU64(h, static_cast<uint64_t>(net.nbits));
        fnvByte(h, net.floppedStatic ? 1 : 0);
    }
    fnvU64(h, elab.arrays.size());
    for (const MemArray *array : elab.arrays) {
        fnvStr(h, array->fullName());
        fnvU64(h, static_cast<uint64_t>(array->nbits()));
        fnvU64(h, static_cast<uint64_t>(array->depth()));
    }
    return h;
}

// ------------------------------------------------------ save/restore

SimSnapshot
snapSave(const Simulator &sim)
{
    const Elaboration &elab = sim.elaboration();
    SimSnapshot snap;
    snap.design_hash = designFingerprint(elab);
    snap.cycle = sim.numCycles();

    snap.nets.reserve(elab.nets.size());
    snap.nets_next.reserve(elab.nets.size());
    for (const Net &net : elab.nets) {
        Bits cur = sim.readNet(net.id);
        Bits nxt = sim.readNetNext(net.id);
        std::vector<uint64_t> cur_words(cur.nwords());
        for (int w = 0; w < cur.nwords(); ++w)
            cur_words[w] = cur.word(w);
        std::vector<uint64_t> nxt_words(nxt.nwords());
        for (int w = 0; w < nxt.nwords(); ++w)
            nxt_words[w] = nxt.word(w);
        snap.nets.push_back(std::move(cur_words));
        snap.nets_next.push_back(std::move(nxt_words));
    }

    snap.arrays.reserve(elab.arrays.size());
    snap.array_elem_words.reserve(elab.arrays.size());
    for (const MemArray *array : elab.arrays) {
        int elem_words = bitsToWords(array->nbits());
        std::vector<uint64_t> words;
        words.reserve(static_cast<size_t>(array->depth()) * elem_words);
        for (int i = 0; i < array->depth(); ++i) {
            Bits value = sim.readArray(*array, i);
            for (int w = 0; w < elem_words; ++w)
                words.push_back(value.word(w));
        }
        snap.arrays.push_back(std::move(words));
        snap.array_elem_words.push_back(
            static_cast<uint32_t>(elem_words));
    }

    snap.dynamic_flops = sim.dynamicFlopNets();
    snap.layout_policy = layoutPolicyName(sim.layoutStats().policy);

    for (Model *model : elab.models) {
        SnapWriter w;
        model->snapSave(w);
        if (!w.buffer().empty())
            snap.model_state.emplace_back(model->fullName(), w.take());
    }
    return snap;
}

void
snapRestore(Simulator &sim, const SimSnapshot &snap)
{
    const Elaboration &elab = sim.elaboration();
    uint64_t expected = designFingerprint(elab);
    if (snap.design_hash != expected) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "snapshot is of a different design "
                      "(fingerprint %016llx, this design %016llx)",
                      static_cast<unsigned long long>(snap.design_hash),
                      static_cast<unsigned long long>(expected));
        throw SnapError(buf);
    }
    if (snap.nets.size() != elab.nets.size() ||
        snap.nets_next.size() != elab.nets.size())
        throw SnapError(
            "snapshot/design mismatch: " +
            std::to_string(snap.nets.size()) + " net(s) in snapshot, " +
            std::to_string(elab.nets.size()) + " in design");
    if (snap.arrays.size() != elab.arrays.size())
        throw SnapError("snapshot/design mismatch: " +
                        std::to_string(snap.arrays.size()) +
                        " array(s) in snapshot, " +
                        std::to_string(elab.arrays.size()) +
                        " in design");

    for (const Net &net : elab.nets) {
        const auto &cur = snap.nets[net.id];
        const auto &nxt = snap.nets_next[net.id];
        size_t want = static_cast<size_t>(bitsToWords(net.nbits));
        if (cur.size() != want || nxt.size() != want)
            throw SnapError("snapshot/design mismatch: net '" +
                            net.name + "' width differs");
        sim.pokeNet(net.id, Bits::fromWords(net.nbits, cur));
        sim.pokeNetNext(net.id, Bits::fromWords(net.nbits, nxt));
    }

    for (size_t a = 0; a < elab.arrays.size(); ++a) {
        MemArray &array = *elab.arrays[a];
        size_t elem_words =
            static_cast<size_t>(bitsToWords(array.nbits()));
        if (snap.array_elem_words[a] != elem_words ||
            snap.arrays[a].size() !=
                elem_words * static_cast<size_t>(array.depth()))
            throw SnapError("snapshot/design mismatch: array '" +
                            array.fullName() + "' layout differs");
        std::vector<uint64_t> elem(elem_words);
        for (int i = 0; i < array.depth(); ++i) {
            std::copy_n(snap.arrays[a].begin() + i * elem_words,
                        elem_words, elem.begin());
            sim.writeArray(array, i, Bits::fromWords(array.nbits(), elem));
        }
    }

    for (int net : snap.dynamic_flops)
        if (net < 0 || net >= static_cast<int>(elab.nets.size()))
            throw SnapError("snapshot corrupted: flop net id " +
                            std::to_string(net) + " out of range");
    sim.registerDynamicFlops(snap.dynamic_flops);

    std::unordered_map<std::string, Model *> by_name;
    for (Model *model : elab.models)
        by_name.emplace(model->fullName(), model);
    for (const auto &entry : snap.model_state) {
        auto it = by_name.find(entry.first);
        if (it == by_name.end())
            throw SnapError("snapshot has host state for model '" +
                            entry.first +
                            "' which this design does not contain");
        SnapReader r(entry.second);
        it->second->snapLoad(r);
        if (!r.atEnd())
            throw SnapError("model '" + entry.first + "' left " +
                            std::to_string(r.remaining()) +
                            " byte(s) of its snapshot state unread");
    }

    sim.setRestoredCycleCount(snap.cycle);
}

uint64_t
stateDigest(const Simulator &sim)
{
    return snapSave(sim).digest();
}

std::vector<std::string>
opaqueStateModels(const Elaboration &elab)
{
    std::vector<std::string> out;
    for (Model *model : elab.models) {
        bool has_lambda = false;
        for (const ElabBlock &block : elab.blocks) {
            if (block.model == model &&
                (block.kind == BlockKind::TickFl ||
                 block.kind == BlockKind::TickCl ||
                 block.kind == BlockKind::CombLambda)) {
                has_lambda = true;
                break;
            }
        }
        if (!has_lambda)
            continue;
        SnapWriter w;
        model->snapSave(w);
        if (w.buffer().empty())
            out.push_back(model->fullName());
    }
    return out;
}

// -------------------------------------------------------- file layer

namespace {

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw SnapError("cannot open '" + path +
                        "' for writing: " + std::strerror(errno));
    size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
    int close_err = std::fclose(f);
    if (written != bytes.size() || close_err != 0) {
        std::remove(path.c_str());
        throw SnapError("short write to '" + path + "'");
    }
}

void
renameInto(const std::string &tmp, const std::string &path)
{
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        throw SnapError("cannot rename '" + tmp + "' onto '" + path +
                        "': " + std::strerror(err));
    }
}

} // namespace

void
snapSaveFile(const Simulator &sim, const std::string &path)
{
    std::string tmp = path + ".tmp";
    writeFileBytes(tmp, snapSave(sim).encode());
    renameInto(tmp, path);
}

SimSnapshot
snapLoadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapError("cannot open snapshot '" + path +
                        "': " + std::strerror(errno));
    std::ostringstream ss;
    ss << in.rdbuf();
    return SimSnapshot::decode(ss.str());
}

// ------------------------------------------------ CheckpointManager

CheckpointManager::CheckpointManager(std::string path,
                                     uint64_t every_n_cycles,
                                     int keep_last, std::string tag)
    : path_(std::move(path)), tag_(std::move(tag)),
      every_(every_n_cycles), keep_last_(keep_last)
{
    if (!tag_.empty())
        path_ += "." + tag_;
}

void
CheckpointManager::attach(Simulator &sim)
{
    sim.onCycleEnd([this, &sim](uint64_t cycle) {
        if (every_ != 0 && cycle % every_ == 0)
            save(sim, cycle);
    });
}

void
CheckpointManager::save(const Simulator &sim, uint64_t cycle)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string bytes = snapSave(sim).encode();
    std::string tmp = path_ + ".tmp";
    writeFileBytes(tmp, bytes);
    if (keep_last_ > 0) {
        // Hard-link the image to its cycle-stamped name before the
        // rename, so the stable latest and the rotation copy share
        // one write and one inode's worth of data.
        std::string stamped = path_ + "." + std::to_string(cycle);
        std::remove(stamped.c_str());
        if (::link(tmp.c_str(), stamped.c_str()) != 0) {
            int err = errno;
            std::remove(tmp.c_str());
            throw SnapError("cannot link checkpoint '" + stamped +
                            "': " + std::strerror(err));
        }
        rotated_.push_back(stamped);
        while (rotated_.size() > static_cast<size_t>(keep_last_)) {
            std::remove(rotated_.front().c_str());
            rotated_.erase(rotated_.begin());
        }
    }
    renameInto(tmp, path_);
    last_cycle_ = cycle;
    last_ms_ = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
}

// ----------------------------------------------------------- StimTape

void
StimTape::channel(const Signal &sig)
{
    if (nentries_ != 0)
        throw SnapError("StimTape: cannot add channels to a recorded "
                        "tape");
    Chan chan;
    chan.name = sig.fullName();
    chan.nbits = sig.nbits();
    chan.net = sig.netId();
    chans_.push_back(std::move(chan));
}

void
StimTape::channel(const std::string &name, int nbits)
{
    if (nentries_ != 0)
        throw SnapError("StimTape: cannot add channels to a recorded "
                        "tape");
    if (nbits <= 0)
        throw SnapError("StimTape: channel '" + name +
                        "' must be at least 1 bit wide");
    Chan chan;
    chan.name = name;
    chan.nbits = nbits;
    chan.net = -1; // resolved lazily by bind()
    chans_.push_back(std::move(chan));
}

void
StimTape::append(const std::vector<Bits> &values)
{
    if (values.size() != chans_.size())
        throw SnapError("StimTape: append got " +
                        std::to_string(values.size()) +
                        " value(s) for " + std::to_string(chans_.size()) +
                        " channel(s)");
    for (size_t i = 0; i < chans_.size(); ++i) {
        if (values[i].nbits() != chans_[i].nbits)
            throw SnapError("StimTape: append value for channel '" +
                            chans_[i].name + "' is " +
                            std::to_string(values[i].nbits()) +
                            " bit(s), expected " +
                            std::to_string(chans_[i].nbits));
    }
    for (const Bits &value : values)
        for (int w = 0; w < value.nwords(); ++w)
            words_.push_back(value.word(w));
    ++nentries_;
}

size_t
StimTape::entryWords() const
{
    size_t n = 0;
    for (const Chan &chan : chans_)
        n += static_cast<size_t>(bitsToWords(chan.nbits));
    return n;
}

void
StimTape::bind(const Elaboration &elab)
{
    if (bound_)
        return;
    for (Chan &chan : chans_) {
        if (chan.net >= 0)
            continue;
        for (const Signal *sig : elab.signals) {
            if (sig->fullName() == chan.name) {
                if (sig->nbits() != chan.nbits)
                    throw SnapError("StimTape: channel '" + chan.name +
                                    "' is " + std::to_string(chan.nbits) +
                                    " bit(s) on tape but " +
                                    std::to_string(sig->nbits()) +
                                    " in this design");
                chan.net = sig->netId();
                break;
            }
        }
        if (chan.net < 0)
            throw SnapError("StimTape: channel '" + chan.name +
                            "' not found in this design");
    }
    bound_ = true;
}

void
StimTape::attachRecorder(Simulator &sim)
{
    if (nentries_ != 0)
        throw SnapError("StimTape: tape already holds a recording");
    bind(sim.elaboration());
    start_ = sim.numCycles();
    sim.onCycleEnd([this, &sim](uint64_t) {
        // The values still on the channel nets at cycle end are the
        // ones the driver injected before the cycle: stimulus nets
        // are host-driven, nothing else writes them.
        for (const Chan &chan : chans_) {
            Bits value = sim.readNet(chan.net);
            for (int w = 0; w < value.nwords(); ++w)
                words_.push_back(value.word(w));
        }
        ++nentries_;
    });
}

bool
StimTape::applyTo(Simulator &sim)
{
    bind(sim.elaboration());
    uint64_t now = sim.numCycles();
    if (now < start_)
        throw SnapError("StimTape: simulator is at cycle " +
                        std::to_string(now) +
                        " but the tape starts at cycle " +
                        std::to_string(start_));
    uint64_t idx = now - start_;
    if (idx >= nentries_)
        return false;
    size_t off = static_cast<size_t>(idx) * entryWords();
    for (const Chan &chan : chans_) {
        int nwords = bitsToWords(chan.nbits);
        std::vector<uint64_t> value(words_.begin() + off,
                                    words_.begin() + off + nwords);
        sim.pokeNet(chan.net, Bits::fromWords(chan.nbits, value));
        off += nwords;
    }
    return true;
}

namespace {
constexpr char kTapeMagic[8] = {'C', 'M', 'T', 'L', 'T', 'A', 'P', 'E'};
}

std::string
StimTape::encode() const
{
    SnapWriter w;
    w.raw(kTapeMagic, sizeof(kTapeMagic));
    w.u32(kSnapFormatVersion);
    w.u32(static_cast<uint32_t>(chans_.size()));
    w.u64(start_);
    w.u64(nentries_);
    for (const Chan &chan : chans_) {
        w.str(chan.name);
        w.u32(static_cast<uint32_t>(chan.nbits));
    }
    for (uint64_t word : words_)
        w.u64(word);
    uint32_t crc = snapCrc32(w.buffer().data(), w.buffer().size());
    w.u32(crc);
    return w.take();
}

StimTape
StimTape::decode(const std::string &bytes)
{
    if (bytes.size() < sizeof(kTapeMagic) + 4 ||
        std::memcmp(bytes.data(), kTapeMagic, sizeof(kTapeMagic)) != 0)
        throw SnapError("not a CMTL stimulus tape (bad magic)");
    uint32_t stored_crc = 0;
    {
        SnapReader tail(
            reinterpret_cast<const uint8_t *>(bytes.data()) +
                bytes.size() - 4,
            4);
        stored_crc = tail.u32();
    }
    if (snapCrc32(bytes.data(), bytes.size() - 4) != stored_crc)
        throw SnapError("stimulus tape corrupted: checksum mismatch");

    SnapReader r(reinterpret_cast<const uint8_t *>(bytes.data()),
                 bytes.size() - 4);
    char magic[8];
    r.raw(magic, sizeof(magic));
    // Tape payloads never changed across snapshot format bumps, so
    // any version in the supported window loads.
    uint32_t version = r.u32();
    if (version < kSnapMinFormatVersion || version > kSnapFormatVersion)
        throw SnapError("stimulus tape format version " +
                        std::to_string(version) + " unsupported");
    StimTape tape;
    uint32_t nchans = r.u32();
    if (nchans > (1u << 20))
        throw SnapError("stimulus tape corrupted: implausible channel "
                        "count");
    tape.start_ = r.u64();
    tape.nentries_ = r.u64();
    tape.chans_.resize(nchans);
    for (Chan &chan : tape.chans_) {
        chan.name = r.str();
        chan.nbits = static_cast<int>(r.u32());
        if (chan.nbits <= 0 || chan.nbits > (1 << 20))
            throw SnapError("stimulus tape corrupted: implausible "
                            "channel width");
    }
    size_t total = tape.entryWords() * tape.nentries_;
    if (r.remaining() != total * 8)
        throw SnapError("stimulus tape corrupted: entry payload size "
                        "mismatch");
    tape.words_.resize(total);
    for (uint64_t &word : tape.words_)
        word = r.u64();
    return tape;
}

void
StimTape::saveFile(const std::string &path) const
{
    std::string tmp = path + ".tmp";
    writeFileBytes(tmp, encode());
    renameInto(tmp, path);
}

StimTape
StimTape::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapError("cannot open stimulus tape '" + path +
                        "': " + std::strerror(errno));
    std::ostringstream ss;
    ss << in.rdbuf();
    return decode(ss.str());
}

// -------------------------------------------------- DivergenceBisector

std::string
DivergenceReport::summary() const
{
    if (!diverged)
        return "no divergence";
    std::ostringstream os;
    os << "first divergence at cycle " << first_divergent_cycle << ": "
       << divergent_nets.size() << " net(s), " << divergent_arrays.size()
       << " array(s), " << divergent_models.size()
       << " model(s) differ";
    size_t shown = 0;
    for (const std::string &net : divergent_nets) {
        os << (shown == 0 ? " [" : ", ") << net;
        if (++shown == 8) {
            if (divergent_nets.size() > 8)
                os << ", ...";
            break;
        }
    }
    if (shown)
        os << "]";
    return os.str();
}

void
DivergenceBisector::advance(Simulator &sim, uint64_t n)
{
    if (!stim_) {
        sim.cycle(n);
        return;
    }
    // Stimulus is a function of numCycles(), so the same cycle sees
    // the same pokes whether reached straight-line or via a restored
    // probe.
    for (uint64_t i = 0; i < n; ++i) {
        stim_(sim);
        sim.cycle();
    }
}

DivergenceReport
DivergenceBisector::run(const SimSnapshot &start, uint64_t horizon)
{
    DivergenceReport rep;

    auto restorePair = [&](const SimSnapshot &from,
                           std::unique_ptr<Simulator> &a,
                           std::unique_ptr<Simulator> &b) {
        a = make_a_();
        b = make_b_();
        snapRestore(*a, from);
        snapRestore(*b, from);
    };

    std::unique_ptr<Simulator> a, b;
    restorePair(start, a, b);
    if (snapSave(*a).digest() != snapSave(*b).digest()) {
        // The two sides disagree before a single cycle runs (e.g. a
        // backend that mis-restores): report the snapshot cycle.
        rep.diverged = true;
        rep.first_divergent_cycle = start.cycle;
    }

    SimSnapshot base = start; //!< last state both sides agree on
    uint64_t window = 0;      //!< cycles past base bracketing the bug

    if (!rep.diverged) {
        // Exponential scan: cheap early, coarse late — O(log horizon)
        // digest comparisons to bracket the divergence.
        uint64_t done = 0;
        uint64_t stride = 1;
        while (done < horizon) {
            uint64_t n = std::min(stride, horizon - done);
            advance(*a, n);
            advance(*b, n);
            done += n;
            rep.cycles_executed += 2 * n;
            SimSnapshot sa = snapSave(*a);
            if (sa.digest() == snapSave(*b).digest()) {
                base = std::move(sa);
                stride *= 2;
            } else {
                window = a->numCycles() - base.cycle;
                break;
            }
        }
        if (window == 0)
            return rep; // agreed over the whole horizon
        rep.diverged = true;

        // Binary search (0, window]: states agree `lo` cycles past
        // base and differ `window` cycles past it. Each probe restores
        // a fresh pair from base; agreeing probes advance base so the
        // remaining window shrinks in absolute cycles too.
        uint64_t lo = 0;
        while (window - lo > 1) {
            uint64_t mid = lo + (window - lo) / 2;
            restorePair(base, a, b);
            advance(*a, mid);
            advance(*b, mid);
            rep.cycles_executed += 2 * mid;
            SimSnapshot sa = snapSave(*a);
            if (sa.digest() == snapSave(*b).digest()) {
                base = std::move(sa);
                window -= mid;
                lo = 0;
            } else {
                window = mid;
            }
        }
        rep.first_divergent_cycle = base.cycle + 1;
    }

    // Detail pass: run the single divergent cycle and name what broke.
    restorePair(base, a, b);
    if (rep.first_divergent_cycle > base.cycle) {
        advance(*a, 1);
        advance(*b, 1);
        rep.cycles_executed += 2;
    }
    SimSnapshot fa = snapSave(*a);
    SimSnapshot fb = snapSave(*b);
    const Elaboration &elab = a->elaboration();
    for (const Net &net : elab.nets) {
        if (fa.nets[net.id] != fb.nets[net.id] ||
            fa.nets_next[net.id] != fb.nets_next[net.id])
            rep.divergent_nets.push_back(net.name);
    }
    for (size_t i = 0; i < elab.arrays.size(); ++i) {
        if (fa.arrays[i] != fb.arrays[i])
            rep.divergent_arrays.push_back(elab.arrays[i]->fullName());
    }
    std::unordered_map<std::string, const std::string *> blobs_b;
    for (const auto &entry : fb.model_state)
        blobs_b.emplace(entry.first, &entry.second);
    for (const auto &entry : fa.model_state) {
        auto it = blobs_b.find(entry.first);
        if (it == blobs_b.end() || *it->second != entry.second)
            rep.divergent_models.push_back(entry.first);
    }
    return rep;
}

} // namespace cmtl
