/**
 * @file
 * ActivityTool: dynamic activity statistics.
 *
 * Another user-style tool over the model/tool split: attaches to a
 * running simulation and counts net toggles (a standard dynamic-power
 * proxy) and per-model activity, supporting the paper's motivation of
 * extracting energy-relevant metrics from the same models used for
 * performance work.
 */

#ifndef CMTL_CORE_STATS_H
#define CMTL_CORE_STATS_H

#include <string>
#include <vector>

#include "model.h"
#include "sim.h"

namespace cmtl {

/**
 * One-stop simulator summary for tools and benches: execution
 * configuration, specialization statistics, and — when the simulator
 * is the parallel ParSim kernel — the partition-quality report
 * (islands, weights, cut size, settle depth).
 */
std::string simulatorReport(const Simulator &sim);

/** Counts per-net toggles over a simulation window. */
class ActivityTool
{
  public:
    /** Attach to @p sim; sampling starts immediately. */
    explicit ActivityTool(Simulator &sim);

    /** Zero all counters (e.g. after warmup). */
    void reset();

    /** Cycles observed since construction/reset. */
    uint64_t cycles() const { return cycles_; }

    /** Total bit toggles on one net. */
    uint64_t netToggles(int net) const { return toggles_[net]; }

    /** Sum of bit toggles across every net owned by @p model's
     *  subtree (a relative dynamic-activity proxy). */
    uint64_t modelToggles(const Model &model) const;

    /** Average toggles per cycle across the whole design. */
    double toggleRate() const;

    /** The @p n most active nets, formatted one per line. */
    std::string report(size_t n = 10) const;

  private:
    void sample(uint64_t cycle);

    Simulator &sim_;
    std::vector<Bits> last_;
    std::vector<uint64_t> toggles_;
    uint64_t cycles_ = 0;
    bool first_ = true;
};

/**
 * TextWaveTool: ASCII waveforms of selected signals, one column per
 * cycle — the quick-look debugging view PyMTL's line tracing enabled.
 */
class TextWaveTool
{
  public:
    TextWaveTool(Simulator &sim, std::vector<const Signal *> watch,
                 size_t max_cycles = 64);

    /** Render the collected window. */
    std::string render() const;

  private:
    Simulator &sim_;
    std::vector<const Signal *> watch_;
    std::vector<std::vector<Bits>> samples_; //!< per signal, per cycle
    size_t max_cycles_;
};

} // namespace cmtl

#endif // CMTL_CORE_STATS_H
