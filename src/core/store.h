/**
 * @file
 * Signal value storage backends.
 *
 * Two storage strategies implement the paper's host-execution axis:
 *
 *  - BoxedStore (the CPython analog): every net's value is a
 *    heap-allocated, reference-counted Bits box held in a string-keyed
 *    hash map; every read hashes the net name and unboxes, every write
 *    allocates a fresh box — structurally the costs a CPython PyMTL
 *    simulation pays for attribute lookup and Bits object churn.
 *
 *  - ArenaStore (the PyPy/SimJIT analog): net values live in a dense
 *    uint64 word arena; the current-value region is words [0, W) and
 *    the next-value (non-blocking) region is words [W, 2W). Reads and
 *    writes are direct indexed loads/stores, the result of
 *    slot-binding every signal once, the way a tracing JIT's
 *    attribute caches do. Which physical word (and bit position,
 *    under bit packing) a net occupies is decided by an ArenaLayout
 *    (layout.h); the store is just the memory plus layout-aware
 *    accessors. Packed nets read with a shift+mask and write with a
 *    masked read-modify-write, so word sharing is invisible above
 *    this API.
 */

#ifndef CMTL_CORE_STORE_H
#define CMTL_CORE_STORE_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bits.h"
#include "layout.h"
#include "model.h"

namespace cmtl {

/** Boxed, dictionary-backed storage (CPython analog). */
class BoxedStore
{
  public:
    explicit BoxedStore(const Elaboration &elab);

    /** Read the current value of a net (by hashed name lookup). */
    Bits read(int net) const;
    /** Read the next value of a net. */
    Bits readNext(int net) const;
    /**
     * Write the current value; returns true if the value changed
     * (drives event-driven scheduling).
     */
    bool write(int net, const Bits &value);
    /** Write the next value (non-blocking). */
    void writeNext(int net, const Bits &value);
    /** Copy next -> current for one net; returns true on change. */
    bool flop(int net);

    /** Read array element (name-hashed lookup, boxed result). */
    Bits arrayRead(int array_id, uint64_t index) const;
    /** Write array element (effective immediately). */
    void arrayWrite(int array_id, uint64_t index, const Bits &value);

  private:
    using Box = std::shared_ptr<Bits>;
    const Elaboration &elab_;
    // Keyed by net name: the "instance __dict__" of the design.
    std::unordered_map<std::string, Box> cur_;
    std::unordered_map<std::string, Box> nxt_;
    std::unordered_map<std::string, std::vector<Box>> arrays_;
};

/** Dense word-arena storage (PyPy/SimJIT analog). */
class ArenaStore
{
  public:
    /** Historical behaviour: a fresh elaboration-order layout. */
    explicit ArenaStore(const Elaboration &elab);
    /**
     * Arena over an explicit layout. ParSim replicas pass one shared
     * instance so every replica's physical layout is identical by
     * construction.
     */
    ArenaStore(const Elaboration &elab,
               std::shared_ptr<const ArenaLayout> layout);

    const ArenaLayout &layout() const { return *layout_; }
    std::shared_ptr<const ArenaLayout> layoutPtr() const
    {
        return layout_;
    }

    int wordsPerPhase() const { return words_per_phase_; }
    uint64_t *data() { return words_.data(); }
    const uint64_t *data() const { return words_.data(); }

    /** First word of the net's slot within a phase. */
    int offset(int net) const { return offset_[net]; }
    /** Bit position of the net within its word (0 unless packed). */
    int shift(int net) const { return shift_[net]; }
    /** True iff the net shares its word with other nets. */
    bool packed(int net) const { return packed_[net] != 0; }
    int nwords(int net) const { return nwords_[net]; }
    int nbits(int net) const { return nbits_[net]; }
    uint64_t mask(int net) const { return mask_[net]; }

    /** True iff the net fits one word (specializable). */
    bool narrow(int net) const { return nwords_[net] == 1; }

    Bits read(int net) const;
    Bits readNext(int net) const;
    bool write(int net, const Bits &value);
    void writeNext(int net, const Bits &value);
    bool flop(int net);

    /** Whole-word next -> current copies (precomputed flop plan). */
    void flopRanges(const std::vector<FlopRange> &ranges);

    /** Word offset of an array's storage region. */
    int arrayOffset(int array_id) const { return array_offset_[array_id]; }
    uint64_t arrayIndexMask(int array_id) const
    {
        return array_mask_[array_id];
    }
    uint64_t arrayValueMask(int array_id) const
    {
        return array_vmask_[array_id];
    }

    Bits arrayRead(int array_id, uint64_t index) const;
    void arrayWrite(int array_id, uint64_t index, const Bits &value);

  private:
    std::shared_ptr<const ArenaLayout> layout_;
    std::vector<uint64_t> words_; //!< [cur][next][array storage]
    // Flat copies of the layout's slot table (hot-path locality).
    std::vector<int> offset_;
    std::vector<int> shift_;
    std::vector<char> packed_;
    std::vector<int> nwords_;
    std::vector<int> nbits_;
    std::vector<uint64_t> mask_; //!< top-word value mask per net
    std::vector<int> array_offset_;
    std::vector<uint64_t> array_mask_;  //!< index masks
    std::vector<uint64_t> array_vmask_; //!< element value masks
    std::vector<int> array_nbits_;
    int words_per_phase_ = 0;
};

} // namespace cmtl

#endif // CMTL_CORE_STORE_H
