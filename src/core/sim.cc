#include "sim.h"

#include <stdexcept>

#include "ir_cpp.h"
#include "timing.h"

namespace cmtl {

// ------------------------------------------------------------- Simulator

void
Simulator::cycle(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        cycle();
}

void
Simulator::reset(int ncycles)
{
    elab_->top->reset.setValue(uint64_t(1));
    cycle(static_cast<uint64_t>(ncycles));
    elab_->top->reset.setValue(uint64_t(0));
}

std::string
Simulator::lineTrace() const
{
    std::string out;
    for (const Model *m : elab_->models) {
        std::string part = m->lineTrace();
        if (part.empty())
            continue;
        if (!out.empty())
            out += " | ";
        out += part;
    }
    return out;
}

// -------------------------------------------------------- SimulationTool

SimulationTool::SimulationTool(std::shared_ptr<Elaboration> elab,
                               SimConfig cfg)
    : Simulator(std::move(elab), cfg)
{
    Stopwatch sw;

    event_driven_ =
        cfg_.sched == SchedMode::Event ||
        (cfg_.sched == SchedMode::Auto && cfg_.exec == ExecMode::Interp);
    if (!event_driven_ && elab_->hasCombCycle) {
        throw std::logic_error(
            "design has a combinational cycle; static scheduling is "
            "impossible (use SchedMode::Event)");
    }

    if (useBoxed())
        boxed_ = std::make_unique<BoxedStore>(*elab_);
    if (!useBoxed() || cfg_.spec != SpecMode::None)
        arena_ = std::make_unique<ArenaStore>(*elab_);
    if (boxed_)
        boxed_eval_ = std::make_unique<BoxedEvaluator>(*boxed_);
    if (arena_)
        slot_eval_ = std::make_unique<SlotEvaluator>(*arena_);

    for (Signal *sig : elab_->signals)
        sig->setAccess(this);

    const size_t nnets = elab_->nets.size();
    is_flopped_.assign(nnets, 0);
    for (const Net &net : elab_->nets) {
        if (net.floppedStatic)
            markFlopped(net.id);
    }

    // Arrays written by tick blocks re-trigger their readers each
    // cycle under event-driven scheduling.
    for (const ElabBlock &blk : elab_->blocks) {
        if (!isTick(blk.kind))
            continue;
        for (int token : blk.writes) {
            if (token >= static_cast<int>(nnets))
                tick_array_tokens_.push_back(token);
        }
    }

    buildSchedule();
    double create_before_spec = sw.elapsed();
    if (cfg_.spec != SpecMode::None)
        specialize();

    in_worklist_.assign(comb_steps_.size(), 0);
    if (eventDriven()) {
        // Seed the worklist with every combinational step.
        for (size_t i = 0; i < comb_steps_.size(); ++i) {
            worklist_.push_back(static_cast<int>(i));
            in_worklist_[i] = 1;
        }
    }

    spec_stats_.simCreateSeconds =
        create_before_spec +
        (sw.elapsed() - create_before_spec - spec_stats_.codegenSeconds -
         spec_stats_.compileSeconds - spec_stats_.wrapSeconds);
}

SimulationTool::~SimulationTool()
{
    for (Signal *sig : elab_->signals) {
        if (sig->access() == this)
            sig->setAccess(nullptr);
    }
}

void
SimulationTool::buildSchedule()
{
    const auto &blocks = elab_->blocks;
    spec_stats_.numBlocks = static_cast<int>(blocks.size());
    comb_step_of_block_.assign(blocks.size(), -1);

    auto makeStep = [&](int idx) {
        const ElabBlock &blk = blocks[idx];
        Step step;
        step.block = idx;
        step.reads = &blk.reads;
        step.writes = &blk.writes;
        step.sequential = isTick(blk.kind);
        switch (blk.kind) {
          case BlockKind::TickFl:
          case BlockKind::TickCl:
          case BlockKind::CombLambda:
            step.kind = Step::Kind::Lambda;
            break;
          case BlockKind::TickIr:
          case BlockKind::CombIr:
            step.kind = useBoxed() ? Step::Kind::BoxedIr
                                   : Step::Kind::SlotIr;
            break;
        }
        return step;
    };

    // Combinational steps in topological order when available.
    std::vector<int> comb_order = elab_->combOrder;
    if (elab_->hasCombCycle) {
        comb_order.clear();
        for (size_t i = 0; i < blocks.size(); ++i) {
            if (!isTick(blocks[i].kind))
                comb_order.push_back(static_cast<int>(i));
        }
    }
    for (int idx : comb_order) {
        comb_step_of_block_[idx] = static_cast<int>(comb_steps_.size());
        comb_steps_.push_back(makeStep(idx));
    }
    for (int idx : elab_->tickOrder)
        tick_steps_.push_back(makeStep(idx));
}

void
SimulationTool::specialize()
{
    Stopwatch sw;
    const auto &blocks = elab_->blocks;
    std::vector<char> can(blocks.size(), 0);
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].ir && bcSpecializable(blocks[i], *arena_)) {
            can[i] = 1;
            ++spec_stats_.numSpecialized;
        }
    }

    // Hybrid storage ownership: a token is arena-owned when it has a
    // writer, every writer is specialized, and no unspecialized IR
    // block touches it (lambda blocks and test benches access signals
    // through SignalAccess, which dispatches on ownership; boxed IR
    // evaluation does not).
    if (useBoxed()) {
        const size_t ntokens = elab_->nets.size() + elab_->arrays.size();
        std::vector<char> has_writer(ntokens, 0);
        std::vector<char> unspec_writer(ntokens, 0);
        std::vector<char> unspec_ir(ntokens, 0);
        for (size_t i = 0; i < blocks.size(); ++i) {
            for (int tok : blocks[i].writes) {
                has_writer[tok] = 1;
                if (!can[i])
                    unspec_writer[tok] = 1;
            }
            if (blocks[i].ir && !can[i]) {
                for (int tok : blocks[i].reads)
                    unspec_ir[tok] = 1;
                for (int tok : blocks[i].writes)
                    unspec_ir[tok] = 1;
            }
        }
        token_in_arena_.assign(ntokens, 0);
        for (size_t tok = 0; tok < ntokens; ++tok) {
            token_in_arena_[tok] = has_writer[tok] &&
                                   !unspec_writer[tok] &&
                                   !unspec_ir[tok];
        }
    }

    // Fuse contiguous runs of specializable blocks into groups, the
    // way SimJIT translates a whole component subtree into one
    // compiled unit: one entry point, one marshal boundary. Fusing
    // combinational blocks is legal because the comb schedule is a
    // fixed topological order and running a comb block with unchanged
    // inputs is idempotent; under event-driven scheduling the fused
    // group simply becomes the scheduling unit.
    std::vector<std::vector<int>> groups;
    auto groupSteps = [&](std::vector<Step> &steps) {
        std::vector<Step> out;
        size_t i = 0;
        while (i < steps.size()) {
            if (!can[steps[i].block]) {
                out.push_back(steps[i]);
                ++i;
                continue;
            }
            std::vector<int> group;
            std::vector<int> reads, writes;
            size_t j = i;
            while (j < steps.size() && can[steps[j].block] &&
                   steps[j].sequential == steps[i].sequential) {
                group.push_back(steps[j].block);
                const ElabBlock &blk = blocks[steps[j].block];
                reads.insert(reads.end(), blk.reads.begin(),
                             blk.reads.end());
                writes.insert(writes.end(), blk.writes.begin(),
                              blk.writes.end());
                ++j;
            }
            std::sort(reads.begin(), reads.end());
            reads.erase(std::unique(reads.begin(), reads.end()),
                        reads.end());
            std::sort(writes.begin(), writes.end());
            writes.erase(std::unique(writes.begin(), writes.end()),
                         writes.end());

            Step step;
            step.kind = cfg_.spec == SpecMode::Cpp
                            ? Step::Kind::Native
                            : Step::Kind::Bytecode;
            step.block = steps[i].block;
            step.group = static_cast<int>(groups.size());
            step.sequential = steps[i].sequential;
            groups.push_back(std::move(group));
            group_reads_.push_back(std::move(reads));
            group_writes_.push_back(std::move(writes));
            step.reads = &group_reads_.back();
            step.writes = &group_writes_.back();
            out.push_back(step);
            i = j;
        }
        steps = std::move(out);
    };
    groupSteps(comb_steps_);
    groupSteps(tick_steps_);

    // group_reads_/group_writes_ grew by push_back; re-point the steps
    // now that the vectors' addresses are final.
    {
        auto repoint = [&](std::vector<Step> &steps) {
            for (Step &step : steps) {
                if (step.group >= 0) {
                    step.reads = &group_reads_[step.group];
                    step.writes = &group_writes_[step.group];
                }
            }
        };
        repoint(comb_steps_);
        repoint(tick_steps_);
    }

    // Rebuild the block -> comb step map after fusion: every member
    // block of a fused group maps to the group's step.
    comb_step_of_block_.assign(blocks.size(), -1);
    for (size_t i = 0; i < comb_steps_.size(); ++i) {
        const Step &step = comb_steps_[i];
        if (step.group >= 0) {
            for (int blk : groups[step.group]) {
                if (!isTick(blocks[blk].kind))
                    comb_step_of_block_[blk] = static_cast<int>(i);
            }
        } else {
            comb_step_of_block_[step.block] = static_cast<int>(i);
        }
    }

    spec_stats_.numGroups = static_cast<int>(groups.size());

    if (cfg_.spec == SpecMode::Bytecode) {
        bc_programs_.resize(blocks.size());
        int max_scratch = 0;
        group_bc_.resize(groups.size());
        for (size_t g = 0; g < groups.size(); ++g) {
            for (int blk : groups[g]) {
                bc_programs_[blk] = bcCompile(blocks[blk], *arena_);
                max_scratch =
                    std::max(max_scratch, bc_programs_[blk].nscratch);
                group_bc_[g].push_back(&bc_programs_[blk]);
            }
        }
        bc_scratch_.assign(static_cast<size_t>(max_scratch) + 1, 0);
        spec_stats_.codegenSeconds = sw.elapsed();
        return;
    }

    std::string source = cppEmitProgram(*elab_, *arena_, groups);
    spec_stats_.codegenSeconds = sw.elapsed();

    CppJit jit(cfg_.jit_cache_dir.empty() ? CppJit::defaultCacheDir()
                                          : cfg_.jit_cache_dir,
               cfg_.jit_cache);
    cpp_lib_ = jit.compile(source, static_cast<int>(groups.size()));
    spec_stats_.compileSeconds = cpp_lib_.compileSeconds();
    spec_stats_.wrapSeconds = cpp_lib_.wrapSeconds();
    spec_stats_.cacheHit = cpp_lib_.cacheHit();
}

void
SimulationTool::markFlopped(int net)
{
    if (!is_flopped_[net]) {
        is_flopped_[net] = 1;
        flopped_nets_.push_back(net);
    }
}

void
SimulationTool::enqueueReaders(int net)
{
    for (int blk : elab_->netReaders[net]) {
        int step = comb_step_of_block_[blk];
        if (step >= 0 && !in_worklist_[step]) {
            in_worklist_[step] = 1;
            worklist_.push_back(step);
        }
    }
}

bool
SimulationTool::isArrayToken(int token) const
{
    return token >= static_cast<int>(elab_->nets.size());
}

void
SimulationTool::copyArrayToArena(int token)
{
    int id = token - static_cast<int>(elab_->nets.size());
    const MemArray *array = elab_->arrays[id];
    for (int i = 0; i < array->depth(); ++i)
        arena_->arrayWrite(id, i, boxed_->arrayRead(id, i));
}

void
SimulationTool::copyArrayToBoxed(int token)
{
    int id = token - static_cast<int>(elab_->nets.size());
    const MemArray *array = elab_->arrays[id];
    for (int i = 0; i < array->depth(); ++i)
        boxed_->arrayWrite(id, i, arena_->arrayRead(id, i));
}

void
SimulationTool::syncIn(const Step &step)
{
    // Marshal boundary state into the arena before a specialized
    // group runs (the Python -> C++ call boundary). Arena-owned
    // tokens never cross: the compiled component keeps them.
    for (int net : *step.reads) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net))
            copyArrayToArena(net);
        else
            arena_->write(net, boxed_->read(net));
    }
    for (int net : *step.writes) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net)) {
            copyArrayToArena(net);
        } else if (step.sequential) {
            arena_->writeNext(net, boxed_->readNext(net));
        } else {
            arena_->write(net, boxed_->read(net));
        }
    }
}

void
SimulationTool::syncOut(const Step &step, std::vector<int> *changed)
{
    // Marshal boundary results back (the C++ -> Python return
    // boundary); arena-owned writes stay put (their change detection
    // runs against the pre-run snapshot, see diffWrites).
    for (int net : *step.writes) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net)) {
            copyArrayToBoxed(net);
        } else if (step.sequential) {
            boxed_->writeNext(net, arena_->readNext(net));
        } else {
            if (boxed_->write(net, arena_->read(net)) && changed)
                changed->push_back(net);
        }
    }
}

void
SimulationTool::snapshotWrites(const Step &step)
{
    write_snapshot_.clear();
    for (int net : *step.writes) {
        if (!tokenInArena(net) || isArrayToken(net))
            continue;
        const uint64_t *words = arena_->data() + arena_->offset(net);
        for (int w = 0; w < arena_->nwords(net); ++w)
            write_snapshot_.push_back(words[w]);
    }
}

void
SimulationTool::diffWrites(const Step &step, std::vector<int> *changed)
{
    size_t at = 0;
    for (int net : *step.writes) {
        if (!tokenInArena(net) || isArrayToken(net))
            continue;
        const uint64_t *words = arena_->data() + arena_->offset(net);
        bool differs = false;
        for (int w = 0; w < arena_->nwords(net); ++w)
            differs |= words[w] != write_snapshot_[at++];
        if (differs)
            changed->push_back(net);
    }
}

void
SimulationTool::runStep(const Step &step, std::vector<int> *changed)
{
    if (ScopeProbe *p = probe_) {
        if (p->shouldTime(step.block)) {
            Stopwatch sw;
            runStepImpl(step, changed);
            p->addBlockTime(step.block, sw.elapsed());
            return;
        }
    }
    runStepImpl(step, changed);
}

void
SimulationTool::runStepImpl(const Step &step, std::vector<int> *changed)
{
    const bool hybrid = useBoxed() && arena_ != nullptr;
    switch (step.kind) {
      case Step::Kind::Lambda:
        // Writes route through the SignalAccess interface, which
        // performs change detection and reader scheduling itself.
        elab_->blocks[step.block].fn();
        break;
      case Step::Kind::BoxedIr:
        boxed_eval_->run(elab_->blocks[step.block], changed);
        break;
      case Step::Kind::SlotIr:
        slot_eval_->run(elab_->blocks[step.block], changed);
        break;
      case Step::Kind::Bytecode:
      case Step::Kind::Native: {
        if (hybrid)
            syncIn(step);
        bool track = changed && !step.sequential;
        if (track)
            snapshotWrites(step);
        if (step.kind == Step::Kind::Native) {
            cpp_lib_.group(step.group)(arena_->data());
        } else {
            for (const BcProgram *bc : group_bc_[step.group])
                bcRun(*bc, arena_->data(), bc_scratch_.data());
        }
        if (track)
            diffWrites(step, changed);
        if (hybrid)
            syncOut(step, changed);
        break;
      }
    }
}

void
SimulationTool::settle()
{
    if (eventDriven()) {
        std::vector<int> changed;
        size_t head = 0;
        size_t iterations = 0;
        const size_t limit = (elab_->blocks.size() + 1) * 10000;
        while (head < worklist_.size()) {
            int step = worklist_[head++];
            in_worklist_[step] = 0;
            changed.clear();
            runStep(comb_steps_[step], &changed);
            for (int net : changed)
                enqueueReaders(net);
            if (++iterations > limit) {
                throw std::runtime_error(
                    "combinational logic failed to converge "
                    "(oscillating cycle?)");
            }
        }
        worklist_.clear();
    } else {
        for (const Step &step : comb_steps_)
            runStep(step, nullptr);
    }
    dirty_ = false;
}

void
SimulationTool::cycle()
{
    if (probe_) {
        cycleProfiled();
    } else {
        if (eventDriven() || dirty_)
            settle();
        for (const Step &step : tick_steps_)
            runStep(step, nullptr);
        std::vector<int> changed;
        doFlop(eventDriven() ? &changed : nullptr);
        if (eventDriven()) {
            for (int token : tick_array_tokens_)
                enqueueReaders(token);
        }
        settle();
    }
    ++ncycles_;
    for (const auto &hook : cycle_hooks_)
        hook(ncycles_);
}

void
SimulationTool::cycleProfiled()
{
    ScopeProbe *p = probe_;
    Stopwatch sw;
    if (eventDriven() || dirty_)
        settle();
    p->settle_seconds += sw.elapsed();

    sw.restart();
    for (const Step &step : tick_steps_)
        runStep(step, nullptr);
    p->tick_seconds += sw.elapsed();

    sw.restart();
    std::vector<int> changed;
    doFlop(eventDriven() ? &changed : nullptr);
    if (eventDriven()) {
        for (int token : tick_array_tokens_)
            enqueueReaders(token);
    }
    p->flop_seconds += sw.elapsed();

    sw.restart();
    settle();
    p->settle_seconds += sw.elapsed();
}

void
SimulationTool::eval()
{
    if (ScopeProbe *p = probe_) {
        Stopwatch sw;
        settle();
        p->settle_seconds += sw.elapsed();
        return;
    }
    settle();
}

void
SimulationTool::doFlop(std::vector<int> *changed)
{
    for (int net : flopped_nets_) {
        bool ch = tokenInArena(net) ? arena_->flop(net)
                                    : boxed_->flop(net);
        if (ch && changed) {
            enqueueReaders(net);
        }
    }
}

Bits
SimulationTool::readNet(int net) const
{
    return tokenInArena(net) ? arena_->read(net) : boxed_->read(net);
}

Bits
SimulationTool::readArray(const MemArray &array, uint64_t index) const
{
    int id = array.arrayId();
    return tokenInArena(elab_->arrayToken(id))
               ? arena_->arrayRead(id, index)
               : boxed_->arrayRead(id, index);
}

void
SimulationTool::writeArray(MemArray &array, uint64_t index,
                           const Bits &value)
{
    int id = array.arrayId();
    if (tokenInArena(elab_->arrayToken(id)))
        arena_->arrayWrite(id, index, value);
    else
        boxed_->arrayWrite(id, index, value);
    dirty_ = true;
    if (eventDriven())
        enqueueReaders(elab_->arrayToken(id));
}

Bits
SimulationTool::read(const Signal &sig) const
{
    int net = sig.netId();
    return tokenInArena(net) ? arena_->read(net) : boxed_->read(net);
}

void
SimulationTool::write(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    bool ch = tokenInArena(net) ? arena_->write(net, value)
                                : boxed_->write(net, value);
    if (ch) {
        dirty_ = true;
        if (eventDriven())
            enqueueReaders(net);
    }
}

void
SimulationTool::writeNext(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    markFlopped(net);
    if (tokenInArena(net))
        arena_->writeNext(net, value);
    else
        boxed_->writeNext(net, value);
}

} // namespace cmtl
