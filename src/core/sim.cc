#include "sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "dataflow.h"
#include "ir_cpp.h"
#include "timing.h"

namespace cmtl {

// -------------------------------------------------------------- SimConfig

void
SimConfig::resolve()
{
    if (backend == Backend::Auto) {
        // Legacy call sites speak exec/spec; give their combination a
        // canonical name without changing what runs.
        switch (spec) {
          case SpecMode::None:
            backend = exec == ExecMode::Interp ? Backend::Interp
                                               : Backend::OptInterp;
            break;
          case SpecMode::Bytecode:
            backend = Backend::Bytecode;
            break;
          case SpecMode::Cpp:
            backend = Backend::CppBlock;
            break;
        }
        return;
    }
    // Explicit backend: project onto the deprecated fields so code
    // still reading exec/spec observes a consistent configuration.
    switch (backend) {
      case Backend::Auto: // unreachable
        break;
      case Backend::Interp:
        exec = ExecMode::Interp;
        spec = SpecMode::None;
        break;
      case Backend::OptInterp:
        exec = ExecMode::OptInterp;
        spec = SpecMode::None;
        break;
      case Backend::Bytecode:
        // exec is preserved: Interp selects the boxed-host hybrid.
        spec = SpecMode::Bytecode;
        break;
      case Backend::CppBlock:
        spec = SpecMode::Cpp;
        break;
      case Backend::CppDesign:
        exec = ExecMode::OptInterp;
        spec = SpecMode::Cpp;
        break;
    }
}

std::string
SimConfig::toString() const
{
    SimConfig r = *this;
    r.resolve();
    const bool hybrid = r.exec == ExecMode::Interp;
    switch (r.backend) {
      case Backend::Auto: // resolve() never leaves Auto
        break;
      case Backend::Interp: return "interp";
      case Backend::OptInterp: return "optinterp";
      case Backend::Bytecode:
        return hybrid ? "interp+bytecode" : "bytecode";
      case Backend::CppBlock:
        return hybrid ? "interp+cpp-block" : "cpp-block";
      case Backend::CppDesign: return "cpp-design";
    }
    return "interp";
}

SimConfig
SimConfig::fromString(const std::string &name)
{
    SimConfig cfg;
    if (name == "interp") {
        cfg.backend = Backend::Interp;
    } else if (name == "optinterp") {
        cfg.backend = Backend::OptInterp;
    } else if (name == "bytecode") {
        cfg.backend = Backend::Bytecode;
    } else if (name == "cpp-block" || name == "cpp") {
        cfg.backend = Backend::CppBlock;
    } else if (name == "cpp-design") {
        cfg.backend = Backend::CppDesign;
    } else if (name == "interp+bytecode") {
        cfg.backend = Backend::Bytecode;
        cfg.exec = ExecMode::Interp;
    } else if (name == "interp+cpp-block" || name == "interp+cpp") {
        cfg.backend = Backend::CppBlock;
        cfg.exec = ExecMode::Interp;
    } else {
        throw std::invalid_argument(
            "unknown backend '" + name +
            "' (expected interp, optinterp, bytecode, cpp-block, "
            "cpp-design, interp+bytecode or interp+cpp-block)");
    }
    cfg.resolve();
    return cfg;
}

// ------------------------------------------------------------- Simulator

void
Simulator::cycle(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        cycle();
}

bool
Simulator::runUntil(uint64_t target_cycle)
{
    while (numCycles() < target_cycle) {
        // Consume the request so the next runUntil resumes cleanly; a
        // request landing mid-cycle() is honored before the next one.
        if (pause_requested_.exchange(false, std::memory_order_acq_rel))
            return false;
        cycle();
    }
    return true;
}

void
Simulator::reset(int ncycles)
{
    elab_->top->reset.setValue(uint64_t(1));
    cycle(static_cast<uint64_t>(ncycles));
    elab_->top->reset.setValue(uint64_t(0));
}

std::string
Simulator::lineTrace() const
{
    std::string out;
    for (const Model *m : elab_->models) {
        std::string part = m->lineTrace();
        if (part.empty())
            continue;
        if (!out.empty())
            out += " | ";
        out += part;
    }
    return out;
}

// -------------------------------------------------------- SimulationTool

SimulationTool::SimulationTool(std::shared_ptr<Elaboration> elab,
                               SimConfig cfg)
    : Simulator(std::move(elab), cfg)
{
    Stopwatch sw;

    event_driven_ =
        cfg_.sched == SchedMode::Event ||
        (cfg_.sched == SchedMode::Auto && cfg_.exec == ExecMode::Interp);
    if (designMode() && event_driven_) {
        throw std::logic_error(
            "cpp-design fuses the static levelized schedule; "
            "SchedMode::Event is incompatible");
    }
    if (!event_driven_ && elab_->hasCombCycle) {
        throw std::logic_error(
            "design has a combinational cycle; static scheduling is "
            "impossible (use SchedMode::Event)");
    }

    if (useBoxed())
        boxed_ = std::make_unique<BoxedStore>(*elab_);
    if (!useBoxed() || cfg_.spec != SpecMode::None) {
        // Sequential kernel: no partition plan, and heat arrives only
        // later through the PGO loop — the static profile layout
        // groups by producer-block schedule order for now.
        auto lay = std::make_shared<const ArenaLayout>(
            cfg_.layout == LayoutPolicy::Profile
                ? ArenaLayout::profiled(*elab_, nullptr, nullptr)
                : ArenaLayout::elabOrder(*elab_));
        arena_ = std::make_unique<ArenaStore>(*elab_, std::move(lay));
    }
    if (boxed_)
        boxed_eval_ = std::make_unique<BoxedEvaluator>(*boxed_);
    if (arena_)
        slot_eval_ = std::make_unique<SlotEvaluator>(*arena_);

    for (Signal *sig : elab_->signals)
        sig->setAccess(this);

    const size_t nnets = elab_->nets.size();
    is_flopped_.assign(nnets, 0);
    for (const Net &net : elab_->nets) {
        if (net.floppedStatic)
            markFlopped(net.id);
    }
    // The static flop set is final here; nets registered later (a
    // lambda's writeNext) append past this prefix and stay on the
    // per-net host loop. The copy plan coalesces the static set into
    // whole-word ranges where the layout allows.
    n_static_flops_ = flopped_nets_.size();
    if (arena_)
        flop_plan_ = arena_->layout().flopPlan(flopped_nets_);

    // Arrays written by tick blocks re-trigger their readers each
    // cycle under event-driven scheduling.
    for (const ElabBlock &blk : elab_->blocks) {
        if (!isTick(blk.kind))
            continue;
        for (int token : blk.writes) {
            if (token >= static_cast<int>(nnets))
                tick_array_tokens_.push_back(token);
        }
    }

    dead_block_.assign(elab_->blocks.size(), 0);
    if (cfg_.dead_elim) {
        DataflowResult flow = dataflowAnalyze(*elab_);
        for (int b : flow.deadCombBlocks())
            dead_block_[b] = 1;
        spec_stats_.deadBlocksElided = flow.deadBlocks;
        spec_stats_.deadNetsElided = flow.deadNets;
    }

    buildSchedule();
    double create_before_spec = sw.elapsed();
    if (cfg_.spec != SpecMode::None)
        specialize();

    accessor_.bind(arena_.get(), boxed_.get(),
                   [this](int token) { return tokenInArena(token); });
    accessor_.onPokeChanged([this](int net) {
        dirty_ = true;
        if (eventDriven())
            enqueueReaders(net);
        else if (gating_)
            markTokenStepsDirty(net);
    });

    in_worklist_.assign(comb_steps_.size(), 0);
    if (eventDriven()) {
        // Seed the worklist with every combinational step.
        for (size_t i = 0; i < comb_steps_.size(); ++i) {
            worklist_.push_back(static_cast<int>(i));
            in_worklist_[i] = 1;
        }
    }
    buildGating();

    spec_stats_.simCreateSeconds =
        create_before_spec +
        (sw.elapsed() - create_before_spec - spec_stats_.codegenSeconds -
         spec_stats_.compileSeconds - spec_stats_.wrapSeconds);
}

SimulationTool::~SimulationTool()
{
    if (jit_thread_.joinable())
        jit_thread_.join();
    for (Signal *sig : elab_->signals) {
        if (sig->access() == this)
            sig->setAccess(nullptr);
    }
}

SimulationTool::Step
SimulationTool::makeStep(int idx) const
{
    const ElabBlock &blk = elab_->blocks[idx];
    Step step;
    step.block = idx;
    step.reads = &blk.reads;
    step.writes = &blk.writes;
    step.sequential = isTick(blk.kind);
    switch (blk.kind) {
      case BlockKind::TickFl:
      case BlockKind::TickCl:
      case BlockKind::CombLambda:
        step.kind = Step::Kind::Lambda;
        break;
      case BlockKind::TickIr:
      case BlockKind::CombIr:
        step.kind = useBoxed() ? Step::Kind::BoxedIr
                               : Step::Kind::SlotIr;
        break;
    }
    return step;
}

void
SimulationTool::buildSchedule()
{
    const auto &blocks = elab_->blocks;
    spec_stats_.numBlocks = static_cast<int>(blocks.size());
    comb_step_of_block_.assign(blocks.size(), -1);

    // Combinational steps in topological order when available.
    std::vector<int> comb_order = elab_->combOrder;
    if (elab_->hasCombCycle) {
        comb_order.clear();
        for (size_t i = 0; i < blocks.size(); ++i) {
            if (!isTick(blocks[i].kind))
                comb_order.push_back(static_cast<int>(i));
        }
    }
    for (int idx : comb_order) {
        // Dead-logic elimination: proven-dead comb blocks never enter
        // the schedule (their step index stays -1, which the
        // event-driven enqueue path already skips).
        if (dead_block_[idx])
            continue;
        comb_step_of_block_[idx] = static_cast<int>(comb_steps_.size());
        comb_steps_.push_back(makeStep(idx));
    }
    for (int idx : elab_->tickOrder)
        tick_steps_.push_back(makeStep(idx));
}

void
SimulationTool::specialize()
{
    Stopwatch sw;
    const auto &blocks = elab_->blocks;
    std::vector<char> can(blocks.size(), 0);
    for (size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].ir && bcSpecializable(blocks[i], *arena_)) {
            can[i] = 1;
            ++spec_stats_.numSpecialized;
        }
    }

    // Hybrid storage ownership: a token is arena-owned when it has a
    // writer, every writer is specialized, and no unspecialized IR
    // block touches it (lambda blocks and test benches access signals
    // through SignalAccess, which dispatches on ownership; boxed IR
    // evaluation does not).
    if (useBoxed()) {
        const size_t ntokens = elab_->nets.size() + elab_->arrays.size();
        std::vector<char> has_writer(ntokens, 0);
        std::vector<char> unspec_writer(ntokens, 0);
        std::vector<char> unspec_ir(ntokens, 0);
        for (size_t i = 0; i < blocks.size(); ++i) {
            for (int tok : blocks[i].writes) {
                has_writer[tok] = 1;
                if (!can[i])
                    unspec_writer[tok] = 1;
            }
            if (blocks[i].ir && !can[i]) {
                for (int tok : blocks[i].reads)
                    unspec_ir[tok] = 1;
                for (int tok : blocks[i].writes)
                    unspec_ir[tok] = 1;
            }
        }
        token_in_arena_.assign(ntokens, 0);
        for (size_t tok = 0; tok < ntokens; ++tok) {
            token_in_arena_[tok] = has_writer[tok] &&
                                   !unspec_writer[tok] &&
                                   !unspec_ir[tok];
        }
    }

    // Fuse contiguous runs of specializable blocks into groups, the
    // way SimJIT translates a whole component subtree into one
    // compiled unit: one entry point, one marshal boundary. Fusing
    // combinational blocks is legal because the comb schedule is a
    // fixed topological order and running a comb block with unchanged
    // inputs is idempotent; under event-driven scheduling the fused
    // group simply becomes the scheduling unit.
    //
    // cpp-block deliberately does NOT fuse: every specialized block is
    // its own compiled entry point, crossing the C ABI once per block
    // per phase (the paper's per-component SimJIT granularity and the
    // baseline cpp-design is measured against). cpp-design groups here
    // describe its bytecode warm-up tier; the fused native schedule is
    // built separately in specializeDesign().
    const bool design = designMode();
    const bool per_block = cfg_.backend == Backend::CppBlock;
    std::vector<std::vector<int>> groups;
    auto groupSteps = [&](std::vector<Step> &steps) {
        std::vector<Step> out;
        size_t i = 0;
        while (i < steps.size()) {
            if (!can[steps[i].block]) {
                out.push_back(steps[i]);
                ++i;
                continue;
            }
            std::vector<int> group;
            std::vector<int> reads, writes;
            size_t j = i;
            while (j < steps.size() && can[steps[j].block] &&
                   steps[j].sequential == steps[i].sequential &&
                   (group.empty() || !per_block)) {
                group.push_back(steps[j].block);
                const ElabBlock &blk = blocks[steps[j].block];
                reads.insert(reads.end(), blk.reads.begin(),
                             blk.reads.end());
                writes.insert(writes.end(), blk.writes.begin(),
                              blk.writes.end());
                ++j;
            }
            std::sort(reads.begin(), reads.end());
            reads.erase(std::unique(reads.begin(), reads.end()),
                        reads.end());
            std::sort(writes.begin(), writes.end());
            writes.erase(std::unique(writes.begin(), writes.end()),
                         writes.end());

            Step step;
            step.kind = (cfg_.spec == SpecMode::Cpp && !design)
                            ? Step::Kind::Native
                            : Step::Kind::Bytecode;
            step.block = steps[i].block;
            step.group = static_cast<int>(groups.size());
            step.sequential = steps[i].sequential;
            groups.push_back(std::move(group));
            group_reads_.push_back(std::move(reads));
            group_writes_.push_back(std::move(writes));
            step.reads = &group_reads_.back();
            step.writes = &group_writes_.back();
            out.push_back(step);
            i = j;
        }
        steps = std::move(out);
    };
    groupSteps(comb_steps_);
    groupSteps(tick_steps_);

    // group_reads_/group_writes_ grew by push_back; re-point the steps
    // now that the vectors' addresses are final.
    {
        auto repoint = [&](std::vector<Step> &steps) {
            for (Step &step : steps) {
                if (step.group >= 0) {
                    step.reads = &group_reads_[step.group];
                    step.writes = &group_writes_[step.group];
                }
            }
        };
        repoint(comb_steps_);
        repoint(tick_steps_);
    }

    // Rebuild the block -> comb step map after fusion: every member
    // block of a fused group maps to the group's step.
    comb_step_of_block_.assign(blocks.size(), -1);
    for (size_t i = 0; i < comb_steps_.size(); ++i) {
        const Step &step = comb_steps_[i];
        if (step.group >= 0) {
            for (int blk : groups[step.group]) {
                if (!isTick(blocks[blk].kind))
                    comb_step_of_block_[blk] = static_cast<int>(i);
            }
        } else {
            comb_step_of_block_[step.block] = static_cast<int>(i);
        }
    }

    spec_stats_.numGroups = static_cast<int>(groups.size());

    if (cfg_.spec == SpecMode::Bytecode || design) {
        bc_programs_.resize(blocks.size());
        int max_scratch = 0;
        group_bc_.resize(groups.size());
        group_blocks_.resize(groups.size());
        for (size_t g = 0; g < groups.size(); ++g) {
            for (int blk : groups[g]) {
                bc_programs_[blk] = bcCompile(blocks[blk], *arena_);
                max_scratch =
                    std::max(max_scratch, bc_programs_[blk].nscratch);
                group_bc_[g].push_back(&bc_programs_[blk]);
                group_blocks_[g].push_back(blk);
            }
        }
        bc_scratch_.assign(static_cast<size_t>(max_scratch) + 1, 0);
        spec_stats_.codegenSeconds = sw.elapsed();
        if (!design)
            return;
        if (pgoActive()) {
            // Defer TU emission past the warm-up window: the bytecode
            // tier runs while the probe gathers block heat, then
            // startPgoBuild() derives the heat-refined layout and
            // emits against it. An internal sampled probe stands in
            // when no SimScope is attached.
            can_ = can;
            pgo_pending_ = true;
            spec_stats_.tiered = true;
            if (!probe_) {
                pgo_probe_ = std::make_unique<ScopeProbe>();
                pgo_probe_->exact = false;
                pgo_probe_->block_seconds.assign(blocks.size(), 0.0);
                pgo_probe_->block_calls.assign(blocks.size(), 0);
                pgo_probe_->until_sample.assign(
                    blocks.size(), pgo_probe_->sample_period);
                probe_ = pgo_probe_.get();
            }
            return;
        }
        specializeDesign(can, nullptr);
        return;
    }

    std::string source = cppEmitProgram(*elab_, *arena_, groups);
    spec_stats_.codegenSeconds = sw.elapsed();
    spec_stats_.emittedTuBytes = source.size();

    CppJit jit(cfg_.jit_cache_dir.empty() ? CppJit::defaultCacheDir()
                                          : cfg_.jit_cache_dir,
               cfg_.jit_cache);
    cpp_lib_ = jit.compile(source, static_cast<int>(groups.size()));
    spec_stats_.compileSeconds = cpp_lib_.compileSeconds();
    spec_stats_.wrapSeconds = cpp_lib_.wrapSeconds();
    spec_stats_.cacheHit = cpp_lib_.cacheHit();
}

std::vector<int>
SimulationTool::designCombOrder(const std::vector<char> &can,
                                const std::vector<double> *heat) const
{
    // Any topological order of the comb dependency graph settles to
    // the same fixed point (each block runs once, after all writers of
    // its inputs), so we are free to re-levelize for fusion: a Kahn
    // traversal that prefers to keep emitting blocks of the current
    // specialization class clusters the specializable blocks into the
    // fewest contiguous runs — ideally the whole phase becomes one
    // compiled unit. Multiple writers of one token keep their relative
    // order from the baseline schedule via writer->writer chain edges.
    const auto &blocks = elab_->blocks;
    // Dead blocks never reach the schedule; a live block never reads a
    // dead block's output (that read would make the writer live), so
    // dropping them here leaves a closed dependency graph.
    std::vector<int> base;
    base.reserve(elab_->combOrder.size());
    for (int b : elab_->combOrder)
        if (!dead_block_[b])
            base.push_back(b);
    std::vector<int> pos(blocks.size(), -1);
    for (size_t i = 0; i < base.size(); ++i)
        pos[base[i]] = static_cast<int>(i);
    if (heat) {
        // PGO: among ready blocks prefer the hottest first, so the
        // fused unit executes hot logic in measured-heat order while
        // the Kahn traversal keeps the order topological (any topo
        // order settles to the same fixed point — see above). Sampled
        // heat is noisy, and a total order by raw heat lets that
        // jitter scramble the locality the baseline schedule already
        // has — on a homogeneous design (the fig14 mesh) the shuffle
        // costs 10-20% throughput for no gain. Quantize heat into
        // power-of-two buckets instead: only order-of-magnitude
        // differences move a block, ties keep the fusion-friendly
        // schedule order.
        std::vector<int> bucket(blocks.size(), 64);
        double hmax = 0.0;
        for (int b : base)
            hmax = std::max(hmax, (*heat)[b]);
        if (hmax > 0.0) {
            for (int b : base) {
                const double h = (*heat)[b];
                if (h <= 0.0)
                    continue;
                int k = 0;
                double t = hmax;
                while (k < 63 && h < t / 8) {
                    t /= 8;
                    ++k;
                }
                bucket[b] = k;
            }
            std::vector<int> by_heat = base;
            std::stable_sort(by_heat.begin(), by_heat.end(),
                             [&](int a, int b) {
                                 return bucket[a] < bucket[b];
                             });
            for (size_t i = 0; i < by_heat.size(); ++i)
                pos[by_heat[i]] = static_cast<int>(i);
        }
    }

    const size_t ntokens = elab_->nets.size() + elab_->arrays.size();
    std::vector<std::vector<int>> writers(ntokens);
    for (int b : base) {
        for (int tok : blocks[b].writes)
            writers[tok].push_back(b);
    }
    std::vector<std::vector<int>> succ(blocks.size());
    std::vector<int> indeg(blocks.size(), 0);
    auto addEdge = [&](int a, int b) {
        if (a == b)
            return;
        succ[a].push_back(b);
        ++indeg[b];
    };
    for (int b : base) {
        for (int tok : blocks[b].reads) {
            for (int wtr : writers[tok])
                addEdge(wtr, b);
        }
    }
    for (const auto &ws : writers) {
        for (size_t i = 1; i < ws.size(); ++i)
            addEdge(ws[i - 1], ws[i]);
    }

    auto later = [&](int a, int b) { return pos[a] > pos[b]; };
    using Queue = std::priority_queue<int, std::vector<int>, decltype(later)>;
    Queue ready[2] = {Queue(later), Queue(later)};
    for (int b : base) {
        if (indeg[b] == 0)
            ready[can[b] ? 1 : 0].push(b);
    }
    std::vector<int> order;
    order.reserve(base.size());
    int cls = 1;
    while (order.size() < base.size()) {
        if (ready[cls].empty()) {
            if (ready[1 - cls].empty())
                break;
            cls = 1 - cls;
        }
        int b = ready[cls].top();
        ready[cls].pop();
        order.push_back(b);
        for (int s : succ[b]) {
            if (--indeg[s] == 0)
                ready[can[s] ? 1 : 0].push(s);
        }
    }
    if (order.size() != base.size())
        return base; // defensive: fall back to the baseline order
    return order;
}

void
SimulationTool::specializeDesign(const std::vector<char> &can,
                                 const std::vector<double> *heat)
{
    Stopwatch sw;
    // PGO emits against the heat-refined arena awaiting adoption; the
    // plain path emits against the live one. Offsets baked into the
    // module always match the arena it will run on.
    ArenaStore &store = pgo_arena_ ? *pgo_arena_ : *arena_;
    // Native whole-design schedule: cluster the specializable blocks
    // with a class-aware levelization, fuse each contiguous run into
    // one emitted unit, and translate the flop phase itself.
    std::vector<CppUnit> units;
    auto addNativeStep = [&](const std::vector<int> &run,
                             std::vector<Step> &out, bool seq) {
        Step step;
        step.kind = Step::Kind::Native;
        step.block = run.front();
        step.group = static_cast<int>(units.size());
        step.sequential = seq;
        const ElabBlock &blk = elab_->blocks[run.front()];
        step.reads = &blk.reads; // unused on the pure-arena path
        step.writes = &blk.writes;
        CppUnit unit;
        for (int b : run)
            unit.items.push_back(CppUnit::Item{b, -1});
        units.push_back(std::move(unit));
        out.push_back(step);
    };
    auto buildSteps = [&](const std::vector<int> &order,
                          std::vector<Step> &out, bool seq) {
        std::vector<int> run;
        for (int b : order) {
            if (can[b]) {
                run.push_back(b);
                continue;
            }
            if (!run.empty()) {
                addNativeStep(run, out, seq);
                run.clear();
            }
            out.push_back(makeStep(b));
        }
        if (!run.empty())
            addNativeStep(run, out, seq);
    };
    buildSteps(designCombOrder(can, heat), design_comb_steps_, false);
    buildSteps(elab_->tickOrder, design_tick_steps_, true);

    // The flop phase of the static flop set, coalesced into whole-word
    // next->current copy ranges where the layout allows; packed nets
    // sharing a word with non-flopped residents keep a per-net masked
    // copy. Nets registered dynamically later (a lambda's writeNext)
    // stay on the host loop — see doFlop.
    std::vector<int> static_flops(flopped_nets_.begin(),
                                  flopped_nets_.begin() +
                                      static_cast<long>(n_static_flops_));
    FlopCopyPlan plan = store.layout().flopPlan(static_flops);
    CppUnit flop_unit;
    for (const FlopRange &r : plan.ranges)
        flop_unit.items.push_back(CppUnit::Item{-1, -1, r.off, r.nwords});
    for (int net : plan.rmw_nets)
        flop_unit.items.push_back(CppUnit::Item{-1, net});
    design_flop_unit_ = static_cast<int>(units.size());
    units.push_back(flop_unit);

    // When every tick and comb block fused, also emit one whole-cycle
    // step() entry point — ticks, flops, settle in a single call.
    bool comb_native =
        design_comb_steps_.empty() ||
        (design_comb_steps_.size() == 1 &&
         design_comb_steps_[0].kind == Step::Kind::Native);
    bool tick_native =
        design_tick_steps_.empty() ||
        (design_tick_steps_.size() == 1 &&
         design_tick_steps_[0].kind == Step::Kind::Native);
    if (comb_native && tick_native) {
        CppUnit step_unit;
        if (!design_tick_steps_.empty())
            step_unit.items = units[design_tick_steps_[0].group].items;
        step_unit.items.insert(step_unit.items.end(),
                               flop_unit.items.begin(),
                               flop_unit.items.end());
        if (!design_comb_steps_.empty()) {
            const auto &comb = units[design_comb_steps_[0].group].items;
            step_unit.items.insert(step_unit.items.end(), comb.begin(),
                                   comb.end());
        }
        design_step_unit_ = static_cast<int>(units.size());
        units.push_back(std::move(step_unit));
    }

    design_source_ = cppEmitProgram(*elab_, store, units);
    design_nunits_ = static_cast<int>(units.size());
    spec_stats_.emittedTuBytes = design_source_.size();
    spec_stats_.codegenSeconds += sw.elapsed();
    spec_stats_.tiered = cfg_.jit_tiered;

    std::string cache_dir = cfg_.jit_cache_dir.empty()
                                ? CppJit::defaultCacheDir()
                                : cfg_.jit_cache_dir;
    if (!cfg_.jit_tiered) {
        CppJit jit(cache_dir, cfg_.jit_cache, CppJit::kWholeDesignFlags);
        cpp_lib_ = jit.compile(design_source_, design_nunits_);
        adoptNativeTier();
        return;
    }
    // Tiered warm-up: keep simulating on the bytecode schedule while
    // the compiler runs; maybeSwapTier() adopts the module at the next
    // cycle boundary after the thread finishes.
    jit_thread_ = std::thread([this, cache_dir] {
        try {
            CppJit jit(cache_dir, cfg_.jit_cache,
                       CppJit::kWholeDesignFlags);
            pending_lib_ = jit.compile(design_source_, design_nunits_);
        } catch (...) {
            jit_error_ = std::current_exception();
        }
        jit_ready_.store(true, std::memory_order_release);
    });
}

void
SimulationTool::adoptNativeTier()
{
    spec_stats_.compileSeconds = cpp_lib_.compileSeconds();
    spec_stats_.wrapSeconds = cpp_lib_.wrapSeconds();
    spec_stats_.cacheHit = cpp_lib_.cacheHit();
    spec_stats_.numGroups = design_nunits_;
    spec_stats_.tierSwapCycle = static_cast<int64_t>(numCycles());
    active_comb_ = &design_comb_steps_;
    active_tick_ = &design_tick_steps_;
    design_native_ = true;
}

void
SimulationTool::maybeSwapTier()
{
    if (pgo_pending_ && numCycles() >= cfg_.pgo_warm_cycles)
        startPgoBuild();
    if (!designMode() || design_native_ || tier_failed_ ||
        !cfg_.jit_tiered)
        return;
    if (!jit_ready_.load(std::memory_order_acquire))
        return;
    if (jit_thread_.joinable())
        jit_thread_.join();
    if (jit_error_) {
        // Report the failure once; the bytecode tier stays active (it
        // is correct, just slower — and under PGO it keeps the old
        // layout, the pending arena is simply never adopted), so a
        // caller may swallow this and keep simulating.
        tier_failed_ = true;
        std::exception_ptr err = jit_error_;
        jit_error_ = nullptr;
        std::rethrow_exception(err);
    }
    cpp_lib_ = std::move(pending_lib_);
    if (pgo_arena_)
        migrateArena();
    adoptNativeTier();
}

void
SimulationTool::startPgoBuild()
{
    pgo_pending_ = false;
    // Heat is consumed synchronously here (layout + schedule order);
    // only the compile itself runs on the background thread.
    const std::vector<double> *heat = nullptr;
    if (probe_ && probe_->block_seconds.size() == elab_->blocks.size())
        heat = &probe_->block_seconds;
    auto lay = std::make_shared<const ArenaLayout>(
        ArenaLayout::profiled(*elab_, nullptr, heat));
    pgo_arena_ = std::make_unique<ArenaStore>(*elab_, std::move(lay));
    specializeDesign(can_, heat);
    // Drop the internal warm-up probe (an externally attached SimScope
    // stays); its heat is already baked into the pending layout.
    if (probe_ == pgo_probe_.get())
        probe_ = nullptr;
    pgo_probe_.reset();
    can_.clear();
    can_.shrink_to_fit();
}

void
SimulationTool::migrateArena()
{
    // Per-net logical copy old arena -> heat-refined arena: values
    // land in their new physical slots, so the native module and the
    // migrated state agree from the first post-swap instruction.
    const int nnets = static_cast<int>(elab_->nets.size());
    for (int net = 0; net < nnets; ++net) {
        pgo_arena_->write(net, arena_->read(net));
        pgo_arena_->writeNext(net, arena_->readNext(net));
    }
    for (size_t a = 0; a < elab_->arrays.size(); ++a) {
        const MemArray *array = elab_->arrays[a];
        for (int i = 0; i < array->depth(); ++i) {
            pgo_arena_->arrayWrite(static_cast<int>(a), i,
                                   arena_->arrayRead(static_cast<int>(a),
                                                     i));
        }
    }
    arena_ = std::move(pgo_arena_);
    slot_eval_ = std::make_unique<SlotEvaluator>(*arena_);
    accessor_.bind(arena_.get(), boxed_.get(),
                   [this](int token) { return tokenInArena(token); });
    flop_plan_ = arena_->layout().flopPlan(
        std::vector<int>(flopped_nets_.begin(),
                         flopped_nets_.begin() +
                             static_cast<long>(n_static_flops_)));
    // The bytecode tier's programs still index the old layout, but
    // they die with the swap: active_* swing to the design schedule in
    // adoptNativeTier() and never swing back.
}

bool
SimulationTool::tierPending() const
{
    return designMode() && cfg_.jit_tiered && !design_native_ &&
           !tier_failed_;
}

LayoutStats
SimulationTool::layoutStats() const
{
    if (!arena_)
        return LayoutStats{};
    LayoutStats s = arena_->layout().stats();
    s.flop_memcpy_ranges = static_cast<int>(flop_plan_.ranges.size());
    return s;
}

void
SimulationTool::markFlopped(int net)
{
    if (!is_flopped_[net]) {
        is_flopped_[net] = 1;
        flopped_nets_.push_back(net);
    }
}

void
SimulationTool::enqueueReaders(int net)
{
    for (int blk : elab_->netReaders[net]) {
        int step = comb_step_of_block_[blk];
        if (step >= 0 && !in_worklist_[step]) {
            in_worklist_[step] = 1;
            worklist_.push_back(step);
        }
    }
}

void
SimulationTool::buildGating()
{
    // The event-driven scheduler is already change-driven, and the
    // fused cpp-design tiers run the whole settle as one compiled
    // call — gating applies to the static per-step schedules only.
    gating_ = cfg_.gating && !eventDriven() && !designMode();
    if (!gating_)
        return;
    step_dirty_.assign(comb_steps_.size(), 1);

    writer_steps_of_token_.assign(elab_->nets.size() +
                                      elab_->arrays.size(),
                                  {});
    for (size_t i = 0; i < comb_steps_.size(); ++i) {
        for (int token : *comb_steps_[i].writes)
            writer_steps_of_token_[token].push_back(
                static_cast<int>(i));
    }

    // Tokens tick blocks may write with blocking semantics: plain
    // nets that are not statically flopped (a flopped net's blocking
    // write is clobbered by the flop before the post-tick settle can
    // read it) and every tick-written array. A net that only later
    // becomes a dynamic flop stays on the list — marking it is merely
    // conservative.
    for (const Step &step : tick_steps_) {
        for (int token : *step.writes) {
            if (isArrayToken(token) || !is_flopped_[token])
                tick_dirty_tokens_.push_back(token);
        }
    }
    std::sort(tick_dirty_tokens_.begin(), tick_dirty_tokens_.end());
    tick_dirty_tokens_.erase(std::unique(tick_dirty_tokens_.begin(),
                                         tick_dirty_tokens_.end()),
                             tick_dirty_tokens_.end());
}

void
SimulationTool::markReaderStepsDirty(int token)
{
    for (int blk : elab_->netReaders[token]) {
        int step = comb_step_of_block_[blk];
        if (step >= 0)
            step_dirty_[step] = 1;
    }
}

void
SimulationTool::markTokenStepsDirty(int token)
{
    markReaderStepsDirty(token);
    for (int step : writer_steps_of_token_[token])
        step_dirty_[step] = 1;
}

bool
SimulationTool::isArrayToken(int token) const
{
    return token >= static_cast<int>(elab_->nets.size());
}

void
SimulationTool::copyArrayToArena(int token)
{
    int id = token - static_cast<int>(elab_->nets.size());
    const MemArray *array = elab_->arrays[id];
    for (int i = 0; i < array->depth(); ++i)
        arena_->arrayWrite(id, i, boxed_->arrayRead(id, i));
}

void
SimulationTool::copyArrayToBoxed(int token)
{
    int id = token - static_cast<int>(elab_->nets.size());
    const MemArray *array = elab_->arrays[id];
    for (int i = 0; i < array->depth(); ++i)
        boxed_->arrayWrite(id, i, arena_->arrayRead(id, i));
}

void
SimulationTool::syncIn(const Step &step)
{
    // Marshal boundary state into the arena before a specialized
    // group runs (the Python -> C++ call boundary). Arena-owned
    // tokens never cross: the compiled component keeps them.
    for (int net : *step.reads) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net))
            copyArrayToArena(net);
        else
            arena_->write(net, boxed_->read(net));
    }
    for (int net : *step.writes) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net)) {
            copyArrayToArena(net);
        } else if (step.sequential) {
            arena_->writeNext(net, boxed_->readNext(net));
        } else {
            arena_->write(net, boxed_->read(net));
        }
    }
}

void
SimulationTool::syncOut(const Step &step, std::vector<int> *changed)
{
    // Marshal boundary results back (the C++ -> Python return
    // boundary); arena-owned writes stay put (their change detection
    // runs against the pre-run snapshot, see diffWrites).
    for (int net : *step.writes) {
        if (tokenInArena(net))
            continue;
        if (isArrayToken(net)) {
            copyArrayToBoxed(net);
        } else if (step.sequential) {
            boxed_->writeNext(net, arena_->readNext(net));
        } else {
            if (boxed_->write(net, arena_->read(net)) && changed)
                changed->push_back(net);
        }
    }
}

void
SimulationTool::snapshotWrites(const Step &step)
{
    write_snapshot_.clear();
    for (int net : *step.writes) {
        if (!tokenInArena(net) || isArrayToken(net))
            continue;
        const uint64_t *words = arena_->data() + arena_->offset(net);
        for (int w = 0; w < arena_->nwords(net); ++w)
            write_snapshot_.push_back(words[w]);
    }
}

void
SimulationTool::diffWrites(const Step &step, std::vector<int> *changed)
{
    size_t at = 0;
    for (int net : *step.writes) {
        if (!tokenInArena(net) || isArrayToken(net))
            continue;
        const uint64_t *words = arena_->data() + arena_->offset(net);
        bool differs = false;
        for (int w = 0; w < arena_->nwords(net); ++w)
            differs |= words[w] != write_snapshot_[at++];
        if (differs)
            changed->push_back(net);
    }
}

void
SimulationTool::runStep(const Step &step, std::vector<int> *changed)
{
    if (ScopeProbe *p = probe_) {
        // A fused bytecode group runs many blocks in one step; timing
        // the step as a whole would credit the entire group to one
        // block id and starve every other member of heat (the PGO
        // re-layout and SimScope rankings both read per-block heat).
        // Descend and account each member program individually.
        if (step.kind == Step::Kind::Bytecode && step.group >= 0 &&
            group_blocks_[step.group].size() > 1 && !changed &&
            !useBoxed()) {
            const auto &blks = group_blocks_[step.group];
            const auto &progs = group_bc_[step.group];
            for (size_t i = 0; i < progs.size(); ++i) {
                if (p->shouldTime(blks[i])) {
                    Stopwatch sw;
                    bcRun(*progs[i], arena_->data(),
                          bc_scratch_.data());
                    p->addBlockTime(blks[i], sw.elapsed());
                } else {
                    bcRun(*progs[i], arena_->data(),
                          bc_scratch_.data());
                }
            }
            return;
        }
        if (p->shouldTime(step.block)) {
            Stopwatch sw;
            runStepImpl(step, changed);
            p->addBlockTime(step.block, sw.elapsed());
            return;
        }
    }
    runStepImpl(step, changed);
}

void
SimulationTool::runStepImpl(const Step &step, std::vector<int> *changed)
{
    const bool hybrid = useBoxed() && arena_ != nullptr;
    switch (step.kind) {
      case Step::Kind::Lambda:
        // Writes route through the SignalAccess interface, which
        // performs change detection and reader scheduling itself.
        elab_->blocks[step.block].fn();
        break;
      case Step::Kind::BoxedIr:
        boxed_eval_->run(elab_->blocks[step.block], changed);
        break;
      case Step::Kind::SlotIr:
        slot_eval_->run(elab_->blocks[step.block], changed);
        break;
      case Step::Kind::Bytecode:
      case Step::Kind::Native: {
        if (hybrid)
            syncIn(step);
        bool track = changed && !step.sequential;
        if (track)
            snapshotWrites(step);
        if (step.kind == Step::Kind::Native) {
            cpp_lib_.group(step.group)(arena_->data());
        } else {
            for (const BcProgram *bc : group_bc_[step.group])
                bcRun(*bc, arena_->data(), bc_scratch_.data());
        }
        if (track)
            diffWrites(step, changed);
        if (hybrid)
            syncOut(step, changed);
        break;
      }
    }
}

void
SimulationTool::settle()
{
    if (eventDriven()) {
        std::vector<int> changed;
        size_t head = 0;
        size_t iterations = 0;
        const size_t limit = (elab_->blocks.size() + 1) * 10000;
        while (head < worklist_.size()) {
            int step = worklist_[head++];
            in_worklist_[step] = 0;
            changed.clear();
            runStep(comb_steps_[step], &changed);
            for (int net : changed)
                enqueueReaders(net);
            if (++iterations > limit) {
                throw std::runtime_error(
                    "combinational logic failed to converge "
                    "(oscillating cycle?)");
            }
        }
        worklist_.clear();
    } else if (gating_) {
        // Static order, change-driven execution: a step whose inputs
        // did not change since its last run recomputes values it
        // already holds, so it is skipped. Dirty bits set mid-loop
        // belong to later steps (the schedule is topological), so one
        // pass still settles fully.
        std::vector<int> changed;
        for (size_t i = 0; i < comb_steps_.size(); ++i) {
            if (!step_dirty_[i]) {
                ++gated_steps_;
                if (probe_)
                    ++probe_->gated_steps;
                continue;
            }
            step_dirty_[i] = 0;
            changed.clear();
            runStep(comb_steps_[i], &changed);
            for (int net : changed)
                markReaderStepsDirty(net);
            // Array writes elude word-diff change detection: re-run
            // the readers of every array this step may have touched.
            for (int token : *comb_steps_[i].writes) {
                if (isArrayToken(token))
                    markReaderStepsDirty(token);
            }
        }
    } else {
        for (const Step &step : *active_comb_)
            runStep(step, nullptr);
    }
    dirty_ = false;
}

void
SimulationTool::cycle()
{
    maybeSwapTier();
    if (probe_) {
        cycleProfiled();
    } else if (design_native_ && design_step_unit_ >= 0 &&
               flopped_nets_.size() == n_static_flops_) {
        // Whole cycle in one native call: ticks, flops, settle. Legal
        // only while no dynamically registered flops exist; settle()
        // here runs no lambdas (everything fused), so the flop set
        // cannot change under us.
        if (dirty_)
            settle();
        cpp_lib_.group(design_step_unit_)(arena_->data());
    } else {
        if (eventDriven() || dirty_)
            settle();
        for (const Step &step : *active_tick_)
            runStep(step, nullptr);
        if (gating_) {
            for (int token : tick_dirty_tokens_)
                markTokenStepsDirty(token);
        }
        std::vector<int> changed;
        doFlop(eventDriven() ? &changed : nullptr);
        if (eventDriven()) {
            for (int token : tick_array_tokens_)
                enqueueReaders(token);
        }
        settle();
    }
    uint64_t now = ncycles_.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const auto &hook : cycle_hooks_)
        hook(now);
}

void
SimulationTool::cycleProfiled()
{
    ScopeProbe *p = probe_;
    Stopwatch sw;
    if (eventDriven() || dirty_)
        settle();
    p->settle_seconds += sw.elapsed();

    sw.restart();
    for (const Step &step : *active_tick_)
        runStep(step, nullptr);
    if (gating_) {
        for (int token : tick_dirty_tokens_)
            markTokenStepsDirty(token);
    }
    p->tick_seconds += sw.elapsed();

    sw.restart();
    std::vector<int> changed;
    doFlop(eventDriven() ? &changed : nullptr);
    if (eventDriven()) {
        for (int token : tick_array_tokens_)
            enqueueReaders(token);
    }
    p->flop_seconds += sw.elapsed();

    sw.restart();
    settle();
    p->settle_seconds += sw.elapsed();
}

void
SimulationTool::eval()
{
    maybeSwapTier();
    if (ScopeProbe *p = probe_) {
        Stopwatch sw;
        settle();
        p->settle_seconds += sw.elapsed();
        return;
    }
    settle();
}

void
SimulationTool::doFlop(std::vector<int> *changed)
{
    if (design_native_) {
        // Statically flopped nets are copied by the compiled flop
        // unit; the host loop covers only the dynamically registered
        // tail. cpp-design is never event-driven, so no change
        // notification is needed.
        (void)changed;
        cpp_lib_.group(design_flop_unit_)(arena_->data());
        for (size_t i = n_static_flops_; i < flopped_nets_.size(); ++i)
            arena_->flop(flopped_nets_[i]);
        return;
    }
    if (arena_ && !useBoxed() && !changed && !gating_) {
        // No per-net change notification needed: copy the static flop
        // set as whole-word ranges (plus the masked stragglers whose
        // word-mates are not all flopped), then the dynamic tail.
        arena_->flopRanges(flop_plan_.ranges);
        for (int net : flop_plan_.rmw_nets)
            arena_->flop(net);
        for (size_t i = n_static_flops_; i < flopped_nets_.size(); ++i)
            arena_->flop(flopped_nets_[i]);
        return;
    }
    for (int net : flopped_nets_) {
        bool ch = tokenInArena(net) ? arena_->flop(net)
                                    : boxed_->flop(net);
        if (ch) {
            if (changed)
                enqueueReaders(net);
            if (gating_)
                markTokenStepsDirty(net);
        }
    }
}

Bits
SimulationTool::readNet(int net) const
{
    return tokenInArena(net) ? arena_->read(net) : boxed_->read(net);
}

Bits
SimulationTool::readArray(const MemArray &array, uint64_t index) const
{
    int id = array.arrayId();
    return tokenInArena(elab_->arrayToken(id))
               ? arena_->arrayRead(id, index)
               : boxed_->arrayRead(id, index);
}

void
SimulationTool::writeArray(MemArray &array, uint64_t index,
                           const Bits &value)
{
    int id = array.arrayId();
    if (tokenInArena(elab_->arrayToken(id)))
        arena_->arrayWrite(id, index, value);
    else
        boxed_->arrayWrite(id, index, value);
    dirty_ = true;
    if (eventDriven())
        enqueueReaders(elab_->arrayToken(id));
    else if (gating_)
        markTokenStepsDirty(elab_->arrayToken(id));
}

Bits
SimulationTool::read(const Signal &sig) const
{
    int net = sig.netId();
    return tokenInArena(net) ? arena_->read(net) : boxed_->read(net);
}

void
SimulationTool::write(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    bool ch = tokenInArena(net) ? arena_->write(net, value)
                                : boxed_->write(net, value);
    if (ch) {
        dirty_ = true;
        if (eventDriven())
            enqueueReaders(net);
        else if (gating_)
            markTokenStepsDirty(net);
    }
}

void
SimulationTool::writeNext(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    markFlopped(net);
    if (tokenInArena(net))
        arena_->writeNext(net, value);
    else
        boxed_->writeNext(net, value);
}

// ------------------------------------------- SimSnap state capture

Bits
SimulationTool::readNetNext(int net) const
{
    return accessor_.readNetNext(net);
}

void
SimulationTool::pokeNet(int net, const Bits &value)
{
    accessor_.pokeNet(net, value);
}

void
SimulationTool::pokeNetNext(int net, const Bits &value)
{
    accessor_.pokeNetNext(net, value);
}

std::vector<int>
SimulationTool::dynamicFlopNets() const
{
    return NetAccessor::dynamicFlops(*elab_, flopped_nets_);
}

void
SimulationTool::registerDynamicFlops(const std::vector<int> &nets)
{
    for (int net : nets)
        markFlopped(net);
}

} // namespace cmtl
