/**
 * @file
 * The SimJIT compile/wrap stage: turn emitted C++ into callable code.
 *
 * Mirrors PyMTL's SimJIT pipeline: the generated source is compiled
 * with the system C++ compiler into a shared library, loaded with
 * dlopen, and its entry points bound as function pointers. Compiled
 * libraries are cached on disk, the analog of SimJIT-RTL's translation
 * cache: a warm cache converts the (dominant) compile overhead into a
 * one-time cost.
 *
 * Cache key: FNV-1a over a cache-format version tag, the compiler
 * version (g++ -dumpfullversion -dumpversion), the exact flag string
 * and the source text. Hashing only the source would silently reuse a
 * stale .so after a toolchain upgrade or a flag change; folding all
 * four in makes every such change miss cleanly. The format version is
 * also part of the file name (cmtl_v2_<hash>.so), so entries written
 * under an older scheme are never consulted again.
 */

#ifndef CMTL_CORE_JIT_CPP_H
#define CMTL_CORE_JIT_CPP_H

#include <string>
#include <vector>

namespace cmtl {

/** A loaded specialized library. Owns the dlopen handle. */
class CppJitLibrary
{
  public:
    using GroupFn = void (*)(uint64_t *);

    CppJitLibrary() = default;
    ~CppJitLibrary();
    CppJitLibrary(CppJitLibrary &&other) noexcept;
    CppJitLibrary &operator=(CppJitLibrary &&other) noexcept;
    CppJitLibrary(const CppJitLibrary &) = delete;
    CppJitLibrary &operator=(const CppJitLibrary &) = delete;

    bool loaded() const { return handle_ != nullptr; }
    GroupFn group(int k) const { return groups_.at(k); }
    int numGroups() const { return static_cast<int>(groups_.size()); }

    bool cacheHit() const { return cache_hit_; }
    double compileSeconds() const { return compile_seconds_; }
    double wrapSeconds() const { return wrap_seconds_; }

  private:
    friend class CppJit;
    void *handle_ = nullptr;
    std::vector<GroupFn> groups_;
    bool cache_hit_ = false;
    double compile_seconds_ = 0.0;
    double wrap_seconds_ = 0.0;
};

/** Compiles and loads emitted specializer source. */
class CppJit
{
  public:
    /**
     * Extra flags for whole-design (cpp-design) translation units.
     * Kept at the base -O1: the fused functions are huge and measured
     * -O2 compiles are an order of magnitude slower to build while
     * producing *slower* steady-state code on them.
     */
    static constexpr const char *kWholeDesignFlags = "";
    /**
     * @param cache_dir directory for generated sources and cached .so
     *                  files; created (with parents) if missing.
     *                  Throws std::runtime_error when it cannot be
     *                  created.
     * @param use_cache reuse a previously compiled library when the
     *                  cache key matches
     * @param extra_flags appended to the base compile flags; part of
     *                  the cache key
     */
    explicit CppJit(std::string cache_dir = defaultCacheDir(),
                    bool use_cache = true, std::string extra_flags = "");

    /** True if a working C++ compiler is available on this host. */
    static bool compilerAvailable();

    /** Directory honouring $CMTL_JIT_CACHE, else /tmp/cmtl-jit-<uid>. */
    static std::string defaultCacheDir();

    /** Compiler version string folded into the cache key. */
    static std::string compilerVersion();

    /** The full flag string used for compiles (base + extra). */
    std::string flagString() const;

    /** Cache file this source would hit (for tests/diagnostics). */
    std::string cachePathFor(const std::string &source) const;

    /**
     * Cache size cap in bytes: $CMTL_JIT_CACHE_MAX_MB, default 256
     * MiB. After every publish the cache is trimmed back under the
     * cap by deleting the least-recently-used entries (cache hits
     * refresh an entry's mtime).
     */
    static uint64_t cacheMaxBytes();

    /**
     * Delete least-recently-used cmtl_*.so entries from @p dir until
     * the total size fits @p max_bytes; @p keep is never deleted.
     * Exposed for the regression test.
     */
    static void evictCache(const std::string &dir, uint64_t max_bytes,
                           const std::string &keep);

    /**
     * Compile @p source (with @p ngroups cmtl_grp_<k> entry points)
     * and bind the group symbols. Throws std::runtime_error on
     * compiler failure.
     */
    CppJitLibrary compile(const std::string &source, int ngroups);

    /**
     * Compile several independent translation units — one library per
     * source, each with its own cache entry, so per-unit cache hits
     * survive edits to the others. ParSim's cpp-design tier uses this
     * for its one-TU-per-island modules. @p ngroups must parallel
     * @p sources. Throws on the first failing compile.
     */
    std::vector<CppJitLibrary>
    compileMany(const std::vector<std::string> &sources,
                const std::vector<int> &ngroups);

  private:
    std::string cache_dir_;
    bool use_cache_;
    std::string extra_flags_;
};

} // namespace cmtl

#endif // CMTL_CORE_JIT_CPP_H
