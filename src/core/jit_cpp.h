/**
 * @file
 * The SimJIT compile/wrap stage: turn emitted C++ into callable code.
 *
 * Mirrors PyMTL's SimJIT pipeline: the generated source is compiled
 * with the system C++ compiler into a shared library, loaded with
 * dlopen, and its entry points bound as function pointers. Compiled
 * libraries are cached on disk keyed by a hash of the source text, the
 * analog of SimJIT-RTL's translation cache: a warm cache converts the
 * (dominant) compile overhead into a one-time cost.
 */

#ifndef CMTL_CORE_JIT_CPP_H
#define CMTL_CORE_JIT_CPP_H

#include <string>
#include <vector>

namespace cmtl {

/** A loaded specialized library. Owns the dlopen handle. */
class CppJitLibrary
{
  public:
    using GroupFn = void (*)(uint64_t *);

    CppJitLibrary() = default;
    ~CppJitLibrary();
    CppJitLibrary(CppJitLibrary &&other) noexcept;
    CppJitLibrary &operator=(CppJitLibrary &&other) noexcept;
    CppJitLibrary(const CppJitLibrary &) = delete;
    CppJitLibrary &operator=(const CppJitLibrary &) = delete;

    bool loaded() const { return handle_ != nullptr; }
    GroupFn group(int k) const { return groups_.at(k); }
    int numGroups() const { return static_cast<int>(groups_.size()); }

    bool cacheHit() const { return cache_hit_; }
    double compileSeconds() const { return compile_seconds_; }
    double wrapSeconds() const { return wrap_seconds_; }

  private:
    friend class CppJit;
    void *handle_ = nullptr;
    std::vector<GroupFn> groups_;
    bool cache_hit_ = false;
    double compile_seconds_ = 0.0;
    double wrap_seconds_ = 0.0;
};

/** Compiles and loads emitted specializer source. */
class CppJit
{
  public:
    /**
     * @param cache_dir directory for generated sources and cached .so
     *                  files; created if missing
     * @param use_cache reuse a previously compiled library when the
     *                  source hash matches
     */
    explicit CppJit(std::string cache_dir = defaultCacheDir(),
                    bool use_cache = true);

    /** True if a working C++ compiler is available on this host. */
    static bool compilerAvailable();

    /** Directory honouring $CMTL_JIT_CACHE, else /tmp/cmtl-jit-<uid>. */
    static std::string defaultCacheDir();

    /**
     * Compile @p source (with @p ngroups cmtl_grp_<k> entry points)
     * and bind the group symbols. Throws std::runtime_error on
     * compiler failure.
     */
    CppJitLibrary compile(const std::string &source, int ngroups);

  private:
    std::string cache_dir_;
    bool use_cache_;
};

} // namespace cmtl

#endif // CMTL_CORE_JIT_CPP_H
