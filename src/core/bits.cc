#include "bits.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cmtl {

int
clog2(uint64_t value)
{
    int n = 1;
    while (value > 1) {
        value >>= 1;
        ++n;
    }
    return n;
}

int
bitsFor(uint64_t n)
{
    if (n <= 2)
        return 1;
    int b = 0;
    uint64_t cap = 1;
    while (cap < n) {
        cap <<= 1;
        ++b;
    }
    return b;
}

Bits::Bits(int nbits, uint64_t value)
    : nbits_(static_cast<uint32_t>(nbits)), v0_(0)
{
    if (nbits < 1)
        throw std::invalid_argument("Bits width must be >= 1");
    if (nwords() > 1) {
        wide_.assign(nwords(), 0);
        wide_[0] = value;
    } else {
        v0_ = value;
    }
    normalize();
}

Bits
Bits::fromWords(int nbits, const std::vector<uint64_t> &words)
{
    Bits b(nbits);
    int n = std::min<int>(b.nwords(), static_cast<int>(words.size()));
    for (int i = 0; i < n; ++i)
        b.words()[i] = words[i];
    b.normalize();
    return b;
}

Bits
Bits::fromString(int nbits, const std::string &text)
{
    Bits b(nbits);
    if (text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0) {
        int pos = 0;
        for (auto it = text.rbegin(); it != text.rend() - 2; ++it) {
            char c = *it;
            if (c == '_')
                continue;
            uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + c - 'a';
            else if (c >= 'A' && c <= 'F')
                digit = 10 + c - 'A';
            else
                throw std::invalid_argument("bad hex digit in " + text);
            if (pos < nbits)
                b.setSlice(pos, Bits(std::min(4, nbits - pos), digit));
            pos += 4;
        }
    } else if (text.rfind("0b", 0) == 0 || text.rfind("0B", 0) == 0) {
        int pos = 0;
        for (auto it = text.rbegin(); it != text.rend() - 2; ++it) {
            char c = *it;
            if (c == '_')
                continue;
            if (c != '0' && c != '1')
                throw std::invalid_argument("bad binary digit in " + text);
            if (pos < nbits)
                b.setBit(pos, c == '1');
            ++pos;
        }
    } else {
        b = Bits(nbits, std::stoull(text));
    }
    return b;
}

void
Bits::normalize()
{
    words()[nwords() - 1] &= topWordMask(nbits());
}

uint64_t
Bits::word(int i) const
{
    if (i >= nwords())
        return 0;
    return words()[i];
}

bool
Bits::fitsUint64() const
{
    for (int i = 1; i < nwords(); ++i) {
        if (words()[i] != 0)
            return false;
    }
    return true;
}

bool
Bits::any() const
{
    for (int i = 0; i < nwords(); ++i) {
        if (words()[i] != 0)
            return true;
    }
    return false;
}

bool
Bits::all() const
{
    for (int i = 0; i < nwords() - 1; ++i) {
        if (words()[i] != ~uint64_t(0))
            return false;
    }
    return words()[nwords() - 1] == topWordMask(nbits());
}

bool
Bits::bit(int pos) const
{
    assert(pos >= 0 && pos < nbits());
    return (words()[pos / 64] >> (pos % 64)) & 1;
}

void
Bits::setBit(int pos, bool value)
{
    assert(pos >= 0 && pos < nbits());
    uint64_t mask = uint64_t(1) << (pos % 64);
    if (value)
        words()[pos / 64] |= mask;
    else
        words()[pos / 64] &= ~mask;
}

Bits
Bits::slice(int lsb, int len) const
{
    assert(lsb >= 0 && len >= 1 && lsb + len <= nbits());
    Bits out(len);
    int word_off = lsb / 64;
    int bit_off = lsb % 64;
    for (int i = 0; i < out.nwords(); ++i) {
        uint64_t lo = word(word_off + i) >> bit_off;
        uint64_t hi =
            bit_off == 0 ? 0 : word(word_off + i + 1) << (64 - bit_off);
        out.words()[i] = lo | hi;
    }
    out.normalize();
    return out;
}

void
Bits::setSlice(int lsb, const Bits &src)
{
    assert(lsb >= 0 && lsb + src.nbits() <= nbits());
    for (int i = 0; i < src.nbits(); ++i)
        setBit(lsb + i, src.bit(i));
}

Bits
Bits::zext(int nbits) const
{
    Bits out(nbits);
    for (int i = 0; i < out.nwords(); ++i)
        out.words()[i] = word(i);
    out.normalize();
    return out;
}

Bits
Bits::sext(int nbits) const
{
    Bits out = zext(nbits);
    if (nbits > this->nbits() && bit(this->nbits() - 1)) {
        for (int i = this->nbits(); i < nbits; ++i)
            out.setBit(i, true);
    }
    return out;
}

int64_t
Bits::toInt64() const
{
    if (nbits() > 64)
        throw std::logic_error("toInt64 on wide Bits");
    uint64_t v = toUint64();
    if (nbits() < 64 && (v >> (nbits() - 1)) & 1)
        v |= ~((uint64_t(1) << nbits()) - 1);
    return static_cast<int64_t>(v);
}

namespace {

/** Apply a word-wise binary function with zero extension to max width. */
template <typename Fn>
Bits
wordwise(const Bits &a, const Bits &b, Fn &&fn)
{
    int nbits = std::max(a.nbits(), b.nbits());
    Bits out(nbits);
    std::vector<uint64_t> words(out.nwords());
    for (int i = 0; i < out.nwords(); ++i)
        words[i] = fn(a.word(i), b.word(i));
    return Bits::fromWords(nbits, words);
}

} // namespace

Bits
operator+(const Bits &a, const Bits &b)
{
    int nbits = std::max(a.nbits(), b.nbits());
    Bits out(nbits);
    std::vector<uint64_t> words(out.nwords());
    uint64_t carry = 0;
    for (int i = 0; i < out.nwords(); ++i) {
        uint64_t s = a.word(i) + b.word(i);
        uint64_t c1 = s < a.word(i);
        uint64_t s2 = s + carry;
        uint64_t c2 = s2 < s;
        words[i] = s2;
        carry = c1 | c2;
    }
    return Bits::fromWords(nbits, words);
}

Bits
operator-(const Bits &a, const Bits &b)
{
    int nbits = std::max(a.nbits(), b.nbits());
    Bits out(nbits);
    std::vector<uint64_t> words(out.nwords());
    uint64_t borrow = 0;
    for (int i = 0; i < out.nwords(); ++i) {
        uint64_t d = a.word(i) - b.word(i);
        uint64_t b1 = a.word(i) < b.word(i);
        uint64_t d2 = d - borrow;
        uint64_t b2 = d < borrow;
        words[i] = d2;
        borrow = b1 | b2;
    }
    return Bits::fromWords(nbits, words);
}

Bits
operator*(const Bits &a, const Bits &b)
{
    int nbits = std::max(a.nbits(), b.nbits());
    int nwords = bitsToWords(nbits);
    std::vector<uint64_t> acc(nwords, 0);
    // Schoolbook multiply over 32-bit half words, truncated to nbits.
    int nhalf = nwords * 2;
    auto half = [](const Bits &x, int i) -> uint64_t {
        uint64_t w = x.word(i / 2);
        return (i % 2) ? (w >> 32) : (w & 0xffffffffull);
    };
    std::vector<uint64_t> halves(nhalf, 0);
    for (int i = 0; i < nhalf; ++i) {
        uint64_t carry = 0;
        uint64_t ai = half(a, i);
        if (ai == 0)
            continue;
        for (int j = 0; i + j < nhalf; ++j) {
            uint64_t prod = ai * half(b, j) + halves[i + j] + carry;
            halves[i + j] = prod & 0xffffffffull;
            carry = prod >> 32;
        }
    }
    for (int i = 0; i < nwords; ++i)
        acc[i] = halves[2 * i] | (halves[2 * i + 1] << 32);
    return Bits::fromWords(nbits, acc);
}

Bits
operator/(const Bits &a, const Bits &b)
{
    if (!b.any())
        throw std::domain_error("Bits division by zero");
    if (a.fitsUint64() && b.fitsUint64()) {
        int nbits = std::max(a.nbits(), b.nbits());
        return Bits(nbits, a.toUint64() / b.toUint64());
    }
    // Bit-serial long division for wide values.
    int nbits = std::max(a.nbits(), b.nbits());
    Bits quotient(nbits);
    Bits remainder(nbits);
    for (int i = nbits - 1; i >= 0; --i) {
        remainder = remainder.shl(1);
        if (i < a.nbits())
            remainder.setBit(0, a.bit(i));
        if (remainder >= b) {
            remainder = remainder - b.zext(nbits);
            quotient.setBit(i, true);
        }
    }
    return quotient;
}

Bits
operator%(const Bits &a, const Bits &b)
{
    if (!b.any())
        throw std::domain_error("Bits modulo by zero");
    if (a.fitsUint64() && b.fitsUint64()) {
        int nbits = std::max(a.nbits(), b.nbits());
        return Bits(nbits, a.toUint64() % b.toUint64());
    }
    int nbits = std::max(a.nbits(), b.nbits());
    Bits remainder(nbits);
    for (int i = nbits - 1; i >= 0; --i) {
        remainder = remainder.shl(1);
        if (i < a.nbits())
            remainder.setBit(0, a.bit(i));
        if (remainder >= b)
            remainder = remainder - b.zext(nbits);
    }
    return remainder;
}

Bits
operator&(const Bits &a, const Bits &b)
{
    return wordwise(a, b, [](uint64_t x, uint64_t y) { return x & y; });
}

Bits
operator|(const Bits &a, const Bits &b)
{
    return wordwise(a, b, [](uint64_t x, uint64_t y) { return x | y; });
}

Bits
operator^(const Bits &a, const Bits &b)
{
    return wordwise(a, b, [](uint64_t x, uint64_t y) { return x ^ y; });
}

Bits
Bits::operator~() const
{
    Bits out(nbits());
    for (int i = 0; i < nwords(); ++i)
        out.words()[i] = ~words()[i];
    out.normalize();
    return out;
}

Bits
Bits::shl(int amount) const
{
    assert(amount >= 0);
    Bits out(nbits());
    if (amount >= nbits())
        return out;
    int word_shift = amount / 64;
    int bit_shift = amount % 64;
    for (int i = nwords() - 1; i >= word_shift; --i) {
        uint64_t hi = words()[i - word_shift] << bit_shift;
        uint64_t lo = (bit_shift && i - word_shift - 1 >= 0)
                          ? words()[i - word_shift - 1] >> (64 - bit_shift)
                          : 0;
        out.words()[i] = hi | lo;
    }
    out.normalize();
    return out;
}

Bits
Bits::shr(int amount) const
{
    assert(amount >= 0);
    Bits out(nbits());
    if (amount >= nbits())
        return out;
    int word_shift = amount / 64;
    int bit_shift = amount % 64;
    for (int i = 0; i + word_shift < nwords(); ++i) {
        uint64_t lo = words()[i + word_shift] >> bit_shift;
        uint64_t hi = (bit_shift && i + word_shift + 1 < nwords())
                          ? words()[i + word_shift + 1] << (64 - bit_shift)
                          : 0;
        out.words()[i] = lo | hi;
    }
    return out;
}

Bits
Bits::sra(int amount) const
{
    bool sign = bit(nbits() - 1);
    Bits out = shr(amount);
    if (sign) {
        int start = std::max(0, nbits() - amount);
        for (int i = start; i < nbits(); ++i)
            out.setBit(i, true);
    }
    return out;
}

Bits
operator<<(const Bits &a, const Bits &b)
{
    uint64_t amt = b.fitsUint64() ? b.toUint64() : uint64_t(a.nbits());
    if (amt >= uint64_t(a.nbits()))
        return Bits(a.nbits(), 0);
    return a.shl(static_cast<int>(amt));
}

Bits
operator>>(const Bits &a, const Bits &b)
{
    uint64_t amt = b.fitsUint64() ? b.toUint64() : uint64_t(a.nbits());
    if (amt >= uint64_t(a.nbits()))
        return Bits(a.nbits(), 0);
    return a.shr(static_cast<int>(amt));
}

bool
operator==(const Bits &a, const Bits &b)
{
    int nwords = std::max(a.nwords(), b.nwords());
    for (int i = 0; i < nwords; ++i) {
        if (a.word(i) != b.word(i))
            return false;
    }
    return true;
}

bool
operator==(const Bits &a, uint64_t b)
{
    if (a.word(0) != (b & (a.nbits() >= 64 ? ~uint64_t(0)
                                           : topWordMask(a.nbits()))))
        return false;
    if (a.nbits() < 64 && (b >> a.nbits()) != 0)
        return false;
    return a.fitsUint64();
}

bool
operator<(const Bits &a, const Bits &b)
{
    int nwords = std::max(a.nwords(), b.nwords());
    for (int i = nwords - 1; i >= 0; --i) {
        if (a.word(i) != b.word(i))
            return a.word(i) < b.word(i);
    }
    return false;
}

bool
operator<=(const Bits &a, const Bits &b)
{
    return a < b || a == b;
}

bool
Bits::slt(const Bits &a, const Bits &b)
{
    return a.toInt64() < b.toInt64();
}

Bits
Bits::reduceOr() const
{
    return Bits(1, any() ? 1 : 0);
}

Bits
Bits::reduceAnd() const
{
    return Bits(1, all() ? 1 : 0);
}

Bits
Bits::reduceXor() const
{
    uint64_t acc = 0;
    for (int i = 0; i < nwords(); ++i)
        acc ^= words()[i];
    acc ^= acc >> 32;
    acc ^= acc >> 16;
    acc ^= acc >> 8;
    acc ^= acc >> 4;
    acc ^= acc >> 2;
    acc ^= acc >> 1;
    return Bits(1, acc & 1);
}

std::string
Bits::toHexString() const
{
    int ndigits = (nbits() + 3) / 4;
    std::string out = "0x";
    for (int i = ndigits - 1; i >= 0; --i) {
        uint64_t nibble = (word(i / 16) >> ((i % 16) * 4)) & 0xf;
        out += "0123456789abcdef"[nibble];
    }
    return out;
}

std::string
Bits::toBinString() const
{
    std::string out = "0b";
    for (int i = nbits() - 1; i >= 0; --i)
        out += bit(i) ? '1' : '0';
    return out;
}

std::string
Bits::toDecString() const
{
    if (!fitsUint64())
        return toHexString();
    return std::to_string(toUint64());
}

Bits
concat(const Bits &hi, const Bits &lo)
{
    Bits out(hi.nbits() + lo.nbits());
    out.setSlice(0, lo);
    out.setSlice(lo.nbits(), hi);
    return out;
}

Bits
concat(std::initializer_list<Bits> parts)
{
    int nbits = 0;
    for (const auto &p : parts)
        nbits += p.nbits();
    Bits out(nbits);
    int pos = nbits;
    for (const auto &p : parts) {
        pos -= p.nbits();
        out.setSlice(pos, p);
    }
    return out;
}

std::ostream &
operator<<(std::ostream &os, const Bits &b)
{
    return os << b.toHexString();
}

} // namespace cmtl
