/**
 * @file
 * TranslationTool: PyMTL-style translation of RTL models into
 * synthesizable Verilog-2001.
 *
 * Takes an elaborated model hierarchy and emits one Verilog module per
 * distinct typeName(). Translatable models must (1) describe all
 * behavioural logic in tickRtl()/combinational() IR blocks, (2) only
 * reference their own signals from those blocks, and (3) pass all data
 * through fixed-width ports and wires. Purely structural models are
 * always translatable when their children are (the full power of the
 * host language remains available for elaboration), matching the
 * paper's translatability rules. Models containing lambda blocks are
 * rejected with a diagnostic.
 */

#ifndef CMTL_CORE_TRANSLATE_H
#define CMTL_CORE_TRANSLATE_H

#include <string>

#include "model.h"

namespace cmtl {

/** Translates elaborated designs to Verilog-2001 source text. */
class TranslationTool
{
  public:
    /**
     * Translate the hierarchy rooted at @p elab's top model.
     * @throws std::logic_error for untranslatable constructs, naming
     *         the offending model and block.
     */
    std::string translate(const Elaboration &elab);

    /** Translate and write to @p path. Returns the source text. */
    std::string translateToFile(const Elaboration &elab,
                                const std::string &path);
};

} // namespace cmtl

#endif // CMTL_CORE_TRANSLATE_H
