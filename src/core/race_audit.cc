#include "race_audit.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace cmtl {

namespace {

std::string
islandName(int island)
{
    return island == kExternalIsland ? std::string("external")
                                     : "island " + std::to_string(island);
}

std::string
tokenName(const Elaboration &elab, int token)
{
    const int nnets = static_cast<int>(elab.nets.size());
    if (token >= 0 && token < nnets)
        return "net '" + elab.nets[static_cast<size_t>(token)].name + "'";
    int a = token - nnets;
    if (a >= 0 && a < static_cast<int>(elab.arrays.size()))
        return "array '" +
               elab.arrays[static_cast<size_t>(a)]->fullName() + "'";
    return "token " + std::to_string(token);
}

std::string
tokenPath(const Elaboration &elab, int token)
{
    const int nnets = static_cast<int>(elab.nets.size());
    if (token >= 0 && token < nnets)
        return lintNetPath(elab.nets[static_cast<size_t>(token)]);
    int a = token - nnets;
    if (a >= 0 && a < static_cast<int>(elab.arrays.size()))
        return elab.arrays[static_cast<size_t>(a)]->fullName();
    return "token:" + std::to_string(token);
}

} // namespace

RaceAuditReport
auditPartition(const Elaboration &elab, const PartitionPlan &plan)
{
    RaceAuditReport rep;
    rep.nislands = plan.nislands;
    const int nnets = static_cast<int>(elab.nets.size());
    const int ntokens = nnets + static_cast<int>(elab.arrays.size());
    const int nblocks = static_cast<int>(elab.blocks.size());

    auto fail = [&](const char *invariant, const std::string &path,
                    const std::string &message, int token = -1,
                    int a = kExternalIsland, int b = kExternalIsland) {
        rep.issues.push_back({invariant, path, message, token, a, b});
    };

    // ------------------------------------------------- block coverage
    //
    // Placement of every block, and the schedule position/level maps
    // the edge checks below need. blockIsland stays kExternalIsland-2
    // (= unplaced) on coverage violations so later checks skip them.
    constexpr int kUnplaced = kExternalIsland - 1;
    std::vector<int> count(static_cast<size_t>(nblocks), 0);
    std::vector<int> blockIsland(static_cast<size_t>(nblocks), kUnplaced);
    std::vector<int> combLevel(static_cast<size_t>(nblocks), -1);
    std::vector<int> combPos(static_cast<size_t>(nblocks), -1);
    std::vector<char> isTickSlot(static_cast<size_t>(nblocks), 0);

    for (size_t i = 0; i < plan.islands.size(); ++i) {
        const PartitionIsland &isl = plan.islands[i];
        for (size_t k = 0; k < isl.combBlocks.size(); ++k) {
            int b = isl.combBlocks[k];
            if (b < 0 || b >= nblocks)
                continue;
            ++count[static_cast<size_t>(b)];
            blockIsland[static_cast<size_t>(b)] = static_cast<int>(i);
            combLevel[static_cast<size_t>(b)] =
                k < isl.combLevels.size() ? isl.combLevels[k] : 0;
            combPos[static_cast<size_t>(b)] = static_cast<int>(k);
        }
        for (int b : isl.tickBlocks) {
            if (b < 0 || b >= nblocks)
                continue;
            ++count[static_cast<size_t>(b)];
            blockIsland[static_cast<size_t>(b)] = static_cast<int>(i);
            isTickSlot[static_cast<size_t>(b)] = 1;
        }
    }
    for (int b : plan.lambdaTicks) {
        if (b < 0 || b >= nblocks)
            continue;
        ++count[static_cast<size_t>(b)];
        blockIsland[static_cast<size_t>(b)] = kExternalIsland;
        isTickSlot[static_cast<size_t>(b)] = 1;
    }

    for (int b = 0; b < nblocks; ++b) {
        const ElabBlock &blk = elab.blocks[static_cast<size_t>(b)];
        ++rep.blocksChecked;
        const bool wants_external =
            blk.kind == BlockKind::TickFl || blk.kind == BlockKind::TickCl;
        const bool wants_tick_slot = isTick(blk.kind);
        int c = count[static_cast<size_t>(b)];
        if (c != 1) {
            fail("audit-block-coverage", blk.name,
                 "block '" + blk.name + "' appears " + std::to_string(c) +
                     " times across the partition (must be exactly "
                     "once)");
            blockIsland[static_cast<size_t>(b)] = kUnplaced;
            continue;
        }
        int isl = blockIsland[static_cast<size_t>(b)];
        if (wants_external && isl != kExternalIsland) {
            fail("audit-block-coverage", blk.name,
                 "host lambda block '" + blk.name +
                     "' (undeclared effects) is scheduled on " +
                     islandName(isl) +
                     " instead of the external participant",
                 -1, isl);
        } else if (!wants_external && isl == kExternalIsland) {
            fail("audit-block-coverage", blk.name,
                 "statically analyzable block '" + blk.name +
                     "' is scheduled on the external participant");
        }
        if (wants_tick_slot != static_cast<bool>(
                                   isTickSlot[static_cast<size_t>(b)]) &&
            isl != kExternalIsland && isl != kUnplaced) {
            fail("audit-block-coverage", blk.name,
                 "block '" + blk.name + "' is scheduled in the " +
                     (wants_tick_slot ? "comb" : "tick") +
                     " phase of " + islandName(isl),
                 -1, isl);
        }
    }

    // --------------------- write disjointness / ownership per token
    std::vector<std::vector<int>> writerIslands(
        static_cast<size_t>(ntokens));
    std::vector<std::vector<int>> readerIslandsTrue(
        static_cast<size_t>(ntokens));
    for (int b = 0; b < nblocks; ++b) {
        int isl = blockIsland[static_cast<size_t>(b)];
        if (isl == kUnplaced || isl == kExternalIsland)
            continue; // external effects are undeclared; serial anyway
        const ElabBlock &blk = elab.blocks[static_cast<size_t>(b)];
        for (int t : blk.writes) {
            if (t < 0 || t >= ntokens)
                continue;
            auto &w = writerIslands[static_cast<size_t>(t)];
            if (std::find(w.begin(), w.end(), isl) == w.end())
                w.push_back(isl);
        }
        for (int t : blk.reads) {
            if (t < 0 || t >= ntokens)
                continue;
            auto &r = readerIslandsTrue[static_cast<size_t>(t)];
            if (std::find(r.begin(), r.end(), isl) == r.end())
                r.push_back(isl);
        }
    }

    for (int t = 0; t < ntokens; ++t) {
        ++rep.tokensChecked;
        auto &w = writerIslands[static_cast<size_t>(t)];
        std::sort(w.begin(), w.end());
        if (w.size() > 1) {
            fail("audit-shared-write", tokenPath(elab, t),
                 tokenName(elab, t) +
                     " is statically written from both " +
                     islandName(w[0]) + " and " + islandName(w[1]) +
                     "; per-phase write sets must be disjoint",
                 t, w[0], w[1]);
        }
        int true_owner = w.size() == 1 ? w[0] : kExternalIsland;
        int claimed = t < static_cast<int>(plan.ownerOf.size())
                          ? plan.ownerOf[static_cast<size_t>(t)]
                          : kExternalIsland;
        // A token with no static writer cannot race no matter which
        // island claims it (the partitioner hands writerless arrays to
        // island 0 by default — found by SimFuzz on designs whose only
        // array writer was masked off), so ownership is only audited
        // when a writing island exists.
        if (w.size() == 1 && claimed != true_owner) {
            fail("audit-ownership", tokenPath(elab, t),
                 tokenName(elab, t) + " is owned by " +
                     islandName(claimed) +
                     " but its statically writing island is " +
                     islandName(true_owner),
                 t, claimed, true_owner);
        }
    }

    // ----------------------------------------------- push coverage
    //
    // readerIslands must *exactly* equal the recomputed set of islands
    // with a static reader, minus the owner (which reads its own
    // replica directly).
    for (int t = 0; t < ntokens; ++t) {
        int owner = t < static_cast<int>(plan.ownerOf.size())
                        ? plan.ownerOf[static_cast<size_t>(t)]
                        : kExternalIsland;
        std::vector<int> expect;
        for (int isl : readerIslandsTrue[static_cast<size_t>(t)])
            if (isl != owner)
                expect.push_back(isl);
        std::sort(expect.begin(), expect.end());
        std::vector<int> got =
            t < static_cast<int>(plan.readerIslands.size())
                ? plan.readerIslands[static_cast<size_t>(t)]
                : std::vector<int>{};
        std::sort(got.begin(), got.end());
        got.erase(std::remove(got.begin(), got.end(), owner), got.end());
        rep.pushesChecked += static_cast<int>(got.size());
        for (int isl : expect) {
            if (!std::binary_search(got.begin(), got.end(), isl)) {
                fail("audit-push-coverage", tokenPath(elab, t),
                     tokenName(elab, t) + " is read by " +
                         islandName(isl) +
                         " but the boundary exchange never pushes it "
                         "there (owner " +
                         islandName(owner) + ")",
                     t, owner, isl);
            }
        }
        for (int isl : got) {
            if (!std::binary_search(expect.begin(), expect.end(), isl)) {
                fail("audit-push-coverage", tokenPath(elab, t),
                     tokenName(elab, t) + " is pushed to " +
                         islandName(isl) +
                         " which has no static reader for it",
                     t, owner, isl);
            }
        }
    }

    // ------------------- superstep order and flop-boundary crossing
    std::vector<std::vector<int>> readerBlocks(
        static_cast<size_t>(nnets));
    for (int b = 0; b < nblocks; ++b)
        for (int t : elab.blocks[static_cast<size_t>(b)].reads)
            if (t >= 0 && t < nnets)
                readerBlocks[static_cast<size_t>(t)].push_back(b);

    for (int wb = 0; wb < nblocks; ++wb) {
        const ElabBlock &wblk = elab.blocks[static_cast<size_t>(wb)];
        int wisl = blockIsland[static_cast<size_t>(wb)];
        if (wisl == kUnplaced || wisl == kExternalIsland)
            continue;
        const bool wtick = isTick(wblk.kind);
        for (int t : wblk.writes) {
            if (t < 0 || t >= nnets)
                continue; // array crossings: audit-array-local below
            const Net &net = elab.nets[static_cast<size_t>(t)];
            for (int rb : readerBlocks[static_cast<size_t>(t)]) {
                if (rb == wb)
                    continue;
                const ElabBlock &rblk =
                    elab.blocks[static_cast<size_t>(rb)];
                int risl = blockIsland[static_cast<size_t>(rb)];
                if (risl == kUnplaced)
                    continue;
                ++rep.edgesChecked;
                if (risl == kExternalIsland)
                    continue; // external reads at serial barriers
                if (risl == wisl) {
                    // Same island: a comb reader must be scheduled
                    // after its comb writer.
                    if (!wtick && !isTick(rblk.kind) &&
                        combPos[static_cast<size_t>(rb)] <
                            combPos[static_cast<size_t>(wb)]) {
                        fail("audit-superstep-order", lintNetPath(net),
                             "within " + islandName(wisl) +
                                 ", comb reader '" + rblk.name +
                                 "' of net '" + net.name +
                                 "' is scheduled before its writer '" +
                                 wblk.name + "'",
                             t, wisl, wisl);
                    }
                    continue;
                }
                if (wtick) {
                    // Sequential writer, cross-island reader: legal
                    // only across the flop barrier, i.e. the net must
                    // be statically flopped.
                    if (!net.floppedStatic) {
                        fail("audit-boundary", lintNetPath(net),
                             "net '" + net.name +
                                 "' is written sequentially by '" +
                                 wblk.name + "' (" + islandName(wisl) +
                                 ") and read by '" + rblk.name +
                                 "' (" + islandName(risl) +
                                 ") without a flop boundary",
                             t, wisl, risl);
                    }
                    continue;
                }
                if (isTick(rblk.kind))
                    continue; // ticks run after the final settle
                // Comb->comb across islands: a settle barrier must
                // separate the writer's level from the reader's.
                int lw = combLevel[static_cast<size_t>(wb)];
                int lr = combLevel[static_cast<size_t>(rb)];
                if (lr < lw + 1) {
                    fail("audit-superstep-order", lintNetPath(net),
                         "comb edge on net '" + net.name + "' from '" +
                             wblk.name + "' (" + islandName(wisl) +
                             ", level " + std::to_string(lw) +
                             ") to '" + rblk.name + "' (" +
                             islandName(risl) + ", level " +
                             std::to_string(lr) +
                             ") is not barrier-separated",
                         t, wisl, risl);
                }
            }
        }
    }

    // ------------------------------------------------ array locality
    for (size_t a = 0; a < elab.arrays.size(); ++a) {
        int t = elab.arrayToken(static_cast<int>(a));
        std::set<int> touchers;
        for (int isl : writerIslands[static_cast<size_t>(t)])
            touchers.insert(isl);
        for (int isl : readerIslandsTrue[static_cast<size_t>(t)])
            touchers.insert(isl);
        if (touchers.size() > 1) {
            auto it = touchers.begin();
            int ia = *it++;
            int ib = *it;
            fail("audit-array-local", elab.arrays[a]->fullName(),
                 "array '" + elab.arrays[a]->fullName() +
                     "' is touched by both " + islandName(ia) +
                     " and " + islandName(ib) +
                     "; arrays are never boundary-exchanged",
                 t, ia, ib);
        }
    }

    return rep;
}

std::string
RaceAuditReport::summary() const
{
    std::ostringstream os;
    if (ok()) {
        os << "race audit: PASS (" << nislands << " islands, "
           << blocksChecked << " blocks, " << tokensChecked
           << " tokens, " << edgesChecked << " cross-block edges, "
           << pushesChecked << " pushes checked)";
    } else {
        os << "race audit: FAIL: " << issues.size() << " violation"
           << (issues.size() == 1 ? "" : "s") << " across " << nislands
           << " islands";
    }
    return os.str();
}

std::string
RaceAuditReport::format() const
{
    std::ostringstream os;
    os << summary() << "\n";
    for (const RaceAuditIssue &issue : issues) {
        os << "  [" << issue.invariant << "] " << issue.message;
        if (issue.island_a != kExternalIsland ||
            issue.island_b != kExternalIsland) {
            os << " (islands " << issue.island_a << "/"
               << issue.island_b << ")";
        }
        os << "\n";
    }
    return os.str();
}

std::vector<LintIssue>
RaceAuditReport::toLintIssues(const AnalyzeOptions &options) const
{
    std::vector<LintIssue> out;
    for (const RaceAuditIssue &issue : issues)
        options.emit(out, LintSeverity::Error, issue.invariant,
                     issue.path, issue.message);
    return out;
}

} // namespace cmtl
