/**
 * @file
 * GraphTool: design visualization as Graphviz DOT.
 *
 * An example of a user-written tool in the model/tool split (paper
 * Section III-B: "users can write custom tools such as simulators,
 * translators, analyzers, and visualizers"): renders the elaborated
 * model hierarchy and inter-model connectivity as a DOT graph.
 */

#ifndef CMTL_CORE_GRAPH_H
#define CMTL_CORE_GRAPH_H

#include <string>

#include "model.h"

namespace cmtl {

/** Emits Graphviz DOT for an elaborated design. */
class GraphTool
{
  public:
    /**
     * @param max_depth hierarchy depth to expand (deeper models are
     *                  drawn as leaf boxes); 0 = only the top model
     */
    std::string toDot(const Elaboration &elab, int max_depth = 2);
};

} // namespace cmtl

#endif // CMTL_CORE_GRAPH_H
