/**
 * @file
 * Whole-design dataflow analysis over the elaborated block/net graph.
 *
 * Where analyze.h inspects one IrBlock at a time, this engine builds
 * driver→reader edges between blocks from the per-block net access
 * sets and runs lattice fixpoints *across* block boundaries — the
 * design-as-data analysis layer of the paper's model/tool split. Two
 * clients ship on top of it:
 *
 *  - **Dead-logic liveness** (backward, cone-of-influence): starting
 *    from the observed sinks, a token (net or array) is *live* when a
 *    block that always executes reads it, or when an eliminable block
 *    whose writes include a live token reads it. Only IR combinational
 *    blocks are eliminable; tick blocks and host lambdas always run.
 *    Nets/blocks outside every sink's cone are reported as `dead-net`/
 *    `dead-block` findings, and simulators skip dead comb blocks when
 *    SimConfig::dead_elim is set (equivalent by construction for every
 *    observed value — see deadCombBlocks()).
 *
 *  - **X-propagation** (forward, reaching definitions): a net is
 *    *defined* when every reader sees a determinate value before its
 *    first use — driven by a comb block that fully assigns it on all
 *    paths from defined inputs, or flopped with full assignment on the
 *    reset path (if-conditions folded under reset=1) or unconditional
 *    full assignment from defined inputs. Nets readable while still
 *    undefined are reported as `maybe-uninitialized` with the full
 *    witness chain back to the root cause (e.g. an unreset flop).
 *
 * Soundness of the sink set: host lambda blocks (TickFl/TickCl/
 * CombLambda) have undeclared or partially declared access, so every
 * net and array of a model owning one — plus everything reachable
 * from the top model, which test benches drive and observe directly —
 * counts as observed. DataflowOptions::observe_all widens the sink
 * set to every net (the semantics of an attached VCD writer, which
 * dumps all of them).
 */

#ifndef CMTL_CORE_DATAFLOW_H
#define CMTL_CORE_DATAFLOW_H

#include <string>
#include <vector>

#include "analyze.h"
#include "model.h"

namespace cmtl {

/** Sink-set configuration for the liveness client. */
struct DataflowOptions
{
    /**
     * Treat every net as observed (the effect of attaching a VCD
     * writer, which dumps all nets each cycle). Liveness then only
     * kills logic feeding nothing at all.
     */
    bool observe_all = false;

    /** Additional observed tokens (net ids or Elaboration
     *  arrayToken() values), e.g. probe points. */
    std::vector<int> extra_sinks;
};

/** Why a net is maybe-uninitialized (X-propagation root causes). */
enum class XCauseKind
{
    Defined,       //!< not an X source
    NoDriver,      //!< read but nothing ever assigns it
    PartialAssign, //!< comb driver misses it on some path
    NoReset,       //!< flopped without reset-path or full assignment
    Upstream,      //!< fully assigned, but from an undefined input
};

/** Fixpoint results of dataflowAnalyze(). */
struct DataflowResult
{
    // ------------------------------------------------------ liveness
    std::vector<char> liveNet;   //!< per net id
    std::vector<char> liveArray; //!< per array id
    std::vector<char> liveBlock; //!< per block index (non-comb-IR: 1)
    int deadNets = 0;            //!< driven+read nets outside all cones
    int deadBlocks = 0;          //!< eliminable blocks with !liveBlock

    // ------------------------------------------------- X-propagation
    std::vector<char> definedNet;   //!< per net id
    std::vector<XCauseKind> xKind;  //!< per net id
    std::vector<int> xCause;        //!< per net id: upstream net, or -1

    // --------------------------------------------------- access info
    std::vector<char> netHasWriter; //!< per net id
    std::vector<char> netHasReader; //!< per net id

    /** Block indices of eliminable (CombIr) blocks proven dead, in
     *  schedule-stable ascending order. */
    std::vector<int> deadCombBlocks() const;
};

/** Run both fixpoints over @p elab. Deterministic for a given design:
 *  sequential and parallel simulators derive identical dead sets. */
DataflowResult dataflowAnalyze(const Elaboration &elab,
                               const DataflowOptions &opts = {});

/**
 * Witness chain for a maybe-uninitialized @p net: the read net, each
 * undefined input it was computed from, down to the root cause, e.g.
 * "top.sum <- top.acc <- top.state (flopped without reset...)".
 * Cycle-safe; empty for defined nets.
 */
std::string dataflowWitness(const Elaboration &elab,
                            const DataflowResult &result, int net);

/**
 * Render both clients' findings as lint issues (`dead-net`,
 * `dead-block`, `maybe-uninitialized` — all warnings by default)
 * through the shared AnalyzeOptions suppression/severity machinery.
 * LintTool::run calls this after the structural and IR checks.
 */
std::vector<LintIssue> dataflowLint(const Elaboration &elab,
                                    const DataflowResult &result,
                                    const AnalyzeOptions &options = {});

} // namespace cmtl

#endif // CMTL_CORE_DATAFLOW_H
