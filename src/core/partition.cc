#include "partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace cmtl {

namespace {

/** Union-find over dense block indices. */
class BlockUnionFind
{
  public:
    explicit BlockUnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b) { parent_[find(a)] = find(b); }

  private:
    std::vector<int> parent_;
};

long
exprCost(const IrExprNode *e)
{
    if (!e)
        return 0;
    long cost = 1;
    for (const IrExprPtr &arg : e->args)
        cost += exprCost(arg.get());
    return cost;
}

long
stmtCost(const std::vector<IrStmt> &stmts)
{
    long cost = 0;
    for (const IrStmt &s : stmts) {
        cost += 1 + exprCost(s.rhs.get()) + exprCost(s.cond.get());
        cost += stmtCost(s.thenBody) + stmtCost(s.elseBody);
    }
    return cost;
}

/** Per-cycle work estimate of one block (IR node count proxy). */
long
blockWeight(const ElabBlock &blk)
{
    if (blk.ir)
        return std::max<long>(1, stmtCost(blk.ir->stmts));
    // Lambda blocks: unknown host code; assume a moderate fixed cost.
    return 16;
}

/** True for blocks the partitioner may assign to a worker island. */
bool
assignable(const ElabBlock &blk)
{
    switch (blk.kind) {
      case BlockKind::CombIr:
      case BlockKind::CombLambda:
      case BlockKind::TickIr:
        return true;
      case BlockKind::TickFl:
      case BlockKind::TickCl:
        return false;
    }
    return false;
}

// ------------------------------------------------------------------
// Min-cut refinement machinery (KLFM over a multilevel hierarchy).
//
// The refiner works on "units": atomic clusters at the finest level,
// and heavy-edge-matched groups of them at coarser levels. Coarsening
// matters because the locality-chunked seed is a *local* optimum for
// single-cluster moves on regular designs (a mesh strip boundary
// cannot be improved one cluster at a time — every move trades one
// cut link for two), while at coarse granularity whole-subtree moves
// expose zero-gain corner cascades that rotate a long strip cut into
// a shorter tile cut, exactly the restructuring min-cut needs.
// ------------------------------------------------------------------

/** One potentially-cut token: unique writer unit, reader units. */
struct MovToken
{
    int wc;
    std::vector<int> readers; // distinct, != wc
};

/** Comb writer->reader occurrences between two distinct units. */
struct CombPair
{
    int a, b; // a < b
    int count;
};

/** Cut bookkeeping over the movable units of one coarsening level. */
struct CutGraph
{
    int n = 0;
    std::vector<long> weight;
    std::vector<int> key; // locality key (min member model pre-order)
    std::vector<MovToken> toks;
    std::vector<CombPair> pairs;
    std::vector<std::vector<int>> tokOf, pairOf; // unit -> entry ids

    void
    buildIncidence()
    {
        tokOf.assign(n, {});
        pairOf.assign(n, {});
        for (size_t i = 0; i < toks.size(); ++i) {
            tokOf[toks[i].wc].push_back(static_cast<int>(i));
            for (int rc : toks[i].readers)
                tokOf[rc].push_back(static_cast<int>(i));
        }
        for (size_t i = 0; i < pairs.size(); ++i) {
            pairOf[pairs[i].a].push_back(static_cast<int>(i));
            pairOf[pairs[i].b].push_back(static_cast<int>(i));
        }
    }
};

/** Token contribution with unit @p u hypothetically on island @p isl
 *  (u = -1 evaluates the assignment as-is). */
long
tokenCutAt(const MovToken &e, int u, int isl,
           const std::vector<int> &island)
{
    int wi = e.wc == u ? isl : island[e.wc];
    for (int rc : e.readers) {
        if ((rc == u ? isl : island[rc]) != wi)
            return 1;
    }
    return 0;
}

long
pairCutAt(const CombPair &p, int u, int isl,
          const std::vector<int> &island)
{
    int ia = p.a == u ? isl : island[p.a];
    int ib = p.b == u ? isl : island[p.b];
    return ia != ib ? p.count : 0;
}

/** Lexicographic (cut tokens, cut comb edges) packed into one long. */
long
cutScore(long tok, long edge)
{
    return tok * (1L << 20) + edge;
}

/**
 * Coarsen @p g by deterministic heavy-edge matching: merge the
 * most-connected unit pairs (token incidences weigh far more than
 * comb-edge multiplicity) whose combined weight stays under
 * @p maxUnitWeight. @p map receives fine-unit -> coarse-unit.
 */
CutGraph
coarsenGraph(const CutGraph &g, long maxUnitWeight,
             std::vector<int> &map)
{
    std::unordered_map<uint64_t, long> adj;
    auto key = [](int a, int b) {
        int lo = std::min(a, b), hi = std::max(a, b);
        return (static_cast<uint64_t>(lo) << 32) |
               static_cast<uint32_t>(hi);
    };
    for (const MovToken &e : g.toks) {
        for (int rc : e.readers)
            adj[key(e.wc, rc)] += 1L << 8;
    }
    for (const CombPair &p : g.pairs)
        adj[key(p.a, p.b)] += std::min<long>(p.count, 255);

    struct Edge
    {
        long w;
        int a, b;
    };
    std::vector<Edge> edges;
    edges.reserve(adj.size());
    for (const auto &[k, w] : adj) {
        edges.push_back({w, static_cast<int>(k >> 32),
                         static_cast<int>(k & 0xffffffffu)});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge &x, const Edge &y) {
        if (x.w != y.w)
            return x.w > y.w;
        if (x.a != y.a)
            return x.a < y.a;
        return x.b < y.b;
    });

    std::vector<int> match(g.n, -1);
    for (const Edge &e : edges) {
        if (match[e.a] >= 0 || match[e.b] >= 0)
            continue;
        if (g.weight[e.a] + g.weight[e.b] > maxUnitWeight)
            continue;
        match[e.a] = e.b;
        match[e.b] = e.a;
    }

    map.assign(g.n, -1);
    CutGraph cg;
    for (int u = 0; u < g.n; ++u) {
        if (match[u] >= 0 && match[u] < u)
            continue; // merged into its earlier partner
        int id = cg.n++;
        map[u] = id;
        long w = g.weight[u];
        int k = g.key[u];
        if (match[u] > u) {
            map[match[u]] = id;
            w += g.weight[match[u]];
            k = std::min(k, g.key[match[u]]);
        }
        cg.weight.push_back(w);
        cg.key.push_back(k);
    }
    for (const MovToken &e : g.toks) {
        MovToken ce;
        ce.wc = map[e.wc];
        for (int rc : e.readers) {
            int m = map[rc];
            if (m != ce.wc)
                ce.readers.push_back(m);
        }
        if (ce.readers.empty())
            continue; // became unit-internal
        std::sort(ce.readers.begin(), ce.readers.end());
        ce.readers.erase(
            std::unique(ce.readers.begin(), ce.readers.end()),
            ce.readers.end());
        cg.toks.push_back(std::move(ce));
    }
    std::unordered_map<uint64_t, int> pairIndex;
    for (const CombPair &p : g.pairs) {
        int a = map[p.a], b = map[p.b];
        if (a == b)
            continue;
        int lo = std::min(a, b), hi = std::max(a, b);
        uint64_t k = (static_cast<uint64_t>(lo) << 32) |
                     static_cast<uint32_t>(hi);
        auto [it, inserted] =
            pairIndex.try_emplace(k, static_cast<int>(cg.pairs.size()));
        if (inserted)
            cg.pairs.push_back({lo, hi, 0});
        cg.pairs[it->second].count += p.count;
    }
    cg.buildIncidence();
    return cg;
}

/**
 * One multi-way KLFM refinement run over @p g: repeated passes of
 * best-gain boundary moves (zero and negative gains allowed, each
 * unit locked after moving) with best-prefix rollback, until a pass
 * stops improving. Moves keep every island non-empty and no island
 * above @p bound. Returns true if the cut improved.
 */
bool
klfmRefine(const CutGraph &g, std::vector<int> &island, int nislands,
           long bound, int maxPasses, int maxBadStreak, int &passes,
           int &moves)
{
    std::vector<long> islandWeight(nislands, 0);
    std::vector<int> islandUnits(nislands, 0);
    for (int u = 0; u < g.n; ++u) {
        islandWeight[island[u]] += g.weight[u];
        ++islandUnits[island[u]];
    }
    long curTok = 0, curEdge = 0;
    for (const MovToken &e : g.toks)
        curTok += tokenCutAt(e, -1, 0, island);
    for (const CombPair &p : g.pairs)
        curEdge += pairCutAt(p, -1, 0, island);
    const long startScore = cutScore(curTok, curEdge);

    struct Cand
    {
        long gain; // scoreBefore - scoreAfter; positive = better
        int unit;
        int to;
        long dTok, dEdge;
        bool operator<(const Cand &o) const
        { // max-heap: highest gain first, lowest unit id on ties
            if (gain != o.gain)
                return gain < o.gain;
            if (unit != o.unit)
                return unit > o.unit;
            return to > o.to;
        }
    };

    // Best feasible move of unit u, or false if none exists.
    auto bestMove = [&](int u, Cand &out) -> bool {
        int from = island[u];
        if (islandUnits[from] <= 1)
            return false; // never empty an island
        std::vector<int> targets;
        for (int i : g.tokOf[u]) {
            const MovToken &e = g.toks[i];
            targets.push_back(island[e.wc]);
            for (int rc : e.readers)
                targets.push_back(island[rc]);
        }
        for (int i : g.pairOf[u]) {
            targets.push_back(island[g.pairs[i].a]);
            targets.push_back(island[g.pairs[i].b]);
        }
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
        bool found = false;
        for (int to : targets) {
            if (to == from || islandWeight[to] + g.weight[u] > bound)
                continue;
            long dTok = 0, dEdge = 0;
            for (int i : g.tokOf[u]) {
                dTok += tokenCutAt(g.toks[i], u, to, island) -
                        tokenCutAt(g.toks[i], -1, 0, island);
            }
            for (int i : g.pairOf[u]) {
                dEdge += pairCutAt(g.pairs[i], u, to, island) -
                         pairCutAt(g.pairs[i], -1, 0, island);
            }
            long gain = -cutScore(dTok, dEdge);
            if (!found || gain > out.gain ||
                (gain == out.gain && to < out.to)) {
                out = {gain, u, to, dTok, dEdge};
                found = true;
            }
        }
        return found;
    };

    bool improvedEver = false;
    bool improved = true;
    for (int pass = 0; improved && pass < std::max(1, maxPasses);
         ++pass) {
        improved = false;
        std::vector<char> locked(g.n, 0);
        std::priority_queue<Cand> heap;
        for (int u = 0; u < g.n; ++u) {
            bool boundary = false;
            for (int i : g.pairOf[u]) {
                if (pairCutAt(g.pairs[i], -1, 0, island) > 0) {
                    boundary = true;
                    break;
                }
            }
            if (!boundary) {
                for (int i : g.tokOf[u]) {
                    if (tokenCutAt(g.toks[i], -1, 0, island) > 0) {
                        boundary = true;
                        break;
                    }
                }
            }
            Cand cand;
            if (boundary && bestMove(u, cand))
                heap.push(cand);
        }

        struct Move
        {
            int unit, from, to;
            long dTok, dEdge;
        };
        std::vector<Move> trail;
        long runTok = curTok, runEdge = curEdge;
        long bestScore = cutScore(curTok, curEdge);
        size_t bestLen = 0;
        int badStreak = 0;
        while (!heap.empty() && badStreak < maxBadStreak) {
            Cand top = heap.top();
            heap.pop();
            if (locked[top.unit])
                continue;
            Cand fresh;
            if (!bestMove(top.unit, fresh))
                continue;
            if (fresh.gain < top.gain) {
                heap.push(fresh); // stale entry: re-rank and retry
                continue;
            }
            int u = fresh.unit, from = island[u];
            island[u] = fresh.to;
            islandWeight[from] -= g.weight[u];
            islandWeight[fresh.to] += g.weight[u];
            --islandUnits[from];
            ++islandUnits[fresh.to];
            runTok += fresh.dTok;
            runEdge += fresh.dEdge;
            locked[u] = 1;
            trail.push_back({u, from, fresh.to, fresh.dTok, fresh.dEdge});
            long score = cutScore(runTok, runEdge);
            if (score < bestScore) {
                bestScore = score;
                bestLen = trail.size();
                badStreak = 0;
            } else {
                ++badStreak;
            }
            // Rescore every unlocked unit sharing an entry with u.
            std::vector<int> affected;
            for (int i : g.tokOf[u]) {
                affected.push_back(g.toks[i].wc);
                for (int rc : g.toks[i].readers)
                    affected.push_back(rc);
            }
            for (int i : g.pairOf[u]) {
                affected.push_back(g.pairs[i].a);
                affected.push_back(g.pairs[i].b);
            }
            std::sort(affected.begin(), affected.end());
            affected.erase(
                std::unique(affected.begin(), affected.end()),
                affected.end());
            for (int d : affected) {
                if (d == u || locked[d])
                    continue;
                Cand cand;
                if (bestMove(d, cand))
                    heap.push(cand);
            }
        }
        // Roll back to the best prefix of the move sequence.
        while (trail.size() > bestLen) {
            const Move &m = trail.back();
            island[m.unit] = m.from;
            islandWeight[m.to] -= g.weight[m.unit];
            islandWeight[m.from] += g.weight[m.unit];
            ++islandUnits[m.from];
            --islandUnits[m.to];
            runTok -= m.dTok;
            runEdge -= m.dEdge;
            trail.pop_back();
        }
        curTok = runTok;
        curEdge = runEdge;
        ++passes;
        moves += static_cast<int>(bestLen);
        improved = bestLen > 0;
        improvedEver = improvedEver || improved;
    }
    return improvedEver && cutScore(curTok, curEdge) < startScore;
}

/**
 * Weight-balanced contiguous chunking of units in locality-key order
 * into @p nislands spans — the same heuristic at every granularity
 * (atomic clusters for the seed, matched groups at coarse levels).
 */
std::vector<int>
chunkAssign(const std::vector<long> &weight,
            const std::vector<int> &key, int nislands)
{
    const int n = static_cast<int>(weight.size());
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return key[a] < key[b];
    });
    std::vector<int> island(n, 0);
    long remaining = std::accumulate(weight.begin(), weight.end(), 0L);
    int isl = 0;
    long acc = 0;
    for (int idx : order) {
        int chunksLeft = nislands - isl;
        long target = (remaining + chunksLeft - 1) / chunksLeft;
        if (acc > 0 && acc + weight[idx] / 2 >= target &&
            isl + 1 < nislands) {
            remaining -= acc;
            acc = 0;
            ++isl;
        }
        island[idx] = isl;
        acc += weight[idx];
    }
    return island;
}

/**
 * Multilevel min-cut refinement: coarsen the cluster graph by heavy-
 * edge matching, seed a fresh chunked assignment at the coarsest
 * level (where subtree-sized moves can restructure the cut — e.g.
 * rotate a mesh strip boundary into a shorter tile boundary), refine
 * it, then uncoarsen level by level with a polishing run at each.
 * The result replaces @p islandOfCluster only if it beats both the
 * seed and a flat single-level KLFM polish of the seed, under the
 * balance bound; otherwise the better of those is kept, so
 * refinement never regresses cut or balance.
 */
void
refineMultilevel(const CutGraph &fine, std::vector<int> &islandOfCluster,
                 int nislands, long totalWeight,
                 const PartitionOptions &opts, int &passes, int &moves)
{
    // Global balance bound shared by every level: the seed's maximum
    // island weight, or (1+slack)*mean, whichever is looser.
    std::vector<long> seedWeight(nislands, 0);
    for (int u = 0; u < fine.n; ++u)
        seedWeight[islandOfCluster[u]] += fine.weight[u];
    long seedMax =
        *std::max_element(seedWeight.begin(), seedWeight.end());
    double mean =
        static_cast<double>(totalWeight) / static_cast<double>(nislands);
    const long bound = std::max(
        seedMax,
        static_cast<long>(std::ceil((1.0 + opts.balanceSlack) * mean)));
    const int maxPasses = std::max(1, opts.maxRefinePasses);

    auto evaluate = [&](const std::vector<int> &island) {
        long tok = 0, edge = 0;
        for (const MovToken &e : fine.toks)
            tok += tokenCutAt(e, -1, 0, island);
        for (const CombPair &p : fine.pairs)
            edge += pairCutAt(p, -1, 0, island);
        std::vector<long> w(nislands, 0);
        for (int u = 0; u < fine.n; ++u)
            w[island[u]] += fine.weight[u];
        long maxw = *std::max_element(w.begin(), w.end());
        bool nonEmpty = true;
        for (int i = 0; i < nislands; ++i)
            nonEmpty = nonEmpty && w[i] > 0;
        return std::make_tuple(cutScore(tok, edge), maxw, nonEmpty);
    };
    long bestScore = 0, bestMaxW = 0;
    bool seedNonEmpty = false;
    std::tie(bestScore, bestMaxW, seedNonEmpty) =
        evaluate(islandOfCluster);
    std::vector<int> best = islandOfCluster;

    auto consider = [&](const std::vector<int> &cand) {
        auto [score, maxw, nonEmpty] = evaluate(cand);
        if (!nonEmpty || maxw > bound)
            return;
        if (score < bestScore ||
            (score == bestScore && maxw < bestMaxW)) {
            bestScore = score;
            bestMaxW = maxw;
            best = cand;
        }
    };

    // Candidate 1: flat KLFM polish of the chunked seed. Catches the
    // cheap wins (clusters stranded on the wrong side of a chunk
    // boundary) and is monotone, so it never loses to the seed.
    {
        std::vector<int> cand = islandOfCluster;
        klfmRefine(fine, cand, nislands, bound, maxPasses, 64, passes,
                   moves);
        consider(cand);
    }

    // Candidate 2: multilevel rebuild. Units must stay small enough
    // to move freely under the bound, and the coarsest level keeps
    // enough of them per island for chunking + KLFM to work with.
    // Granularity is a real trade-off (coarse units restructure
    // further per move, fine units pack tighter), so we run the whole
    // V-cycle at a few unit sizes; the bound-checked acceptance above
    // keeps only winners, so extra tries can never hurt the plan.
    auto multilevel = [&](int unitDivisor, int targetPerIsland) {
        const long maxUnitWeight =
            std::max<long>(1, totalWeight / (nislands * unitDivisor));
        struct HLevel
        {
            CutGraph g;
            std::vector<int> toCoarse; // finer-level unit -> this level
        };
        std::vector<HLevel> levels;
        levels.push_back({fine, {}});
        const int coarseTarget =
            std::max(64, targetPerIsland * nislands);
        while (levels.back().g.n > coarseTarget) {
            std::vector<int> map;
            CutGraph cg =
                coarsenGraph(levels.back().g, maxUnitWeight, map);
            if (cg.n >= levels.back().g.n - levels.back().g.n / 20)
                break; // matching stalled (<5% reduction)
            levels.push_back({std::move(cg), std::move(map)});
        }

        // Fresh chunked seed at the coarsest level, then refine down.
        // Coarse levels get a generous bad-move streak (restructuring
        // crosses zero-gain plateaus); finer levels only polish.
        std::vector<int> assign =
            chunkAssign(levels.back().g.weight, levels.back().g.key,
                        nislands);
        for (size_t L = levels.size(); L-- > 0;) {
            if (L + 1 < levels.size()) {
                const std::vector<int> &up = assign;
                std::vector<int> down(levels[L].g.n);
                for (int u = 0; u < levels[L].g.n; ++u)
                    down[u] = up[levels[L + 1].toCoarse[u]];
                assign = std::move(down);
            }
            int streak = L + 1 == levels.size()
                             ? std::max(64, levels[L].g.n)
                             : 64;
            klfmRefine(levels[L].g, assign, nislands, bound, maxPasses,
                       streak, passes, moves);
        }
        consider(assign);
    };
    multilevel(8, 16);
    multilevel(4, 8);

    (void)seedNonEmpty;
    islandOfCluster = std::move(best);
}

} // namespace

double
PartitionPlan::imbalance() const
{
    if (islands.empty() || totalWeight == 0)
        return 1.0;
    long maxw = 0;
    for (const PartitionIsland &isl : islands)
        maxw = std::max(maxw, isl.weight);
    double mean =
        static_cast<double>(totalWeight) / static_cast<double>(islands.size());
    return mean > 0 ? static_cast<double>(maxw) / mean : 1.0;
}

PartitionPlan
partitionDesign(const Elaboration &elab, int nislands)
{
    return partitionDesign(elab, nislands, PartitionOptions{});
}

PartitionPlan
partitionDesign(const Elaboration &elab, int nislands,
                const PartitionOptions &opts)
{
    if (elab.hasCombCycle) {
        throw std::logic_error(
            "design has a combinational cycle; ParSim requires a static "
            "(levelized) schedule");
    }

    PartitionPlan plan;
    const auto &blocks = elab.blocks;
    const int nblocks = static_cast<int>(blocks.size());
    const int ntokens =
        static_cast<int>(elab.nets.size() + elab.arrays.size());

    // ---------------------------------------------------------------
    // 1. Atomic clusters: blocks that must share an island.
    //    (a) all statically known writers of one token — a second
    //        writer makes the result order-dependent, so the pair must
    //        execute on one thread in schedule order;
    //    (b) every block touching one memory array — arrays are
    //        mutable bulk state; co-locating all touchers keeps array
    //        storage island-local and avoids per-cycle array copies.
    // ---------------------------------------------------------------
    std::vector<std::vector<int>> tokenWriters(ntokens);
    std::vector<std::vector<int>> tokenCombWriters(ntokens);
    std::vector<std::vector<int>> tokenReaders(ntokens);
    for (int i = 0; i < nblocks; ++i) {
        if (!assignable(blocks[i]))
            continue;
        for (int t : blocks[i].writes) {
            tokenWriters[t].push_back(i);
            if (!isTick(blocks[i].kind))
                tokenCombWriters[t].push_back(i);
        }
        for (int t : blocks[i].reads)
            tokenReaders[t].push_back(i);
    }

    BlockUnionFind uf(static_cast<size_t>(nblocks));
    for (int t = 0; t < ntokens; ++t) {
        const auto &writers = tokenWriters[t];
        for (size_t k = 1; k < writers.size(); ++k)
            uf.unite(writers[0], writers[k]);
        // (c) a tick block writing a *non-flopped* net mutates the
        // current value at tick time (a blocking write); tick blocks
        // reading it would race with the write and depend on tick
        // order, so co-locate them — island tick lists preserve the
        // global tick order.
        if (t < static_cast<int>(elab.nets.size()) &&
            !elab.nets[t].floppedStatic) {
            for (int w : writers) {
                if (!isTick(blocks[w].kind))
                    continue;
                for (int r : tokenReaders[t]) {
                    if (isTick(blocks[r].kind))
                        uf.unite(w, r);
                }
            }
        }
        if (t >= static_cast<int>(elab.nets.size())) {
            // Array token: merge every toucher.
            int first = -1;
            for (int blk : writers) {
                if (first < 0)
                    first = blk;
                uf.unite(first, blk);
            }
            for (int blk : tokenReaders[t]) {
                if (first < 0)
                    first = blk;
                uf.unite(first, blk);
            }
        }
    }

    // Dense cluster ids, each with weight and a locality key (the
    // pre-order index of the shallowest member block's model: blocks
    // of one model subtree sort adjacently, so chunking the sorted
    // cluster list cuts the design along its structural hierarchy —
    // e.g. a mesh falls into contiguous strips of whole routers).
    std::unordered_map<const Model *, int> modelOrder;
    for (size_t i = 0; i < elab.models.size(); ++i)
        modelOrder[elab.models[i]] = static_cast<int>(i);

    std::unordered_map<int, int> rootToCluster;
    std::vector<long> clusterWeight;
    std::vector<int> clusterKey;
    std::vector<int> clusterOf(nblocks, -1);
    for (int i = 0; i < nblocks; ++i) {
        if (!assignable(blocks[i]))
            continue;
        int root = uf.find(i);
        auto [it, inserted] = rootToCluster.try_emplace(
            root, static_cast<int>(clusterWeight.size()));
        if (inserted) {
            clusterWeight.push_back(0);
            clusterKey.push_back(modelOrder.at(blocks[i].model));
        }
        int c = it->second;
        clusterOf[i] = c;
        clusterWeight[c] += blockWeight(blocks[i]);
        clusterKey[c] = std::min(clusterKey[c],
                                 modelOrder.at(blocks[i].model));
    }
    const int nclusters = static_cast<int>(clusterWeight.size());
    plan.nclusters = nclusters;
    plan.totalWeight =
        std::accumulate(clusterWeight.begin(), clusterWeight.end(), 0L);

    // ---------------------------------------------------------------
    // 2. Load balance: order clusters by locality key and chunk the
    //    order into nislands contiguous, weight-balanced spans.
    // ---------------------------------------------------------------
    plan.requestedIslands = std::max(1, nislands);
    nislands = std::max(1, std::min(nislands, std::max(1, nclusters)));
    plan.nislands = nislands;
    plan.islands.resize(nislands);

    std::vector<int> islandOfCluster =
        chunkAssign(clusterWeight, clusterKey, nislands);

    // ---------------------------------------------------------------
    // 2b. Cluster-granularity cut model shared by the seed metrics
    //     and the refinement pass. A token can cross islands only if
    //     its (unique, by rule (a)) writer cluster differs from some
    //     reader cluster; a comb edge only if writer and reader block
    //     live in different clusters. Tokens with no static writer
    //     are coordinator-broadcast and cost the same everywhere.
    // ---------------------------------------------------------------
    CutGraph graph;
    graph.n = nclusters;
    graph.weight = clusterWeight;
    graph.key = clusterKey;
    int constantCutTokens = 0;
    for (int t = 0; t < ntokens; ++t) {
        const bool isArray = t >= static_cast<int>(elab.nets.size());
        if (tokenWriters[t].empty()) {
            // Writerless arrays co-locate with their (single, merged)
            // reader cluster; writerless nets are external-owned and
            // count as cut under any assignment.
            if (!isArray && !tokenReaders[t].empty())
                ++constantCutTokens;
            continue;
        }
        MovToken e;
        e.wc = clusterOf[tokenWriters[t][0]];
        for (int r : tokenReaders[t]) {
            int c = clusterOf[r];
            if (c != e.wc)
                e.readers.push_back(c);
        }
        if (e.readers.empty())
            continue; // intra-cluster forever: can never be cut
        std::sort(e.readers.begin(), e.readers.end());
        e.readers.erase(
            std::unique(e.readers.begin(), e.readers.end()),
            e.readers.end());
        graph.toks.push_back(std::move(e));
    }
    {
        std::unordered_map<uint64_t, int> pairIndex;
        for (int b : elab.combOrder) {
            int cb = clusterOf[b];
            for (int t : blocks[b].reads) {
                for (int w : tokenCombWriters[t]) {
                    if (w == b)
                        continue;
                    int cw = clusterOf[w];
                    if (cw == cb)
                        continue;
                    int lo = std::min(cw, cb), hi = std::max(cw, cb);
                    uint64_t key =
                        (static_cast<uint64_t>(lo) << 32) |
                        static_cast<uint32_t>(hi);
                    auto [it, inserted] = pairIndex.try_emplace(
                        key, static_cast<int>(graph.pairs.size()));
                    if (inserted)
                        graph.pairs.push_back({lo, hi, 0});
                    ++graph.pairs[it->second].count;
                }
            }
        }
    }
    graph.buildIncidence();

    {
        long seedTok = 0, seedEdge = 0;
        for (const MovToken &e : graph.toks)
            seedTok += tokenCutAt(e, -1, 0, islandOfCluster);
        for (const CombPair &p : graph.pairs)
            seedEdge += pairCutAt(p, -1, 0, islandOfCluster);
        plan.seedCutTokens =
            static_cast<int>(seedTok) + constantCutTokens;
        plan.seedCutCombEdges = static_cast<int>(seedEdge);
    }

    // ---------------------------------------------------------------
    // 2c. Multilevel KLFM min-cut refinement over the chunked seed.
    // ---------------------------------------------------------------
    if (opts.refine && nislands > 1 && nclusters > nislands) {
        refineMultilevel(graph, islandOfCluster, nislands,
                         plan.totalWeight, opts, plan.refinePasses,
                         plan.refineMoves);
    }

    // ---------------------------------------------------------------
    // 2d. Compact islands the chunker left empty (possible when big
    //     clusters front-load the weight targets): the plan only ever
    //     exposes islands that own at least one cluster, so workers
    //     and imbalance statistics never see zero-weight islands.
    // ---------------------------------------------------------------
    {
        std::vector<char> used(nislands, 0);
        for (int c = 0; c < nclusters; ++c)
            used[islandOfCluster[c]] = 1;
        std::vector<int> remap(nislands, -1);
        int effective = 0;
        for (int i = 0; i < nislands; ++i) {
            if (used[i])
                remap[i] = effective++;
        }
        if (effective == 0)
            effective = 1; // no assignable blocks at all
        if (effective != nislands) {
            for (int c = 0; c < nclusters; ++c)
                islandOfCluster[c] = remap[islandOfCluster[c]];
            nislands = effective;
            plan.nislands = effective;
            plan.islands.clear();
            plan.islands.resize(effective);
        }
    }

    std::vector<int> islandOfBlock(nblocks, kExternalIsland);
    for (int i = 0; i < nblocks; ++i) {
        if (clusterOf[i] >= 0)
            islandOfBlock[i] = islandOfCluster[clusterOf[i]];
    }

    // ---------------------------------------------------------------
    // 3. Ownership and reader sets per token.
    // ---------------------------------------------------------------
    plan.ownerOf.assign(ntokens, kExternalIsland);
    for (int t = 0; t < ntokens; ++t) {
        if (!tokenWriters[t].empty()) {
            plan.ownerOf[t] = islandOfBlock[tokenWriters[t][0]];
        } else if (t >= static_cast<int>(elab.nets.size()) &&
                   !tokenReaders[t].empty()) {
            // Read-only array (e.g. test-bench-loaded ROM): store it
            // with its readers so array state stays island-local.
            plan.ownerOf[t] = islandOfBlock[tokenReaders[t][0]];
        }
    }
    plan.readerIslands.assign(ntokens, {});
    for (int t = 0; t < ntokens; ++t) {
        std::vector<int> &readers = plan.readerIslands[t];
        for (int blk : tokenReaders[t])
            readers.push_back(islandOfBlock[blk]);
        std::sort(readers.begin(), readers.end());
        readers.erase(std::unique(readers.begin(), readers.end()),
                      readers.end());
    }

    // ---------------------------------------------------------------
    // 4. Settle supersteps: a comb block's level is the longest chain
    //    of *cross-island* comb edges feeding it. Blocks of level L
    //    run in parallel superstep L; boundary values are exchanged at
    //    the barrier between supersteps.
    // ---------------------------------------------------------------
    std::vector<int> level(nblocks, 0);
    int maxLevel = 0;
    for (int b : elab.combOrder) {
        int lvl = 0;
        for (int t : blocks[b].reads) {
            for (int w : tokenCombWriters[t]) {
                if (w == b)
                    continue;
                int step = islandOfBlock[w] != islandOfBlock[b] ? 1 : 0;
                lvl = std::max(lvl, level[w] + step);
                if (step)
                    ++plan.cutCombEdges;
            }
        }
        level[b] = lvl;
        maxLevel = std::max(maxLevel, lvl);
    }
    plan.nlevels = maxLevel + 1;

    // ---------------------------------------------------------------
    // 5. Fill the islands (global schedule order restricted to each).
    // ---------------------------------------------------------------
    for (int b : elab.combOrder) {
        int isl = islandOfBlock[b];
        if (isl < 0)
            continue;
        plan.islands[isl].combBlocks.push_back(b);
        plan.islands[isl].combLevels.push_back(level[b]);
    }
    // Within one island, order by (level, topo position) so a
    // superstep is a contiguous span of the island's comb list.
    for (PartitionIsland &isl : plan.islands) {
        std::vector<int> idx(isl.combBlocks.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
            return isl.combLevels[a] < isl.combLevels[b];
        });
        std::vector<int> cb, cl;
        cb.reserve(idx.size());
        cl.reserve(idx.size());
        for (int k : idx) {
            cb.push_back(isl.combBlocks[k]);
            cl.push_back(isl.combLevels[k]);
        }
        isl.combBlocks = std::move(cb);
        isl.combLevels = std::move(cl);
    }
    for (int b : elab.tickOrder) {
        if (blocks[b].kind == BlockKind::TickIr &&
            islandOfBlock[b] >= 0) {
            plan.islands[islandOfBlock[b]].tickBlocks.push_back(b);
        } else if (!assignable(blocks[b])) {
            plan.lambdaTicks.push_back(b);
        }
    }
    for (int t = 0; t < ntokens; ++t) {
        int owner = plan.ownerOf[t];
        if (owner < 0)
            continue;
        plan.islands[owner].ownedTokens.push_back(t);
        if (t < static_cast<int>(elab.nets.size()) &&
            elab.nets[t].floppedStatic)
            plan.islands[owner].flopNets.push_back(t);
    }
    for (int i = 0; i < nblocks; ++i) {
        if (islandOfBlock[i] >= 0)
            plan.islands[islandOfBlock[i]].weight += blockWeight(blocks[i]);
    }

    // Cut size: tokens some non-owner island reads (exchanged between
    // replicas at least once per cycle).
    for (int t = 0; t < ntokens; ++t) {
        for (int r : plan.readerIslands[t]) {
            if (r != plan.ownerOf[t]) {
                ++plan.cutTokens;
                break;
            }
        }
    }

    return plan;
}

std::string
partitionReport(const Elaboration &elab, const PartitionPlan &plan)
{
    std::ostringstream os;
    os << "ParSim partition: " << plan.nislands << " island(s)";
    if (plan.requestedIslands != plan.nislands)
        os << " (requested " << plan.requestedIslands
           << ", clamped to effective)";
    os << ", " << plan.nclusters << " atomic cluster(s), "
       << plan.nlevels << " settle superstep(s)\n";
    os << "  cut: " << plan.cutTokens << " boundary token(s), "
       << plan.cutCombEdges << " cross-island comb edge(s), imbalance "
       << plan.imbalance() << "\n";
    if (plan.refinePasses > 0)
        os << "  refinement: seed cut " << plan.seedCutTokens
           << " token(s) / " << plan.seedCutCombEdges << " edge(s) -> "
           << plan.cutTokens << " / " << plan.cutCombEdges << " in "
           << plan.refineMoves << " move(s), " << plan.refinePasses
           << " pass(es)\n";
    for (size_t i = 0; i < plan.islands.size(); ++i) {
        const PartitionIsland &isl = plan.islands[i];
        os << "  island " << i << ": weight " << isl.weight << " ("
           << isl.combBlocks.size() << " comb, " << isl.tickBlocks.size()
           << " tick blocks, " << isl.ownedTokens.size()
           << " owned tokens)\n";
    }
    os << "  external: " << plan.lambdaTicks.size()
       << " tick lambda(s) on the coordinating thread";
    size_t externalTokens = 0;
    for (int owner : plan.ownerOf) {
        if (owner == kExternalIsland)
            ++externalTokens;
    }
    os << ", " << externalTokens << " external token(s)\n";
    (void)elab;
    return os.str();
}

} // namespace cmtl
