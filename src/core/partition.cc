#include "partition.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace cmtl {

namespace {

/** Union-find over dense block indices. */
class BlockUnionFind
{
  public:
    explicit BlockUnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b) { parent_[find(a)] = find(b); }

  private:
    std::vector<int> parent_;
};

long
exprCost(const IrExprNode *e)
{
    if (!e)
        return 0;
    long cost = 1;
    for (const IrExprPtr &arg : e->args)
        cost += exprCost(arg.get());
    return cost;
}

long
stmtCost(const std::vector<IrStmt> &stmts)
{
    long cost = 0;
    for (const IrStmt &s : stmts) {
        cost += 1 + exprCost(s.rhs.get()) + exprCost(s.cond.get());
        cost += stmtCost(s.thenBody) + stmtCost(s.elseBody);
    }
    return cost;
}

/** Per-cycle work estimate of one block (IR node count proxy). */
long
blockWeight(const ElabBlock &blk)
{
    if (blk.ir)
        return std::max<long>(1, stmtCost(blk.ir->stmts));
    // Lambda blocks: unknown host code; assume a moderate fixed cost.
    return 16;
}

/** True for blocks the partitioner may assign to a worker island. */
bool
assignable(const ElabBlock &blk)
{
    switch (blk.kind) {
      case BlockKind::CombIr:
      case BlockKind::CombLambda:
      case BlockKind::TickIr:
        return true;
      case BlockKind::TickFl:
      case BlockKind::TickCl:
        return false;
    }
    return false;
}

} // namespace

double
PartitionPlan::imbalance() const
{
    if (islands.empty() || totalWeight == 0)
        return 1.0;
    long maxw = 0;
    for (const PartitionIsland &isl : islands)
        maxw = std::max(maxw, isl.weight);
    double mean =
        static_cast<double>(totalWeight) / static_cast<double>(islands.size());
    return mean > 0 ? static_cast<double>(maxw) / mean : 1.0;
}

PartitionPlan
partitionDesign(const Elaboration &elab, int nislands)
{
    if (elab.hasCombCycle) {
        throw std::logic_error(
            "design has a combinational cycle; ParSim requires a static "
            "(levelized) schedule");
    }

    PartitionPlan plan;
    const auto &blocks = elab.blocks;
    const int nblocks = static_cast<int>(blocks.size());
    const int ntokens =
        static_cast<int>(elab.nets.size() + elab.arrays.size());

    // ---------------------------------------------------------------
    // 1. Atomic clusters: blocks that must share an island.
    //    (a) all statically known writers of one token — a second
    //        writer makes the result order-dependent, so the pair must
    //        execute on one thread in schedule order;
    //    (b) every block touching one memory array — arrays are
    //        mutable bulk state; co-locating all touchers keeps array
    //        storage island-local and avoids per-cycle array copies.
    // ---------------------------------------------------------------
    std::vector<std::vector<int>> tokenWriters(ntokens);
    std::vector<std::vector<int>> tokenCombWriters(ntokens);
    std::vector<std::vector<int>> tokenReaders(ntokens);
    for (int i = 0; i < nblocks; ++i) {
        if (!assignable(blocks[i]))
            continue;
        for (int t : blocks[i].writes) {
            tokenWriters[t].push_back(i);
            if (!isTick(blocks[i].kind))
                tokenCombWriters[t].push_back(i);
        }
        for (int t : blocks[i].reads)
            tokenReaders[t].push_back(i);
    }

    BlockUnionFind uf(static_cast<size_t>(nblocks));
    for (int t = 0; t < ntokens; ++t) {
        const auto &writers = tokenWriters[t];
        for (size_t k = 1; k < writers.size(); ++k)
            uf.unite(writers[0], writers[k]);
        // (c) a tick block writing a *non-flopped* net mutates the
        // current value at tick time (a blocking write); tick blocks
        // reading it would race with the write and depend on tick
        // order, so co-locate them — island tick lists preserve the
        // global tick order.
        if (t < static_cast<int>(elab.nets.size()) &&
            !elab.nets[t].floppedStatic) {
            for (int w : writers) {
                if (!isTick(blocks[w].kind))
                    continue;
                for (int r : tokenReaders[t]) {
                    if (isTick(blocks[r].kind))
                        uf.unite(w, r);
                }
            }
        }
        if (t >= static_cast<int>(elab.nets.size())) {
            // Array token: merge every toucher.
            int first = -1;
            for (int blk : writers) {
                if (first < 0)
                    first = blk;
                uf.unite(first, blk);
            }
            for (int blk : tokenReaders[t]) {
                if (first < 0)
                    first = blk;
                uf.unite(first, blk);
            }
        }
    }

    // Dense cluster ids, each with weight and a locality key (the
    // pre-order index of the shallowest member block's model: blocks
    // of one model subtree sort adjacently, so chunking the sorted
    // cluster list cuts the design along its structural hierarchy —
    // e.g. a mesh falls into contiguous strips of whole routers).
    std::unordered_map<const Model *, int> modelOrder;
    for (size_t i = 0; i < elab.models.size(); ++i)
        modelOrder[elab.models[i]] = static_cast<int>(i);

    std::unordered_map<int, int> rootToCluster;
    std::vector<long> clusterWeight;
    std::vector<int> clusterKey;
    std::vector<int> clusterOf(nblocks, -1);
    for (int i = 0; i < nblocks; ++i) {
        if (!assignable(blocks[i]))
            continue;
        int root = uf.find(i);
        auto [it, inserted] = rootToCluster.try_emplace(
            root, static_cast<int>(clusterWeight.size()));
        if (inserted) {
            clusterWeight.push_back(0);
            clusterKey.push_back(modelOrder.at(blocks[i].model));
        }
        int c = it->second;
        clusterOf[i] = c;
        clusterWeight[c] += blockWeight(blocks[i]);
        clusterKey[c] = std::min(clusterKey[c],
                                 modelOrder.at(blocks[i].model));
    }
    const int nclusters = static_cast<int>(clusterWeight.size());
    plan.nclusters = nclusters;
    plan.totalWeight =
        std::accumulate(clusterWeight.begin(), clusterWeight.end(), 0L);

    // ---------------------------------------------------------------
    // 2. Load balance: order clusters by locality key and chunk the
    //    order into nislands contiguous, weight-balanced spans.
    // ---------------------------------------------------------------
    nislands = std::max(1, std::min(nislands, std::max(1, nclusters)));
    plan.nislands = nislands;
    plan.islands.resize(nislands);

    std::vector<int> order(nclusters);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return clusterKey[a] < clusterKey[b];
    });

    std::vector<int> islandOfCluster(nclusters, 0);
    {
        long remaining = plan.totalWeight;
        int island = 0;
        long acc = 0;
        for (int idx : order) {
            int chunksLeft = nislands - island;
            long target = (remaining + chunksLeft - 1) / chunksLeft;
            if (acc > 0 && acc + clusterWeight[idx] / 2 >= target &&
                island + 1 < nislands) {
                remaining -= acc;
                acc = 0;
                ++island;
            }
            islandOfCluster[idx] = island;
            acc += clusterWeight[idx];
        }
    }

    std::vector<int> islandOfBlock(nblocks, kExternalIsland);
    for (int i = 0; i < nblocks; ++i) {
        if (clusterOf[i] >= 0)
            islandOfBlock[i] = islandOfCluster[clusterOf[i]];
    }

    // ---------------------------------------------------------------
    // 3. Ownership and reader sets per token.
    // ---------------------------------------------------------------
    plan.ownerOf.assign(ntokens, kExternalIsland);
    for (int t = 0; t < ntokens; ++t) {
        if (!tokenWriters[t].empty()) {
            plan.ownerOf[t] = islandOfBlock[tokenWriters[t][0]];
        } else if (t >= static_cast<int>(elab.nets.size()) &&
                   !tokenReaders[t].empty()) {
            // Read-only array (e.g. test-bench-loaded ROM): store it
            // with its readers so array state stays island-local.
            plan.ownerOf[t] = islandOfBlock[tokenReaders[t][0]];
        }
    }
    plan.readerIslands.assign(ntokens, {});
    for (int t = 0; t < ntokens; ++t) {
        std::vector<int> &readers = plan.readerIslands[t];
        for (int blk : tokenReaders[t])
            readers.push_back(islandOfBlock[blk]);
        std::sort(readers.begin(), readers.end());
        readers.erase(std::unique(readers.begin(), readers.end()),
                      readers.end());
    }

    // ---------------------------------------------------------------
    // 4. Settle supersteps: a comb block's level is the longest chain
    //    of *cross-island* comb edges feeding it. Blocks of level L
    //    run in parallel superstep L; boundary values are exchanged at
    //    the barrier between supersteps.
    // ---------------------------------------------------------------
    std::vector<int> level(nblocks, 0);
    int maxLevel = 0;
    for (int b : elab.combOrder) {
        int lvl = 0;
        for (int t : blocks[b].reads) {
            for (int w : tokenCombWriters[t]) {
                if (w == b)
                    continue;
                int step = islandOfBlock[w] != islandOfBlock[b] ? 1 : 0;
                lvl = std::max(lvl, level[w] + step);
                if (step)
                    ++plan.cutCombEdges;
            }
        }
        level[b] = lvl;
        maxLevel = std::max(maxLevel, lvl);
    }
    plan.nlevels = maxLevel + 1;

    // ---------------------------------------------------------------
    // 5. Fill the islands (global schedule order restricted to each).
    // ---------------------------------------------------------------
    for (int b : elab.combOrder) {
        int isl = islandOfBlock[b];
        if (isl < 0)
            continue;
        plan.islands[isl].combBlocks.push_back(b);
        plan.islands[isl].combLevels.push_back(level[b]);
    }
    // Within one island, order by (level, topo position) so a
    // superstep is a contiguous span of the island's comb list.
    for (PartitionIsland &isl : plan.islands) {
        std::vector<int> idx(isl.combBlocks.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::stable_sort(idx.begin(), idx.end(), [&](int a, int b) {
            return isl.combLevels[a] < isl.combLevels[b];
        });
        std::vector<int> cb, cl;
        cb.reserve(idx.size());
        cl.reserve(idx.size());
        for (int k : idx) {
            cb.push_back(isl.combBlocks[k]);
            cl.push_back(isl.combLevels[k]);
        }
        isl.combBlocks = std::move(cb);
        isl.combLevels = std::move(cl);
    }
    for (int b : elab.tickOrder) {
        if (blocks[b].kind == BlockKind::TickIr &&
            islandOfBlock[b] >= 0) {
            plan.islands[islandOfBlock[b]].tickBlocks.push_back(b);
        } else if (!assignable(blocks[b])) {
            plan.lambdaTicks.push_back(b);
        }
    }
    for (int t = 0; t < ntokens; ++t) {
        int owner = plan.ownerOf[t];
        if (owner < 0)
            continue;
        plan.islands[owner].ownedTokens.push_back(t);
        if (t < static_cast<int>(elab.nets.size()) &&
            elab.nets[t].floppedStatic)
            plan.islands[owner].flopNets.push_back(t);
    }
    for (int i = 0; i < nblocks; ++i) {
        if (islandOfBlock[i] >= 0)
            plan.islands[islandOfBlock[i]].weight += blockWeight(blocks[i]);
    }

    // Cut size: tokens some non-owner island reads (exchanged between
    // replicas at least once per cycle).
    for (int t = 0; t < ntokens; ++t) {
        for (int r : plan.readerIslands[t]) {
            if (r != plan.ownerOf[t]) {
                ++plan.cutTokens;
                break;
            }
        }
    }

    return plan;
}

std::string
partitionReport(const Elaboration &elab, const PartitionPlan &plan)
{
    std::ostringstream os;
    os << "ParSim partition: " << plan.nislands << " island(s), "
       << plan.nclusters << " atomic cluster(s), " << plan.nlevels
       << " settle superstep(s)\n";
    os << "  cut: " << plan.cutTokens << " boundary token(s), "
       << plan.cutCombEdges << " cross-island comb edge(s), imbalance "
       << plan.imbalance() << "\n";
    for (size_t i = 0; i < plan.islands.size(); ++i) {
        const PartitionIsland &isl = plan.islands[i];
        os << "  island " << i << ": weight " << isl.weight << " ("
           << isl.combBlocks.size() << " comb, " << isl.tickBlocks.size()
           << " tick blocks, " << isl.ownedTokens.size()
           << " owned tokens)\n";
    }
    os << "  external: " << plan.lambdaTicks.size()
       << " tick lambda(s) on the coordinating thread";
    size_t externalTokens = 0;
    for (int owner : plan.ownerOf) {
        if (owner == kExternalIsland)
            ++externalTokens;
    }
    os << ", " << externalTokens << " external token(s)\n";
    (void)elab;
    return os.str();
}

} // namespace cmtl
