#include "psim.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <stdexcept>

#include "dataflow.h"
#include "ir_cpp.h"
#include "timing.h"

namespace cmtl {

namespace {

/**
 * Which replica the current thread addresses: worker threads bind to
 * their island for the thread's lifetime; the coordinating thread (and
 * any other host thread) stays at -1 and routes through token owners.
 */
thread_local int tls_island = -1;

} // namespace

ParSimulationTool::ParSimulationTool(std::shared_ptr<Elaboration> elab,
                                     SimConfig cfg)
    : Simulator(std::move(elab), cfg),
      plan_(partitionDesign(*elab_, cfg.threads)),
      bar_all_(plan_.nislands + 1),
      bar_workers_(plan_.nislands)
{
    Stopwatch sw;

    if (cfg_.exec != ExecMode::OptInterp) {
        throw std::logic_error(
            "ParSim requires ExecMode::OptInterp (dense arena storage)");
    }
    if (cfg_.sched == SchedMode::Event) {
        throw std::logic_error(
            "ParSim is statically scheduled; SchedMode::Event is "
            "sequential-only");
    }

    // One layout shared by every replica: identical physical slots by
    // construction. The profile policy sees the real partition plan,
    // so placement groups by owner island and packing never crosses an
    // ownership boundary (whole-word pushes stay sound).
    auto layout = std::make_shared<const ArenaLayout>(
        cfg_.layout == LayoutPolicy::Profile
            ? ArenaLayout::profiled(*elab_, &plan_, nullptr)
            : ArenaLayout::elabOrder(*elab_));
    replicas_.reserve(plan_.nislands);
    evals_.reserve(plan_.nislands);
    for (int i = 0; i < plan_.nislands; ++i) {
        replicas_.push_back(std::make_unique<ArenaStore>(*elab_, layout));
        evals_.push_back(std::make_unique<SlotEvaluator>(*replicas_[i]));
    }

    accessor_.bindReplicas(&replicas_, &plan_.ownerOf);
    accessor_.onPokeChanged([this](int net) {
        dirty_ = true;
        if (gating_)
            markReaderIslandsDirty(net);
    });

    // Per-island flop copy plans: layout invariants guarantee a word's
    // residents share owner island and flop class, so an island's
    // owned static flops coalesce into whole-word ranges (disjoint
    // across islands by ownership).
    island_flop_plans_.reserve(plan_.nislands);
    for (int i = 0; i < plan_.nislands; ++i)
        island_flop_plans_.push_back(
            layout->flopPlan(plan_.islands[i].flopNets));

    const size_t nnets = elab_->nets.size();
    is_main_flop_.assign(nnets, 0);
    static_island_flop_.assign(nnets, 0);
    for (const Net &net : elab_->nets) {
        if (net.floppedStatic && plan_.ownerOf[net.id] >= 0)
            static_island_flop_[net.id] = 1;
    }

    for (Signal *sig : elab_->signals)
        sig->setAccess(this);
    try {
        buildIslandSchedules();
        buildGating();
        double create_before_spec = sw.elapsed();
        if (cfg_.spec != SpecMode::None)
            specialize();
        startWorkers();
        spec_stats_.simCreateSeconds =
            create_before_spec +
            (sw.elapsed() - create_before_spec -
             spec_stats_.codegenSeconds - spec_stats_.compileSeconds -
             spec_stats_.wrapSeconds);
    } catch (...) {
        for (Signal *sig : elab_->signals) {
            if (sig->access() == this)
                sig->setAccess(nullptr);
        }
        throw;
    }
}

ParSimulationTool::~ParSimulationTool()
{
    if (jit_thread_.joinable())
        jit_thread_.join();
    shutdownWorkers();
    for (Signal *sig : elab_->signals) {
        if (sig->access() == this)
            sig->setAccess(nullptr);
    }
}

void
ParSimulationTool::buildIslandSchedules()
{
    const auto &blocks = elab_->blocks;
    spec_stats_.numBlocks = static_cast<int>(blocks.size());

    // Dead-logic elimination: a comb block whose writes never reach an
    // observed sink can be dropped from the island schedules. Pushes
    // derive from the *scheduled* steps below, so a dead block's writes
    // are never exchanged either — sound, because no live block reads
    // them. The dead set is a pure function of the Elaboration, so the
    // sequential and parallel kernels elide the same blocks.
    dead_block_.assign(blocks.size(), 0);
    if (cfg_.dead_elim) {
        DataflowResult flow = dataflowAnalyze(*elab_);
        for (int b : flow.deadCombBlocks())
            dead_block_[b] = 1;
        spec_stats_.deadBlocksElided = flow.deadBlocks;
        spec_stats_.deadNetsElided = flow.deadNets;
    }

    const int n = plan_.nislands;
    comb_steps_.resize(n);
    tick_steps_.resize(n);
    comb_pushes_.assign(
        n, std::vector<std::vector<CopyOp>>(plan_.nlevels));
    flop_pushes_.resize(n);

    // A push targets every non-owner island with a static reader. The
    // coordinating thread reads owner replicas directly and never
    // needs one.
    auto pushTargets = [&](int token, int owner, std::vector<CopyOp> &out) {
        if (token >= static_cast<int>(elab_->nets.size()))
            return; // arrays are island-local by construction
        for (int dst : plan_.readerIslands[token]) {
            if (dst != owner) {
                out.push_back(CopyOp{dst, replicas_[0]->offset(token),
                                     replicas_[0]->nwords(token)});
            }
        }
    };

    for (int i = 0; i < n; ++i) {
        const PartitionIsland &isl = plan_.islands[i];
        for (size_t k = 0; k < isl.combBlocks.size(); ++k) {
            if (dead_block_[isl.combBlocks[k]])
                continue;
            PStep step;
            step.block = isl.combBlocks[k];
            step.level = isl.combLevels[k];
            comb_steps_[i].push_back(step);
        }
        for (int b : isl.tickBlocks) {
            PStep step;
            step.block = b;
            tick_steps_[i].push_back(step);
        }

        // Comb pushes, deduplicated per (level, token).
        std::set<std::pair<int, int>> seen;
        for (const PStep &step : comb_steps_[i]) {
            for (int t : blocks[step.block].writes) {
                if (seen.insert({step.level, t}).second)
                    pushTargets(t, i, comb_pushes_[i][step.level]);
            }
        }

        // Flop pushes: post-flop values of owned flopped nets, plus
        // nets this island's tick blocks write blockingly (a tick
        // write to a net that is not statically flopped mutates the
        // current value directly).
        std::set<int> fseen;
        for (int t : isl.flopNets) {
            if (fseen.insert(t).second)
                pushTargets(t, i, flop_pushes_[i]);
        }
        for (const PStep &step : tick_steps_[i]) {
            for (int t : blocks[step.block].writes) {
                if (t < static_cast<int>(elab_->nets.size()) &&
                    !elab_->nets[t].floppedStatic && fseen.insert(t).second)
                    pushTargets(t, i, flop_pushes_[i]);
            }
        }

        // Packed word-mates map to the same physical word, so the
        // per-token dedup above can leave byte-identical copies;
        // collapse them (identical ops commute, dropping one is safe).
        auto dedupe = [](std::vector<CopyOp> &ops) {
            std::sort(ops.begin(), ops.end(),
                      [](const CopyOp &a, const CopyOp &b) {
                          if (a.dst != b.dst)
                              return a.dst < b.dst;
                          if (a.off != b.off)
                              return a.off < b.off;
                          return a.n < b.n;
                      });
            ops.erase(std::unique(ops.begin(), ops.end(),
                                  [](const CopyOp &a, const CopyOp &b) {
                                      return a.dst == b.dst &&
                                             a.off == b.off && a.n == b.n;
                                  }),
                      ops.end());
        };
        for (auto &level : comb_pushes_[i])
            dedupe(level);
        dedupe(flop_pushes_[i]);
    }
}

void
ParSimulationTool::buildGating()
{
    // The fused cpp-design tier runs each settle level as one compiled
    // call per island with no change detection anywhere, so gating
    // stays off there (matching the sequential kernel's policy).
    gating_ = cfg_.gating && !designMode();
    if (!gating_)
        return;
    const int n = plan_.nislands;
    island_dirty_ = std::vector<std::atomic<uint8_t>>(n);
    for (auto &flag : island_dirty_)
        flag.store(1, std::memory_order_relaxed);
    settle_active_.assign(n, 1);

    comb_push_islands_.assign(n, {});
    for (int i = 0; i < n; ++i) {
        std::vector<char> seen(n, 0);
        for (const auto &level : comb_pushes_[i]) {
            for (const CopyOp &op : level) {
                if (!seen[op.dst]) {
                    seen[op.dst] = 1;
                    comb_push_islands_[i].push_back(op.dst);
                }
            }
        }
    }

    // Islands whose tick blocks write blockingly — an array, or a net
    // that is never statically flopped — mutate their own comb inputs
    // without change detection; mark them dirty every cycle. (The
    // cross-island half of a blocking write is change-detected by the
    // flop-phase pushes.)
    tick_dirty_island_.assign(n, 0);
    for (int i = 0; i < n; ++i) {
        for (const PStep &step : tick_steps_[i]) {
            for (int t : elab_->blocks[step.block].writes) {
                if (t >= static_cast<int>(elab_->nets.size()) ||
                    !elab_->nets[t].floppedStatic) {
                    tick_dirty_island_[i] = 1;
                    break;
                }
            }
            if (tick_dirty_island_[i])
                break;
        }
    }
}

void
ParSimulationTool::markReaderIslandsDirty(int token)
{
    for (int isl : plan_.readerIslands[token])
        island_dirty_[isl].store(1, std::memory_order_relaxed);
    int owner = plan_.ownerOf[token];
    if (owner >= 0)
        island_dirty_[owner].store(1, std::memory_order_relaxed);
}

void
ParSimulationTool::specialize()
{
    Stopwatch sw;
    const auto &blocks = elab_->blocks;
    specialized_.assign(blocks.size(), 0);
    for (size_t b = 0; b < blocks.size(); ++b) {
        if (blocks[b].ir && bcSpecializable(blocks[b], *replicas_[0])) {
            specialized_[b] = 1;
            ++spec_stats_.numSpecialized;
        }
    }

    const bool design = designMode();
    if (cfg_.spec == SpecMode::Bytecode || design) {
        // One shared program per block: programs address the arena by
        // absolute offset, so every island runs them against its own
        // replica's data pointer. Scratch is per island. For
        // cpp-design this is the warm-up tier executed while the
        // whole-design compile runs in the background.
        bc_programs_.resize(blocks.size());
        int max_scratch = 0;
        auto compileSteps = [&](std::vector<PStep> &steps) {
            for (PStep &step : steps) {
                if (!specialized_[step.block])
                    continue;
                step.kind = PStep::Kind::Bytecode;
                if (bc_programs_[step.block].insts.empty()) {
                    bc_programs_[step.block] =
                        bcCompile(blocks[step.block], *replicas_[0]);
                    max_scratch = std::max(
                        max_scratch, bc_programs_[step.block].nscratch);
                }
            }
        };
        for (int i = 0; i < plan_.nislands; ++i) {
            compileSteps(comb_steps_[i]);
            compileSteps(tick_steps_[i]);
        }
        bc_scratch_.assign(
            plan_.nislands,
            std::vector<uint64_t>(static_cast<size_t>(max_scratch) + 1, 0));
        spec_stats_.numGroups = spec_stats_.numSpecialized;
        spec_stats_.codegenSeconds = sw.elapsed();
        if (!design)
            return;
        specializeDesign();
        return;
    }

    // SpecMode::Cpp per-block (cpp-block): every specialized block is
    // its own compiled entry point, invoked with the island's replica
    // data pointer — one C-ABI crossing per block per phase, the same
    // granularity as the sequential kernel.
    const bool per_block = cfg_.backend == Backend::CppBlock;
    std::vector<std::vector<int>> groups;
    auto groupSteps = [&](std::vector<PStep> &steps, bool levelBound) {
        std::vector<PStep> out;
        size_t i = 0;
        while (i < steps.size()) {
            if (!specialized_[steps[i].block]) {
                out.push_back(steps[i]);
                ++i;
                continue;
            }
            std::vector<int> group;
            size_t j = i;
            while (j < steps.size() && specialized_[steps[j].block] &&
                   (!levelBound || steps[j].level == steps[i].level) &&
                   (group.empty() || !per_block)) {
                group.push_back(steps[j].block);
                ++j;
            }
            PStep step;
            step.kind = PStep::Kind::Native;
            step.block = steps[i].block;
            step.group = static_cast<int>(groups.size());
            step.level = steps[i].level;
            groups.push_back(std::move(group));
            out.push_back(step);
            i = j;
        }
        steps = std::move(out);
    };
    for (int i = 0; i < plan_.nislands; ++i) {
        groupSteps(comb_steps_[i], true);
        groupSteps(tick_steps_[i], false);
    }
    spec_stats_.numGroups = static_cast<int>(groups.size());

    std::string source = cppEmitProgram(*elab_, *replicas_[0], groups);
    spec_stats_.emittedTuBytes = source.size();
    spec_stats_.codegenSeconds = sw.elapsed();

    CppJit jit(cfg_.jit_cache_dir.empty() ? CppJit::defaultCacheDir()
                                          : cfg_.jit_cache_dir,
               cfg_.jit_cache);
    cpp_lib_ = jit.compile(source, static_cast<int>(groups.size()));
    spec_stats_.compileSeconds = cpp_lib_.compileSeconds();
    spec_stats_.wrapSeconds = cpp_lib_.wrapSeconds();
    spec_stats_.cacheHit = cpp_lib_.cacheHit();
}

void
ParSimulationTool::specializeDesign()
{
    Stopwatch sw;
    // Native tier: each island's schedule fused into whole-island
    // modules (one per superstep level for comb — the bulk-synchronous
    // push points are immovable — one for the tick list, one for the
    // flop phase), built over the bytecode-marked schedules so
    // unspecialized blocks keep their slot-evaluated steps. One
    // translation unit is emitted PER ISLAND (group indices are local
    // to the island's library): each island's module gets its own
    // cache entry, so repartitioning or editing one island's logic
    // recompiles only the TUs whose source actually changed.
    nat_comb_steps_ = comb_steps_;
    nat_tick_steps_ = tick_steps_;
    island_flop_unit_.assign(plan_.nislands, -1);
    island_sources_.assign(plan_.nislands, {});
    island_nunits_.assign(plan_.nislands, 0);
    design_nunits_ = 0;
    spec_stats_.emittedTuBytes = 0;
    for (int i = 0; i < plan_.nislands; ++i) {
        std::vector<CppUnit> units;
        auto fuse = [&](std::vector<PStep> &steps, bool levelBound) {
            std::vector<PStep> out;
            size_t k = 0;
            while (k < steps.size()) {
                if (!specialized_[steps[k].block]) {
                    out.push_back(steps[k]);
                    ++k;
                    continue;
                }
                CppUnit unit;
                size_t j = k;
                while (j < steps.size() && specialized_[steps[j].block] &&
                       (!levelBound || steps[j].level == steps[k].level)) {
                    unit.items.push_back(CppUnit::Item{steps[j].block, -1});
                    ++j;
                }
                PStep step;
                step.kind = PStep::Kind::Native;
                step.block = steps[k].block;
                step.group = static_cast<int>(units.size());
                step.level = steps[k].level;
                units.push_back(std::move(unit));
                out.push_back(step);
                k = j;
            }
            steps = std::move(out);
        };
        fuse(nat_comb_steps_[i], true);
        fuse(nat_tick_steps_[i], false);
        // Island flop module over its owned statically flopped nets
        // (dynamic lambda flops stay on the coordinator), coalesced
        // into whole-word copy ranges where the layout allows.
        CppUnit flop_unit;
        const FlopCopyPlan &fplan = island_flop_plans_[i];
        for (const FlopRange &r : fplan.ranges)
            flop_unit.items.push_back(
                CppUnit::Item{-1, -1, r.off, r.nwords});
        for (int net : fplan.rmw_nets)
            flop_unit.items.push_back(CppUnit::Item{-1, net});
        island_flop_unit_[i] = static_cast<int>(units.size());
        units.push_back(std::move(flop_unit));

        // Replica 0's offsets are every replica's offsets, so one
        // emission serves whichever replica the code later runs on.
        island_sources_[i] = cppEmitProgram(*elab_, *replicas_[0], units);
        island_nunits_[i] = static_cast<int>(units.size());
        spec_stats_.emittedTuBytes += island_sources_[i].size();
        design_nunits_ += island_nunits_[i];
    }
    spec_stats_.codegenSeconds += sw.elapsed();
    spec_stats_.tiered = cfg_.jit_tiered;

    std::string cache_dir = cfg_.jit_cache_dir.empty()
                                ? CppJit::defaultCacheDir()
                                : cfg_.jit_cache_dir;
    if (!cfg_.jit_tiered) {
        // Workers have not started yet, so adopting here is trivially
        // safe; the first cycle runs native.
        CppJit jit(cache_dir, cfg_.jit_cache, CppJit::kWholeDesignFlags);
        island_libs_ = jit.compileMany(island_sources_, island_nunits_);
        adoptNativeTier();
        return;
    }
    jit_thread_ = std::thread([this, cache_dir] {
        try {
            CppJit jit(cache_dir, cfg_.jit_cache,
                       CppJit::kWholeDesignFlags);
            pending_libs_ =
                jit.compileMany(island_sources_, island_nunits_);
        } catch (...) {
            jit_error_ = std::current_exception();
        }
        jit_ready_.store(true, std::memory_order_release);
    });
}

void
ParSimulationTool::adoptNativeTier()
{
    // Aggregate over the per-island libraries: total build time, and
    // a cache hit only when every island's TU hit.
    spec_stats_.compileSeconds = 0.0;
    spec_stats_.wrapSeconds = 0.0;
    spec_stats_.cacheHit = !island_libs_.empty();
    for (const CppJitLibrary &lib : island_libs_) {
        spec_stats_.compileSeconds += lib.compileSeconds();
        spec_stats_.wrapSeconds += lib.wrapSeconds();
        spec_stats_.cacheHit = spec_stats_.cacheHit && lib.cacheHit();
    }
    spec_stats_.numGroups = design_nunits_;
    spec_stats_.tierSwapCycle = static_cast<int64_t>(numCycles());
    comb_steps_ = std::move(nat_comb_steps_);
    tick_steps_ = std::move(nat_tick_steps_);
    design_native_ = true;
}

void
ParSimulationTool::maybeSwapTier()
{
    if (!designMode() || design_native_ || tier_failed_ ||
        !cfg_.jit_tiered)
        return;
    if (!jit_ready_.load(std::memory_order_acquire))
        return;
    if (jit_thread_.joinable())
        jit_thread_.join();
    if (jit_error_) {
        tier_failed_ = true;
        std::exception_ptr err = jit_error_;
        jit_error_ = nullptr;
        std::rethrow_exception(err);
    }
    island_libs_ = std::move(pending_libs_);
    // Every worker is parked before the next start barrier; the
    // barrier that releases them also publishes the swapped schedules.
    adoptNativeTier();
}

bool
ParSimulationTool::tierPending() const
{
    return designMode() && cfg_.jit_tiered && !design_native_ &&
           !tier_failed_;
}

LayoutStats
ParSimulationTool::layoutStats() const
{
    LayoutStats s = replicas_[0]->layout().stats();
    for (const FlopCopyPlan &fplan : island_flop_plans_)
        s.flop_memcpy_ranges += static_cast<int>(fplan.ranges.size());
    return s;
}

// ------------------------------------------------------ thread pool

void
ParSimulationTool::startWorkers()
{
    workers_.reserve(plan_.nislands);
    for (int i = 0; i < plan_.nislands; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

void
ParSimulationTool::shutdownWorkers()
{
    if (workers_.empty())
        return;
    cmd_ = Cmd::Exit;
    bar_all_.arriveAndWait();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
ParSimulationTool::workerLoop(int island)
{
    tls_island = island;
    // Done-barrier wait of the previous phase, banked locally: the
    // probe must never be touched after the done barrier (the
    // coordinator may detach/destroy it once cycle() returns), so the
    // sample is flushed here, after the next start barrier, when the
    // coordinator is provably inside a phase.
    double pending_bar = 0.0;
    for (;;) {
        bar_all_.arriveAndWait(); // start: cmd_ published by coordinator
        Cmd cmd = cmd_;
        if (cmd == Cmd::Exit)
            return;
        // probe_ is only swapped while workers are parked at the start
        // barrier, so one read per iteration is stable.
        ScopeProbe *p = probe_;
        if (p)
            p->island_barrier_seconds[island] += pending_bar;
        pending_bar = 0.0;
        double bar_before =
            p ? p->island_barrier_seconds[island] : 0.0;
        Stopwatch sw;
        try {
            switch (cmd) {
              case Cmd::Settle:
                runIslandSettle(island);
                break;
              case Cmd::Tick:
                runIslandTick(island);
                break;
              case Cmd::Flop:
                runIslandFlop(island);
                break;
              case Cmd::Exit:
                break;
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu_);
            if (!worker_error_)
                worker_error_ = std::current_exception();
            failed_.store(true, std::memory_order_release);
        }
        if (p) {
            // Superstep barrier waits accumulated inside the phase are
            // barrier time, not compute time.
            double bar_during =
                p->island_barrier_seconds[island] - bar_before;
            double compute = sw.elapsed() - bar_during;
            switch (cmd) {
              case Cmd::Settle:
                p->island_settle_seconds[island] += compute;
                break;
              case Cmd::Tick:
                p->island_tick_seconds[island] += compute;
                break;
              case Cmd::Flop:
                p->island_flop_seconds[island] += compute;
                break;
              case Cmd::Exit:
                break;
            }
            Stopwatch swb;
            bar_all_.arriveAndWait(); // done
            pending_bar = swb.elapsed();
        } else {
            bar_all_.arriveAndWait(); // done
        }
    }
}

void
ParSimulationTool::runPhase(Cmd cmd)
{
    cmd_ = cmd;
    bar_all_.arriveAndWait(); // start
    if (cmd == Cmd::Tick) {
        // Tick lambdas (undeclared effects) always run here, in
        // declaration order: sequential semantics by construction.
        for (int b : plan_.lambdaTicks) {
            if (probe_ && probe_->shouldTime(b)) {
                Stopwatch sw;
                elab_->blocks[b].fn();
                probe_->addBlockTime(b, sw.elapsed());
            } else {
                elab_->blocks[b].fn();
            }
        }
    } else if (cmd == Cmd::Flop) {
        // Dynamically registered flops were written into every
        // replica's next region at writeNext time; flopping each
        // replica yields the same current value everywhere. These nets
        // are disjoint from every island's flop and push targets.
        for (int net : main_flops_) {
            bool ch = false;
            for (auto &replica : replicas_)
                ch |= replica->flop(net);
            if (ch && gating_)
                markReaderIslandsDirty(net);
        }
    }
    bar_all_.arriveAndWait(); // done
    if (failed_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(error_mu_);
        failed_.store(false, std::memory_order_relaxed);
        std::exception_ptr err = worker_error_;
        worker_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

// -------------------------------------------------- island execution

void
ParSimulationTool::runPStep(int island, const PStep &step)
{
    // Per-block counters are written only by the executing island's
    // worker (each block belongs to exactly one island), so the probe
    // needs no synchronization here.
    if (ScopeProbe *p = probe_) {
        if (p->shouldTime(step.block)) {
            Stopwatch sw;
            runPStepImpl(island, step);
            p->addBlockTime(step.block, sw.elapsed());
            return;
        }
    }
    runPStepImpl(island, step);
}

void
ParSimulationTool::runPStepImpl(int island, const PStep &step)
{
    switch (step.kind) {
      case PStep::Kind::Slot:
        evals_[island]->run(elab_->blocks[step.block], nullptr);
        break;
      case PStep::Kind::Bytecode:
        bcRun(bc_programs_[step.block], replicas_[island]->data(),
              bc_scratch_[island].data());
        break;
      case PStep::Kind::Native:
        // cpp-design fused steps live in the island's own library
        // (island-local group indices); cpp-block groups share one.
        (design_native_ ? island_libs_[island] : cpp_lib_)
            .group(step.group)(replicas_[island]->data());
        break;
    }
}

void
ParSimulationTool::pushCur(int island, const CopyOp &op)
{
    const uint64_t *src = replicas_[island]->data() + op.off;
    uint64_t *dst = replicas_[op.dst]->data() + op.off;
    const size_t bytes = static_cast<size_t>(op.n) * sizeof(uint64_t);
    if (gating_) {
        // Compare before copying: an identical push changes nothing in
        // the destination replica, so it neither copies nor dirties
        // the destination island.
        if (std::memcmp(dst, src, bytes) == 0)
            return;
        island_dirty_[op.dst].store(1, std::memory_order_relaxed);
    }
    std::memcpy(dst, src, bytes);
    if (ScopeProbe *p = probe_) {
        p->island_boundary_bytes[island] += bytes;
    }
}

void
ParSimulationTool::runIslandSettle(int island)
{
    if (gating_ && !settle_active_[island]) {
        // Quiescent island: no input changed since its last settle, so
        // every step would recompute the value its replica already
        // holds and every push would copy bytes the destinations
        // already have. Peers still wait on the superstep barriers, so
        // only those are joined.
        for (int lvl = 0; lvl + 1 < plan_.nlevels; ++lvl) {
            if (ScopeProbe *p = probe_) {
                Stopwatch sw;
                bar_workers_.arriveAndWait();
                p->island_barrier_seconds[island] += sw.elapsed();
            } else {
                bar_workers_.arriveAndWait();
            }
        }
        return;
    }
    const std::vector<PStep> &steps = comb_steps_[island];
    size_t k = 0;
    for (int lvl = 0; lvl < plan_.nlevels; ++lvl) {
        for (; k < steps.size() && steps[k].level == lvl; ++k)
            runPStep(island, steps[k]);
        for (const CopyOp &op : comb_pushes_[island][lvl])
            pushCur(island, op);
        // Cross-island readers of this superstep's values run at a
        // later level, after this barrier publishes the pushes.
        if (lvl + 1 < plan_.nlevels) {
            if (ScopeProbe *p = probe_) {
                Stopwatch sw;
                bar_workers_.arriveAndWait();
                p->island_barrier_seconds[island] += sw.elapsed();
            } else {
                bar_workers_.arriveAndWait();
            }
        }
    }
}

void
ParSimulationTool::runIslandTick(int island)
{
    for (const PStep &step : tick_steps_[island])
        runPStep(island, step);
}

void
ParSimulationTool::runIslandFlop(int island)
{
    if (design_native_) {
        island_libs_[island].group(island_flop_unit_[island])(
            replicas_[island]->data());
    } else if (gating_) {
        // Gating needs per-net change detection to dirty the island.
        bool changed = false;
        for (int net : plan_.islands[island].flopNets)
            changed |= replicas_[island]->flop(net);
        if (changed)
            island_dirty_[island].store(1, std::memory_order_relaxed);
    } else {
        // Whole-word range copies of the island's static flop set;
        // packed stragglers keep a masked per-net copy.
        const FlopCopyPlan &fplan = island_flop_plans_[island];
        replicas_[island]->flopRanges(fplan.ranges);
        for (int net : fplan.rmw_nets)
            replicas_[island]->flop(net);
    }
    // Publish post-flop (and blocking-tick-written) current values.
    // No barrier needed before the pushes: each copied net is owned by
    // exactly one island, and flop targets are island-owned too, so
    // all concurrent writes land in disjoint words.
    for (const CopyOp &op : flop_pushes_[island])
        pushCur(island, op);
}

// ------------------------------------------------------- simulation

void
ParSimulationTool::settlePhase()
{
    if (gating_) {
        // Publish the phase's active set: the dirty islands, closed
        // transitively over the static push graph (an active island's
        // outputs may change mid-settle, so every island it pushes to
        // must run too). Workers read settle_active_ after the start
        // barrier inside runPhase.
        const int n = plan_.nislands;
        std::vector<int> frontier;
        for (int i = 0; i < n; ++i) {
            settle_active_[i] =
                island_dirty_[i].load(std::memory_order_relaxed) ? 1
                                                                 : 0;
            if (settle_active_[i])
                frontier.push_back(i);
        }
        while (!frontier.empty()) {
            int i = frontier.back();
            frontier.pop_back();
            for (int j : comb_push_islands_[i]) {
                if (!settle_active_[j]) {
                    settle_active_[j] = 1;
                    frontier.push_back(j);
                }
            }
        }
        runPhase(Cmd::Settle);
        for (int i = 0; i < n; ++i) {
            if (!settle_active_[i]) {
                gated_steps_ +=
                    static_cast<uint64_t>(plan_.nlevels);
                if (probe_ &&
                    static_cast<int>(
                        probe_->island_gated_supersteps.size()) > i) {
                    probe_->island_gated_supersteps[i] +=
                        static_cast<uint64_t>(plan_.nlevels);
                }
            }
            // Active islands just settled; quiescent ones were clean
            // already. Mid-phase marks (pushes between active islands)
            // were consumed by the later supersteps of this phase.
            island_dirty_[i].store(0, std::memory_order_relaxed);
        }
    } else {
        runPhase(Cmd::Settle);
    }
    dirty_ = false;
}

void
ParSimulationTool::cycle()
{
    maybeSwapTier();
    if (dirty_)
        settlePhase();
    runPhase(Cmd::Tick);
    if (gating_) {
        for (int i = 0; i < plan_.nislands; ++i) {
            if (tick_dirty_island_[i])
                island_dirty_[i].store(1, std::memory_order_relaxed);
        }
    }
    runPhase(Cmd::Flop);
    settlePhase();
    uint64_t now = ncycles_.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const auto &hook : cycle_hooks_)
        hook(now);
}

void
ParSimulationTool::eval()
{
    maybeSwapTier();
    settlePhase();
}

// ----------------------------------------------------- signal access

ArenaStore &
ParSimulationTool::replicaFor(int net) const
{
    if (tls_island >= 0)
        return *replicas_[tls_island];
    int owner = plan_.ownerOf[net];
    return *replicas_[owner >= 0 ? owner : 0];
}

void
ParSimulationTool::markMainFlop(int net)
{
    if (!is_main_flop_[net]) {
        is_main_flop_[net] = 1;
        main_flops_.push_back(net);
    }
}

Bits
ParSimulationTool::readNet(int net) const
{
    return replicaFor(net).read(net);
}

Bits
ParSimulationTool::read(const Signal &sig) const
{
    return replicaFor(sig.netId()).read(sig.netId());
}

void
ParSimulationTool::write(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    if (tls_island >= 0) {
        // Comb lambda on a worker: writes are declared, so the push
        // lists already publish them; change detection is not needed
        // under static scheduling.
        replicas_[tls_island]->write(net, value);
        return;
    }
    // Coordinator (test bench or tick lambda): keep every replica
    // coherent so any reader island sees the value next phase.
    bool changed = replicaFor(net).write(net, value);
    for (auto &replica : replicas_)
        replica->write(net, value);
    if (changed) {
        dirty_ = true;
        if (gating_)
            markReaderIslandsDirty(net);
    }
}

void
ParSimulationTool::writeNext(Signal &sig, const Bits &value)
{
    int net = sig.netId();
    if (tls_island >= 0) {
        replicas_[tls_island]->writeNext(net, value);
        return;
    }
    for (auto &replica : replicas_)
        replica->writeNext(net, value);
    if (!static_island_flop_[net])
        markMainFlop(net);
}

// ------------------------------------------- SimSnap state capture

Bits
ParSimulationTool::readNetNext(int net) const
{
    return accessor_.readNetNext(net);
}

void
ParSimulationTool::pokeNet(int net, const Bits &value)
{
    accessor_.pokeNet(net, value);
}

void
ParSimulationTool::pokeNetNext(int net, const Bits &value)
{
    accessor_.pokeNetNext(net, value);
}

std::vector<int>
ParSimulationTool::dynamicFlopNets() const
{
    return NetAccessor::dynamicFlops(*elab_, main_flops_);
}

void
ParSimulationTool::registerDynamicFlops(const std::vector<int> &nets)
{
    for (int net : nets)
        if (!static_island_flop_[net])
            markMainFlop(net);
}

Bits
ParSimulationTool::readArray(const MemArray &array, uint64_t index) const
{
    int owner = plan_.ownerOf[elab_->arrayToken(array.arrayId())];
    return replicas_[owner >= 0 ? owner : 0]->arrayRead(array.arrayId(),
                                                        index);
}

void
ParSimulationTool::writeArray(MemArray &array, uint64_t index,
                              const Bits &value)
{
    int owner = plan_.ownerOf[elab_->arrayToken(array.arrayId())];
    replicas_[owner >= 0 ? owner : 0]->arrayWrite(array.arrayId(), index,
                                                  value);
    dirty_ = true;
    if (gating_)
        markReaderIslandsDirty(elab_->arrayToken(array.arrayId()));
}

// ---------------------------------------------------------- factory

std::unique_ptr<Simulator>
makeSimulator(std::shared_ptr<Elaboration> elab, SimConfig cfg)
{
    if (cfg.threads <= 1)
        return std::make_unique<SimulationTool>(std::move(elab), cfg);
    return std::make_unique<ParSimulationTool>(std::move(elab), cfg);
}

} // namespace cmtl
