/**
 * @file
 * SimScope: the CMTL observability layer.
 *
 * A user-style tool over the model/tool split (like VcdWriter and
 * ActivityTool): it attaches to a running simulator — either kernel —
 * and collects the measurements every perf argument needs to rest on:
 *
 *  - per-block self time (exact, or sampled one-out-of-N for lower
 *    overhead), ranked and mapped back to hierarchical model paths;
 *  - per-phase timing: settle/tick/flop on the sequential kernel,
 *    per-island compute + barrier-wait + boundary-exchange bytes on
 *    the bulk-synchronous ParSim kernel, so load imbalance and
 *    synchronization overhead become visible;
 *  - val/rdy channel tracing: transfers, occupancy, backpressure
 *    stall cycles and a waiting-latency histogram per channel;
 *  - a unified MetricsRegistry (counters / gauges / histograms) with
 *    a one-line JSON snapshot consumed by StatsTool, the benches
 *    (BENCH_*.json "metrics" sections) and the examples' --profile
 *    flag.
 *
 * Overhead model: while detached the kernels pay one pointer test per
 * phase and per scheduled step (measured ≤2% on the Figure-14 RTL
 * mesh). While attached in exact mode every block execution brackets
 * two steady_clock reads; sampled mode reduces that to one out of
 * sample_period executions, scaling the recorded time accordingly.
 *
 * Lifetime: detach() (or destruction) must happen before the
 * simulator is destroyed. The per-cycle channel sampler stays
 * registered on the simulator but becomes inert after detach().
 */

#ifndef CMTL_CORE_SCOPE_H
#define CMTL_CORE_SCOPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim.h"

namespace cmtl {

/**
 * Power-of-two-bucketed histogram: bucket 0 counts zeros, bucket k
 * counts values in [2^(k-1), 2^k - 1].
 */
class ScopeHistogram
{
  public:
    void record(uint64_t value);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }
    /** Bucket counts, trimmed to the highest non-empty bucket. */
    std::vector<uint64_t> buckets() const;

    /** {"count":..,"sum":..,"min":..,"max":..,"buckets":[..]} */
    std::string toJson() const;

  private:
    uint64_t counts_[65] = {};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~0ull;
    uint64_t max_ = 0;
};

/**
 * Structured metrics container: named counters (monotonic integers),
 * gauges (point-in-time doubles) and histograms, serializable as one
 * JSON object. SimScope exports everything it collects into one of
 * these; user code may add its own entries through
 * SimScope::metrics().
 */
class MetricsRegistry
{
  public:
    void
    addCounter(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }
    void
    setCounter(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }
    void
    setGauge(const std::string &name, double value)
    {
        gauges_[name] = value;
    }
    ScopeHistogram &
    histogram(const std::string &name)
    {
        return histograms_[name];
    }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }
    const std::map<std::string, ScopeHistogram> &histograms() const
    {
        return histograms_;
    }

    /** Merge every entry of @p other into this registry. */
    void merge(const MetricsRegistry &other);

    /** {"counters":{..},"gauges":{..},"histograms":{..}} */
    std::string toJson() const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, ScopeHistogram> histograms_;
};

/** The profiling/metrics tool. One per simulator at a time. */
class SimScope
{
  public:
    enum class Timing { Exact, Sampled };

    struct Options
    {
        Timing timing = Timing::Exact;
        /** Sampled mode: time one out of this many block executions. */
        uint32_t sample_period = 64;
    };

    /** Attach to @p sim; collection starts immediately. */
    explicit SimScope(Simulator &sim) : SimScope(sim, Options{}) {}
    SimScope(Simulator &sim, Options opt);
    ~SimScope();
    SimScope(const SimScope &) = delete;
    SimScope &operator=(const SimScope &) = delete;

    /** Stop collecting and restore the kernel's fast path. */
    void detach();
    bool attached() const;

    /** Cycles observed while attached. */
    uint64_t cycles() const;

    // --- val/rdy channel tracing -----------------------------------

    /** Per-channel transaction statistics (sampled at cycle end). */
    struct ChannelStats
    {
        std::string name;
        int msg_net = -1;
        int val_net = -1;
        int rdy_net = -1;
        uint64_t cycles = 0;       //!< cycles observed
        uint64_t transfers = 0;    //!< val && rdy
        uint64_t stall_cycles = 0; //!< val && !rdy (backpressure)
        uint64_t idle_cycles = 0;  //!< !val
        /** Stalled cycles between val assertion and the transfer
         *  (0 = fired the cycle val rose). */
        ScopeHistogram latency;
        uint64_t pending_age = 0; //!< internal: current wait length

        /** Fraction of observed cycles with val asserted. */
        double
        occupancy() const
        {
            return cycles ? static_cast<double>(cycles - idle_cycles) /
                                static_cast<double>(cycles)
                          : 0.0;
        }
    };

    /** Trace one channel given its three endpoint signals. */
    void traceValRdy(const std::string &name, const Signal &msg,
                     const Signal &val, const Signal &rdy);

    /**
     * Discover and trace every val/rdy bundle in the design: any
     * <prefix>_msg/_val/_rdy signal triple on one model (the naming
     * contract of stdlib/valrdy.h). Connected endpoints share nets and
     * are traced once, under the shallowest model's name. Returns the
     * number of channels traced.
     */
    int traceAllValRdy();

    const std::vector<ChannelStats> &channels() const;

    // --- results ---------------------------------------------------

    /** One entry of the hot-block ranking. */
    struct BlockCost
    {
        std::string path; //!< hierarchical block name
        double seconds = 0.0;
        uint64_t calls = 0;
    };

    /** The @p n most expensive blocks by cumulative self time. */
    std::vector<BlockCost> hotBlocks(size_t n = 10) const;

    /** Aggregated phase timing (either kernel). */
    struct PhaseBreakdown
    {
        double settle_seconds = 0.0;
        double tick_seconds = 0.0;
        double flop_seconds = 0.0;
        double barrier_seconds = 0.0;  //!< ParSim only
        uint64_t boundary_bytes = 0;   //!< ParSim only
        /** Work units skipped by activity gating: comb steps on the
         *  sequential kernel, island supersteps on ParSim. */
        uint64_t gated_supersteps = 0;
        int nislands = 1;
    };
    PhaseBreakdown phaseBreakdown() const;

    /** Raw probe (per-island vectors etc.), always valid. */
    const ScopeProbe &probe() const { return probe_; }

    /** User-extensible registry merged into snapshots. */
    MetricsRegistry &metrics() { return user_metrics_; }

    /** Export every collected metric into @p reg (scope.* names). */
    void exportMetrics(MetricsRegistry &reg) const;

    /**
     * One-line JSON snapshot: {"scope_version":1,"kernel":..,
     * "timing":..,"cycles":..,"phases":{..},"blocks":[..],
     * "channels":[..],"metrics":{..}}.
     */
    std::string jsonSnapshot() const;

    /** Human-readable report: phases, hot blocks, channels. */
    std::string report(size_t nblocks = 10) const;

  private:
    struct State; //!< shared with the cycle hook (outlives the tool)

    Simulator &sim_;
    ScopeProbe probe_;
    std::shared_ptr<State> state_;
    MetricsRegistry user_metrics_;
    bool parsim_ = false;
};

} // namespace cmtl

#endif // CMTL_CORE_SCOPE_H
