/**
 * @file
 * IR-level static analysis of an elaborated design.
 *
 * The analyzer walks every IR block of an Elaboration with a per-path
 * definite-assignment dataflow and a constant folder, and reports
 * findings through the same LintIssue machinery the structural linter
 * uses (the model/tool split of the paper: one elaboration, many
 * tools). Check families:
 *
 *  - latch inference: a combinational block that does not assign one
 *    of its target signals on every control path ("latch-inferred",
 *    error, offending path reported);
 *  - block-local ordering: a block-local temp read before it is ever
 *    assigned ("temp-read-before-write", error) and a combinational
 *    block reading a signal it writes later in the same block
 *    ("comb-read-own-write", warning — the read observes the previous
 *    settling round);
 *  - width/range: slice or bit selects outside the operand width
 *    ("slice-out-of-range", error), array indexes that are provably
 *    out of range ("index-out-of-range", error) or whose static upper
 *    bound exceeds the array depth ("index-may-exceed", warning), and
 *    lossy implicit truncation at an assignment ("lossy-truncation",
 *    warning with widths printed);
 *  - dead logic: if/mux conditions that constant-fold
 *    ("constant-condition", warning, unreachable branch named);
 *  - blocking/non-blocking misuse: non-blocking signal assignment in
 *    a combinational block ("nonblocking-in-comb", error), blocking
 *    assignment to sequential state ("blocking-in-seq", error), and
 *    array writes in combinational blocks ("awrite-in-comb", error).
 *
 * Every check can be suppressed or have its severity overridden
 * per-run through AnalyzeOptions; LintTool carries one and forwards
 * its configuration to both the structural checks and this analyzer.
 */

#ifndef CMTL_CORE_ANALYZE_H
#define CMTL_CORE_ANALYZE_H

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace cmtl {

/** Severity of a lint/analysis finding. */
enum class LintSeverity { Warning, Error };

/** One lint/analysis finding. */
struct LintIssue
{
    LintSeverity severity;
    std::string check; //!< short check id, e.g. "latch-inferred"
    std::string message;
    /**
     * Hierarchical path of the finding's subject — a net's canonical
     * name, a block's hierarchical name, an array's full name. Every
     * producer (structural linter, IR analyzer, dataflow clients, race
     * auditor) fills it through the shared formatters below, so tools
     * that key findings by location (JSON diffing, suppression files)
     * see one consistent spelling.
     */
    std::string path;
};

/**
 * Shared hierarchical path formatters. The canonical path of a net is
 * its shallowest member signal's full name (Net::name); the location
 * string additionally lists the other member signals so a finding deep
 * inside a large design names the exact instances involved. Every
 * finding producer must use these — no per-tool reimplementations.
 */
std::string lintNetPath(const Net &net);
std::string lintNetLocation(const Net &net);

/** One entry of the static check catalog. */
struct AnalyzeCheck
{
    const char *id;
    LintSeverity severity; //!< default severity
    const char *summary;
};

/** Catalog of every IR-analysis check with its default severity. */
const std::vector<AnalyzeCheck> &analyzeCheckCatalog();

/**
 * Per-check configuration shared by LintTool and the IR analyzer:
 * suppression and severity overrides keyed by check id.
 */
class AnalyzeOptions
{
  public:
    /** Drop all findings of @p check. Returns *this for chaining. */
    AnalyzeOptions &suppress(const std::string &check);
    /** Report @p check with @p severity instead of its default. */
    AnalyzeOptions &setSeverity(const std::string &check,
                                LintSeverity severity);

    bool isSuppressed(const std::string &check) const;
    /** Effective severity given the check's built-in default. */
    LintSeverity effectiveSeverity(const std::string &check,
                                   LintSeverity fallback) const;

    /**
     * Append a finding unless the check is suppressed, applying any
     * severity override. Convenience used by LintTool and analyzeIr.
     */
    void emit(std::vector<LintIssue> &issues, LintSeverity fallback,
              const std::string &check, const std::string &message) const;

    /** As above, with the finding's hierarchical subject path. */
    void emit(std::vector<LintIssue> &issues, LintSeverity fallback,
              const std::string &check, const std::string &path,
              const std::string &message) const;

  private:
    std::set<std::string> suppressed_;
    std::map<std::string, LintSeverity> severity_;
};

/**
 * Fold @p expr to a constant if every leaf is a literal. Uses the
 * exact irEvalBinOp/irEvalUnOp simulation semantics, so a folded
 * value is guaranteed to match what any backend would compute.
 * Returns nullopt when the expression depends on run-time state (or
 * would throw, e.g. an out-of-range slice).
 */
std::optional<Bits> irConstFold(const IrExprPtr &expr);
std::optional<Bits> irConstFold(const IrExprNode *expr);

/**
 * Saturating static upper bound of @p expr's value (used for array
 * index range checking). Never below the true maximum; UINT64_MAX
 * when nothing better than "any value of the width" is known and the
 * width is >= 64 bits.
 */
uint64_t irMaxBound(const IrExprPtr &expr);

/**
 * Run every IR check over each IrBlock of @p elab. Lambda (FL/CL)
 * blocks have no IR and are skipped. Findings are ordered by block.
 */
std::vector<LintIssue> analyzeIr(const Elaboration &elab,
                                 const AnalyzeOptions &options = {});

} // namespace cmtl

#endif // CMTL_CORE_ANALYZE_H
