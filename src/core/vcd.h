/**
 * @file
 * VCD waveform dumping tool.
 *
 * Attaches to a simulator (sequential or parallel) and writes a Value Change Dump of every
 * net after each simulated cycle, organized by the model hierarchy.
 * Like every CMTL tool it consumes the elaborated model instance —
 * models know nothing about waveforms.
 */

#ifndef CMTL_CORE_VCD_H
#define CMTL_CORE_VCD_H

#include <fstream>
#include <string>
#include <vector>

#include "model.h"
#include "sim.h"

namespace cmtl {

/** Streams net value changes to a VCD file. */
class VcdWriter
{
  public:
    /**
     * Open @p path and register a per-cycle dump hook on @p sim.
     * The writer must outlive the simulation.
     */
    VcdWriter(Simulator &sim, const std::string &path);

    /** Flush and finalize the file. */
    void close();

    ~VcdWriter();

  private:
    void writeHeader();
    void writeScope(const Model *model, int depth);
    void dumpInitial();
    void dump(uint64_t cycle);
    static void emitValue(std::ostream &os, const Net &net,
                          const Bits &value);
    static std::string idCode(int index);

    Simulator &sim_;
    std::ofstream out_;
    std::vector<Bits> last_;
    bool closed_ = false;
};

} // namespace cmtl

#endif // CMTL_CORE_VCD_H
