/**
 * @file
 * C++ source emission from IR blocks (SimJIT code generation stage).
 *
 * Given an elaborated design, an arena layout, and a grouping of
 * specialized block indices, emits a self-contained C++ translation
 * unit with one `extern "C" void cmtl_grp_<k>(uint64_t *w)` entry
 * point per group, each executing its blocks' logic directly on the
 * ArenaStore word arena. This is the exact pipeline shape of PyMTL's
 * SimJIT: generate C++ from the elaborated model instance, compile it
 * to a shared library (see jit_cpp.h), and call it through a C ABI.
 *
 * The specializable subset matches the bytecode backend: all nets and
 * intermediates must fit in 64 bits (checked via bcSpecializable).
 */

#ifndef CMTL_CORE_IR_CPP_H
#define CMTL_CORE_IR_CPP_H

#include <string>
#include <vector>

#include "model.h"
#include "store.h"

namespace cmtl {

/**
 * Emit the C++ source for the given groups of specialized blocks.
 * Each inner vector lists ElabBlock indices fused into one entry
 * point, executed in order.
 */
std::string cppEmitProgram(const Elaboration &elab, const ArenaStore &store,
                           const std::vector<std::vector<int>> &groups);

/**
 * One whole-design specialization unit (the cpp-design backend): an
 * ordered mix of block executions and register flops emitted into a
 * single entry point. A unit holding every tick block, every flop and
 * the full levelized comb schedule is a complete step() function.
 */
struct CppUnit
{
    struct Item
    {
        int block = -1;   //!< ElabBlock index to execute, or
        int flopNet = -1; //!< net to copy next -> current (block < 0)
        /** Whole-word flop range (block < 0, flopNet < 0): copy
         *  rangeWords words next -> current starting at rangeOff.
         *  Produced from ArenaLayout::flopPlan(). */
        int rangeOff = -1;
        int rangeWords = 0;
    };
    std::vector<Item> items;
};

/**
 * Emit the C++ source for whole-design units. Differs from the group
 * overload in two ways: flop items compile to straight-line word
 * copies, and every memory array touched by a unit is bound to a
 * typed local alias pointer instead of re-deriving `w + offset` at
 * each access.
 */
std::string cppEmitProgram(const Elaboration &elab, const ArenaStore &store,
                           const std::vector<CppUnit> &units);

/** Symbol name of group @p k in the emitted source. */
std::string cppGroupSymbol(int k);

} // namespace cmtl

#endif // CMTL_CORE_IR_CPP_H
