/**
 * @file
 * C++ source emission from IR blocks (SimJIT code generation stage).
 *
 * Given an elaborated design, an arena layout, and a grouping of
 * specialized block indices, emits a self-contained C++ translation
 * unit with one `extern "C" void cmtl_grp_<k>(uint64_t *w)` entry
 * point per group, each executing its blocks' logic directly on the
 * ArenaStore word arena. This is the exact pipeline shape of PyMTL's
 * SimJIT: generate C++ from the elaborated model instance, compile it
 * to a shared library (see jit_cpp.h), and call it through a C ABI.
 *
 * The specializable subset matches the bytecode backend: all nets and
 * intermediates must fit in 64 bits (checked via bcSpecializable).
 */

#ifndef CMTL_CORE_IR_CPP_H
#define CMTL_CORE_IR_CPP_H

#include <string>
#include <vector>

#include "model.h"
#include "store.h"

namespace cmtl {

/**
 * Emit the C++ source for the given groups of specialized blocks.
 * Each inner vector lists ElabBlock indices fused into one entry
 * point, executed in order.
 */
std::string cppEmitProgram(const Elaboration &elab, const ArenaStore &store,
                           const std::vector<std::vector<int>> &groups);

/** Symbol name of group @p k in the emitted source. */
std::string cppGroupSymbol(int k);

} // namespace cmtl

#endif // CMTL_CORE_IR_CPP_H
