/**
 * @file
 * Lint tool: static design checks over an elaborated model instance.
 *
 * An example of the model/tool split: the linter walks the same
 * Elaboration the simulator and translator consume and reports
 * structural problems before any simulation runs.
 */

#ifndef CMTL_CORE_LINT_H
#define CMTL_CORE_LINT_H

#include <string>
#include <vector>

#include "model.h"

namespace cmtl {

/** Severity of a lint finding. */
enum class LintSeverity { Warning, Error };

/** One lint finding. */
struct LintIssue
{
    LintSeverity severity;
    std::string check; //!< short check id, e.g. "multiple-drivers"
    std::string message;
};

/** Runs structural checks over an elaborated design. */
class LintTool
{
  public:
    /**
     * Checks performed:
     *  - multiple-drivers: a net written by more than one
     *    combinational block, or by both combinational and
     *    sequential blocks (error);
     *  - comb-cycle: combinational blocks form a dependency cycle
     *    (error);
     *  - undriven-net: a net that is read by some block but written
     *    by none and contains no top-level input port (warning — test
     *    benches may drive it);
     *  - unread-net: a net that is written but never read and
     *    contains no top-level output port (warning).
     */
    std::vector<LintIssue> run(const Elaboration &elab);

    /** Render issues in a compact single-line-per-issue format. */
    static std::string format(const std::vector<LintIssue> &issues);
};

} // namespace cmtl

#endif // CMTL_CORE_LINT_H
