/**
 * @file
 * Lint tool: static design checks over an elaborated model instance.
 *
 * An example of the model/tool split: the linter walks the same
 * Elaboration the simulator and translator consume and reports
 * problems before any simulation runs. Structural net-level checks
 * live here; the deep IR-level checks live in analyze.h and run as
 * part of LintTool::run (LintSeverity/LintIssue are defined there and
 * shared by both layers).
 */

#ifndef CMTL_CORE_LINT_H
#define CMTL_CORE_LINT_H

#include <string>
#include <vector>

#include "analyze.h"
#include "model.h"

namespace cmtl {

/** Runs structural and IR static checks over an elaborated design. */
class LintTool
{
  public:
    /**
     * Structural checks performed:
     *  - multiple-drivers: a net written by more than one
     *    combinational block, or by both combinational and
     *    sequential blocks (error);
     *  - multiple-array-writers: a memory array written by more than
     *    one sequential block (error);
     *  - comb-cycle: combinational blocks form a dependency cycle
     *    (error);
     *  - undriven-net: a net that is read by some block but written
     *    by none and contains no top-level input port (warning — test
     *    benches may drive it);
     *  - unread-net: a net that is written but never read and
     *    contains no top-level output port (warning).
     *
     * The IR checks of analyzeIr() (latch inference, read ordering,
     * width/range, dead logic, blocking/non-blocking misuse — see
     * analyze.h for the catalog) run on every IR block afterwards,
     * followed by the whole-design dataflow clients of dataflow.h
     * (dead-net/dead-block liveness and maybe-uninitialized
     * X-propagation). All layers honour the suppression/severity
     * configuration, and every finding carries the hierarchical path
     * of its subject (LintIssue::path).
     */
    std::vector<LintIssue> run(const Elaboration &elab);

    /** Drop all findings of @p check. Returns *this for chaining. */
    LintTool &suppress(const std::string &check);
    /** Report @p check as @p severity instead of its default. */
    LintTool &setSeverity(const std::string &check, LintSeverity severity);

    /** The per-check configuration (shared with analyzeIr). */
    const AnalyzeOptions &options() const { return options_; }

    /** Render issues in a compact single-line-per-issue format. */
    static std::string format(const std::vector<LintIssue> &issues);

    /**
     * Machine-readable rendering: one JSON object per line with keys
     * "check", "severity" ("error"/"warning"), "path" (hierarchical
     * subject path), and "message" — stable for CI diffing against a
     * checked-in baseline.
     */
    static std::string formatJson(const std::vector<LintIssue> &issues);

  private:
    AnalyzeOptions options_;
};

} // namespace cmtl

#endif // CMTL_CORE_LINT_H
