/**
 * @file
 * The CMTL hardware-description IR.
 *
 * RTL logic (and CL logic that wants to be specializable) is written
 * against this small expression/statement AST rather than as opaque
 * host-language lambdas. This is the C++ analog of the information
 * PyMTL extracts from Python source via the `ast` module: the same IR
 * is tree-walk interpreted (CPython/PyPy analogs), compiled to bytecode
 * or C++ by the SimJIT specializers, and pretty-printed as
 * Verilog-2001 by the translation tool.
 *
 * Expressions are immutable shared nodes built with overloaded
 * operators on the lightweight IrExpr handle; statements are built
 * through a BlockBuilder obtained from Model::combinational() or
 * Model::tickRtl().
 */

#ifndef CMTL_CORE_IR_H
#define CMTL_CORE_IR_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bits.h"

namespace cmtl {

class Signal;
class MemArray;

/** Binary operator kinds. Comparison ops produce 1-bit results. */
enum class IrOp
{
    Add, Sub, Mul, And, Or, Xor, Shl, Shr, Sra,
    Eq, Ne, Lt, Le, Gt, Ge,
    LAnd, LOr, //!< logical: 1-bit result from operand truthiness
};

/** Unary operator kinds. */
enum class IrUnOp
{
    Inv,       //!< bitwise complement
    LNot,      //!< logical not: 1-bit
    ReduceOr, ReduceAnd, ReduceXor,
};

struct IrExprNode;
using IrExprPtr = std::shared_ptr<const IrExprNode>;

/** One node of an expression tree. */
struct IrExprNode
{
    enum class Kind { Const, Ref, Temp, BinOp, UnOp, Slice, Concat, Mux,
                      Zext, Sext, ARead };

    Kind kind;
    int nbits;

    // Const
    Bits cval;
    // Ref
    Signal *sig = nullptr;
    // ARead (index expression in args[0])
    MemArray *array = nullptr;
    // Temp
    int temp = -1;
    // BinOp / UnOp
    IrOp op = IrOp::Add;
    IrUnOp unop = IrUnOp::Inv;
    // Slice
    int lsb = 0;
    // Operands (BinOp: 2, UnOp/Slice/Zext/Sext: 1, Mux: 3, Concat: n)
    std::vector<IrExprPtr> args;
};

/**
 * Value-semantics handle to an expression node, with the operator
 * overloads that make model code read like Verilog.
 */
class IrExpr
{
  public:
    IrExpr() = default;
    explicit IrExpr(IrExprPtr node) : node_(std::move(node)) {}

    const IrExprPtr &node() const { return node_; }
    bool valid() const { return node_ != nullptr; }
    int nbits() const { return node_->nbits; }

    /** Bits [lsb, lsb+len). */
    IrExpr slice(int lsb, int len) const;
    /** Verilog-style inclusive [msb:lsb]. */
    IrExpr operator()(int msb, int lsb) const
    {
        return slice(lsb, msb - lsb + 1);
    }
    /** Single bit select. */
    IrExpr bit(int pos) const { return slice(pos, 1); }

    IrExpr zext(int nbits) const;
    IrExpr sext(int nbits) const;

    IrExpr operator~() const;
    /** Logical not (1-bit). */
    IrExpr operator!() const;
    IrExpr reduceOr() const;
    IrExpr reduceAnd() const;
    IrExpr reduceXor() const;

  private:
    IrExprPtr node_;
};

/** Expression referencing a signal's current value. */
IrExpr rd(Signal &sig);
/** Asynchronous read of a memory array at a dynamic index. */
IrExpr aread(MemArray &array, const IrExpr &index);
/** Constant of explicit width. */
IrExpr lit(int nbits, uint64_t value);
/** Wide constant. */
IrExpr lit(const Bits &value);

/** cond ? a : b. Operands extended to the wider of a/b. */
IrExpr mux(const IrExpr &cond, const IrExpr &a, const IrExpr &b);
/** Verilog-style concatenation; first argument is most significant. */
IrExpr cat(std::initializer_list<IrExpr> parts);
IrExpr cat(const IrExpr &hi, const IrExpr &lo);

// Arithmetic/bitwise operators: result width = max of operand widths.
IrExpr operator+(const IrExpr &a, const IrExpr &b);
IrExpr operator-(const IrExpr &a, const IrExpr &b);
IrExpr operator*(const IrExpr &a, const IrExpr &b);
IrExpr operator&(const IrExpr &a, const IrExpr &b);
IrExpr operator|(const IrExpr &a, const IrExpr &b);
IrExpr operator^(const IrExpr &a, const IrExpr &b);
// Shifts: result width = lhs width.
IrExpr operator<<(const IrExpr &a, const IrExpr &b);
IrExpr operator>>(const IrExpr &a, const IrExpr &b);
IrExpr sra(const IrExpr &a, const IrExpr &b);
// Comparisons: 1-bit results, unsigned.
IrExpr operator==(const IrExpr &a, const IrExpr &b);
IrExpr operator!=(const IrExpr &a, const IrExpr &b);
IrExpr operator<(const IrExpr &a, const IrExpr &b);
IrExpr operator<=(const IrExpr &a, const IrExpr &b);
IrExpr operator>(const IrExpr &a, const IrExpr &b);
IrExpr operator>=(const IrExpr &a, const IrExpr &b);
// Logical combinators on truthiness: 1-bit results.
IrExpr operator&&(const IrExpr &a, const IrExpr &b);
IrExpr operator||(const IrExpr &a, const IrExpr &b);

// Mixed-literal conveniences: the integer takes the expression's width.
IrExpr operator+(const IrExpr &a, uint64_t b);
IrExpr operator-(const IrExpr &a, uint64_t b);
IrExpr operator==(const IrExpr &a, uint64_t b);
IrExpr operator!=(const IrExpr &a, uint64_t b);
IrExpr operator<(const IrExpr &a, uint64_t b);
IrExpr operator<=(const IrExpr &a, uint64_t b);
IrExpr operator>(const IrExpr &a, uint64_t b);
IrExpr operator>=(const IrExpr &a, uint64_t b);
IrExpr operator<<(const IrExpr &a, int b);
IrExpr operator>>(const IrExpr &a, int b);

/** One statement of a concurrent block. */
struct IrStmt
{
    enum class Kind { Assign, If, AWrite };

    Kind kind = Kind::Assign;

    // AWrite: target array; index in cond, value in rhs.
    MemArray *array = nullptr;

    // Assign: exactly one of sig / temp is the target.
    Signal *sig = nullptr;
    int temp = -1;
    int lsb = 0;       //!< target slice lsb (0 for whole)
    int width = -1;    //!< target slice width (-1 = whole signal)
    bool nonblocking = false;
    IrExprPtr rhs;

    // If
    IrExprPtr cond;
    std::vector<IrStmt> thenBody;
    std::vector<IrStmt> elseBody;
};

/** Declared temporary (block-local variable). */
struct IrTemp
{
    std::string name;
    int nbits;
};

/** A combinational or sequential concurrent block in IR form. */
struct IrBlock
{
    std::string name;
    bool sequential = false; //!< tick_rtl (non-blocking) vs combinational
    std::vector<IrTemp> temps;
    std::vector<IrStmt> stmts;
};

/**
 * Builds statements into an IrBlock.
 *
 * Nested control flow is expressed with lambdas so the builder can
 * maintain a statement-list stack:
 *
 *     auto &b = s.tickRtl("seq");
 *     b.if_(rd(s.en), [&]{ b.assign(s.count, rd(s.count) + 1); });
 */
class BlockBuilder
{
  public:
    explicit BlockBuilder(IrBlock *block);

    /** Declare a named temporary and assign it; returns a Temp ref. */
    IrExpr let(const std::string &name, const IrExpr &rhs);
    /** Re-assign a previously declared temporary. */
    void setTemp(const IrExpr &temp, const IrExpr &rhs);

    /** Assign a signal. Non-blocking in sequential blocks. */
    void assign(Signal &target, const IrExpr &rhs);
    void assign(Signal &target, uint64_t rhs);
    /** Assign bits [lsb, lsb+width) of a signal. */
    void assignSlice(Signal &target, int lsb, int width, const IrExpr &rhs);

    /**
     * Synchronous write to a memory array. Only legal in sequential
     * blocks; effective at the clock edge.
     */
    void writeArray(MemArray &target, const IrExpr &index,
                    const IrExpr &rhs);

    /** if (cond) { then_() } else { else_() } */
    void if_(const IrExpr &cond, const std::function<void()> &then_,
             const std::function<void()> &else_ = nullptr);

    /**
     * elseIf chains: sugar producing nested if/else.
     * switch-like dispatch is expressed as if/elseIf chains.
     */
    void ifChain(std::initializer_list<
                     std::pair<IrExpr, std::function<void()>>> arms,
                 const std::function<void()> &else_ = nullptr);

    IrBlock *block() const { return block_; }

  private:
    std::vector<IrStmt> *current() { return stack_.back(); }
    void push(const IrStmt &stmt);

    IrBlock *block_;
    std::vector<std::vector<IrStmt> *> stack_;
};

/** Collect the signals read / written by a block (for scheduling). */
void irCollectAccess(const IrBlock &block, std::vector<Signal *> &reads,
                     std::vector<Signal *> &writes);

/** Collect the memory arrays read / written by a block. */
void irCollectArrays(const IrBlock &block,
                     std::vector<MemArray *> &reads,
                     std::vector<MemArray *> &writes);

/** Human-readable dump (debugging aid). */
std::string irToString(const IrBlock &block);

/**
 * Human-readable rendering of one expression tree, e.g.
 * "(top.count + 0x01)". Shared by irToString and the lint/analysis
 * tools, which quote conditions and indexes in their findings.
 */
std::string irExprToString(const IrExprPtr &expr);

} // namespace cmtl

#endif // CMTL_CORE_IR_H
