/**
 * @file
 * SimulationTool: the CMTL simulator generator.
 *
 * Consumes an Elaboration and builds a simulator for it. The execution
 * strategy reproduces the performance axes studied in the PyMTL paper:
 *
 *   ExecMode::Interp    "CPython"  boxed dictionary storage, dynamic
 *                                  event-driven scheduling, tree-walk
 *                                  IR evaluation over boxed values
 *   ExecMode::OptInterp "PyPy"     dense arena storage, slot-bound
 *                                  accessors, statically levelized
 *                                  scheduling, by-value tree-walk IR
 *
 *   SpecMode::None                 no specialization
 *   SpecMode::Bytecode  "SimJIT"   IR blocks compiled to a flat
 *                                  register-machine bytecode over the
 *                                  arena at simulator construction
 *   SpecMode::Cpp       "SimJIT"   IR blocks translated to C++,
 *                                  compiled with the system compiler,
 *                                  dlopen'ed and called natively
 *
 * Combining SpecMode != None with ExecMode::Interp reproduces the
 * paper's "SimJIT under CPython" configuration: specialized blocks run
 * on the arena, but every entry/exit crosses a boxed<->arena marshal
 * boundary (the CFFI wrapper overhead); unspecialized lambda blocks
 * stay fully boxed. With ExecMode::OptInterp the arena is shared and
 * boundary crossings vanish (the "SimJIT+PyPy" configuration).
 *
 * Cycle semantics (two-phase): cycle() settles combinational logic,
 * runs all tick blocks (which read current values and write next
 * values), flops next->current for registered nets, then settles
 * again. Blocking writes from test benches are visible after the next
 * settle/cycle/eval call.
 */

#ifndef CMTL_CORE_SIM_H
#define CMTL_CORE_SIM_H

#include <atomic>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accessor.h"
#include "ir_bytecode.h"
#include "ir_eval.h"
#include "jit_cpp.h"
#include "model.h"
#include "store.h"

namespace cmtl {

/**
 * Host-execution strategy (the CPython/PyPy axis).
 * @deprecated Set SimConfig::backend instead; kept so existing call
 * sites compile (resolved into a Backend by SimConfig::resolve()).
 */
enum class ExecMode { Interp, OptInterp };

/**
 * Specialization strategy (the SimJIT axis).
 * @deprecated Set SimConfig::backend instead; kept so existing call
 * sites compile (resolved into a Backend by SimConfig::resolve()).
 */
enum class SpecMode { None, Bytecode, Cpp };

/** Combinational scheduling policy. */
enum class SchedMode
{
    Auto,   //!< event-driven under Interp, static under OptInterp
    Event,  //!< dynamic event-driven with sensitivity lists
    Static, //!< statically levelized (rejects combinational cycles)
};

/**
 * Unified backend descriptor: the one front door that replaces the
 * ExecMode x SpecMode matrix. Canonical strings (SimConfig::toString /
 * fromString round-trip):
 *
 *   "interp"      boxed storage, event-driven, tree-walk  ("CPython")
 *   "optinterp"   arena storage, static levelized schedule  ("PyPy")
 *   "bytecode"    arena + per-block register bytecode     ("SimJIT")
 *   "cpp-block"   per-block compiled C++, one C-ABI call per block
 *                 per phase (the paper's per-component SimJIT)
 *   "cpp-design"  the whole elaborated design fused into a single
 *                 compiled translation unit with tiered warm-up:
 *                 the simulator starts on the bytecode tier and
 *                 hot-swaps to the native module at a cycle boundary
 *                 when the background compile finishes
 *
 * Hybrid boxed-host configurations keep their own spellings:
 * "interp+bytecode" and "interp+cpp-block" (specialized blocks run on
 * the arena, every entry/exit crosses the boxed<->arena marshal
 * boundary — the CFFI overhead configuration of the paper).
 */
enum class Backend
{
    Auto,      //!< derive from the deprecated exec/spec fields
    Interp,    //!< "interp"
    OptInterp, //!< "optinterp"
    Bytecode,  //!< "bytecode" (exec selects the hybrid variant)
    CppBlock,  //!< "cpp-block" (exec selects the hybrid variant)
    CppDesign, //!< "cpp-design" (always arena-hosted)
};

/** Simulator configuration. */
struct SimConfig
{
    ExecMode exec = ExecMode::OptInterp; //!< @deprecated use backend
    SpecMode spec = SpecMode::None;      //!< @deprecated use backend
    SchedMode sched = SchedMode::Auto;
    std::string jit_cache_dir; //!< empty = CppJit::defaultCacheDir()
    bool jit_cache = true;     //!< reuse compiled libraries on disk
    /**
     * Host threads for the ParSim bulk-synchronous kernel (psim.h).
     * 1 = the sequential kernel below; makeSimulator() dispatches.
     */
    int threads = 1;
    /**
     * The unified backend selector. Auto derives the backend from the
     * deprecated exec/spec pair, so legacy configurations keep their
     * exact meaning; any other value overrides exec/spec.
     */
    Backend backend = Backend::Auto;
    /**
     * cpp-design only: run on the bytecode tier while the compiler
     * runs in a background thread, hot-swapping at a cycle boundary
     * (false = block in the constructor until the module is built).
     */
    bool jit_tiered = true;
    /**
     * Skip combinational IR blocks the whole-design dataflow analysis
     * (dataflow.h) proves dead — outside every observed sink's cone of
     * influence. Equivalent for every observed value; nets written
     * only by skipped blocks retain their initial value, so designs
     * with dead logic show different *dead* net values (and VCD bytes)
     * than an unoptimized run. Off by default.
     */
    bool dead_elim = false;
    /**
     * Activity gating: skip work that provably cannot change state.
     * The sequential kernel skips a combinational step when none of
     * its inputs changed since its last run (static schedules only —
     * the event-driven scheduler is already change-driven); ParSim
     * skips a whole island's settle superstep when the island saw no
     * input change, the island only joining the barriers. Results are
     * bit- and VCD-identical to an ungated run by construction: a
     * step/island is skipped only when re-running it would recompute
     * the values it already holds. Ignored by the fused cpp-design
     * native tier (the whole cycle is one compiled call). On by
     * default.
     */
    bool gating = true;
    /**
     * Arena data-layout policy (layout.h). Elab reproduces the
     * historical elaboration-order layout; Profile groups nets by
     * partition island and producer block, bit-packs narrow nets and
     * coalesces the flop phase into contiguous word-copy ranges.
     * Orthogonal to the backend string (not part of toString());
     * results are bit- and VCD-identical across policies.
     */
    LayoutPolicy layout = LayoutPolicy::Elab;
    /**
     * cpp-design + Profile + jit_tiered only: cycles to run on the
     * bytecode warm-up tier gathering block heat before the layout is
     * re-derived from the measured profile and the fused translation
     * unit is emitted and compiled in the background (the PGO loop).
     */
    uint64_t pgo_warm_cycles = 2000;

    /**
     * Normalize the config in place: derive backend from exec/spec
     * when Auto, otherwise project the backend onto the deprecated
     * fields so legacy code reading them keeps working. Idempotent;
     * simulators call this on construction.
     */
    void resolve();

    /** Canonical backend string ("cpp-design", "interp+bytecode", ...). */
    std::string toString() const;

    /**
     * Parse a canonical backend string (accepts the deprecated alias
     * "cpp" for "cpp-block"). Other fields take their defaults.
     * Throws std::invalid_argument on an unknown name.
     */
    static SimConfig fromString(const std::string &name);
};

/**
 * Instrumentation sink filled by the execution kernels while a
 * SimScope (scope.h) is attached. The kernels test one pointer per
 * phase / per step when detached, so the disabled-path cost is a
 * handful of predictable branches per cycle.
 *
 * Threading: per-block entries are written only by the thread that
 * executes the block (each block belongs to exactly one island), and
 * per-island entries only by that island's worker; the coordinator
 * reads them between phases, ordered by the phase barriers.
 */
struct ScopeProbe
{
    /** Exact = time every block execution; sampled = time one out of
     *  sample_period executions and scale. */
    bool exact = true;
    uint32_t sample_period = 64;

    // Per-block self time, indexed by ElabBlock id. Fused
    // specialization groups attribute to the group's first block.
    std::vector<double> block_seconds;
    std::vector<uint64_t> block_calls;
    std::vector<uint32_t> until_sample;

    // Sequential-kernel phase totals.
    double settle_seconds = 0.0;
    double tick_seconds = 0.0;
    double flop_seconds = 0.0;

    // ParSim per-island phase breakdown (empty on the sequential
    // kernel). Barrier seconds cover superstep and phase-done waits;
    // boundary bytes count words pushed into other replicas.
    std::vector<double> island_settle_seconds;
    std::vector<double> island_tick_seconds;
    std::vector<double> island_flop_seconds;
    std::vector<double> island_barrier_seconds;
    std::vector<uint64_t> island_boundary_bytes;

    // Activity gating (SimConfig::gating). Sequential kernel: comb
    // steps skipped because no input changed. ParSim: per-island
    // settle supersteps skipped because the island was quiescent.
    uint64_t gated_steps = 0;
    std::vector<uint64_t> island_gated_supersteps;

    /** Count a block call; true when this execution should be timed. */
    bool
    shouldTime(int block)
    {
        ++block_calls[block];
        if (exact)
            return true;
        if (--until_sample[block] == 0) {
            until_sample[block] = sample_period;
            return true;
        }
        return false;
    }

    /** Record a timed execution (scaled under sampled timing). */
    void
    addBlockTime(int block, double seconds)
    {
        block_seconds[block] += exact ? seconds : seconds * sample_period;
    }
};

/** Construction-time specializer overheads (paper Figure 16). */
struct SpecStats
{
    double codegenSeconds = 0.0;   //!< IR -> bytecode or C++ source
    double compileSeconds = 0.0;   //!< external compiler
    double wrapSeconds = 0.0;      //!< dlopen + symbol binding
    double simCreateSeconds = 0.0; //!< kernel datastructure setup
    bool cacheHit = false;
    int numBlocks = 0;
    int numSpecialized = 0;
    int numGroups = 0;
    /** cpp-design: cycle at which the native tier was swapped in
     *  (0 = before the first cycle, -1 = still on the warm-up tier). */
    int64_t tierSwapCycle = -1;
    bool tiered = false; //!< cpp-design with background compilation
    // --- dead-logic elimination (SimConfig::dead_elim) -------------
    int deadBlocksElided = 0;  //!< comb blocks skipped by the schedule
    int deadNetsElided = 0;    //!< driven+read nets proven dead
    /** Bytes of the emitted C++ translation unit (cpp-block fused
     *  groups or the cpp-design whole-design unit); 0 for
     *  interpreter/bytecode backends. */
    size_t emittedTuBytes = 0;
};

/**
 * Abstract simulator interface (the tool-facing contract).
 *
 * Both execution kernels — the sequential SimulationTool below and the
 * parallel bulk-synchronous ParSimulationTool (psim.h) — implement
 * this interface, so waveform dumpers, activity counters and test
 * benches drive either one interchangeably. A simulator doubles as the
 * SignalAccess backend: test benches and lambda blocks transparently
 * read and write through the active storage strategy. One simulator
 * may be live per elaboration at a time.
 */
class Simulator : public SignalAccess
{
  public:
    Simulator(std::shared_ptr<Elaboration> elab, SimConfig cfg)
        : elab_(std::move(elab)), cfg_(cfg)
    {
        cfg_.resolve();
    }

    /** Advance one clock cycle. */
    virtual void cycle() = 0;
    /** Advance @p n clock cycles. */
    void cycle(uint64_t n);
    /** Propagate combinational logic only (no clock edge). */
    virtual void eval() = 0;
    /** Assert the implicit reset for @p ncycles cycles. */
    void reset(int ncycles = 1);

    uint64_t
    numCycles() const
    {
        return ncycles_.load(std::memory_order_relaxed);
    }
    const SpecStats &specStats() const { return spec_stats_; }

    /**
     * Units of work skipped by activity gating (SimConfig::gating)
     * since construction: combinational steps on the sequential
     * kernel, island settle supersteps on ParSim. 0 when gating is
     * off or the backend ignores it. Updated between cycles only —
     * read it from the cycling thread.
     */
    uint64_t gatedSteps() const { return gated_steps_; }

    // --- cooperative pause (SimServer scheduler, debugger) ---------

    /**
     * Ask the running kernel to pause at the next cycle boundary.
     * Thread-safe: any thread may request a pause while another runs
     * runUntil(). The flag is consumed by runUntil(), which returns
     * false with the simulator stopped between cycles — ParSim workers
     * parked, all state quiescent — so snapSave() may capture it and a
     * later restore resumes bit-identically.
     */
    void
    requestPause()
    {
        pause_requested_.store(true, std::memory_order_release);
    }

    /** True while a pause request is pending (not yet consumed). */
    bool
    pauseRequested() const
    {
        return pause_requested_.load(std::memory_order_acquire);
    }

    /** Drop a pending pause request without honoring it. */
    void
    clearPauseRequest()
    {
        pause_requested_.store(false, std::memory_order_relaxed);
    }

    /**
     * Run cycles until numCycles() reaches @p target_cycle or a pause
     * is requested. Returns true when the target was reached, false
     * when a pause request stopped the run early (the request is
     * consumed; call runUntil again to resume). The pause flag is
     * checked once per cycle boundary on both kernels, so the
     * disabled-path cost is one atomic load per cycle.
     */
    bool runUntil(uint64_t target_cycle);

    /**
     * True while a tiered cpp-design simulator is still executing on
     * the bytecode warm-up tier (the background compile has not been
     * adopted yet). Benches drain this before measuring steady state.
     */
    virtual bool tierPending() const { return false; }
    const Elaboration &elaboration() const { return *elab_; }
    const SimConfig &config() const { return cfg_; }

    /** Concatenated lineTrace() of every model, pre-order. */
    std::string lineTrace() const;

    /** Hook invoked after every cycle (VCD dumping etc.). */
    void
    onCycleEnd(std::function<void(uint64_t)> hook)
    {
        cycle_hooks_.push_back(std::move(hook));
    }

    /**
     * Attach a SimScope instrumentation sink (nullptr detaches). The
     * probe's vectors must already be sized for this elaboration; at
     * most one probe is active at a time (last attach wins). Owned by
     * the SimScope tool — call only between cycles.
     */
    void attachScope(ScopeProbe *probe) { probe_ = probe; }
    ScopeProbe *scopeProbe() const { return probe_; }

    /**
     * Data-layout observability: the active arena layout's counters
     * with flop_memcpy_ranges filled in from the kernel's flop plan.
     * Defaults (elab policy, zero counters) on storage without an
     * arena (pure interp).
     */
    virtual LayoutStats layoutStats() const { return LayoutStats{}; }

    /** Direct net-level value access for tools (VCD, testing). */
    virtual Bits readNet(int net) const = 0;

    /** Host access to a memory array element. */
    virtual Bits readArray(const MemArray &array, uint64_t index) const = 0;
    virtual void writeArray(MemArray &array, uint64_t index,
                            const Bits &value) = 0;

    // --- SimSnap state-capture hooks (snap.h) ----------------------

    /** Next-phase (flop shadow) value of a net. */
    virtual Bits readNetNext(int net) const = 0;
    /** Restore a net's current value (blocking-write semantics). */
    virtual void pokeNet(int net, const Bits &value) = 0;
    /**
     * Restore a net's next-phase value WITHOUT registering the net as
     * dynamically flopped the way writeNext() does — flop membership
     * is restored separately through registerDynamicFlops(), so a
     * restore never turns combinational nets into registers.
     */
    virtual void pokeNetNext(int net, const Bits &value) = 0;
    /** Nets registered as flopped at run time by lambda writeNext. */
    virtual std::vector<int> dynamicFlopNets() const = 0;
    /** Re-register dynamically flopped nets on a fresh simulator. */
    virtual void registerDynamicFlops(const std::vector<int> &nets) = 0;
    /** Overwrite the cycle counter (snapshot restore only). */
    void
    setRestoredCycleCount(uint64_t n)
    {
        ncycles_.store(n, std::memory_order_relaxed);
    }

  protected:
    std::shared_ptr<Elaboration> elab_;
    SimConfig cfg_;
    SpecStats spec_stats_;
    /**
     * Atomic so progress monitors (SimServer job status) may read the
     * counter while another thread cycles the kernel; all accesses are
     * relaxed — the counter orders nothing.
     */
    std::atomic<uint64_t> ncycles_{0};
    std::atomic<bool> pause_requested_{false};
    std::vector<std::function<void(uint64_t)>> cycle_hooks_;
    ScopeProbe *probe_ = nullptr;
    uint64_t gated_steps_ = 0;
};

/**
 * The sequential simulator generator (the paper's kernel).
 */
class SimulationTool : public Simulator
{
  public:
    explicit SimulationTool(std::shared_ptr<Elaboration> elab,
                            SimConfig cfg = SimConfig{});
    ~SimulationTool() override;

    using Simulator::cycle;
    void cycle() override;
    void eval() override;

    Bits readNet(int net) const override;
    Bits readArray(const MemArray &array, uint64_t index) const override;
    void writeArray(MemArray &array, uint64_t index,
                    const Bits &value) override;

    Bits readNetNext(int net) const override;
    void pokeNet(int net, const Bits &value) override;
    void pokeNetNext(int net, const Bits &value) override;
    std::vector<int> dynamicFlopNets() const override;
    void registerDynamicFlops(const std::vector<int> &nets) override;

    bool tierPending() const override;
    LayoutStats layoutStats() const override;

    // --- SignalAccess ----------------------------------------------
    Bits read(const Signal &sig) const override;
    void write(Signal &sig, const Bits &value) override;
    void writeNext(Signal &sig, const Bits &value) override;

  private:
    struct Step
    {
        enum class Kind { Lambda, BoxedIr, SlotIr, Bytecode, Native };
        Kind kind;
        int block = -1; //!< ElabBlock index (Lambda/Ir)
        int group = -1; //!< specialization group index
        /** Nets to marshal for hybrid boxed+specialized execution. */
        const std::vector<int> *reads = nullptr;
        const std::vector<int> *writes = nullptr;
        bool sequential = false;
    };

    bool useBoxed() const { return cfg_.exec == ExecMode::Interp; }
    bool eventDriven() const { return event_driven_; }
    bool designMode() const { return cfg_.backend == Backend::CppDesign; }

    Step makeStep(int idx) const;
    void buildSchedule();
    void specialize();
    void specializeDesign(const std::vector<char> &can,
                          const std::vector<double> *heat);
    std::vector<int> designCombOrder(const std::vector<char> &can,
                                     const std::vector<double> *heat) const;
    void adoptNativeTier();
    void maybeSwapTier();
    /** True when the layout will be re-derived from measured heat. */
    bool pgoActive() const
    {
        return designMode() && cfg_.jit_tiered &&
               cfg_.layout == LayoutPolicy::Profile;
    }
    void startPgoBuild();
    void migrateArena();
    void runStep(const Step &step, std::vector<int> *changed);
    void runStepImpl(const Step &step, std::vector<int> *changed);
    void cycleProfiled();
    void syncIn(const Step &step);
    void syncOut(const Step &step, std::vector<int> *changed);
    void snapshotWrites(const Step &step);
    void diffWrites(const Step &step, std::vector<int> *changed);
    bool isArrayToken(int token) const;
    void copyArrayToArena(int token);
    void copyArrayToBoxed(int token);
    /**
     * Hybrid (boxed exec + specialization) storage dispatch: tokens
     * whose every writer is specialized live permanently in the
     * arena — the state a SimJIT-compiled component owns internally —
     * and only boundary tokens are marshalled at group entry/exit.
     */
    bool tokenInArena(int token) const
    {
        return !useBoxed() ||
               (token < static_cast<int>(token_in_arena_.size()) &&
                token_in_arena_[token]);
    }
    void settle();
    void settleEvent(std::vector<int> &seed);
    void enqueueReaders(int net);
    void markFlopped(int net);
    void doFlop(std::vector<int> *changed);
    void buildGating();
    /** Settle-internal change: re-run the token's comb readers. */
    void markReaderStepsDirty(int token);
    /** External change (testbench write, flop, poke): re-run the
     *  token's comb readers AND its comb driver, so a poked value a
     *  driver would overwrite is overwritten exactly as when every
     *  step runs unconditionally. */
    void markTokenStepsDirty(int token);

    std::unique_ptr<BoxedStore> boxed_;
    std::unique_ptr<ArenaStore> arena_;
    std::unique_ptr<BoxedEvaluator> boxed_eval_;
    std::unique_ptr<SlotEvaluator> slot_eval_;
    /** Snap/poke hooks delegate here (accessor.h). */
    NetAccessor accessor_;

    bool event_driven_ = false;
    std::vector<Step> comb_steps_; //!< static order (or event pool)
    std::vector<Step> tick_steps_;
    std::vector<int> comb_step_of_block_; //!< block idx -> comb step idx

    // --- cpp-design tiering ----------------------------------------
    // Tier 0 runs the bytecode schedule in comb_steps_/tick_steps_;
    // the native whole-design schedule below is adopted by swinging
    // the active_* pointers at a cycle boundary once the background
    // compile lands. Bit-identical by construction: the native order
    // is a valid topological order of the same blocks and the flop
    // unit copies exactly the statically flopped nets.
    std::vector<Step> design_comb_steps_;
    std::vector<Step> design_tick_steps_;
    std::vector<Step> *active_comb_ = &comb_steps_;
    std::vector<Step> *active_tick_ = &tick_steps_;
    std::string design_source_;
    int design_nunits_ = 0;
    int design_flop_unit_ = -1;
    int design_step_unit_ = -1; //!< fused whole-cycle entry, or -1
    size_t n_static_flops_ = 0;
    bool design_native_ = false;
    bool tier_failed_ = false;
    std::thread jit_thread_;
    std::atomic<bool> jit_ready_{false};
    CppJitLibrary pending_lib_;
    std::exception_ptr jit_error_;

    // --- profile-guided layout (cpp-design + Profile + tiered) -----
    // TU emission is deferred past a warm-up window; the heat the
    // probe gathered refines the layout and orders the fused schedule,
    // then the normal background tier swap adopts module AND arena
    // together (migrateArena).
    bool pgo_pending_ = false;
    std::vector<char> can_; //!< saved specializable mask for re-emit
    std::unique_ptr<ScopeProbe> pgo_probe_; //!< internal heat source
    std::unique_ptr<ArenaStore> pgo_arena_; //!< awaiting adoption
    /** Static-flop copy plan for the active arena (doFlop fast path). */
    FlopCopyPlan flop_plan_;

    std::vector<BcProgram> bc_programs_; //!< per specialized block
    std::vector<uint64_t> bc_scratch_;
    CppJitLibrary cpp_lib_;
    /** Per specialization group: member programs + marshal sets. */
    std::vector<std::vector<const BcProgram *>> group_bc_;
    /** Member block ids of each bytecode group, in execution order —
     *  lets a probe attribute time per block inside a fused step. */
    std::vector<std::vector<int>> group_blocks_;
    std::vector<std::vector<int>> group_reads_;
    std::vector<std::vector<int>> group_writes_;

    /** Comb blocks elided by dead-logic elimination (dead_elim). */
    std::vector<char> dead_block_;

    std::vector<int> flopped_nets_;
    std::vector<char> is_flopped_;
    std::vector<int> tick_array_tokens_; //!< arrays written at ticks
    std::vector<char> token_in_arena_;   //!< hybrid-mode ownership
    std::vector<uint64_t> write_snapshot_; //!< event change detection

    // Event-driven worklist state.
    std::vector<int> worklist_;
    std::vector<char> in_worklist_;

    // Activity gating (static schedules only; see SimConfig::gating).
    bool gating_ = false;
    std::vector<char> step_dirty_; //!< comb step must re-run
    /** token -> comb step(s) writing it (specialized groups count as
     *  one step); used to re-run drivers over externally poked nets. */
    std::vector<std::vector<int>> writer_steps_of_token_;
    /** Tokens tick blocks write with blocking semantics (plain nets
     *  never statically flopped, and every tick-written array): their
     *  readers re-run each cycle; the flop phase change-detects the
     *  registered rest. */
    std::vector<int> tick_dirty_tokens_;

    bool dirty_ = true;
};

} // namespace cmtl

#endif // CMTL_CORE_SIM_H
