#include "analyze.h"

#include <algorithm>

#include "ir_eval.h"

namespace cmtl {

// ------------------------------------------------------- check catalog

const std::vector<AnalyzeCheck> &
analyzeCheckCatalog()
{
    static const std::vector<AnalyzeCheck> catalog = {
        {"latch-inferred", LintSeverity::Error,
         "combinational block misses a target signal on some path"},
        {"temp-read-before-write", LintSeverity::Error,
         "block-local temp read before any assignment"},
        {"comb-read-own-write", LintSeverity::Warning,
         "combinational block reads a signal it assigns later"},
        {"slice-out-of-range", LintSeverity::Error,
         "slice/bit select outside the operand width"},
        {"index-out-of-range", LintSeverity::Error,
         "array index is provably outside the array depth"},
        {"index-may-exceed", LintSeverity::Warning,
         "array index upper bound exceeds the array depth"},
        {"lossy-truncation", LintSeverity::Warning,
         "assignment implicitly truncates a wider value"},
        {"constant-condition", LintSeverity::Warning,
         "if/mux condition constant-folds; branch is dead logic"},
        {"nonblocking-in-comb", LintSeverity::Error,
         "non-blocking assignment in a combinational block"},
        {"blocking-in-seq", LintSeverity::Error,
         "blocking signal assignment in a sequential block"},
        {"awrite-in-comb", LintSeverity::Error,
         "array write in a combinational block"},
        // Whole-design dataflow clients (dataflow.h).
        {"dead-net", LintSeverity::Warning,
         "net is computed but cannot influence any observed sink"},
        {"dead-block", LintSeverity::Warning,
         "combinational block writes only dead nets"},
        {"maybe-uninitialized", LintSeverity::Warning,
         "net is readable before any driver or reset assigns it"},
        // Static ParSim race auditor (race_audit.h).
        {"audit-block-coverage", LintSeverity::Error,
         "block missing from or duplicated across partition islands"},
        {"audit-shared-write", LintSeverity::Error,
         "token statically written from two distinct islands"},
        {"audit-ownership", LintSeverity::Error,
         "token owner disagrees with its statically writing island"},
        {"audit-push-coverage", LintSeverity::Error,
         "boundary-exchange push set does not exactly cover "
         "cross-island reads"},
        {"audit-superstep-order", LintSeverity::Error,
         "cross-island combinational edge is not barrier-separated"},
        {"audit-boundary", LintSeverity::Error,
         "cross-island edge crosses neither a flop nor a "
         "barrier-separated settle boundary"},
        {"audit-array-local", LintSeverity::Error,
         "memory array touched from more than one island"},
    };
    return catalog;
}

// ----------------------------------------------- shared path formatters

std::string
lintNetPath(const Net &net)
{
    return net.name;
}

std::string
lintNetLocation(const Net &net)
{
    std::string out = "net '" + net.name + "'";
    if (net.signals.size() <= 1)
        return out;
    out += " (members: ";
    const size_t show = std::min<size_t>(net.signals.size(), 4);
    for (size_t i = 0; i < show; ++i) {
        if (i)
            out += ", ";
        out += net.signals[i]->fullName();
    }
    if (net.signals.size() > show)
        out += ", +" + std::to_string(net.signals.size() - show) +
               " more";
    out += ")";
    return out;
}

// ------------------------------------------------------ AnalyzeOptions

AnalyzeOptions &
AnalyzeOptions::suppress(const std::string &check)
{
    suppressed_.insert(check);
    return *this;
}

AnalyzeOptions &
AnalyzeOptions::setSeverity(const std::string &check, LintSeverity severity)
{
    severity_[check] = severity;
    return *this;
}

bool
AnalyzeOptions::isSuppressed(const std::string &check) const
{
    return suppressed_.count(check) > 0;
}

LintSeverity
AnalyzeOptions::effectiveSeverity(const std::string &check,
                                  LintSeverity fallback) const
{
    auto it = severity_.find(check);
    return it == severity_.end() ? fallback : it->second;
}

void
AnalyzeOptions::emit(std::vector<LintIssue> &issues, LintSeverity fallback,
                     const std::string &check,
                     const std::string &message) const
{
    emit(issues, fallback, check, /*path=*/"", message);
}

void
AnalyzeOptions::emit(std::vector<LintIssue> &issues, LintSeverity fallback,
                     const std::string &check, const std::string &path,
                     const std::string &message) const
{
    if (isSuppressed(check))
        return;
    issues.push_back(
        {effectiveSeverity(check, fallback), check, message, path});
}

// ----------------------------------------------------- constant folder

std::optional<Bits>
irConstFold(const IrExprPtr &e)
{
    return irConstFold(e.get());
}

std::optional<Bits>
irConstFold(const IrExprNode *e)
{
    if (!e)
        return std::nullopt;
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        return e->cval;
      case IrExprNode::Kind::Ref:
      case IrExprNode::Kind::Temp:
      case IrExprNode::Kind::ARead:
        return std::nullopt; // depends on run-time state
      case IrExprNode::Kind::BinOp: {
        auto a = irConstFold(e->args[0]);
        auto b = irConstFold(e->args[1]);
        if (!a || !b)
            return std::nullopt;
        return irEvalBinOp(e->op, *a, *b, e->nbits);
      }
      case IrExprNode::Kind::UnOp: {
        auto a = irConstFold(e->args[0]);
        if (!a)
            return std::nullopt;
        return irEvalUnOp(e->unop, *a);
      }
      case IrExprNode::Kind::Slice: {
        auto a = irConstFold(e->args[0]);
        if (!a || e->lsb < 0 || e->lsb + e->nbits > a->nbits())
            return std::nullopt; // malformed: reported by range check
        return a->slice(e->lsb, e->nbits);
      }
      case IrExprNode::Kind::Concat: {
        Bits out(e->nbits);
        int pos = e->nbits;
        for (const auto &arg : e->args) {
            auto part = irConstFold(arg);
            if (!part)
                return std::nullopt;
            pos -= arg->nbits;
            if (pos < 0)
                return std::nullopt;
            out.setSlice(pos, *part);
        }
        return out;
      }
      case IrExprNode::Kind::Mux: {
        auto cond = irConstFold(e->args[0]);
        if (!cond)
            return std::nullopt;
        auto arm = irConstFold(cond->any() ? e->args[1] : e->args[2]);
        if (!arm)
            return std::nullopt;
        return arm->zext(e->nbits);
      }
      case IrExprNode::Kind::Zext: {
        auto a = irConstFold(e->args[0]);
        if (!a)
            return std::nullopt;
        return a->zext(e->nbits);
      }
      case IrExprNode::Kind::Sext: {
        auto a = irConstFold(e->args[0]);
        if (!a)
            return std::nullopt;
        return a->sext(e->nbits);
      }
    }
    return std::nullopt;
}

// ------------------------------------------------------- value bounds

namespace {

uint64_t
widthBound(int nbits)
{
    return nbits >= 64 ? ~uint64_t(0)
                       : ((uint64_t(1) << nbits) - 1);
}

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t s = a + b;
    return s < a ? ~uint64_t(0) : s;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > ~uint64_t(0) / b)
        return ~uint64_t(0);
    return a * b;
}

uint64_t
satShl(uint64_t a, uint64_t amount)
{
    if (a == 0)
        return 0;
    if (amount >= 64 || a > (~uint64_t(0) >> amount))
        return ~uint64_t(0);
    return a << amount;
}

} // namespace

uint64_t
irMaxBound(const IrExprPtr &e)
{
    if (!e)
        return ~uint64_t(0);
    const uint64_t w = widthBound(e->nbits);
    if (auto folded = irConstFold(e); folded && folded->fitsUint64())
        return folded->toUint64();
    switch (e->kind) {
      case IrExprNode::Kind::Const:
        return e->cval.fitsUint64() ? e->cval.toUint64() : w;
      case IrExprNode::Kind::Ref:
      case IrExprNode::Kind::Temp:
      case IrExprNode::Kind::ARead:
        return w;
      case IrExprNode::Kind::BinOp: {
        uint64_t a = irMaxBound(e->args[0]);
        uint64_t b = irMaxBound(e->args[1]);
        switch (e->op) {
          case IrOp::Add: return std::min(satAdd(a, b), w);
          case IrOp::Mul: return std::min(satMul(a, b), w);
          case IrOp::And: return std::min({a, b, w});
          case IrOp::Or:
          case IrOp::Xor: return std::min(satAdd(a, b), w);
          case IrOp::Shr:
            // Bound of the lhs is only a sound magnitude bound when
            // the lhs value itself fits a machine word.
            if (e->args[0]->nbits <= 64) {
                if (auto c = irConstFold(e->args[1]);
                    c && c->fitsUint64()) {
                    uint64_t amt = c->toUint64();
                    return amt >= 64 ? 0 : std::min(a >> amt, w);
                }
                return std::min(a, w);
            }
            return w;
          case IrOp::Shl:
            if (auto c = irConstFold(e->args[1]); c && c->fitsUint64())
                return std::min(satShl(a, c->toUint64()), w);
            return w;
          case IrOp::Eq: case IrOp::Ne: case IrOp::Lt: case IrOp::Le:
          case IrOp::Gt: case IrOp::Ge: case IrOp::LAnd: case IrOp::LOr:
            return 1;
          default:
            return w;
        }
      }
      case IrExprNode::Kind::UnOp:
        switch (e->unop) {
          case IrUnOp::LNot:
          case IrUnOp::ReduceOr:
          case IrUnOp::ReduceAnd:
          case IrUnOp::ReduceXor:
            return 1;
          default:
            return w;
        }
      case IrExprNode::Kind::Slice:
        if (e->args[0]->nbits <= 64 && e->lsb >= 0 && e->lsb < 64)
            return std::min(irMaxBound(e->args[0]) >> e->lsb, w);
        return w;
      case IrExprNode::Kind::Concat: {
        uint64_t acc = 0;
        for (const auto &arg : e->args)
            acc = satAdd(satShl(acc, arg->nbits), irMaxBound(arg));
        return std::min(acc, w);
      }
      case IrExprNode::Kind::Mux:
        return std::min(
            std::max(irMaxBound(e->args[1]), irMaxBound(e->args[2])), w);
      case IrExprNode::Kind::Zext:
        return std::min(irMaxBound(e->args[0]), w);
      case IrExprNode::Kind::Sext: {
        const IrExprPtr &arg = e->args[0];
        if (arg->nbits <= 64) {
            uint64_t a = irMaxBound(arg);
            // If the sign bit can never be set, sext behaves as zext.
            if (a < (uint64_t(1) << (arg->nbits - 1)))
                return std::min(a, w);
        }
        return w;
      }
    }
    return w;
}

// ------------------------------------------------------- BlockAnalyzer

namespace {

/** Which bits of one signal are definitely assigned on this path. */
class Cover
{
  public:
    Cover() = default;
    explicit Cover(int nbits) : bits_(nbits, false) {}

    void
    cover(int lsb, int width)
    {
        if (bits_.empty())
            return;
        int hi = std::min<int>(lsb + width, static_cast<int>(bits_.size()));
        for (int i = std::max(lsb, 0); i < hi; ++i)
            bits_[i] = true;
    }

    void coverAll() { std::fill(bits_.begin(), bits_.end(), true); }

    bool
    full() const
    {
        return std::all_of(bits_.begin(), bits_.end(),
                           [](bool b) { return b; });
    }

    void
    intersect(const Cover &o)
    {
        for (size_t i = 0; i < bits_.size(); ++i)
            bits_[i] = bits_[i] && i < o.bits_.size() && o.bits_[i];
    }

    /** Inclusive [msb:lsb] range covering all unassigned bits. */
    std::pair<int, int>
    missingRange() const
    {
        int lo = -1, hi = -1;
        for (size_t i = 0; i < bits_.size(); ++i) {
            if (!bits_[i]) {
                if (lo < 0)
                    lo = static_cast<int>(i);
                hi = static_cast<int>(i);
            }
        }
        return {hi, lo};
    }

  private:
    std::vector<bool> bits_;
};

/** Definite-assignment state along one control path. */
struct PathState
{
    std::map<const Signal *, Cover> sigs;
    std::set<int> temps;

    bool
    fullyAssigned(const Signal *sig) const
    {
        auto it = sigs.find(sig);
        return it != sigs.end() && it->second.full();
    }
};

/** Intersection of two branch states (both derived from one base). */
PathState
mergeStates(const PathState &a, const PathState &b)
{
    PathState out;
    for (const auto &[sig, cover] : a.sigs) {
        auto it = b.sigs.find(sig);
        if (it == b.sigs.end())
            continue;
        Cover merged = cover;
        merged.intersect(it->second);
        out.sigs.emplace(sig, std::move(merged));
    }
    for (int t : a.temps) {
        if (b.temps.count(t))
            out.temps.insert(t);
    }
    return out;
}

/** Runs every per-block check over one IR block. */
class BlockAnalyzer
{
  public:
    BlockAnalyzer(const ElabBlock &blk, const AnalyzeOptions &options,
                  std::vector<LintIssue> &issues)
        : blk_(blk), ir_(*blk.ir), options_(options), issues_(issues)
    {}

    void
    run()
    {
        collectWriteTargets(ir_.stmts);
        PathState st;
        walk(ir_.stmts, st);
        if (!ir_.sequential)
            reportLatches(st);
    }

  private:
    // ----------------------------------------------------- reporting

    /**
     * @p path is the finding's hierarchical subject (a signal or array
     * full name); block-local findings (temps, folded conditions) leave
     * it empty and report the block's hierarchical name instead.
     */
    void
    emitOnce(LintSeverity fallback, const std::string &check,
             const std::string &subject, const std::string &message,
             const std::string &path = "")
    {
        if (!reported_.insert(check + "|" + subject).second)
            return;
        options_.emit(issues_, fallback, check,
                      path.empty() ? blk_.name : path,
                      "in block '" + blk_.name + "': " + message);
    }

    // ---------------------------------------------- write collection

    void
    collectWriteTargets(const std::vector<IrStmt> &stmts)
    {
        for (const IrStmt &s : stmts) {
            if (s.kind == IrStmt::Kind::Assign && s.sig)
                writes_.insert(s.sig);
            collectWriteTargets(s.thenBody);
            collectWriteTargets(s.elseBody);
        }
    }

    // --------------------------------------------- expression checks

    void
    checkExpr(const IrExprPtr &e, const PathState &st)
    {
        if (!e)
            return;
        switch (e->kind) {
          case IrExprNode::Kind::Temp:
            if (!st.temps.count(e->temp)) {
                emitOnce(LintSeverity::Error, "temp-read-before-write",
                         tempName(e->temp),
                         "temp '" + tempName(e->temp) +
                             "' is read before any assignment on some "
                             "path");
            }
            break;
          case IrExprNode::Kind::Ref:
            if (!ir_.sequential && writes_.count(e->sig) &&
                !st.fullyAssigned(e->sig)) {
                emitOnce(LintSeverity::Warning, "comb-read-own-write",
                         e->sig->fullName(),
                         "signal '" + e->sig->fullName() +
                             "' is read before the block's own "
                             "assignment to it; the read observes the "
                             "previous settling round",
                         e->sig->fullName());
            }
            break;
          case IrExprNode::Kind::Slice: {
            const IrExprPtr &arg = e->args[0];
            if (e->lsb < 0 || e->lsb + e->nbits > arg->nbits) {
                emitOnce(LintSeverity::Error, "slice-out-of-range",
                         irExprToString(e),
                         "slice [" + std::to_string(e->lsb + e->nbits - 1) +
                             ":" + std::to_string(e->lsb) +
                             "] exceeds the " +
                             std::to_string(arg->nbits) +
                             "-bit operand '" + irExprToString(arg) + "'");
            }
            break;
          }
          case IrExprNode::Kind::ARead:
            checkIndex(e->args[0], e->array, "read");
            break;
          case IrExprNode::Kind::Mux:
            checkConstCondition(e->args[0], "mux",
                                /*has_else=*/true);
            break;
          default:
            break;
        }
        for (const auto &arg : e->args)
            checkExpr(arg, st);
    }

    void
    checkIndex(const IrExprPtr &idx, const MemArray *array,
               const char *what)
    {
        const uint64_t depth = static_cast<uint64_t>(array->depth());
        if (auto folded = irConstFold(idx)) {
            if (!folded->fitsUint64() || folded->toUint64() >= depth) {
                emitOnce(LintSeverity::Error, "index-out-of-range",
                         array->fullName() + "|" + irExprToString(idx),
                         "array " + std::string(what) + " of '" +
                             array->fullName() + "' (depth " +
                             std::to_string(array->depth()) +
                             ") uses constant index " +
                             folded->toDecString(),
                         array->fullName());
            }
            return;
        }
        uint64_t bound = irMaxBound(idx);
        if (bound >= depth) {
            emitOnce(LintSeverity::Warning, "index-may-exceed",
                     array->fullName() + "|" + irExprToString(idx),
                     "array " + std::string(what) + " of '" +
                         array->fullName() + "' (depth " +
                         std::to_string(array->depth()) +
                         ") uses index '" + irExprToString(idx) +
                         "' with static upper bound " +
                         std::to_string(bound) +
                         "; out-of-range indexes wrap",
                     array->fullName());
        }
    }

    /** Returns the folded condition when it is a constant. */
    std::optional<Bits>
    checkConstCondition(const IrExprPtr &cond, const char *what,
                        bool has_else)
    {
        auto folded = irConstFold(cond);
        if (folded) {
            bool taken = folded->any();
            std::string dead = taken
                                   ? (has_else ? "the else branch is "
                                                 "unreachable"
                                               : "the condition is "
                                                 "redundant")
                                   : "the then branch is unreachable";
            emitOnce(LintSeverity::Warning, "constant-condition",
                     irExprToString(cond) + "|" + what,
                     std::string(what) + " condition '" +
                         irExprToString(cond) + "' is always " +
                         (taken ? "true" : "false") + "; " + dead);
        }
        return folded;
    }

    // ----------------------------------------------- statement checks

    std::string
    tempName(int idx) const
    {
        if (idx >= 0 && idx < static_cast<int>(ir_.temps.size()))
            return ir_.temps[idx].name;
        return "t" + std::to_string(idx);
    }

    void
    checkAssignTruncation(const IrStmt &s)
    {
        int target_width;
        std::string target;
        if (s.sig) {
            target_width = s.width < 0 ? s.sig->nbits() : s.width;
            target = "'" + s.sig->fullName() + "'";
        } else {
            target_width = s.temp < static_cast<int>(ir_.temps.size())
                               ? ir_.temps[s.temp].nbits
                               : s.rhs->nbits;
            target = "temp '" + tempName(s.temp) + "'";
        }
        // Builder-inserted truncation shows up as a width-reducing
        // extension at the root of the rhs; hand-built IR may carry a
        // plainly wider rhs. Proving the value fits silences it.
        const IrExprPtr *wide = nullptr;
        if (s.rhs->nbits > target_width) {
            wide = &s.rhs;
        } else if ((s.rhs->kind == IrExprNode::Kind::Zext ||
                    s.rhs->kind == IrExprNode::Kind::Sext) &&
                   s.rhs->args[0]->nbits > s.rhs->nbits) {
            wide = &s.rhs->args[0];
        }
        if (!wide)
            return;
        if (irMaxBound(*wide) <= widthBound(target_width))
            return; // value provably fits: not lossy
        emitOnce(LintSeverity::Warning, "lossy-truncation",
                 target + "|" + std::to_string((*wide)->nbits),
                 "assignment to " + target + " truncates a " +
                     std::to_string((*wide)->nbits) + "-bit value to " +
                     std::to_string(target_width) + " bits",
                 s.sig ? s.sig->fullName() : std::string());
    }

    void
    walk(const std::vector<IrStmt> &stmts, PathState &st)
    {
        for (const IrStmt &s : stmts) {
            switch (s.kind) {
              case IrStmt::Kind::Assign: {
                checkExpr(s.rhs, st);
                checkAssignTruncation(s);
                if (s.sig) {
                    if (!ir_.sequential && s.nonblocking) {
                        emitOnce(LintSeverity::Error,
                                 "nonblocking-in-comb",
                                 s.sig->fullName(),
                                 "non-blocking assignment to '" +
                                     s.sig->fullName() +
                                     "' in a combinational block",
                                 s.sig->fullName());
                    }
                    if (ir_.sequential && !s.nonblocking) {
                        emitOnce(LintSeverity::Error, "blocking-in-seq",
                                 s.sig->fullName(),
                                 "blocking assignment to sequential "
                                 "state '" +
                                     s.sig->fullName() + "'",
                                 s.sig->fullName());
                    }
                    auto [it, inserted] =
                        st.sigs.try_emplace(s.sig, Cover(s.sig->nbits()));
                    if (s.width < 0)
                        it->second.coverAll();
                    else
                        it->second.cover(s.lsb, s.width);
                } else {
                    st.temps.insert(s.temp);
                }
                break;
              }
              case IrStmt::Kind::If: {
                checkExpr(s.cond, st);
                auto folded =
                    checkConstCondition(s.cond, "if",
                                        !s.elseBody.empty());
                PathState then_st = st;
                PathState else_st = st;
                walk(s.thenBody, then_st);
                walk(s.elseBody, else_st);
                if (folded) {
                    // Dead branch was still checked above, but only
                    // the live branch contributes assignments.
                    st = folded->any() ? std::move(then_st)
                                       : std::move(else_st);
                    break;
                }
                recordLatchNotes(s, st, then_st, else_st);
                st = mergeStates(then_st, else_st);
                break;
              }
              case IrStmt::Kind::AWrite: {
                if (!ir_.sequential) {
                    emitOnce(LintSeverity::Error, "awrite-in-comb",
                             s.array->fullName(),
                             "write to array '" + s.array->fullName() +
                                 "' in a combinational block; array "
                                 "writes are clock-edge effects",
                             s.array->fullName());
                }
                checkExpr(s.cond, st);
                checkExpr(s.rhs, st);
                checkIndex(s.cond, s.array, "write");
                break;
              }
            }
        }
    }

    /**
     * Remember, per signal, the innermost branch condition under
     * which it misses an assignment — the offending path named in
     * the latch-inferred report.
     */
    void
    recordLatchNotes(const IrStmt &s, const PathState &base,
                     const PathState &then_st, const PathState &else_st)
    {
        if (ir_.sequential)
            return;
        for (const Signal *sig : writes_) {
            if (latch_notes_.count(sig) || base.fullyAssigned(sig))
                continue;
            bool then_full = then_st.fullyAssigned(sig);
            bool else_full = else_st.fullyAssigned(sig);
            if (then_full == else_full)
                continue;
            latch_notes_[sig] = "not assigned when '" +
                                irExprToString(s.cond) + "' is " +
                                (then_full ? "false" : "true");
        }
    }

    void
    reportLatches(const PathState &final_st)
    {
        for (const Signal *sig : writes_) {
            auto it = final_st.sigs.find(sig);
            Cover cover =
                it != final_st.sigs.end() ? it->second : Cover(sig->nbits());
            if (cover.full())
                continue;
            auto [msb, lsb] = cover.missingRange();
            std::string msg = "combinational target '" + sig->fullName() +
                              "' is not assigned on every path (bits [" +
                              std::to_string(msb) + ":" +
                              std::to_string(lsb) + "] can retain their "
                              "previous value — a latch would be "
                              "inferred)";
            auto note = latch_notes_.find(sig);
            if (note != latch_notes_.end())
                msg += "; offending path: " + note->second;
            emitOnce(LintSeverity::Error, "latch-inferred",
                     sig->fullName(), msg, sig->fullName());
        }
    }

    const ElabBlock &blk_;
    const IrBlock &ir_;
    const AnalyzeOptions &options_;
    std::vector<LintIssue> &issues_;
    std::set<const Signal *> writes_;
    std::map<const Signal *, std::string> latch_notes_;
    std::set<std::string> reported_;
};

} // namespace

std::vector<LintIssue>
analyzeIr(const Elaboration &elab, const AnalyzeOptions &options)
{
    std::vector<LintIssue> issues;
    for (const ElabBlock &blk : elab.blocks) {
        if (!blk.ir)
            continue; // FL/CL lambda blocks carry no IR
        BlockAnalyzer(blk, options, issues).run();
    }
    return issues;
}

} // namespace cmtl
