/**
 * @file
 * Arbitrary-width bit-vector value type.
 *
 * Bits is the fixed-bitwidth message/value type used throughout CMTL,
 * mirroring PyMTL's Bits type: all arithmetic is performed modulo 2^n,
 * operands of different widths are zero-extended to the wider operand,
 * and slicing/concatenation follow Verilog conventions.
 *
 * Values of width <= 64 are stored inline in a single machine word;
 * wider values spill into a word vector. Perf-critical simulation paths
 * (the bytecode and C++ specializers) operate on raw uint64_t arenas
 * instead and never touch this class, so Bits favours correctness and
 * convenience over raw speed.
 */

#ifndef CMTL_CORE_BITS_H
#define CMTL_CORE_BITS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cmtl {

/** Number of 64-bit words needed to hold @p nbits bits. */
constexpr int
bitsToWords(int nbits)
{
    return (nbits + 63) / 64;
}

/** Mask covering the valid bits of the top word of an n-bit value. */
constexpr uint64_t
topWordMask(int nbits)
{
    int rem = nbits % 64;
    return rem == 0 ? ~uint64_t(0) : ((uint64_t(1) << rem) - 1);
}

/** Minimum number of bits needed to represent @p value. At least 1. */
int clog2(uint64_t value);

/** Bits needed to index @p n distinct values (PyMTL's bw() helper). */
int bitsFor(uint64_t n);

/**
 * An n-bit unsigned value with modulo-2^n arithmetic.
 *
 * Width is a dynamic property fixed at construction. Binary operators
 * zero-extend the narrower operand and produce a result of the wider
 * operand's width (comparisons produce a 1-bit result). All mutating
 * and constructing operations keep the value truncated to the width.
 */
class Bits
{
  public:
    /** Default: 1-bit zero. */
    Bits() : nbits_(1), v0_(0) {}

    /** An @p nbits-wide value initialized to @p value (truncated). */
    explicit Bits(int nbits, uint64_t value = 0);

    /** Construct from little-endian words (word 0 = bits 63..0). */
    static Bits fromWords(int nbits, const std::vector<uint64_t> &words);

    /** Parse "0x..."/"0b..." or decimal into an @p nbits value. */
    static Bits fromString(int nbits, const std::string &text);

    int nbits() const { return static_cast<int>(nbits_); }
    int nwords() const { return bitsToWords(nbits()); }

    /** Word @p i of the value (zero beyond the stored width). */
    uint64_t word(int i) const;

    /** Low 64 bits of the value. */
    uint64_t toUint64() const { return nwords() == 1 ? v0_ : wide_[0]; }

    /** True iff the value fits in 64 bits (upper words all zero). */
    bool fitsUint64() const;

    /** True iff any bit is set. */
    bool any() const;
    /** True iff all bits are set. */
    bool all() const;
    explicit operator bool() const { return any(); }

    /** Read a single bit. @p pos must be within the width. */
    bool bit(int pos) const;
    /** Write a single bit. @p pos must be within the width. */
    void setBit(int pos, bool value);

    /** Bits [lsb, lsb+len): a new value of width @p len. */
    Bits slice(int lsb, int len) const;
    /** Verilog-style inclusive [msb:lsb] slice. */
    Bits operator()(int msb, int lsb) const { return slice(lsb, msb - lsb + 1); }

    /** Overwrite bits [lsb, lsb+src.nbits()) with @p src. */
    void setSlice(int lsb, const Bits &src);

    /** Zero-extend (or truncate) to @p nbits. */
    Bits zext(int nbits) const;
    /** Sign-extend (or truncate) to @p nbits. */
    Bits sext(int nbits) const;

    /** Value reinterpreted as signed (requires width <= 64). */
    int64_t toInt64() const;

    // Arithmetic. Result width = max(lhs, rhs) width; modulo arithmetic.
    friend Bits operator+(const Bits &a, const Bits &b);
    friend Bits operator-(const Bits &a, const Bits &b);
    friend Bits operator*(const Bits &a, const Bits &b);
    friend Bits operator/(const Bits &a, const Bits &b);
    friend Bits operator%(const Bits &a, const Bits &b);

    // Bitwise.
    friend Bits operator&(const Bits &a, const Bits &b);
    friend Bits operator|(const Bits &a, const Bits &b);
    friend Bits operator^(const Bits &a, const Bits &b);
    Bits operator~() const;

    // Shifts. Shift amount is the numeric value of the rhs.
    friend Bits operator<<(const Bits &a, const Bits &b);
    friend Bits operator>>(const Bits &a, const Bits &b);
    Bits shl(int amount) const;
    Bits shr(int amount) const;
    /** Arithmetic (sign-preserving) right shift. */
    Bits sra(int amount) const;

    // Unsigned comparisons.
    friend bool operator==(const Bits &a, const Bits &b);
    friend bool operator!=(const Bits &a, const Bits &b) { return !(a == b); }
    friend bool operator<(const Bits &a, const Bits &b);
    friend bool operator<=(const Bits &a, const Bits &b);
    friend bool operator>(const Bits &a, const Bits &b) { return b < a; }
    friend bool operator>=(const Bits &a, const Bits &b) { return b <= a; }

    // Convenience comparisons against plain integers.
    friend bool operator==(const Bits &a, uint64_t b);
    friend bool operator==(uint64_t a, const Bits &b) { return b == a; }
    friend bool operator!=(const Bits &a, uint64_t b) { return !(a == b); }

    /** Signed less-than (requires width <= 64). */
    static bool slt(const Bits &a, const Bits &b);

    /** Reduction OR/AND/XOR producing a 1-bit result. */
    Bits reduceOr() const;
    Bits reduceAnd() const;
    Bits reduceXor() const;

    /** Hex string, zero padded to the width, e.g. "0x00ff". */
    std::string toHexString() const;
    /** Binary string, e.g. "0b0101". */
    std::string toBinString() const;
    /** Decimal string (width <= 64 only; hex otherwise). */
    std::string toDecString() const;

  private:
    void normalize();
    const uint64_t *words() const { return nwords() == 1 ? &v0_ : wide_.data(); }
    uint64_t *words() { return nwords() == 1 ? &v0_ : wide_.data(); }

    uint32_t nbits_;
    uint64_t v0_;                // value when nwords() == 1
    std::vector<uint64_t> wide_; // value when nwords() > 1 (all words)
};

/** Verilog-style concatenation: @p hi becomes the high-order bits. */
Bits concat(const Bits &hi, const Bits &lo);
Bits concat(std::initializer_list<Bits> parts);

std::ostream &operator<<(std::ostream &os, const Bits &b);

} // namespace cmtl

#endif // CMTL_CORE_BITS_H
