#include "model.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace cmtl {

// ---------------------------------------------------------------- Signal

Signal::Signal(Model *owner, std::string name, int nbits, SignalDir dir)
    : owner_(owner), name_(std::move(name)), nbits_(nbits), dir_(dir)
{
    if (nbits < 1)
        throw std::invalid_argument("signal '" + name_ + "': width < 1");
    if (owner_)
        owner_->registerSignal(this);
}

std::string
Signal::fullName() const
{
    return owner_ ? owner_->fullName() + "." + name_ : name_;
}

Bits
Signal::value() const
{
    if (!access_)
        throw std::logic_error("read of '" + fullName() +
                               "' outside a simulation");
    return access_->read(*this);
}

void
Signal::setValue(const Bits &v)
{
    if (!access_)
        throw std::logic_error("write of '" + fullName() +
                               "' outside a simulation");
    access_->write(*this, v);
}

void
Signal::setValue(uint64_t v)
{
    setValue(Bits(nbits_, v));
}

void
Signal::setNext(const Bits &v)
{
    if (!access_)
        throw std::logic_error("write of '" + fullName() +
                               "' outside a simulation");
    access_->writeNext(*this, v);
}

void
Signal::setNext(uint64_t v)
{
    setNext(Bits(nbits_, v));
}

// -------------------------------------------------------------- MemArray

MemArray::MemArray(Model *owner, std::string name, int nbits, int depth)
    : owner_(owner), name_(std::move(name)), nbits_(nbits), depth_(depth)
{
    if (nbits < 1 || nbits > 64)
        throw std::invalid_argument("array '" + name_ +
                                    "': element width must be 1..64");
    if (depth < 2 || (depth & (depth - 1)) != 0)
        throw std::invalid_argument(
            "array '" + name_ + "': depth must be a power of two >= 2");
    if (owner_)
        owner_->registerArray(this);
}

std::string
MemArray::fullName() const
{
    return owner_ ? owner_->fullName() + "." + name_ : name_;
}

// ----------------------------------------------------------------- Model

Model::Model(Model *parent, std::string name)
    : parent_(parent), name_(std::move(name)), reset(this, "reset", 1)
{
    if (parent_)
        parent_->children_.push_back(this);
}

std::string
Model::fullName() const
{
    return parent_ ? parent_->fullName() + "." + name_ : name_;
}

void
Model::connect(Signal &a, Signal &b)
{
    if (a.nbits() != b.nbits()) {
        throw std::invalid_argument(
            "connect width mismatch: " + a.fullName() + " (" +
            std::to_string(a.nbits()) + "b) vs " + b.fullName() + " (" +
            std::to_string(b.nbits()) + "b)");
    }
    connections_.emplace_back(&a, &b);
}

void
Model::tickFl(const std::string &name, std::function<void()> fn)
{
    lambda_blocks_.push_back(
        LambdaDecl{BlockKind::TickFl, name, std::move(fn), {}, {}});
}

void
Model::tickCl(const std::string &name, std::function<void()> fn)
{
    lambda_blocks_.push_back(
        LambdaDecl{BlockKind::TickCl, name, std::move(fn), {}, {}});
}

BlockBuilder &
Model::tickRtl(const std::string &name)
{
    ir_blocks_.push_back(IrBlock{name, /*sequential=*/true, {}, {}});
    builders_.emplace_back(&ir_blocks_.back());
    return builders_.back();
}

BlockBuilder &
Model::combinational(const std::string &name)
{
    ir_blocks_.push_back(IrBlock{name, /*sequential=*/false, {}, {}});
    builders_.emplace_back(&ir_blocks_.back());
    return builders_.back();
}

void
Model::combLambda(const std::string &name, std::function<void()> fn,
                  std::vector<Signal *> reads, std::vector<Signal *> writes)
{
    lambda_blocks_.push_back(LambdaDecl{BlockKind::CombLambda, name,
                                        std::move(fn), std::move(reads),
                                        std::move(writes)});
}

// ------------------------------------------------------------ Elaborator

namespace {

/** Union-find over dense signal indices. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    int
    find(int x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(int a, int b) { parent_[find(a)] = find(b); }

  private:
    std::vector<int> parent_;
};

int
hierarchyDepth(const Model *m)
{
    int depth = 0;
    while (m->parent()) {
        ++depth;
        m = m->parent();
    }
    return depth;
}

} // namespace

/** Performs elaboration of a model hierarchy (framework internal). */
class Elaborator
{
  public:
    std::shared_ptr<Elaboration>
    run(Model *top)
    {
        auto elab = std::make_shared<Elaboration>();
        elab->top = top;
        collectModels(top, elab->models);

        // Collect signals and assign dense ids.
        std::unordered_map<const Signal *, int> sig_idx;
        for (Model *m : elab->models) {
            for (Signal *sig : m->ownSignals()) {
                sig_idx[sig] = static_cast<int>(elab->signals.size());
                elab->signals.push_back(sig);
            }
        }

        // Resolve connectivity (including implicit reset chaining).
        UnionFind uf(elab->signals.size());
        for (Model *m : elab->models) {
            for (const auto &[a, b] : m->ownConnections())
                uf.unite(sig_idx.at(a), sig_idx.at(b));
            if (m->parent())
                uf.unite(sig_idx.at(&m->reset),
                         sig_idx.at(&m->parent()->reset));
        }

        // Build nets from union-find roots.
        std::unordered_map<int, int> root_to_net;
        for (size_t i = 0; i < elab->signals.size(); ++i) {
            Signal *sig = elab->signals[i];
            int root = uf.find(static_cast<int>(i));
            auto [it, inserted] =
                root_to_net.try_emplace(root,
                                        static_cast<int>(elab->nets.size()));
            if (inserted) {
                Net net;
                net.id = it->second;
                net.nbits = sig->nbits();
                elab->nets.push_back(std::move(net));
            }
            Net &net = elab->nets[it->second];
            if (net.nbits != sig->nbits())
                throw std::logic_error("net width mismatch at " +
                                       sig->fullName());
            net.signals.push_back(sig);
            sig->setNetId(net.id);
        }

        // Collect memory arrays.
        for (Model *m : elab->models) {
            for (MemArray *array : m->ownArrays()) {
                array->setArrayId(static_cast<int>(elab->arrays.size()));
                elab->arrays.push_back(array);
            }
        }

        // Name each net after its shallowest member signal.
        for (Net &net : elab->nets) {
            Signal *best = net.signals.front();
            for (Signal *sig : net.signals) {
                if (hierarchyDepth(sig->owner()) <
                    hierarchyDepth(best->owner()))
                    best = sig;
            }
            net.name = best->fullName();
        }

        collectBlocks(elab.get());
        scheduleBlocks(elab.get());
        return elab;
    }

  private:
    void
    collectModels(Model *m, std::vector<Model *> &out)
    {
        out.push_back(m);
        for (Model *c : m->children())
            collectModels(c, out);
    }

    void
    collectBlocks(Elaboration *elab)
    {
        for (Model *m : elab->models) {
            for (const auto &decl : m->lambda_blocks_) {
                ElabBlock blk;
                blk.kind = decl.kind;
                blk.name = m->fullName() + "." + decl.name;
                blk.model = m;
                blk.fn = decl.fn;
                for (Signal *sig : decl.reads)
                    blk.reads.push_back(sig->netId());
                for (Signal *sig : decl.writes)
                    blk.writes.push_back(sig->netId());
                dedupNets(blk.reads);
                dedupNets(blk.writes);
                elab->blocks.push_back(std::move(blk));
            }
            for (const IrBlock &ir : m->ownIrBlocks()) {
                ElabBlock blk;
                blk.kind =
                    ir.sequential ? BlockKind::TickIr : BlockKind::CombIr;
                blk.name = m->fullName() + "." + ir.name;
                blk.model = m;
                blk.ir = &ir;
                std::vector<Signal *> reads, writes;
                irCollectAccess(ir, reads, writes);
                for (Signal *sig : reads)
                    blk.reads.push_back(sig->netId());
                for (Signal *sig : writes) {
                    blk.writes.push_back(sig->netId());
                    if (ir.sequential)
                        elab->nets[sig->netId()].floppedStatic = true;
                }
                std::vector<MemArray *> areads, awrites;
                irCollectArrays(ir, areads, awrites);
                for (MemArray *array : areads)
                    blk.reads.push_back(
                        elab->arrayToken(array->arrayId()));
                for (MemArray *array : awrites)
                    blk.writes.push_back(
                        elab->arrayToken(array->arrayId()));
                dedupNets(blk.reads);
                dedupNets(blk.writes);
                elab->blocks.push_back(std::move(blk));
            }
        }
    }

    static void
    dedupNets(std::vector<int> &v)
    {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }

    void
    scheduleBlocks(Elaboration *elab)
    {
        const int nblocks = static_cast<int>(elab->blocks.size());
        std::vector<int> comb_blocks;
        for (int i = 0; i < nblocks; ++i) {
            const ElabBlock &blk = elab->blocks[i];
            if (isTick(blk.kind))
                elab->tickOrder.push_back(i);
            else
                comb_blocks.push_back(i);
        }

        // net -> comb blocks reading it (event-driven sensitivity).
        // Array tokens share the id space above nets.size().
        elab->netReaders.assign(elab->nets.size() + elab->arrays.size(),
                                {});
        for (int i : comb_blocks) {
            for (int net : elab->blocks[i].reads)
                elab->netReaders[net].push_back(i);
        }

        // Topological order of comb blocks: edge writer -> reader.
        std::unordered_map<int, std::vector<int>> writers; // net -> blocks
        for (int i : comb_blocks) {
            for (int net : elab->blocks[i].writes)
                writers[net].push_back(i);
        }
        std::unordered_map<int, std::vector<int>> edges;
        std::unordered_map<int, int> indeg;
        for (int i : comb_blocks)
            indeg[i] = 0;
        for (int i : comb_blocks) {
            for (int net : elab->blocks[i].reads) {
                auto it = writers.find(net);
                if (it == writers.end())
                    continue;
                for (int w : it->second) {
                    if (w == i)
                        continue;
                    edges[w].push_back(i);
                    ++indeg[i];
                }
            }
        }
        std::vector<int> ready;
        for (int i : comb_blocks) {
            if (indeg[i] == 0)
                ready.push_back(i);
        }
        while (!ready.empty()) {
            int blk = ready.back();
            ready.pop_back();
            elab->combOrder.push_back(blk);
            for (int next : edges[blk]) {
                if (--indeg[next] == 0)
                    ready.push_back(next);
            }
        }
        if (elab->combOrder.size() != comb_blocks.size())
            elab->hasCombCycle = true;
    }
};

std::shared_ptr<Elaboration>
Model::elaborate()
{
    if (parent_)
        throw std::logic_error("elaborate() must be called on the top model");
    return Elaborator().run(this);
}

} // namespace cmtl
