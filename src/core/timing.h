/**
 * @file
 * Wall-clock stopwatch used by tools and the overhead benchmarks.
 */

#ifndef CMTL_CORE_TIMING_H
#define CMTL_CORE_TIMING_H

#include <chrono>

namespace cmtl {

/** Simple wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}

    /** Seconds since construction or the last restart(). */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    void restart() { start_ = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace cmtl

#endif // CMTL_CORE_TIMING_H
