#include "graph.h"

#include <set>
#include <sstream>
#include <unordered_map>

namespace cmtl {

namespace {

std::string
dotId(const std::string &name)
{
    std::string out = "n_";
    for (char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c))) ? c : '_';
    return out;
}

int
depthOf(const Model *m)
{
    int d = 0;
    while (m->parent()) {
        ++d;
        m = m->parent();
    }
    return d;
}

void
emitModel(const Model *m, int depth, int max_depth, std::ostream &os)
{
    std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
    if (depth >= max_depth || m->children().empty()) {
        os << pad << dotId(m->fullName()) << " [label=\""
           << m->instName() << "\\n" << m->typeName()
           << "\", shape=box];\n";
        return;
    }
    os << pad << "subgraph cluster_" << dotId(m->fullName()) << " {\n"
       << pad << "  label=\"" << m->instName() << "\";\n"
       << pad << "  " << dotId(m->fullName())
       << " [label=\"\", shape=point, style=invis];\n";
    for (const Model *child : m->children())
        emitModel(child, depth + 1, max_depth, os);
    os << pad << "}\n";
}

/**
 * The drawable ancestor of a model: models deeper than the depth
 * limit collapse into their ancestor box at the limit.
 */
const Model *
drawable(const Model *m, int max_depth)
{
    while (depthOf(m) > max_depth)
        m = m->parent();
    return m;
}

} // namespace

std::string
GraphTool::toDot(const Elaboration &elab, int max_depth)
{
    std::ostringstream os;
    os << "digraph \"" << elab.top->fullName() << "\" {\n"
       << "  rankdir=LR;\n  node [fontsize=10];\n";
    emitModel(elab.top, 0, max_depth, os);

    // One edge per net that spans distinct drawable models.
    std::set<std::pair<std::string, std::string>> edges;
    for (const Net &net : elab.nets) {
        const Model *first = nullptr;
        for (const Signal *sig : net.signals) {
            const Model *box = drawable(sig->owner(), max_depth);
            if (!first) {
                first = box;
                continue;
            }
            if (box == first)
                continue;
            auto key = std::make_pair(dotId(first->fullName()),
                                      dotId(box->fullName()));
            if (edges.insert(key).second) {
                os << "  " << key.first << " -> " << key.second
                   << " [dir=none, color=gray50];\n";
            }
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace cmtl
