/**
 * @file
 * Named-bitfield message layouts (PyMTL's BitStruct).
 *
 * A BitStructLayout describes a fixed-width message as an ordered list
 * of named fields. Fields are packed most-significant-first in
 * declaration order, matching PyMTL/Verilog struct conventions, so the
 * first declared field occupies the top bits of the message.
 */

#ifndef CMTL_CORE_BITSTRUCT_H
#define CMTL_CORE_BITSTRUCT_H

#include <string>
#include <vector>

#include "bits.h"

namespace cmtl {

/** One field of a BitStructLayout. */
struct BitField
{
    std::string name;
    int nbits;
    int lsb; //!< filled in by BitStructLayout
};

/**
 * A fixed-width message format with named fields.
 *
 * Layouts are value types: two layouts with the same fields describe
 * the same wire format. Field accessors return slices of a Bits value.
 */
class BitStructLayout
{
  public:
    BitStructLayout() = default;

    /** Build from (name, width) pairs; first field = most significant. */
    BitStructLayout(std::string name,
                    std::initializer_list<std::pair<const char *, int>> fields);

    const std::string &name() const { return name_; }
    int nbits() const { return nbits_; }
    const std::vector<BitField> &fields() const { return fields_; }

    /** True iff a field with the given name exists. */
    bool hasField(const std::string &field) const;
    /** Field descriptor; throws std::out_of_range if missing. */
    const BitField &field(const std::string &field) const;

    /** Extract the named field from a packed message. */
    Bits get(const Bits &msg, const std::string &field) const;
    /** Return @p msg with the named field overwritten by @p value. */
    Bits set(const Bits &msg, const std::string &field,
             const Bits &value) const;
    Bits set(const Bits &msg, const std::string &field,
             uint64_t value) const;

    /** Pack field values given in declaration order. */
    Bits pack(std::initializer_list<uint64_t> values) const;

    /** Render "field:val|field:val" for line tracing. */
    std::string trace(const Bits &msg) const;

  private:
    std::string name_;
    int nbits_ = 0;
    std::vector<BitField> fields_;
};

} // namespace cmtl

#endif // CMTL_CORE_BITSTRUCT_H
