/**
 * @file
 * NetAccessor: the one layout-aware net access helper behind the
 * Simulator snap/poke hooks.
 *
 * Both execution kernels used to duplicate the SimSnap state-capture
 * plumbing — readNetNext / pokeNet / pokeNetNext / dynamicFlopNets —
 * each against its own storage shape (sequential: arena and/or boxed
 * hybrid ownership; ParSim: owner-replica reads, all-replica writes).
 * The kernels now bind a NetAccessor to their storage once and
 * delegate, so SimSnap (snap.h), which drives these hooks through the
 * Simulator interface, sees one code path regardless of kernel,
 * backend or arena layout. All value movement goes through ArenaStore
 * accessors, so packed nets are handled transparently.
 *
 * Threading: poke/readNext are coordinator-side snapshot operations —
 * the accessor is not for worker-thread use (ParSim reads route by
 * token owner, not by the calling worker's replica).
 */

#ifndef CMTL_CORE_ACCESSOR_H
#define CMTL_CORE_ACCESSOR_H

#include <functional>
#include <memory>
#include <vector>

#include "model.h"
#include "store.h"

namespace cmtl {

class NetAccessor
{
  public:
    NetAccessor() = default;

    /**
     * Sequential-kernel binding: @p arena and/or @p boxed (either may
     * be null), with @p in_arena deciding hybrid ownership per token.
     * Rebind after the arena is replaced (PGO layout adoption).
     */
    void bind(ArenaStore *arena, BoxedStore *boxed,
              std::function<bool(int)> in_arena);

    /**
     * ParSim binding: reads come from the token owner's replica,
     * pokes keep every replica coherent. @p owner_of maps tokens to
     * islands (PartitionPlan::ownerOf; negative = coordinator/any).
     */
    void bindReplicas(std::vector<std::unique_ptr<ArenaStore>> *replicas,
                      const std::vector<int> *owner_of);

    /** Hook invoked when pokeNet actually changed a stored value (the
     *  kernel marks dirt / wakes readers there). */
    void onPokeChanged(std::function<void(int)> fn);

    /** Next-phase (flop shadow) value of a net. */
    Bits readNetNext(int net) const;
    /** Restore a net's current value (blocking-write semantics). */
    void pokeNet(int net, const Bits &value);
    /** Restore a net's next-phase value without flop registration. */
    void pokeNetNext(int net, const Bits &value);

    /** The dynamically registered subset of @p flop_nets: nets flopped
     *  at run time that elaboration did not mark static. */
    static std::vector<int> dynamicFlops(const Elaboration &elab,
                                         const std::vector<int> &flop_nets);

  private:
    ArenaStore *arena_ = nullptr;
    BoxedStore *boxed_ = nullptr;
    std::function<bool(int)> in_arena_;
    std::vector<std::unique_ptr<ArenaStore>> *replicas_ = nullptr;
    const std::vector<int> *owner_of_ = nullptr;
    std::function<void(int)> on_changed_;
};

} // namespace cmtl

#endif // CMTL_CORE_ACCESSOR_H
