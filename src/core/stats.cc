#include "stats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "psim.h"
#include "race_audit.h"
#include "snap.h"

namespace cmtl {

std::string
simulatorReport(const Simulator &sim)
{
    std::ostringstream os;
    const SimConfig &cfg = sim.config();
    // The canonical backend string — the same spelling SimConfig
    // round-trips and SimScope snapshots carry, so text and JSON
    // reports agree on what ran.
    os << "simulator: backend " << cfg.toString() << ", threads "
       << cfg.threads << "\n";
    const SpecStats &spec = sim.specStats();
    os << "  blocks: " << spec.numBlocks << " total, "
       << spec.numSpecialized << " specialized in " << spec.numGroups
       << " group(s)\n";
    {
        // The snapshot compatibility key (snap.h): two reports showing
        // the same fingerprint can exchange checkpoints.
        char buf[80];
        std::snprintf(buf, sizeof(buf),
                      "  design fingerprint %016llx\n",
                      static_cast<unsigned long long>(
                          designFingerprint(sim.elaboration())));
        os << buf;
    }
    if (spec.tiered) {
        char buf[160];
        if (sim.tierPending()) {
            os << "  tier: bytecode warm-up (native compile in "
                  "flight)\n";
        } else {
            std::snprintf(buf, sizeof(buf),
                          "  tier: native since cycle %lld (compile "
                          "%.3fs%s)\n",
                          static_cast<long long>(spec.tierSwapCycle),
                          spec.compileSeconds,
                          spec.cacheHit ? ", cache hit" : "");
            os << buf;
        }
    }
    if (cfg.dead_elim) {
        os << "  dead-elim: " << spec.deadBlocksElided
           << " comb block(s), " << spec.deadNetsElided
           << " net(s) elided\n";
    }
    {
        const LayoutStats lay = sim.layoutStats();
        os << "  layout: " << layoutPolicyName(lay.policy)
           << (lay.pgo ? " (pgo-refined)" : "") << ", "
           << lay.words_per_phase << " words/phase, " << lay.packed_nets
           << " net(s) packed saving " << lay.packed_bits_saved
           << " bit(s), flop memcpy ranges " << lay.flop_memcpy_ranges
           << "\n";
    }
    if (const auto *par = dynamic_cast<const ParSimulationTool *>(&sim)) {
        os << partitionReport(sim.elaboration(), par->plan());
        // Static race audit verdict: prove (or refute) the partition
        // invariants that make the BSP schedule race-free.
        os << "  "
           << auditPartition(sim.elaboration(), par->plan()).summary()
           << "\n";
    }
    if (const ScopeProbe *p = sim.scopeProbe()) {
        char buf[160];
        if (!p->island_settle_seconds.empty()) {
            for (size_t i = 0; i < p->island_settle_seconds.size();
                 ++i) {
                std::snprintf(
                    buf, sizeof(buf),
                    "  scope island %zu: compute %.4fs (settle %.4f "
                    "tick %.4f flop %.4f)  barrier %.4fs  boundary "
                    "%llu B\n",
                    i,
                    p->island_settle_seconds[i] +
                        p->island_tick_seconds[i] +
                        p->island_flop_seconds[i],
                    p->island_settle_seconds[i],
                    p->island_tick_seconds[i], p->island_flop_seconds[i],
                    p->island_barrier_seconds[i],
                    static_cast<unsigned long long>(
                        p->island_boundary_bytes[i]));
                os << buf;
            }
        } else {
            std::snprintf(buf, sizeof(buf),
                          "  scope phases: settle %.4fs  tick %.4fs  "
                          "flop %.4fs\n",
                          p->settle_seconds, p->tick_seconds,
                          p->flop_seconds);
            os << buf;
        }
    }
    return os.str();
}

namespace {

uint64_t
popcountDiff(const Bits &a, const Bits &b)
{
    uint64_t toggles = 0;
    int nwords = std::max(a.nwords(), b.nwords());
    for (int i = 0; i < nwords; ++i)
        toggles += static_cast<uint64_t>(
            __builtin_popcountll(a.word(i) ^ b.word(i)));
    return toggles;
}

} // namespace

ActivityTool::ActivityTool(Simulator &sim) : sim_(sim)
{
    const size_t nnets = sim_.elaboration().nets.size();
    last_.assign(nnets, Bits());
    toggles_.assign(nnets, 0);
    sim_.onCycleEnd([this](uint64_t cycle) { sample(cycle); });
}

void
ActivityTool::reset()
{
    std::fill(toggles_.begin(), toggles_.end(), 0);
    cycles_ = 0;
}

void
ActivityTool::sample(uint64_t)
{
    const auto &nets = sim_.elaboration().nets;
    for (const Net &net : nets) {
        Bits value = sim_.readNet(net.id);
        if (!first_)
            toggles_[net.id] += popcountDiff(value, last_[net.id]);
        last_[net.id] = value;
    }
    first_ = false;
    ++cycles_;
}

uint64_t
ActivityTool::modelToggles(const Model &model) const
{
    // Sum over nets whose name-bearing signal lives in the subtree.
    uint64_t total = 0;
    for (const Net &net : sim_.elaboration().nets) {
        for (const Signal *sig : net.signals) {
            const Model *m = sig->owner();
            bool inside = false;
            while (m) {
                if (m == &model) {
                    inside = true;
                    break;
                }
                m = m->parent();
            }
            if (inside) {
                total += toggles_[net.id];
                break; // count each net once
            }
        }
    }
    return total;
}

double
ActivityTool::toggleRate() const
{
    if (cycles_ == 0)
        return 0.0;
    uint64_t total = 0;
    for (uint64_t t : toggles_)
        total += t;
    return static_cast<double>(total) / static_cast<double>(cycles_);
}

std::string
ActivityTool::report(size_t n) const
{
    const auto &nets = sim_.elaboration().nets;
    std::vector<int> order(nets.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        return toggles_[a] > toggles_[b];
    });
    std::ostringstream os;
    for (size_t i = 0; i < std::min(n, order.size()); ++i) {
        os << nets[order[i]].name << ": " << toggles_[order[i]]
           << " toggles\n";
    }
    return os.str();
}

TextWaveTool::TextWaveTool(Simulator &sim,
                           std::vector<const Signal *> watch,
                           size_t max_cycles)
    : sim_(sim), watch_(std::move(watch)), samples_(watch_.size()),
      max_cycles_(max_cycles)
{
    sim_.onCycleEnd([this](uint64_t) {
        for (size_t i = 0; i < watch_.size(); ++i) {
            if (samples_[i].size() < max_cycles_)
                samples_[i].push_back(
                    sim_.readNet(watch_[i]->netId()));
        }
    });
}

std::string
TextWaveTool::render() const
{
    std::ostringstream os;
    size_t name_width = 0;
    for (const Signal *sig : watch_)
        name_width = std::max(name_width, sig->fullName().size());

    for (size_t i = 0; i < watch_.size(); ++i) {
        const Signal *sig = watch_[i];
        os << sig->fullName()
           << std::string(name_width - sig->fullName().size() + 1, ' ');
        if (sig->nbits() == 1) {
            // Single-bit: draw levels.
            for (const Bits &v : samples_[i])
                os << (v.any() ? '#' : '_');
        } else {
            // Multi-bit: hex values, change-separated.
            for (size_t c = 0; c < samples_[i].size(); ++c) {
                if (c > 0 && samples_[i][c] == samples_[i][c - 1]) {
                    os << '.';
                } else {
                    std::string hex =
                        samples_[i][c].toHexString().substr(2);
                    os << ' ' << hex;
                }
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace cmtl
