/**
 * @file
 * Signals: ports and wires of a CMTL model.
 *
 * A Signal is declared as a value member of a Model (or inside a
 * std::deque for port lists) and registers itself with its owning model
 * on construction. After elaboration every signal belongs to a *net*
 * (an equivalence class of structurally connected signals) identified
 * by a dense net id; after a simulator is constructed, reads and writes
 * on the signal are routed through the simulator's SignalAccess
 * backend, which differs per execution mode (boxed dictionary storage
 * for the CPython-analog interpreter, dense arena slots otherwise).
 */

#ifndef CMTL_CORE_SIGNAL_H
#define CMTL_CORE_SIGNAL_H

#include <string>

#include "bits.h"

namespace cmtl {

class Model;
class Signal;

/** Direction of a signal relative to its owning model. */
enum class SignalDir { Input, Output, Wire };

/**
 * Simulator-provided backend for signal reads and writes.
 *
 * Test benches and FL/CL lambda blocks access signals through this
 * interface; the concrete implementation determines the cost model
 * (hash-lookup boxed values vs. direct arena slots).
 */
class SignalAccess
{
  public:
    virtual ~SignalAccess() = default;

    /** Current (combinationally settled) value. */
    virtual Bits read(const Signal &sig) const = 0;
    /** Blocking write: visible immediately (combinational update). */
    virtual void write(Signal &sig, const Bits &value) = 0;
    /** Non-blocking write: visible after the next clock edge. */
    virtual void writeNext(Signal &sig, const Bits &value) = 0;
};

/**
 * A named, fixed-width signal owned by a model.
 *
 * Signals are neither copyable nor movable: their address identifies
 * them in connection records and IR references.
 */
class Signal
{
  public:
    Signal(Model *owner, std::string name, int nbits, SignalDir dir);
    Signal(const Signal &) = delete;
    Signal &operator=(const Signal &) = delete;

    Model *owner() const { return owner_; }
    const std::string &name() const { return name_; }
    int nbits() const { return nbits_; }
    SignalDir dir() const { return dir_; }

    /** Hierarchical name, e.g. "top.router0.in_0.msg". */
    std::string fullName() const;

    /** Dense net id; valid after elaboration (-1 before). */
    int netId() const { return net_id_; }

    // --- Run-time access (valid once a simulator is attached) ------

    /** Current value. */
    Bits value() const;
    /** Current value as uint64 (low word). */
    uint64_t u64() const { return value().toUint64(); }
    /** Blocking write (".value =" in PyMTL). */
    void setValue(const Bits &v);
    void setValue(uint64_t v);
    /** Non-blocking write (".next =" in PyMTL). */
    void setNext(const Bits &v);
    void setNext(uint64_t v);

    // --- Elaboration/simulator hooks (framework internal) ----------
    void setNetId(int id) { net_id_ = id; }
    void setAccess(SignalAccess *access) { access_ = access; }
    SignalAccess *access() const { return access_; }

  private:
    Model *owner_;
    std::string name_;
    int nbits_;
    SignalDir dir_;
    int net_id_ = -1;
    SignalAccess *access_ = nullptr;
};

/** An input port. */
class InPort : public Signal
{
  public:
    InPort(Model *owner, std::string name, int nbits)
        : Signal(owner, std::move(name), nbits, SignalDir::Input)
    {}
};

/** An output port. */
class OutPort : public Signal
{
  public:
    OutPort(Model *owner, std::string name, int nbits)
        : Signal(owner, std::move(name), nbits, SignalDir::Output)
    {}
};

/** An internal wire. */
class Wire : public Signal
{
  public:
    Wire(Model *owner, std::string name, int nbits)
        : Signal(owner, std::move(name), nbits, SignalDir::Wire)
    {}
};

} // namespace cmtl

#endif // CMTL_CORE_SIGNAL_H
