/**
 * @file
 * SimSnap: simulation checkpoint/restore, deterministic stimulus
 * record-replay and cross-backend divergence bisection.
 *
 * Following the model/tool split, a snapshot is just another tool-side
 * view of an elaborated design: SimSnap captures the complete
 * architectural state of a running simulator — every net's current and
 * next-phase (flop shadow) value, every MemArray element, the
 * dynamically registered flop set, the cycle counter, and the host
 * state of lambda blocks (RNGs, queues, pending val/rdy messages) via
 * Model::snapSave — into a versioned, checksummed binary image that
 * can be restored into a *fresh* elaboration of the same design on any
 * backend and thread count. Snapshot under "interp", resume under
 * "cpp-design" or ParSim --threads 4: the restored run is bit-identical
 * to the uninterrupted one, including its VCD continuation.
 *
 * File format (version 2, all integers little-endian):
 *
 *   header   "CMTLSNAP" | u32 version | u32 nsections
 *            | u64 design_hash | u64 cycle
 *   table    nsections x { u32 tag | u32 crc32 | u64 offset | u64 len }
 *   payloads section bytes at the recorded offsets
 *   trailer  u32 crc32 over every preceding byte
 *
 * Sections: NETS (current net values), NXTS (next-phase values), ARRY
 * (memory arrays), FLOP (dynamically registered flop net ids), MODL
 * (per-model opaque host-state blobs keyed by hierarchical name), and
 * since version 2 an optional informational LAYT section naming the
 * capturing simulator's arena layout policy. NETS/NXTS are logical
 * net-id ordered — the physical arena layout never leaks into the
 * state sections — so digests are layout-independent and any image
 * restores into any layout, backend and thread count; version 1
 * images (no LAYT) still load. Every load failure — bad magic,
 * unknown version, corrupted checksum, design mismatch — throws
 * SnapError with a diagnostic; a snapshot is never silently
 * misapplied.
 */

#ifndef CMTL_CORE_SNAP_H
#define CMTL_CORE_SNAP_H

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bits.h"
#include "sim.h"

namespace cmtl {

/** Thrown on any malformed, corrupted or mismatched snapshot/tape. */
class SnapError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Snapshot format version. Bump whenever the byte layout of the
 * encoded image changes (the golden-snapshot test in
 * tests/core/test_snap.cc fails loudly otherwise). Readers accept
 * every version back to kSnapMinFormatVersion.
 *
 * History: v1 five required sections; v2 adds the optional LAYT
 * layout-policy section (Arena v2).
 */
constexpr uint32_t kSnapFormatVersion = 2;
constexpr uint32_t kSnapMinFormatVersion = 1;

/** CRC-32 (IEEE 802.3 polynomial, as in zip/zlib). */
uint32_t snapCrc32(const void *data, size_t len, uint32_t seed = 0);

/** Little-endian binary writer for snapshot payloads. */
class SnapWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    /** u32 length followed by the raw bytes. */
    void str(const std::string &s);
    /** u32 width followed by the little-endian value words. */
    void bits(const Bits &b);
    void raw(const void *p, size_t n);

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/** Bounds-checked reader; throws SnapError instead of running off. */
class SnapReader
{
  public:
    explicit SnapReader(const std::string &buf)
        : p_(reinterpret_cast<const uint8_t *>(buf.data())),
          end_(p_ + buf.size())
    {
    }
    SnapReader(const uint8_t *data, size_t len)
        : p_(data), end_(data + len)
    {
    }

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    std::string str();
    Bits bits();
    void raw(void *p, size_t n);

    size_t remaining() const { return static_cast<size_t>(end_ - p_); }
    bool atEnd() const { return p_ == end_; }

  private:
    void need(size_t n) const;
    const uint8_t *p_;
    const uint8_t *end_;
};

/**
 * A decoded snapshot: the complete architectural state of a design at
 * a cycle boundary, independent of any backend's storage layout.
 */
struct SimSnapshot
{
    uint64_t design_hash = 0; //!< designFingerprint() of the source
    uint64_t cycle = 0;       //!< Simulator::numCycles() at capture
    /** Per net (dense net id order): current-value words. */
    std::vector<std::vector<uint64_t>> nets;
    /** Per net: next-phase (non-blocking shadow) words. */
    std::vector<std::vector<uint64_t>> nets_next;
    /** Per array (dense array id order): element words, depth-major. */
    std::vector<std::vector<uint64_t>> arrays;
    /** Element word count per array (layout round-trip check). */
    std::vector<uint32_t> array_elem_words;
    /** Nets registered as flopped at run time by lambda writeNext. */
    std::vector<int> dynamic_flops;
    /** (hierarchical model name, opaque Model::snapSave blob). */
    std::vector<std::pair<std::string, std::string>> model_state;
    /**
     * Arena layout policy of the capturing simulator ("elab" /
     * "profile"; empty on version-1 images). Purely informational —
     * excluded from digest(), never constrains restoration (state is
     * logical-net ordered, so any layout restores any image).
     */
    std::string layout_policy;

    /** Serialize to the versioned, checksummed byte image. */
    std::string encode() const;
    /** Parse and verify an image; throws SnapError on any defect. */
    static SimSnapshot decode(const std::string &bytes);
    /**
     * Order-sensitive FNV-1a digest of the architectural state (nets,
     * next-phase values, arrays, model blobs — not the cycle counter),
     * the comparison key of the DivergenceBisector.
     */
    uint64_t digest() const;
};

/**
 * Structural fingerprint of an elaborated design: hashes every net's
 * name/width/flop class and every array's name/width/depth, so a
 * snapshot can refuse restoration into a different design.
 */
uint64_t designFingerprint(const Elaboration &elab);

/** Capture the complete state of @p sim (call between cycles). */
SimSnapshot snapSave(const Simulator &sim);

/**
 * Restore @p snap into @p sim, which must be a freshly constructed (or
 * at least quiescent) simulator of the same design on any backend or
 * thread count. Verifies the design fingerprint, restores every net's
 * current and next-phase value, every array element, the dynamic flop
 * registrations, the per-model host state and the cycle counter.
 * Attach VcdWriters *after* restoring so the initial dump sees the
 * restored values. Throws SnapError on any mismatch.
 */
void snapRestore(Simulator &sim, const SimSnapshot &snap);

/** encode() + write-to-temp + atomic rename onto @p path. */
void snapSaveFile(const Simulator &sim, const std::string &path);

/** Read and decode @p path; throws SnapError on any defect. */
SimSnapshot snapLoadFile(const std::string &path);

/** snapSave(sim).digest(): one number summarizing the whole state. */
uint64_t stateDigest(const Simulator &sim);

/**
 * Models that own lambda blocks (TickFl/TickCl/CombLambda) but
 * serialize no host state — candidates for silent state loss across a
 * checkpoint. Conservative: a stateless lambda model is listed too.
 */
std::vector<std::string> opaqueStateModels(const Elaboration &elab);

/**
 * Periodic auto-checkpointing with crash-safe writes and rotation.
 *
 * attach() registers an onCycleEnd hook that rewrites @p path every
 * @p every_n_cycles cycles: the image is written to a temporary file
 * and renamed into place, so a crash mid-write never corrupts the
 * last good checkpoint. The most recent @p keep_last cycle-stamped
 * copies ("path.<cycle>") are kept alongside the stable latest.
 * The manager must outlive the simulator's cycling.
 *
 * A non-empty @p tag scopes every filename the manager touches to
 * "path.tag" (latest) and "path.tag.<cycle>" (rotation), so multiple
 * writers — e.g. two SimServer jobs checkpointing the same design to
 * the same base path — never clobber each other's latest image or
 * rotation set. Tags are the job-id convention of the server
 * scheduler ("job<N>") but any filename-safe string works.
 */
class CheckpointManager
{
  public:
    explicit CheckpointManager(std::string path, uint64_t every_n_cycles,
                               int keep_last = 3, std::string tag = "");

    /** Register the periodic hook on @p sim. */
    void attach(Simulator &sim);
    /** Write a checkpoint right now (atomic rename + rotation). */
    void save(const Simulator &sim, uint64_t cycle);

    /** The effective (tag-scoped) path of the stable latest image. */
    const std::string &path() const { return path_; }
    const std::string &tag() const { return tag_; }
    uint64_t everyCycles() const { return every_; }
    const std::vector<std::string> &rotated() const { return rotated_; }
    uint64_t lastSavedCycle() const { return last_cycle_; }
    double lastSaveMs() const { return last_ms_; }

  private:
    std::string path_;
    std::string tag_;
    uint64_t every_;
    int keep_last_;
    std::vector<std::string> rotated_;
    uint64_t last_cycle_ = 0;
    double last_ms_ = 0.0;
};

/**
 * Stimulus record-replay: logs the values of chosen nets (typically
 * the message/valid signals at val/rdy sources driven by host code)
 * after every cycle, so a restored run can replay the exact injected
 * stimulus without re-running the original driver.
 *
 * Record: declare channels, attachRecorder(sim), run the driver as
 * usual. Replay: before each cycle call applyTo(sim) — it writes the
 * recorded entry for the cycle the simulator is about to execute
 * (entries before a restored snapshot's cycle are skipped naturally)
 * and returns false once the tape is exhausted.
 */
class StimTape
{
  public:
    /** Track @p sig (elaborated) as a stimulus channel. */
    void channel(const Signal &sig);

    /**
     * Track a channel by hierarchical name and width, resolved lazily
     * against the first design the tape is applied to. This is how
     * synthetic tapes (the SimFuzz stimulus generator) declare their
     * channels without an elaborated signal in hand.
     */
    void channel(const std::string &name, int nbits);

    /**
     * Append one entry — one value per channel, in channel order —
     * to a programmatically built tape. Throws SnapError when the
     * value count or any width disagrees with the channel table.
     * Mutually composable with decode()/encode() but not with
     * attachRecorder (a tape has exactly one producer).
     */
    void append(const std::vector<Bits> &values);

    /** Record mode: append tracked values after every cycle. */
    void attachRecorder(Simulator &sim);

    /** Replay the entry for sim.numCycles(); false past the end. */
    bool applyTo(Simulator &sim);

    uint64_t startCycle() const { return start_; }
    uint64_t endCycle() const { return start_ + nentries_; }
    size_t numChannels() const { return chans_.size(); }

    std::string encode() const;
    static StimTape decode(const std::string &bytes);
    void saveFile(const std::string &path) const;
    static StimTape loadFile(const std::string &path);

  private:
    struct Chan
    {
        std::string name; //!< hierarchical signal name
        int nbits = 0;
        int net = -1; //!< resolved lazily against an Elaboration
    };

    void bind(const Elaboration &elab);
    size_t entryWords() const;

    std::vector<Chan> chans_;
    uint64_t start_ = 0;
    uint64_t nentries_ = 0;
    /** Entry-major: nentries_ x entryWords() channel value words. */
    std::vector<uint64_t> words_;
    bool bound_ = false;
};

/** Where and how two executions first disagree. */
struct DivergenceReport
{
    bool diverged = false;
    /** First cycle whose post-cycle states differ. */
    uint64_t first_divergent_cycle = 0;
    /** Hierarchical names of nets whose cur/next values differ. */
    std::vector<std::string> divergent_nets;
    /** Hierarchical names of arrays with differing elements. */
    std::vector<std::string> divergent_arrays;
    /** Models whose serialized host state differs. */
    std::vector<std::string> divergent_models;
    /** Total cycles executed across the search (cost accounting). */
    uint64_t cycles_executed = 0;

    std::string summary() const;
};

/**
 * Pinpoints the first cycle at which two executions of the same design
 * diverge — the equivalence-debugging tool for backend bring-up.
 *
 * Both sides are given as factories producing a fresh simulator of the
 * same design (different backends, thread counts, or an intentionally
 * perturbed variant). run() restores both from a shared snapshot,
 * advances them in exponentially growing strides comparing state
 * digests at each checkpoint, then binary-searches the bracketed
 * window — re-restoring fresh pairs from the last agreeing snapshot —
 * down to the exact first divergent cycle, and reports the
 * hierarchical signal paths, arrays and models that differ there.
 */
class DivergenceBisector
{
  public:
    using Factory = std::function<std::unique_ptr<Simulator>()>;

    DivergenceBisector(Factory make_a, Factory make_b)
        : make_a_(std::move(make_a)), make_b_(std::move(make_b))
    {
    }

    /**
     * Per-cycle stimulus applied to BOTH sides before every cycle the
     * search executes (scan, binary search and the final detail pass),
     * e.g. `[&tape](Simulator &s) { tape.applyTo(s); }`. The callback
     * must be a pure function of the simulator's cycle number —
     * StimTape::applyTo indexes by numCycles(), so replayed tapes
     * qualify — or restored probes would see different inputs than
     * the straight-line run and the bisection would chase ghosts.
     */
    void
    setStimulus(std::function<void(Simulator &)> stim)
    {
        stim_ = std::move(stim);
    }

    /** Search [start.cycle, start.cycle + horizon] for divergence. */
    DivergenceReport run(const SimSnapshot &start, uint64_t horizon);

  private:
    void advance(Simulator &sim, uint64_t n);

    Factory make_a_;
    Factory make_b_;
    std::function<void(Simulator &)> stim_;
};

} // namespace cmtl

#endif // CMTL_CORE_SNAP_H
