/**
 * @file
 * ParSim: the bulk-synchronous parallel simulation kernel.
 *
 * ParSimulationTool runs a statically partitioned design (partition.h)
 * on a persistent pool of worker threads, one per island, coordinated
 * by the calling thread. Each island owns a full-size *replica* of the
 * dense word arena: every replica is built over ONE shared ArenaLayout
 * (layout.h) — identical offsets by construction — so bytecode and
 * compiled-C++ programs run unchanged on any replica's data pointer.
 * Under the profile layout the partition plan itself shapes placement:
 * nets group by owner island and packed word-mates never cross an
 * ownership boundary, so whole-word boundary pushes stay sound.
 * Islands write only tokens they own and read everything from their
 * local replica; owners push boundary values into reader replicas at
 * phase ends, so all sharing is one-way word copies separated by
 * barriers.
 *
 * Cycle protocol (each parallel phase is fenced by a start and a done
 * barrier over all participants):
 *
 *   settle  - skipped when no external write is pending, like the
 *             sequential kernel. Runs the islands' levelized comb
 *             schedules as nlevels supersteps: superstep L executes
 *             every comb block whose longest cross-island dependency
 *             chain has length L, pushes the values written to
 *             cross-island readers, and joins a workers-only barrier.
 *   tick    - islands run their sequential IR blocks against their
 *             replicas; concurrently the coordinating thread runs every
 *             tick lambda (TickFl/TickCl) in declaration order, since
 *             lambda effects are undeclared. Ticks read current values
 *             and write next values, so the phase needs no internal
 *             synchronization.
 *   flop    - each island copies next->current for its owned flopped
 *             nets, then pushes post-flop values (and values written
 *             blockingly at tick time) to reader replicas; the
 *             coordinating thread flops nets registered dynamically by
 *             lambda writeNext in every replica. All targets are
 *             disjoint words.
 *   settle  - as above, always runs.
 *
 * Determinism: islands execute their blocks in the global static
 * schedule restricted to the island, values cross islands only at
 * barriers, and tick lambdas always run on one thread in declaration
 * order — so results are bit-identical to SimulationTool at any thread
 * count. The one pattern outside the guarantee is a design whose tick
 * blocks communicate through *blocking* writes with a tick lambda
 * (already tick-order-fragile sequentially); blocking communication
 * between IR tick blocks is detected and the blocks are co-located.
 *
 * Requires ExecMode::OptInterp and a statically schedulable design
 * (no combinational cycles); composes with SpecMode::None, ::Bytecode
 * and ::Cpp.
 */

#ifndef CMTL_CORE_PSIM_H
#define CMTL_CORE_PSIM_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "partition.h"
#include "sim.h"

namespace cmtl {

/**
 * Sense-reversing spin barrier (with yield fallback). Worker counts
 * are small (one per island), so spinning through the short exchange
 * windows is cheaper than parking on a futex every superstep.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int nthreads) : nthreads_(nthreads) {}

    void
    arriveAndWait()
    {
        uint64_t phase = phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nthreads_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            int spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase) {
                if (++spins > 4096)
                    std::this_thread::yield();
            }
        }
    }

  private:
    std::atomic<int> arrived_{0};
    std::atomic<uint64_t> phase_{0};
    const int nthreads_;
};

/**
 * The parallel bulk-synchronous simulator. Drop-in replacement for
 * SimulationTool behind the Simulator interface; construct directly or
 * through makeSimulator() with cfg.threads > 1.
 */
class ParSimulationTool : public Simulator
{
  public:
    explicit ParSimulationTool(std::shared_ptr<Elaboration> elab,
                               SimConfig cfg = SimConfig{});
    ~ParSimulationTool() override;

    using Simulator::cycle;
    void cycle() override;
    void eval() override;

    Bits readNet(int net) const override;
    Bits readArray(const MemArray &array, uint64_t index) const override;
    void writeArray(MemArray &array, uint64_t index,
                    const Bits &value) override;

    Bits readNetNext(int net) const override;
    void pokeNet(int net, const Bits &value) override;
    void pokeNetNext(int net, const Bits &value) override;
    std::vector<int> dynamicFlopNets() const override;
    void registerDynamicFlops(const std::vector<int> &nets) override;

    bool tierPending() const override;
    LayoutStats layoutStats() const override;

    // --- SignalAccess ----------------------------------------------
    Bits read(const Signal &sig) const override;
    void write(Signal &sig, const Bits &value) override;
    void writeNext(Signal &sig, const Bits &value) override;

    /** The partition this simulator runs (for quality reporting). */
    const PartitionPlan &plan() const { return plan_; }

  private:
    enum class Cmd { Settle, Tick, Flop, Exit };

    /** One scheduled unit of an island. */
    struct PStep
    {
        enum class Kind { Slot, Bytecode, Native };
        Kind kind = Kind::Slot;
        int block = -1; //!< ElabBlock index (Slot/Bytecode)
        int group = -1; //!< compiled-C++ group index (Native)
        int level = 0;  //!< settle superstep (comb steps only)
    };

    /** Boundary word copy: cur words [off, off+n) into replica dst. */
    struct CopyOp
    {
        int dst;
        int off;
        int n;
    };

    bool designMode() const { return cfg_.backend == Backend::CppDesign; }

    void buildIslandSchedules();
    void buildGating();
    /** Mark every island with a static reader of @p token (plus its
     *  owner, whose driver must overwrite externally poked values)
     *  as having seen an input change. Coordinator-side marks only;
     *  workers mark through pushCur / runIslandFlop. */
    void markReaderIslandsDirty(int token);
    void specialize();
    void specializeDesign();
    void adoptNativeTier();
    void maybeSwapTier();
    void startWorkers();
    void shutdownWorkers();
    void workerLoop(int island);
    void runPhase(Cmd cmd);
    void settlePhase();
    void runPStep(int island, const PStep &step);
    void runPStepImpl(int island, const PStep &step);
    void runIslandSettle(int island);
    void runIslandTick(int island);
    void runIslandFlop(int island);
    void pushCur(int island, const CopyOp &op);

    ArenaStore &replicaFor(int net) const;
    void markMainFlop(int net);

    PartitionPlan plan_;
    std::vector<std::unique_ptr<ArenaStore>> replicas_;
    std::vector<std::unique_ptr<SlotEvaluator>> evals_;
    /** Snap/poke hooks delegate here (accessor.h). */
    NetAccessor accessor_;
    /** Per-island flop phase coalesced into whole-word copy ranges
     *  (shared layout, so ranges are valid in every replica). */
    std::vector<FlopCopyPlan> island_flop_plans_;

    // Per-island schedules (comb steps sorted by superstep level).
    std::vector<std::vector<PStep>> comb_steps_;
    std::vector<std::vector<PStep>> tick_steps_;
    /** comb_pushes_[island][level]: copies at the end of a superstep. */
    std::vector<std::vector<std::vector<CopyOp>>> comb_pushes_;
    /** flop_pushes_[island]: copies after the island's flops. */
    std::vector<std::vector<CopyOp>> flop_pushes_;

    // Specialization (shared read-only across islands; programs use
    // absolute arena offsets, identical in every replica).
    std::vector<BcProgram> bc_programs_;
    std::vector<std::vector<uint64_t>> bc_scratch_; //!< per island
    CppJitLibrary cpp_lib_;
    std::vector<char> specialized_;
    std::vector<char> dead_block_; //!< comb blocks elided by dead_elim

    // --- cpp-design tiering ----------------------------------------
    // Tier 0 runs the per-island bytecode schedules; the fused native
    // schedules below replace comb_steps_/tick_steps_ wholesale when
    // the background compile is adopted. The swap happens on the
    // coordinator while every worker is parked before a start barrier,
    // which also publishes the new schedules to them. Codegen is one
    // translation unit PER ISLAND — island_libs_[i] holds island i's
    // fused modules and design-native PStep::group indices are local
    // to that island's library — so each island's module caches
    // independently and only an island's own code is resident on its
    // worker.
    std::vector<std::vector<PStep>> nat_comb_steps_;
    std::vector<std::vector<PStep>> nat_tick_steps_;
    std::vector<int> island_flop_unit_; //!< island-local flop module
    std::vector<std::string> island_sources_;
    std::vector<int> island_nunits_;
    std::vector<CppJitLibrary> island_libs_;
    int design_nunits_ = 0; //!< total units across island TUs
    bool design_native_ = false;
    bool tier_failed_ = false;
    std::thread jit_thread_;
    std::atomic<bool> jit_ready_{false};
    std::vector<CppJitLibrary> pending_libs_;
    std::exception_ptr jit_error_;

    // Nets flopped by the coordinating thread (registered dynamically
    // by lambda writeNext; statically flopped nets belong to islands).
    std::vector<int> main_flops_;
    std::vector<char> is_main_flop_;
    std::vector<char> static_island_flop_;

    // --- activity gating (SimConfig::gating) -----------------------
    // An island whose inputs did not change since its last settle
    // holds exactly the values a re-settle would recompute, so its
    // worker skips the superstep compute and pushes, joining only the
    // barriers. Dirt sources: its own flops changing value, boundary
    // pushes that actually changed its replica (pushCur compares
    // before copying), its own tick blocks' blocking writes
    // (conservative, per cycle), and coordinator-side writes. Before
    // each settle the coordinator closes the dirty set transitively
    // over the static island push graph — an active island's comb
    // outputs may change mid-settle, so every island it pushes to
    // must run as well — then clears all flags once the phase ends.
    bool gating_ = false;
    /** Flagged islands saw an input change since their last settle.
     *  Atomic because several islands may push into one destination
     *  concurrently during the flop phase; all accesses are relaxed —
     *  the phase barriers order them. */
    std::vector<std::atomic<uint8_t>> island_dirty_;
    /** Published by the coordinator before each settle start barrier:
     *  islands that must run the phase (dirty set, closed over the
     *  push graph). */
    std::vector<char> settle_active_;
    /** Static island adjacency: comb_push_islands_[i] lists islands
     *  island i's settle pushes target (any level). */
    std::vector<std::vector<int>> comb_push_islands_;
    /** Island has a tick block writing an array or a never-flopped
     *  net: its own comb inputs may change blockingly every cycle. */
    std::vector<char> tick_dirty_island_;

    // Thread pool and phase coordination.
    std::vector<std::thread> workers_;
    SpinBarrier bar_all_;     //!< workers + coordinator
    SpinBarrier bar_workers_; //!< workers only (settle supersteps)
    Cmd cmd_ = Cmd::Settle;   //!< written before the start barrier
    std::atomic<bool> failed_{false};
    std::exception_ptr worker_error_;
    std::mutex error_mu_;

    bool dirty_ = true;
};

/**
 * Construct the simulator cfg asks for: the sequential SimulationTool
 * when cfg.threads <= 1, the parallel ParSimulationTool otherwise.
 */
std::unique_ptr<Simulator> makeSimulator(std::shared_ptr<Elaboration> elab,
                                         SimConfig cfg = SimConfig{});

} // namespace cmtl

#endif // CMTL_CORE_PSIM_H
