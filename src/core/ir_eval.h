/**
 * @file
 * Tree-walking IR evaluators.
 *
 * BoxedEvaluator executes IR blocks against a BoxedStore, allocating a
 * fresh reference-counted Bits box for every intermediate value — the
 * execution profile of PyMTL model code under CPython.
 *
 * SlotEvaluator executes the same IR against an ArenaStore with
 * by-value Bits intermediates and direct slot access — the profile of
 * the same code under a warmed-up tracing JIT (PyPy): still
 * interpreting the model description, but with lookup and boxing costs
 * removed.
 */

#ifndef CMTL_CORE_IR_EVAL_H
#define CMTL_CORE_IR_EVAL_H

#include <memory>
#include <vector>

#include "ir.h"
#include "model.h"
#include "store.h"

namespace cmtl {

/**
 * Reference arithmetic semantics of one binary IR operator, truncated
 * to @p nbits. Shared by both tree-walk evaluators and by the static
 * analyzer's constant folder, so folded values match simulation
 * bit-for-bit.
 */
Bits irEvalBinOp(IrOp op, const Bits &a, const Bits &b, int nbits);

/** Reference semantics of one unary IR operator. */
Bits irEvalUnOp(IrUnOp op, const Bits &a);

/** CPython-analog evaluator over boxed, dictionary-backed storage. */
class BoxedEvaluator
{
  public:
    explicit BoxedEvaluator(BoxedStore &store) : store_(store) {}

    /**
     * Execute one IR block. For combinational blocks, nets whose
     * current value changed are appended to @p changed (when non-null)
     * to drive the event-driven scheduler.
     */
    void run(const ElabBlock &blk, std::vector<int> *changed = nullptr);

  private:
    using Box = std::shared_ptr<const Bits>;
    Box eval(const IrExprNode *e);
    void exec(const std::vector<IrStmt> &stmts, bool sequential,
              std::vector<int> *changed);

    BoxedStore &store_;
    std::vector<Box> temps_;
};

/** PyPy-analog evaluator over dense arena storage. */
class SlotEvaluator
{
  public:
    explicit SlotEvaluator(ArenaStore &store) : store_(store) {}

    void run(const ElabBlock &blk, std::vector<int> *changed = nullptr);

  private:
    Bits eval(const IrExprNode *e);
    void exec(const std::vector<IrStmt> &stmts, bool sequential,
              std::vector<int> *changed);

    ArenaStore &store_;
    std::vector<Bits> temps_;
};

} // namespace cmtl

#endif // CMTL_CORE_IR_EVAL_H
