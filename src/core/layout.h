/**
 * @file
 * ArenaLayout: explicit logical-net -> physical-slot mapping.
 *
 * Arena v2 extracts the slot assignment that used to be implicit in
 * ArenaStore's constructor (elaboration order, one aligned word run
 * per net) into a first-class, optimizable artifact. A layout maps
 * every net id to a physical slot {word_off, shift, nwords} within a
 * phase of the word arena, and every subsystem that touches arena
 * words — the kernels, the bytecode and C++ specializers, SimSnap,
 * VCD — goes through this API instead of doing raw offset arithmetic.
 *
 * Two policies:
 *
 *  - elab: the historical layout. Nets get whole aligned words in
 *    elaboration order. Always available, byte-compatible with every
 *    arena ever produced before layouts existed.
 *
 *  - profile: cache-conscious placement. Nets are grouped by ParSim
 *    partition island (so a superstep touches contiguous lines and a
 *    shared word never spans an ownership boundary), flopped nets
 *    lead each island so the flop phase coalesces into a handful of
 *    contiguous next->cur memcpy ranges, combinational nets follow in
 *    producer-block order (measured heat order when a profile is
 *    available — the PGO loop), and narrow nets are bit-packed into
 *    shared words where width allows.
 *
 * Packing invariants (relied on for correctness, see DESIGN.md §3.1j):
 *  - only single-word nets pack; shift + nbits <= 64;
 *  - word-mates always share owner island and flop class, so ParSim's
 *    whole-word boundary pushes and the flop phase's whole-word
 *    copies never mix values two islands or two phases own;
 *  - every ArenaStore accessor masks and shifts, so packed reads and
 *    read-modify-write stores are transparent to evaluator code.
 *
 * The physical layout never leaks into serialized artifacts: SimSnap
 * sections, VCD dumps and state digests are logical-net-id ordered,
 * so every layout x backend x thread-count combination is bit- and
 * byte-identical.
 */

#ifndef CMTL_CORE_LAYOUT_H
#define CMTL_CORE_LAYOUT_H

#include <cstdint>
#include <string>
#include <vector>

#include "model.h"

namespace cmtl {

struct PartitionPlan; // partition.h

/** Data-layout policy of the word arena. */
enum class LayoutPolicy
{
    Elab,    //!< elaboration order, whole aligned words (default)
    Profile, //!< island/producer grouping + bit packing + flop ranges
};

/** Canonical policy name ("elab" / "profile"). */
const char *layoutPolicyName(LayoutPolicy policy);
/** Parse a canonical policy name; throws std::invalid_argument. */
LayoutPolicy layoutPolicyFromName(const std::string &name);

/** Physical slot of one net within a phase of the arena. */
struct LayoutSlot
{
    int word_off = 0; //!< first word index within the phase
    int shift = 0;    //!< bit offset within the word (packed nets)
    int nwords = 1;   //!< words spanned (shift == 0 when > 1)
    int nbits = 0;
    uint64_t mask = 0; //!< top-word value mask
};

/** Observability counters surfaced in simulatorReport / SimScope. */
struct LayoutStats
{
    LayoutPolicy policy = LayoutPolicy::Elab;
    bool pgo = false;           //!< heat-refined (mid-run PGO) layout
    int packed_nets = 0;        //!< nets sharing a word with another
    int64_t packed_bits_saved = 0; //!< arena bits saved by packing
    int words_per_phase = 0;
    /** Filled by the kernel once its flop plan is computed. */
    int flop_memcpy_ranges = 0;
};

/** One whole-word next -> current copy run of the flop phase. */
struct FlopRange
{
    int off = 0;    //!< first word (current-phase index)
    int nwords = 0; //!< contiguous words to copy
};

/**
 * Precomputed flop phase: contiguous whole-word copy ranges replace
 * per-net stores, plus the packed nets whose word-mates are not all
 * flopped and therefore still need a masked read-modify-write copy.
 */
struct FlopCopyPlan
{
    std::vector<FlopRange> ranges;
    std::vector<int> rmw_nets;
};

/**
 * An immutable slot assignment for every net and array of one
 * elaborated design. Construct via elabOrder() or profiled(); share
 * one instance across ParSim replicas so "layout is a pure function
 * of the plan" stays true by construction.
 */
class ArenaLayout
{
  public:
    /** Today's layout: elaboration order, whole words, no packing. */
    static ArenaLayout elabOrder(const Elaboration &elab);

    /**
     * Profile-guided layout. @p plan (nullable) groups nets by owner
     * island; @p block_heat (nullable, per elab block index) orders
     * producer blocks by measured heat instead of schedule order —
     * the PGO refinement. Either may be null.
     */
    static ArenaLayout profiled(const Elaboration &elab,
                                const PartitionPlan *plan,
                                const std::vector<double> *block_heat);

    const LayoutSlot &slot(int net) const { return slots_[net]; }
    bool packed(int net) const { return packed_[net] != 0; }
    int wordsPerPhase() const { return words_per_phase_; }
    int numNets() const { return static_cast<int>(slots_.size()); }

    /** Word offset of an array's storage (past both net phases). */
    int arrayOffset(int array_id) const { return array_offset_[array_id]; }
    /** Total arena words: two net phases plus array storage. */
    int totalWords() const { return total_words_; }

    const LayoutStats &stats() const { return stats_; }
    LayoutPolicy policy() const { return stats_.policy; }

    /**
     * Coalesce @p flop_nets into whole-word copy ranges. A word joins
     * a range iff every net resident in it is in the set; packed nets
     * in impure words fall back to the rmw list.
     */
    FlopCopyPlan flopPlan(const std::vector<int> &flop_nets) const;

  private:
    std::vector<LayoutSlot> slots_;
    std::vector<char> packed_;
    std::vector<int> array_offset_;
    /** Nets resident in each current-phase word (flopPlan purity). */
    std::vector<std::vector<int>> word_nets_;
    int words_per_phase_ = 0;
    int total_words_ = 0;
    LayoutStats stats_;

    void finishArrays(const Elaboration &elab);
    void finishStats(const Elaboration &elab);
};

} // namespace cmtl

#endif // CMTL_CORE_LAYOUT_H
