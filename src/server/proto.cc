#include "proto.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cmtl {
namespace server {

// ----------------------------------------------------------- Json

Json
Json::boolean(bool v)
{
    Json j;
    j.kind = Kind::Bool;
    j.b = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind = Kind::Num;
    j.num = v;
    return j;
}

Json
Json::number(uint64_t v)
{
    return number(static_cast<double>(v));
}

Json
Json::number(int v)
{
    return number(static_cast<double>(v));
}

Json
Json::string(std::string v)
{
    Json j;
    j.kind = Kind::Str;
    j.str = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind = Kind::Arr;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind = Kind::Obj;
    return j;
}

Json &
Json::set(const std::string &key, Json v)
{
    kind = Kind::Obj;
    for (auto &kv : obj) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return *this;
        }
    }
    obj.emplace_back(key, std::move(v));
    return *this;
}

Json &
Json::push(Json v)
{
    kind = Kind::Arr;
    arr.push_back(std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind != Kind::Obj)
        return nullptr;
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
Json::asBool(bool dflt) const
{
    return kind == Kind::Bool ? b : dflt;
}

double
Json::asNum(double dflt) const
{
    return kind == Kind::Num ? num : dflt;
}

uint64_t
Json::asU64(uint64_t dflt) const
{
    return kind == Kind::Num && num >= 0 ? static_cast<uint64_t>(num)
                                         : dflt;
}

int
Json::asInt(int dflt) const
{
    return kind == Kind::Num ? static_cast<int>(num) : dflt;
}

std::string
Json::asStr(const std::string &dflt) const
{
    return kind == Kind::Str ? str : dflt;
}

namespace {

void
encodeString(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
encodeValue(const Json &j, std::string &out)
{
    switch (j.kind) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += j.b ? "true" : "false";
        break;
      case Json::Kind::Num: {
        char buf[32];
        // Integers (the common case: ids, cycles, counts) print
        // exactly; everything else gets full double precision.
        double v = j.num;
        if (v == static_cast<double>(static_cast<long long>(v)))
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
        else
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
        break;
      }
      case Json::Kind::Str:
        encodeString(j.str, out);
        break;
      case Json::Kind::Arr:
        out += '[';
        for (size_t i = 0; i < j.arr.size(); ++i) {
            if (i)
                out += ',';
            encodeValue(j.arr[i], out);
        }
        out += ']';
        break;
      case Json::Kind::Obj:
        out += '{';
        for (size_t i = 0; i < j.obj.size(); ++i) {
            if (i)
                out += ',';
            encodeString(j.obj[i].first, out);
            out += ':';
            encodeValue(j.obj[i].second, out);
        }
        out += '}';
        break;
    }
}

/** Recursive-descent parser over a bounds-checked cursor. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (p_ != end_)
            fail("trailing bytes after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        throw ProtoError("bad json: " + why);
    }

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r'))
            ++p_;
    }

    char
    peek()
    {
        skipWs();
        if (p_ == end_)
            fail("unexpected end of input");
        return *p_;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + *p_ + "'");
        ++p_;
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (static_cast<size_t>(end_ - p_) < n ||
            std::strncmp(p_, lit, n) != 0)
            return false;
        p_ += n;
        return true;
    }

    Json
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return Json::string(string());
          case 't':
            if (!consume("true"))
                fail("bad literal");
            return Json::boolean(true);
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            return Json::boolean(false);
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            return Json{};
          default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json out = Json::object();
        if (peek() == '}') {
            ++p_;
            return out;
        }
        for (;;) {
            if (peek() != '"')
                fail("expected object key string");
            std::string key = string();
            expect(':');
            out.obj.emplace_back(std::move(key), value());
            char c = peek();
            ++p_;
            if (c == '}')
                return out;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    Json
    array()
    {
        expect('[');
        Json out = Json::array();
        if (peek() == ']') {
            ++p_;
            return out;
        }
        for (;;) {
            out.arr.push_back(value());
            char c = peek();
            ++p_;
            if (c == ']')
                return out;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ == end_)
                fail("unterminated escape");
            char e = *p_++;
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (end_ - p_ < 4)
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // Only the escapes our encoder emits (< 0x20) plus
                // plain BMP characters are expected; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
        if (p_ == end_)
            fail("unterminated string");
        ++p_; // closing quote
        return out;
    }

    Json
    number()
    {
        const char *start = p_;
        if (p_ != end_ && *p_ == '-') // JSON has no leading '+'
            ++p_;
        // ... and no leading zeros ("01" is two values, not a number).
        if (p_ != end_ && *p_ == '0' && p_ + 1 != end_ &&
            p_[1] >= '0' && p_[1] <= '9')
            fail("malformed number (leading zero)");
        bool digits = false;
        while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                              *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                              *p_ == '+')) {
            digits = digits || (*p_ >= '0' && *p_ <= '9');
            ++p_;
        }
        if (!digits)
            fail("expected a value");
        std::string text(start, p_);
        char *endp = nullptr;
        double v = std::strtod(text.c_str(), &endp);
        if (endp != text.c_str() + text.size())
            fail("malformed number '" + text + "'");
        return Json::number(v);
    }

    const char *p_;
    const char *end_;
};

} // namespace

std::string
Json::encode() const
{
    std::string out;
    encodeValue(*this, out);
    return out;
}

Json
jsonParse(const std::string &text)
{
    return JsonParser(text).parse();
}

std::string
hexU64(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

uint64_t
parseHexU64(const std::string &s)
{
    if (s.size() != 16 ||
        s.find_first_not_of("0123456789abcdef") != std::string::npos)
        throw ProtoError("malformed hex digest '" + s + "'");
    return std::strtoull(s.c_str(), nullptr, 16);
}

// ---------------------------------------------------------- framing

namespace {

/** Read exactly @p n bytes; returns bytes read (< n only at EOF). */
size_t
readFull(int fd, void *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, static_cast<char *>(buf) + got, n - got);
        if (r == 0)
            return got;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw ProtoError(std::string("read failed: ") +
                             std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return got;
}

} // namespace

bool
readFrame(int fd, std::string &payload)
{
    uint8_t hdr[4];
    size_t got = readFull(fd, hdr, sizeof(hdr));
    if (got == 0)
        return false; // clean EOF between frames
    if (got < sizeof(hdr))
        throw ProtoError("truncated frame: EOF inside length prefix");
    uint32_t len = static_cast<uint32_t>(hdr[0]) |
                   (static_cast<uint32_t>(hdr[1]) << 8) |
                   (static_cast<uint32_t>(hdr[2]) << 16) |
                   (static_cast<uint32_t>(hdr[3]) << 24);
    if (len > kMaxFrameBytes)
        throw ProtoError("oversized frame: length prefix " +
                         std::to_string(len) + " exceeds limit " +
                         std::to_string(kMaxFrameBytes));
    payload.resize(len);
    if (len && readFull(fd, payload.data(), len) < len)
        throw ProtoError("truncated frame: EOF inside payload");
    return true;
}

void
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        throw ProtoError("refusing to send oversized frame");
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint8_t hdr[4] = {static_cast<uint8_t>(len),
                      static_cast<uint8_t>(len >> 8),
                      static_cast<uint8_t>(len >> 16),
                      static_cast<uint8_t>(len >> 24)};
    std::string frame(reinterpret_cast<char *>(hdr), sizeof(hdr));
    frame += payload;
    size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-job must surface
        // as an error on this connection, not kill the daemon.
        ssize_t w = ::send(fd, frame.data() + sent, frame.size() - sent,
                           MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw ProtoError(std::string("write failed: ") +
                             std::strerror(errno));
        }
        sent += static_cast<size_t>(w);
    }
}

// ------------------------------------------------------ ProtoClient

ProtoClient::~ProtoClient()
{
    close();
}

void
ProtoClient::connect(const std::string &socket_path)
{
    close();
    if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw ProtoError("socket path too long: " + socket_path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw ProtoError(std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        int err = errno;
        ::close(fd);
        throw ProtoError("cannot connect to '" + socket_path +
                         "': " + std::strerror(err));
    }
    fd_ = fd;

    Json hello = Json::object();
    hello.set("verb", Json::string("hello"));
    hello.set("version", Json::number(static_cast<uint64_t>(kProtoVersion)));
    Json reply = call(hello);
    const Json *ok = reply.find("ok");
    if (!ok || !ok->b) {
        std::string why =
            reply.find("error") ? reply.find("error")->asStr() : "refused";
        close();
        throw ProtoError("handshake failed: " + why);
    }
}

void
ProtoClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
ProtoClient::send(const Json &request)
{
    if (fd_ < 0)
        throw ProtoError("not connected");
    writeFrame(fd_, request.encode());
}

Json
ProtoClient::readReply()
{
    if (fd_ < 0)
        throw ProtoError("not connected");
    std::string payload;
    if (!readFrame(fd_, payload))
        throw ProtoError("server closed the connection");
    return jsonParse(payload);
}

Json
ProtoClient::call(const Json &request)
{
    send(request);
    return readReply();
}

} // namespace server
} // namespace cmtl
